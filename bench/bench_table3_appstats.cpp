/**
 * @file
 * Regenerates the paper's Table 3: the SPLASH-2 programs with problem
 * sizes and lock statistics, plus verification that our synthetic workload
 * models execute the configured (scaled) number of lock calls.
 */
#include <iostream>

#include "apps/app_runner.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"

int
main()
{
    using namespace nucalock;
    using namespace nucalock::apps;

    bench::banner("Table 3",
                  "SPLASH-2 lock statistics (paper values; 32-cpu runs). "
                  "Programs marked with\n'>' have more than 10,000 lock "
                  "calls and are studied further. The 'Model\nCalls' column "
                  "is what our synthetic model actually executed at the "
                  "default\nscale, as a workload-generator check.");

    AppRunConfig config;
    config.threads = 8; // cheap verification run
    config.call_scale = 0.02 * bench_scale();

    stats::Table table({"", "Program", "Problem Size", "Total Locks",
                        "Lock Calls", "Model Calls (scaled)"});
    for (const AppWorkload& app : splash2_suite()) {
        std::uint64_t executed = 0;
        if (app.studied) {
            const AppOutcome outcome =
                run_app_once(app, locks::LockKind::TatasExp, config);
            executed = outcome.lock_calls;
        }
        table.row()
            .cell(app.studied ? ">" : " ")
            .cell(app.name)
            .cell(app.problem_size)
            .cell(app.total_locks)
            .cell(app.lock_calls)
            .cell(executed);
    }
    table.print(std::cout);
    return 0;
}
