/**
 * @file
 * Ablation: what the is_spinning throttle buys (DESIGN.md section 6.1).
 * Sweeps the thread count on the new microbenchmark and reports *global*
 * transactions per lock acquisition for HBO (ungated remote spinning),
 * HBO_GT (one remote spinner per node), and HBO_GT_SD. The gap between HBO
 * and HBO_GT is exactly the traffic the gate removes.
 */
#include <iostream>

#include "bench_common.hpp"
#include "harness/newbench.hpp"
#include "stats/table.hpp"

int
main()
{
    using namespace nucalock;
    using namespace nucalock::harness;
    using namespace nucalock::locks;

    bench::banner("Ablation: global-traffic throttle (is_spinning gate)",
                  "Global coherence transactions per acquisition vs cpu "
                  "count, new\nmicrobenchmark at critical_work=1500.");

    const std::vector<int> cpu_counts = {4, 8, 12, 16, 20, 24, 28};
    const std::vector<LockKind> kinds = {LockKind::Hbo, LockKind::HboGt,
                                         LockKind::HboGtSd};

    std::vector<std::string> headers = {"Lock Type"};
    for (int n : cpu_counts)
        headers.push_back("g/acq@" + std::to_string(n));
    stats::Table table(headers);

    for (LockKind kind : kinds) {
        table.row().cell(lock_name(kind));
        for (int n : cpu_counts) {
            NewBenchConfig config;
            config.threads = n;
            config.critical_work = 1500;
            config.iterations_per_thread =
                static_cast<std::uint32_t>(scaled_iters(60, 10));
            const BenchResult r = run_newbench(kind, config);
            table.cell(static_cast<double>(r.traffic.global_tx) /
                           static_cast<double>(r.total_acquires),
                       1);
        }
    }
    table.print(std::cout);
    return 0;
}
