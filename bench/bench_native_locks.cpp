/**
 * @file
 * Native-backend microbenchmark (google-benchmark): uncontested
 * acquire-release cost of every lock on the host, plus the ping-pong cost
 * with two threads. This validates that the library is a real lock library
 * on real hardware, complementing the simulator-based paper reproductions.
 */
#include <benchmark/benchmark.h>

#include "locks/any_lock.hpp"
#include "native/machine.hpp"
#include "topology/host.hpp"

namespace {

using namespace nucalock;
using namespace nucalock::locks;
using namespace nucalock::native;

/** A machine with at least two (logical) nodes for the NUCA-aware locks. */
NativeMachine&
shared_machine()
{
    static NativeMachine machine(Topology::symmetric(2, 2));
    return machine;
}

void
uncontested(benchmark::State& state, LockKind kind)
{
    NativeMachine& machine = shared_machine();
    AnyLock<NativeContext> lock(machine, kind);
    NativeContext ctx = machine.make_context(0, 0);
    for (auto _ : state) {
        lock.acquire(ctx);
        lock.release(ctx);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

} // namespace

BENCHMARK_CAPTURE(uncontested, TATAS, LockKind::Tatas);
BENCHMARK_CAPTURE(uncontested, TATAS_EXP, LockKind::TatasExp);
BENCHMARK_CAPTURE(uncontested, TICKET, LockKind::Ticket);
BENCHMARK_CAPTURE(uncontested, MCS, LockKind::Mcs);
BENCHMARK_CAPTURE(uncontested, CLH, LockKind::Clh);
BENCHMARK_CAPTURE(uncontested, RH, LockKind::Rh);
BENCHMARK_CAPTURE(uncontested, HBO, LockKind::Hbo);
BENCHMARK_CAPTURE(uncontested, HBO_GT, LockKind::HboGt);
BENCHMARK_CAPTURE(uncontested, HBO_GT_SD, LockKind::HboGtSd);
BENCHMARK_CAPTURE(uncontested, HBO_HIER, LockKind::HboHier);
BENCHMARK_CAPTURE(uncontested, REACTIVE, LockKind::Reactive);
BENCHMARK_CAPTURE(uncontested, ANDERSON, LockKind::Anderson);
BENCHMARK_CAPTURE(uncontested, COHORT, LockKind::Cohort);
BENCHMARK_CAPTURE(uncontested, CLH_TRY, LockKind::ClhTry);

BENCHMARK_MAIN();
