/**
 * @file
 * Native-backend benchmark. Two layers:
 *
 *  1. A hardware-counter observatory sweep: contended acquire/release and a
 *     KV-service section (structs::StripedMap) on real threads, with a
 *     perf_event counter group per thread read at every probe phase
 *     transition (obs/perf_counters.hpp), producing a schema-v6 report
 *     whose per-run "native_traffic" object carries per-lock, per-phase
 *     LLC-miss/remote-access deltas — the real-hardware Figure 7 story.
 *     Where perf is denied (perf_event_paranoid, containers) the report
 *     carries a machine-readable unavailable marker and the exit status is
 *     identical.
 *
 *  2. The original google-benchmark microbenchmarks: uncontested
 *     acquire-release cost of every lock on the host (skip with
 *     --skip-microbench).
 */
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "apps/workload.hpp"
#include "bench_common.hpp"
#include "common/env.hpp"
#include "locks/any_lock.hpp"
#include "native/machine.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/probe.hpp"
#include "structs/striped_map.hpp"
#include "topology/host.hpp"

namespace {

using namespace nucalock;
using namespace nucalock::locks;
using namespace nucalock::native;

/** A machine with at least two (logical) nodes for the NUCA-aware locks. */
NativeMachine&
shared_machine()
{
    static NativeMachine machine(Topology::symmetric(2, 2));
    return machine;
}

void
uncontested(benchmark::State& state, LockKind kind)
{
    NativeMachine& machine = shared_machine();
    AnyLock<NativeContext> lock(machine, kind);
    NativeContext ctx = machine.make_context(0, 0);
    for (auto _ : state) {
        lock.acquire(ctx);
        lock.release(ctx);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

// ---------------------------------------------------------------------------
// Hardware-counter observatory sweep
// ---------------------------------------------------------------------------

constexpr int kThreads = 4;

/** Per-run state that must outlive report emission (ReportRun keeps
 *  pointers into it); std::deque so addresses are stable. */
struct RunArtifacts
{
    obs::MetricsRegistry registry;
    obs::NativeTrafficStats native;
    structs::KvStructsStats kv;
    bool has_kv = false;
};

std::uint64_t
wall_ns_since(std::chrono::steady_clock::time_point start)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
}

/** Fill the harness-result shape from a finished native run. */
harness::BenchResult
native_result(const RunArtifacts& art, std::uint64_t wall_ns,
              std::uint64_t acquires)
{
    harness::BenchResult res;
    res.total_time = static_cast<sim::SimTime>(wall_ns);
    res.total_acquires = acquires;
    res.avg_iteration_ns =
        acquires == 0 ? 0.0
                      : static_cast<double>(wall_ns) /
                            static_cast<double>(acquires);
    // The traffic totals/attribution are the hardware-counter proxy, so
    // the existing fold_traffic / --traffic pipeline renders real-silicon
    // numbers through the same tables as the simulator.
    res.traffic = art.native.totals();
    res.traffic_attribution = art.native.to_attribution();
    if (const obs::LockMetrics* primary = art.registry.primary())
        res.node_handoff_ratio = primary->remote_handover_fraction();
    return res;
}

/** Contended acquire/touch/release on real threads under counter probes. */
obs::ReportRun
run_contended(obs::CounterSource& source, LockKind kind,
              std::deque<RunArtifacts>& store)
{
    NativeMachine machine(Topology::symmetric(2, 2));
    RunArtifacts& art = store.emplace_back();
    obs::ThreadSafeSink sink(art.registry);
    machine.install_probe(&sink);
    obs::NativeCounterSession session(source);
    machine.install_phase_hooks(&session);

    AnyLock<NativeContext> lock(machine, kind);
    const NativeRef shared = machine.alloc_array(4, 0);
    const std::uint64_t iters = scaled_iters(2000, 100);

    const auto start = std::chrono::steady_clock::now();
    machine.run_threads(kThreads, Placement::RoundRobinNodes,
                        [&](NativeContext& ctx, int) {
                            for (std::uint64_t i = 0; i < iters; ++i) {
                                lock.acquire(ctx);
                                ctx.touch_array(shared, 4, /*write=*/true);
                                lock.release(ctx);
                                ctx.delay(64); // private work between CSes
                            }
                        });
    const std::uint64_t wall_ns = wall_ns_since(start);

    art.native = session.finish();
    art.registry.finalize();
    const std::uint64_t acquires =
        static_cast<std::uint64_t>(kThreads) * iters;
    obs::ReportRun run(lock_name(kind), native_result(art, wall_ns, acquires),
                       &art.registry);
    run.native_traffic = &art.native;
    std::printf("  %-10s %8.0f ns/acq  counters:%s\n", lock_name(kind),
                run.result.avg_iteration_ns,
                art.native.available ? "on" : "off");
    return run;
}

/**
 * The KV-service workload on the native backend: a striped map driven by a
 * Zipf-skewed read/write/scan mix from real threads — the structures riding
 * the native perf-counter path, per-stripe lock ids joining the per-lock
 * counter rows.
 */
obs::ReportRun
run_kv(obs::CounterSource& source, LockKind kind,
       std::deque<RunArtifacts>& store)
{
    NativeMachine machine(Topology::symmetric(2, 2));
    RunArtifacts& art = store.emplace_back();
    art.has_kv = true;

    structs::StripedMap<NativeContext>::Config cfg;
    cfg.stripes = 4;
    cfg.initial_buckets = 8;
    cfg.max_load_factor = 2.0; // let cooperative resizes happen mid-run
    structs::StripedMap<NativeContext> map(machine, kind, cfg);

    // Preload before installing probes/counters so the measured section
    // starts on a warm map.
    constexpr std::uint64_t kKeyspace = 512;
    {
        NativeContext warm = machine.make_context(0, 0);
        for (std::uint64_t k = 0; k < kKeyspace; ++k)
            map.put(warm, k, k);
    }

    obs::ThreadSafeSink sink(art.registry);
    machine.install_probe(&sink);
    obs::NativeCounterSession session(source);
    machine.install_phase_hooks(&session);

    const apps::ZipfSampler zipf(kKeyspace, 0.9);
    const std::uint64_t ops = scaled_iters(4000, 200);
    std::mutex merge_mutex;

    const auto start = std::chrono::steady_clock::now();
    machine.run_threads(
        kThreads, Placement::RoundRobinNodes, [&](NativeContext& ctx, int) {
            structs::KvStructsStats local;
            std::uint64_t fresh = 0;
            for (std::uint64_t i = 0; i < ops; ++i) {
                const auto key =
                    static_cast<std::uint64_t>(zipf.sample(ctx.rng()));
                const std::uint64_t dice = ctx.rng().next() % 100;
                const auto op_start = std::chrono::steady_clock::now();
                if (dice < 70) {
                    if (map.get(ctx, key).has_value())
                        ++local.hits;
                    else
                        ++local.misses;
                    ++local.reads;
                    local.read_ns.add(wall_ns_since(op_start));
                } else if (dice < 90) {
                    map.put(ctx, key, i);
                    ++local.writes;
                    local.write_ns.add(wall_ns_since(op_start));
                } else if (dice < 95) {
                    map.scan(ctx, key, 16);
                    ++local.scans;
                    local.scan_ns.add(wall_ns_since(op_start));
                } else {
                    // Fresh keys in a per-thread namespace: insert load
                    // that eventually trips a cooperative resize.
                    map.put(ctx,
                            1'000'000 +
                                static_cast<std::uint64_t>(ctx.thread_id()) *
                                    1'000'000 +
                                fresh++,
                            i);
                    ++local.inserts;
                    local.write_ns.add(wall_ns_since(op_start));
                }
            }
            const std::lock_guard<std::mutex> guard(merge_mutex);
            art.kv.reads += local.reads;
            art.kv.writes += local.writes;
            art.kv.scans += local.scans;
            art.kv.inserts += local.inserts;
            art.kv.hits += local.hits;
            art.kv.misses += local.misses;
            art.kv.read_ns.merge(local.read_ns);
            art.kv.write_ns.merge(local.write_ns);
            art.kv.scan_ns.merge(local.scan_ns);
        });
    const std::uint64_t wall_ns = wall_ns_since(start);

    art.native = session.finish();
    art.registry.finalize();
    map.collect(art.kv);

    const std::uint64_t acquires = art.kv.stripe_acquisitions_total();
    harness::BenchResult res = native_result(art, wall_ns, acquires);
    {
        std::uint64_t local = 0;
        std::uint64_t remote = 0;
        for (const structs::StripeStats& s : art.kv.per_stripe) {
            local += s.handovers_local;
            remote += s.handovers_remote;
        }
        res.node_handoff_ratio =
            local + remote == 0 ? 0.0
                                : static_cast<double>(remote) /
                                      static_cast<double>(local + remote);
    }
    obs::ReportRun run(std::string(lock_name(kind)) + "@kv", res,
                       &art.registry);
    run.structs = &art.kv;
    run.native_traffic = &art.native;
    std::printf("  %-10s %8" PRIu64 " ops  %8" PRIu64
                " stripe acqs  counters:%s\n",
                run.lock_name.c_str(), art.kv.ops_total(), acquires,
                art.native.available ? "on" : "off");
    return run;
}

int
run_observatory()
{
    bench::banner("native hardware-counter observatory",
                  "Contended locks and the KV service on real threads, with "
                  "per-thread perf_event counter groups read at probe phase "
                  "transitions (schema v6 native_traffic).");

    obs::PerfCounterSource source;
    const obs::CounterCapabilities caps = source.capabilities();
    if (caps.available)
        std::printf("perf counters: available (paranoid=%d)\n",
                    caps.paranoid_level);
    else
        std::printf("perf counters: unavailable — %s\n",
                    caps.unavailable_reason.c_str());

    std::deque<RunArtifacts> store;
    std::vector<obs::ReportRun> runs;

    std::printf("\ncontended (%d threads):\n", kThreads);
    for (const LockKind kind :
         {LockKind::Tatas, LockKind::TatasExp, LockKind::Mcs, LockKind::Rh,
          LockKind::HboGt, LockKind::HboGtSd})
        runs.push_back(run_contended(source, kind, store));

    std::printf("\nkv service (%d threads, striped map):\n", kThreads);
    for (const LockKind kind : {LockKind::Tatas, LockKind::HboGt})
        runs.push_back(run_kv(source, kind, store));

    obs::ReportConfig rc;
    rc.tool = "bench_native_locks";
    rc.bench = "native";
    rc.nodes = 2;
    rc.cpus_per_node = 2;
    rc.threads = kThreads;
    rc.iterations = static_cast<std::uint32_t>(scaled_iters(2000, 100));
    rc.seed = 1;
    bench::maybe_write_json(rc, runs);
    return 0; // exit status is identical with or without counters
}

} // namespace

BENCHMARK_CAPTURE(uncontested, TATAS, LockKind::Tatas);
BENCHMARK_CAPTURE(uncontested, TATAS_EXP, LockKind::TatasExp);
BENCHMARK_CAPTURE(uncontested, TICKET, LockKind::Ticket);
BENCHMARK_CAPTURE(uncontested, MCS, LockKind::Mcs);
BENCHMARK_CAPTURE(uncontested, CLH, LockKind::Clh);
BENCHMARK_CAPTURE(uncontested, RH, LockKind::Rh);
BENCHMARK_CAPTURE(uncontested, HBO, LockKind::Hbo);
BENCHMARK_CAPTURE(uncontested, HBO_GT, LockKind::HboGt);
BENCHMARK_CAPTURE(uncontested, HBO_GT_SD, LockKind::HboGtSd);
BENCHMARK_CAPTURE(uncontested, HBO_HIER, LockKind::HboHier);
BENCHMARK_CAPTURE(uncontested, REACTIVE, LockKind::Reactive);
BENCHMARK_CAPTURE(uncontested, ANDERSON, LockKind::Anderson);
BENCHMARK_CAPTURE(uncontested, COHORT, LockKind::Cohort);
BENCHMARK_CAPTURE(uncontested, CLH_TRY, LockKind::ClhTry);

int
main(int argc, char** argv)
{
    // Strip our own flags before google-benchmark sees (and rejects) them.
    bool skip_microbench = false;
    std::vector<char*> bench_argv;
    bench_argv.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--skip-microbench") == 0)
            skip_microbench = true;
        else
            bench_argv.push_back(argv[i]);
    }

    const int status = run_observatory();
    if (skip_microbench)
        return status;

    int bench_argc = static_cast<int>(bench_argv.size());
    benchmark::Initialize(&bench_argc, bench_argv.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_argv.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return status;
}
