/**
 * @file
 * Regenerates the paper's Figure 10: sensitivity of HBO_GT_SD to the
 * GET_ANGRY_LIMIT parameter (26-cpu new-microbenchmark runs, normalized to
 * HBO_GT under the same configuration). Large limits converge to HBO_GT
 * (the starvation-detection ablation).
 */
#include <iostream>

#include "bench_common.hpp"
#include "harness/sensitivity.hpp"
#include "stats/table.hpp"

int
main(int argc, char** argv)
{
    using namespace nucalock;
    using namespace nucalock::harness;
    using namespace nucalock::locks;

    bench::banner("Figure 10",
                  "Sensitivity of HBO_GT_SD to GET_ANGRY_LIMIT, 26 cpus, new "
                  "microbenchmark,\nnormalized to HBO_GT. Small limits pay "
                  "for fairness with extra handovers;\nlarge limits converge "
                  "to HBO_GT (ratio -> 1).");

    NewBenchConfig config;
    config.threads = 26;
    config.critical_work = 1500;
    config.iterations_per_thread =
        static_cast<std::uint32_t>(scaled_iters(60, 10));

    const std::vector<std::uint32_t> limits = {1,  2,   4,   8,    16,  32,
                                               64, 128, 512, 2048, 8192};
    const auto points =
        sweep_get_angry_limit(config, limits, bench::bench_jobs(argc, argv));

    stats::Table table({"GET_ANGRY_LIMIT", "Time vs HBO_GT"});
    for (const SensitivityPoint& p : points)
        table.row().cell(p.value).cell(p.normalized_time, 3);
    table.print(std::cout);
    return 0;
}
