/**
 * @file
 * Regenerates the paper's Figure 9: sensitivity of HBO_GT_SD to the
 * REMOTE_BACKOFF_CAP parameter (26-cpu new-microbenchmark runs, normalized
 * to MCS under the same configuration).
 */
#include <iostream>

#include "bench_common.hpp"
#include "harness/sensitivity.hpp"
#include "stats/table.hpp"

int
main(int argc, char** argv)
{
    using namespace nucalock;
    using namespace nucalock::harness;
    using namespace nucalock::locks;

    bench::banner("Figure 9",
                  "Sensitivity of HBO_GT_SD to REMOTE_BACKOFF_CAP "
                  "(delay-loop iterations),\n26 cpus, new microbenchmark, "
                  "normalized to MCS (values < 1 mean faster than\nMCS). "
                  "Paper shape: flat optimum over a wide cap range, "
                  "degrading at the\nextremes.");

    NewBenchConfig config;
    config.threads = 26;
    config.critical_work = 1500;
    config.iterations_per_thread =
        static_cast<std::uint32_t>(scaled_iters(60, 10));

    const std::vector<std::uint32_t> caps = {512,   1024,  2048,  4096,
                                             8192,  16384, 32768, 65536,
                                             131072};
    const auto points =
        sweep_remote_backoff_cap(config, caps, bench::bench_jobs(argc, argv));

    stats::Table table({"REMOTE_BACKOFF_CAP", "Time vs MCS"});
    for (const SensitivityPoint& p : points)
        table.row().cell(p.value).cell(p.normalized_time, 3);
    table.print(std::cout);
    return 0;
}
