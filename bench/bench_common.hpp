/**
 * @file
 * Shared helpers for the benchmark binaries: paper-style headers and the
 * run-length scaling knob (NUCALOCK_BENCH_SCALE).
 */
#ifndef NUCALOCK_BENCH_COMMON_HPP
#define NUCALOCK_BENCH_COMMON_HPP

#include <cstdio>
#include <string>

#include "common/env.hpp"

namespace nucalock::bench {

/** Print the standard banner naming the paper artifact being regenerated. */
inline void
banner(const char* artifact, const char* description)
{
    std::printf("== %s ==\n%s\n", artifact, description);
    const double scale = nucalock::bench_scale();
    if (scale != 1.0)
        std::printf("(NUCALOCK_BENCH_SCALE=%.3g)\n", scale);
    std::printf("\n");
}

} // namespace nucalock::bench

#endif // NUCALOCK_BENCH_COMMON_HPP
