/**
 * @file
 * Shared helpers for the benchmark binaries: paper-style headers and the
 * run-length scaling knob (NUCALOCK_BENCH_SCALE).
 */
#ifndef NUCALOCK_BENCH_COMMON_HPP
#define NUCALOCK_BENCH_COMMON_HPP

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "obs/report.hpp"

namespace nucalock::bench {

/** Print the standard banner naming the paper artifact being regenerated. */
inline void
banner(const char* artifact, const char* description)
{
    std::printf("== %s ==\n%s\n", artifact, description);
    const double scale = nucalock::bench_scale();
    if (scale != 1.0)
        std::printf("(NUCALOCK_BENCH_SCALE=%.3g)\n", scale);
    std::printf("\n");
}

/**
 * Parse an optional `--jobs=N` argument for the benchmark binaries that
 * fan independent runs out over exec::Executor. Returns 0 (the executor
 * default: NUCALOCK_JOBS, else hardware concurrency) when absent or
 * malformed. The benches stay deterministic at every level; --jobs only
 * changes host wall time.
 */
inline int
bench_jobs(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--jobs=", 0) != 0)
            continue;
        const int jobs = std::atoi(arg.c_str() + 7);
        if (jobs >= 1 && jobs <= 1024)
            return jobs;
        std::fprintf(stderr, "warning: ignoring bad %s\n", arg.c_str());
    }
    return 0;
}

/**
 * When NUCALOCK_BENCH_JSON names a path, write the binary's headline runs
 * there as a nucalock-bench-report document (obs/report.hpp) for trajectory
 * tracking; otherwise do nothing. Returns whether a file was written.
 */
inline bool
maybe_write_json(const obs::ReportConfig& config,
                 const std::vector<obs::ReportRun>& runs)
{
    const char* path = std::getenv("NUCALOCK_BENCH_JSON");
    if (path == nullptr || *path == '\0')
        return false;
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "warning: cannot write NUCALOCK_BENCH_JSON=%s\n",
                     path);
        return false;
    }
    obs::write_report(out, config, runs);
    // Status note, not benchmark output: stderr keeps stdout byte-diffable
    // across runs that write their reports to different paths.
    std::fprintf(stderr, "(wrote %s)\n", path);
    return true;
}

} // namespace nucalock::bench

#endif // NUCALOCK_BENCH_COMMON_HPP
