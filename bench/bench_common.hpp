/**
 * @file
 * Shared helpers for the benchmark binaries: paper-style headers and the
 * run-length scaling knob (NUCALOCK_BENCH_SCALE).
 */
#ifndef NUCALOCK_BENCH_COMMON_HPP
#define NUCALOCK_BENCH_COMMON_HPP

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "obs/report.hpp"

namespace nucalock::bench {

/** Print the standard banner naming the paper artifact being regenerated. */
inline void
banner(const char* artifact, const char* description)
{
    std::printf("== %s ==\n%s\n", artifact, description);
    const double scale = nucalock::bench_scale();
    if (scale != 1.0)
        std::printf("(NUCALOCK_BENCH_SCALE=%.3g)\n", scale);
    std::printf("\n");
}

/**
 * When NUCALOCK_BENCH_JSON names a path, write the binary's headline runs
 * there as a nucalock-bench-report document (obs/report.hpp) for trajectory
 * tracking; otherwise do nothing. Returns whether a file was written.
 */
inline bool
maybe_write_json(const obs::ReportConfig& config,
                 const std::vector<obs::ReportRun>& runs)
{
    const char* path = std::getenv("NUCALOCK_BENCH_JSON");
    if (path == nullptr || *path == '\0')
        return false;
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "warning: cannot write NUCALOCK_BENCH_JSON=%s\n",
                     path);
        return false;
    }
    obs::write_report(out, config, runs);
    std::printf("(wrote %s)\n", path);
    return true;
}

} // namespace nucalock::bench

#endif // NUCALOCK_BENCH_COMMON_HPP
