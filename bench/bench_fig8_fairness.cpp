/**
 * @file
 * Regenerates the paper's Figure 8: fairness study on the new
 * microbenchmark — per-thread finish times and the percentage difference
 * between the first and last processor to complete.
 */
#include <iostream>

#include "bench_common.hpp"
#include "harness/fairness.hpp"
#include "stats/table.hpp"

int
main()
{
    using namespace nucalock;
    using namespace nucalock::harness;
    using namespace nucalock::locks;

    bench::banner("Figure 8",
                  "Fairness study: finish-time spread between first and last "
                  "thread, new\nmicrobenchmark, 28 cpus. Paper: queue locks "
                  "2.1%, TATAS_EXP 28.9%, HBO_GT_SD 5.6%.");

    NewBenchConfig config;
    config.threads = 28;
    config.critical_work = 1500;
    config.iterations_per_thread =
        static_cast<std::uint32_t>(scaled_iters(60, 10));

    stats::Table table({"Lock Type", "First Finish (ms)", "Last Finish (ms)",
                        "Spread (%)"});
    for (LockKind kind : paper_lock_kinds()) {
        const FairnessResult r = run_fairness(kind, config);
        const auto [lo, hi] = std::minmax_element(r.finish_times.begin(),
                                                  r.finish_times.end());
        table.row()
            .cell(lock_name(kind))
            .cell(static_cast<double>(*lo) / 1e6, 2)
            .cell(static_cast<double>(*hi) / 1e6, 2)
            .cell(r.spread_pct, 1);
    }
    table.print(std::cout);
    return 0;
}
