/**
 * @file
 * Regenerates the paper's Table 5 and Figure 6: execution time (and
 * variance over seeds) of the seven studied application models for all
 * eight locking algorithms, 28-cpu runs on the simulated WildFire, plus
 * speedup normalized to TATAS_EXP (Figure 6's metric, inverted from time).
 */
#include <iostream>
#include <map>

#include "apps/app_runner.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"

int
main()
{
    using namespace nucalock;
    using namespace nucalock::apps;
    using namespace nucalock::locks;

    bench::banner("Table 5 + Figure 6",
                  "Application models, 28 cpus (14 per WildFire node), "
                  "execution time in\nsimulated milliseconds (variance over "
                  "seeds in parentheses). Paper shape: all\nlocks within "
                  "~10% except Raytrace, where NUCA-aware locks are ~2-4x "
                  "faster.");

    AppRunConfig config;
    config.threads = 28;
    config.call_scale = 0.02 * bench_scale();
    const int runs = 3;

    const auto locks = paper_lock_kinds();
    std::vector<std::string> headers = {"Program"};
    for (LockKind kind : locks)
        headers.push_back(lock_name(kind));
    stats::Table table(headers);

    std::map<LockKind, double> time_sum;
    std::map<LockKind, double> speedup_sum;
    std::map<LockKind, double> tatas_exp_time;

    for (const AppWorkload& app : studied_apps()) {
        table.row().cell(app.name);
        std::vector<AppAggregate> row;
        for (LockKind kind : locks)
            row.push_back(run_app(app, kind, config, runs));
        const double base =
            row[1].mean_time_s; // TATAS_EXP is second in paper order
        for (std::size_t i = 0; i < locks.size(); ++i) {
            table.cell(stats::format_double(row[i].mean_time_s * 1e3, 1) +
                       " (" + stats::format_double(row[i].time_variance * 1e6, 1) +
                       ")");
            time_sum[locks[i]] += row[i].mean_time_s;
            speedup_sum[locks[i]] += base / row[i].mean_time_s;
        }
        (void)tatas_exp_time;
    }

    table.row().cell("Average");
    for (LockKind kind : locks)
        table.cell(time_sum[kind] / 7.0 * 1e3, 1);
    table.print(std::cout);

    std::cout << "\nFigure 6: speedup normalized to TATAS_EXP "
                 "(mean over the seven apps;\nhigher is better):\n";
    stats::Table fig6({"Lock Type", "Normalized Speedup"});
    for (LockKind kind : locks)
        fig6.row().cell(lock_name(kind)).cell(speedup_sum[kind] / 7.0, 3);
    fig6.print(std::cout);
    return 0;
}
