/**
 * @file
 * Extension study: where does the NUCA-aware win come from? Sweeps the
 * machine's NUCA ratio (remote/local cache-to-cache latency) and reports
 * new-microbenchmark run time of HBO_GT and RH normalized to CLH. At ratio
 * 1 (flat SMP, SunFire-15k-like) node affinity buys nothing; the paper's
 * section 2 argues the win should grow with the ratio (DASH 4.5, WildFire
 * 6, NUMA-Q 10).
 */
#include <iostream>

#include "bench_common.hpp"
#include "harness/newbench.hpp"
#include "stats/table.hpp"

int
main()
{
    using namespace nucalock;
    using namespace nucalock::harness;
    using namespace nucalock::locks;

    bench::banner("Extension: NUCA-ratio sweep",
                  "Run time normalized to CLH vs machine NUCA ratio, new "
                  "microbenchmark,\n28 cpus, critical_work=1500. Expect "
                  "ratio ~1 => no NUCA-lock advantage;\nadvantage grows "
                  "with the ratio.");

    const std::vector<double> ratios = {1.0, 2.0, 3.5, 6.0, 10.0};
    const std::vector<LockKind> kinds = {LockKind::TatasExp, LockKind::Rh,
                                         LockKind::HboGt, LockKind::HboGtSd};

    std::vector<std::string> headers = {"Lock Type"};
    for (double r : ratios)
        headers.push_back("ratio " + stats::format_double(r, 1));
    stats::Table table(headers);

    std::vector<std::vector<double>> times(kinds.size());
    std::vector<double> clh_times;
    for (double ratio : ratios) {
        NewBenchConfig config;
        config.latency = sim::LatencyModel::scaled(ratio);
        config.threads = 28;
        config.critical_work = 1500;
        config.iterations_per_thread =
            static_cast<std::uint32_t>(scaled_iters(60, 10));
        clh_times.push_back(static_cast<double>(
            run_newbench(LockKind::Clh, config).total_time));
        for (std::size_t k = 0; k < kinds.size(); ++k)
            times[k].push_back(static_cast<double>(
                run_newbench(kinds[k], config).total_time));
    }

    for (std::size_t k = 0; k < kinds.size(); ++k) {
        table.row().cell(lock_name(kinds[k]));
        for (std::size_t r = 0; r < ratios.size(); ++r)
            table.cell(times[k][r] / clh_times[r], 2);
    }
    table.print(std::cout);
    return 0;
}
