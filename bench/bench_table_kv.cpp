/**
 * @file
 * Sharded-KV shootout (Table 6 shape for the structs tier): which lock
 * should a sharded KV store use at which contention level?
 *
 * Every level is a KV-service run (apps/kv_service.hpp) over the striped
 * hash map — a Zipf-skewed read/write/scan mix with resize storms — and
 * every lock algorithm (including ADAPTIVE) guards the map's stripes.
 * The levels span the contention range a real store sees:
 *
 *   uniform   2x14, no skew, many stripes   — ops spread thin (low)
 *   zipf.9    2x14, skew 0.9, 16 stripes    — realistic hot-key mix
 *   hotkeys   2x14, skew 1.2, 4 stripes     — few hot stripes (high)
 *   scale64   8x8 (64 cpus), skew 0.9       — same mix, bigger machine
 *
 * Per level the table reports simulated ns per service op, the stripe
 * handover locality, global coherence transactions and resize epochs;
 * the bottom lines name the best static lock per level and ADAPTIVE's
 * ratio to it, with a "> +15%" marker where the adaptive lock leaves the
 * docs/adaptive.md envelope. RH is a two-node algorithm, so its scale64
 * cells print "-".
 *
 * Everything is simulated: bit-identical run to run and at every --jobs
 * level, pinned by the acquisition-order hash chain printed at the
 * bottom. With NUCALOCK_BENCH_JSON set, writes a nucalock-bench-report
 * v5 document whose runs carry the per-stripe "structs" telemetry; the
 * file contains no host object, so it too is byte-identical across
 * --jobs.
 */
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "apps/kv_service.hpp"
#include "bench_common.hpp"
#include "exec/executor.hpp"
#include "stats/table.hpp"

namespace {

using namespace nucalock;
using namespace nucalock::apps;
using namespace nucalock::locks;

struct Level
{
    const char* name;
    int nodes;
    int cpus_per_node;
    double skew;
    std::uint64_t stripes;
    std::uint32_t think_iters;
};

const std::vector<Level> kLevels = {
    {"uniform", 2, 14, 0.0, 32, 800},
    {"zipf.9", 2, 14, 0.9, 16, 400},
    {"hotkeys", 2, 14, 1.2, 4, 100},
    {"scale64", 8, 8, 0.9, 16, 400},
};

bool
runs_at(LockKind kind, const Level& level)
{
    return kind != LockKind::Rh || level.nodes <= 2;
}

KvServiceConfig
level_config(const Level& level, std::uint64_t ops)
{
    KvServiceConfig config;
    config.topology = Topology::symmetric(level.nodes, level.cpus_per_node);
    config.threads = level.nodes * level.cpus_per_node;
    config.keys = 4096;
    config.stripes = level.stripes;
    config.zipf_skew = level.skew;
    config.think_iters = level.think_iters;
    config.ops_per_thread = ops;
    config.resize_storms = 1;
    return config;
}

std::string
hash_hex(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return std::string(buf);
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner(
        "Sharded-KV lock shootout",
        "Simulated ns per KV service op (read/write/scan mix over the\n"
        "striped hash map) for every lock at four contention levels.\n"
        "'best static' is the fastest non-adaptive lock per level;\n"
        "ADAPTIVE should stay within 15% of it (docs/adaptive.md).\n"
        "All numbers are simulated: bit-identical at every --jobs level.");

    const std::uint64_t ops = scaled_iters(400, 40);
    const int jobs = bench::bench_jobs(argc, argv);
    const std::vector<LockKind> kinds = all_lock_kinds();
    const std::size_t nk = kinds.size();

    // One cell per (level, lock); RH cells beyond two nodes stay empty.
    std::vector<KvOutcome> cells(kLevels.size() * nk);
    std::vector<bool> ran(cells.size(), false);
    exec::Executor executor(jobs);
    executor.run_batch(cells.size(), [&](std::size_t idx) {
        const Level& level = kLevels[idx / nk];
        const LockKind kind = kinds[idx % nk];
        if (!runs_at(kind, level))
            return;
        cells[idx] = run_kv_service(kind, level_config(level, ops));
        ran[idx] = true;
    });

    std::vector<std::string> headers = {"Lock"};
    for (const Level& level : kLevels)
        headers.push_back(level.name);
    stats::Table table(headers);
    for (std::size_t k = 0; k < nk; ++k) {
        auto& row = table.row().cell(lock_name(kinds[k]));
        for (std::size_t l = 0; l < kLevels.size(); ++l) {
            const std::size_t idx = l * nk + k;
            if (ran[idx])
                row.cell(cells[idx].bench.avg_iteration_ns, 0);
            else
                row.cell("-");
        }
    }
    table.print(std::cout);

    // Per-level verdicts: the winner a sharded KV store should pick, and
    // ADAPTIVE against its gear oracle — the best of the static gears it
    // can morph into (TATAS_EXP / HBO_GT / MCS), the docs/adaptive.md
    // envelope. The overall winner may be a lock outside that gear set
    // (RH, COHORT); that is the shootout's point, not an ADAPTIVE miss.
    std::cout << "\n";
    stats::Table verdict({"level", "best static", "ns/op", "gear oracle",
                          "ADAPTIVE", "vs oracle", "envelope", "local ho %",
                          "resizes"});
    const auto cell_ns = [&](std::size_t l, LockKind kind) {
        for (std::size_t k = 0; k < nk; ++k)
            if (kinds[k] == kind)
                return cells[l * nk + k].bench.avg_iteration_ns;
        return 0.0;
    };
    bool all_within = true;
    for (std::size_t l = 0; l < kLevels.size(); ++l) {
        double best = 0.0;
        std::size_t best_k = 0;
        for (std::size_t k = 0; k < nk; ++k) {
            const std::size_t idx = l * nk + k;
            if (!ran[idx] || kinds[k] == LockKind::Adaptive)
                continue;
            const double ns = cells[idx].bench.avg_iteration_ns;
            if (best == 0.0 || ns < best) {
                best = ns;
                best_k = k;
            }
        }
        const KvOutcome* adaptive = nullptr;
        for (std::size_t k = 0; k < nk; ++k)
            if (kinds[k] == LockKind::Adaptive)
                adaptive = &cells[l * nk + k];
        const double oracle =
            std::min(cell_ns(l, LockKind::TatasExp),
                     std::min(cell_ns(l, LockKind::HboGt),
                              cell_ns(l, LockKind::Mcs)));
        const double ratio =
            oracle == 0.0 ? 1.0 : adaptive->bench.avg_iteration_ns / oracle;
        const bool within = ratio <= 1.15;
        all_within = all_within && within;
        verdict.row()
            .cell(kLevels[l].name)
            .cell(lock_name(kinds[best_k]))
            .cell(best, 0)
            .cell(oracle, 0)
            .cell(adaptive->bench.avg_iteration_ns, 0)
            .cell(ratio, 3)
            .cell(within ? "ok" : "> +15%")
            .cell(100.0 * adaptive->structs.local_handover_fraction(), 1)
            .cell(adaptive->structs.resize_epochs);
    }
    verdict.print(std::cout);
    std::cout << (all_within
                      ? "ADAPTIVE within 15% of its gear oracle at every "
                        "level\n"
                      : "ADAPTIVE left the 15% envelope (see markers)\n");

    // Determinism pin: chain every executed cell's acquisition-order hash
    // in cell order. Identical at every --jobs level.
    std::uint64_t hash = 1469598103934665603ULL; // FNV-1a offset basis
    for (std::size_t idx = 0; idx < cells.size(); ++idx) {
        if (!ran[idx])
            continue;
        for (int shift = 0; shift < 64; shift += 8) {
            hash ^= (cells[idx].bench.acquisition_order_hash >> shift) & 0xffu;
            hash *= 1099511628211ULL;
        }
    }
    std::cout << "acq hash chain: 0x" << hash_hex(hash) << "\n";

    obs::ReportConfig rc;
    rc.tool = "bench_table_kv";
    rc.bench = "app-kv";
    rc.nodes = kLevels.front().nodes;
    rc.cpus_per_node = kLevels.front().cpus_per_node;
    rc.threads = kLevels.front().nodes * kLevels.front().cpus_per_node;
    rc.iterations = static_cast<std::uint32_t>(ops);
    rc.seed = 1;
    std::vector<obs::ReportRun> runs;
    for (std::size_t idx = 0; idx < cells.size(); ++idx) {
        if (!ran[idx])
            continue;
        obs::ReportRun run(std::string(lock_name(kinds[idx % nk])) + "@" +
                               kLevels[idx / nk].name,
                           cells[idx].bench, nullptr);
        run.structs = &cells[idx].structs;
        runs.push_back(run);
    }
    bench::maybe_write_json(rc, runs);
    return 0;
}
