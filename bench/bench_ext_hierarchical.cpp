/**
 * @file
 * Extension study: the paper's proposed hierarchical expansion of HBO
 * (section 4.1) on a two-level NUCA — nodes of CMP chips (the "future"
 * row of the paper's NUCA-ratio table). Compares HBO_HIER (three backoff
 * levels) with the two-level locks and reports chip-level handover
 * affinity.
 */
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "locks/any_lock.hpp"
#include "sim/engine.hpp"
#include "stats/table.hpp"

int
main()
{
    using namespace nucalock;
    using namespace nucalock::locks;
    using namespace nucalock::sim;

    bench::banner("Extension: hierarchical NUCA (CMP cluster)",
                  "2 nodes x 4 chips x 4 cpus, cheap on-chip transfers "
                  "(cmp_cluster latency\nmodel). Contended counter "
                  "increments; lower time and higher same-chip\nhandover "
                  "fraction are better. HBO_HIER adds a chip-level backoff "
                  "tier.");

    const std::vector<LockKind> kinds = {LockKind::TatasExp, LockKind::Clh,
                                         LockKind::HboGt, LockKind::HboGtSd,
                                         LockKind::HboHier};
    const auto iters = static_cast<std::uint32_t>(scaled_iters(100, 20));

    stats::Table table({"Lock Type", "Time (us/acq)", "Same-chip handover",
                        "Same-node handover", "Global tx/acq"});
    for (LockKind kind : kinds) {
        SimMachine machine(Topology::hierarchical(2, 4, 4),
                           LatencyModel::cmp_cluster());
        AnyLock<SimContext> lock(machine, kind);
        const MemRef data = machine.alloc_array(32, 0, 0);

        std::uint64_t acquires = 0;
        std::uint64_t same_chip = 0;
        std::uint64_t same_node = 0;
        int prev_chip = -1;
        int prev_node = -1;

        machine.add_threads(32, Placement::RoundRobinNodes,
                            [&](SimContext& ctx, int) {
                                for (std::uint32_t i = 0; i < iters; ++i) {
                                    lock.acquire(ctx);
                                    if (prev_chip == ctx.chip())
                                        ++same_chip;
                                    else if (prev_node == ctx.node())
                                        ++same_node;
                                    prev_chip = ctx.chip();
                                    prev_node = ctx.node();
                                    ++acquires;
                                    ctx.touch_array(data, 32, true);
                                    lock.release(ctx);
                                    ctx.delay(2000);
                                }
                            });
        machine.run();

        const auto acq = static_cast<double>(acquires);
        table.row()
            .cell(lock_name(kind))
            .cell(static_cast<double>(machine.now()) / acq / 1000.0, 2)
            .cell(static_cast<double>(same_chip) / acq, 3)
            .cell(static_cast<double>(same_node) / acq, 3)
            .cell(static_cast<double>(machine.traffic().global_tx) / acq, 1);
    }
    table.print(std::cout);
    return 0;
}
