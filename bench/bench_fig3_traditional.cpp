/**
 * @file
 * Regenerates the paper's Figure 3: the traditional microbenchmark on the
 * simulated 2-node WildFire. Left series: iteration time vs processor
 * count; right series: node-handoff ratio vs processor count. Threads are
 * bound round-robin across the two nodes, as in the paper.
 */
#include <iostream>

#include "bench_common.hpp"
#include "harness/traditional.hpp"
#include "stats/table.hpp"

int
main()
{
    using namespace nucalock;
    using namespace nucalock::harness;
    using namespace nucalock::locks;

    bench::banner("Figure 3",
                  "Traditional microbenchmark, 2-node WildFire, round-robin "
                  "thread binding.\nLeft: avg iteration time (ns/acquire); "
                  "right: node handoff ratio.\nPaper shape: NUCA-aware locks "
                  "~2x faster than queue locks at 8-10 cpus,\nwith "
                  "consistently low node handoffs; queue locks near "
                  "(N/2)/(N-1).");

    const std::vector<int> cpu_counts = {2, 4, 8, 12, 16, 20, 24, 28};
    const auto iters = static_cast<std::uint32_t>(scaled_iters(200, 20));

    stats::Table time_table([&] {
        std::vector<std::string> headers = {"Lock Type"};
        for (int n : cpu_counts)
            headers.push_back("t@" + std::to_string(n));
        return headers;
    }());
    stats::Table handoff_table([&] {
        std::vector<std::string> headers = {"Lock Type"};
        for (int n : cpu_counts)
            headers.push_back("h@" + std::to_string(n));
        return headers;
    }());

    for (LockKind kind : paper_lock_kinds()) {
        time_table.row().cell(lock_name(kind));
        handoff_table.row().cell(lock_name(kind));
        for (int n : cpu_counts) {
            TraditionalConfig config;
            config.threads = n;
            config.iterations_per_thread = iters;
            const BenchResult r = run_traditional(kind, config);
            time_table.cell(r.avg_iteration_ns, 0);
            handoff_table.cell(r.node_handoff_ratio, 3);
        }
    }

    std::cout << "Iteration time (ns per acquire-release):\n";
    time_table.print(std::cout);
    std::cout << "\nNode handoff ratio (handoffs per acquire):\n";
    handoff_table.print(std::cout);
    return 0;
}
