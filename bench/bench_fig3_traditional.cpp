/**
 * @file
 * Regenerates the paper's Figure 3: the traditional microbenchmark on the
 * simulated 2-node WildFire. Left series: iteration time vs processor
 * count; right series: node-handoff ratio vs processor count. Threads are
 * bound round-robin across the two nodes, as in the paper.
 */
#include <iostream>

#include "bench_common.hpp"
#include "exec/executor.hpp"
#include "harness/traditional.hpp"
#include "stats/table.hpp"

int
main(int argc, char** argv)
{
    using namespace nucalock;
    using namespace nucalock::harness;
    using namespace nucalock::locks;

    bench::banner("Figure 3",
                  "Traditional microbenchmark, 2-node WildFire, round-robin "
                  "thread binding.\nLeft: avg iteration time (ns/acquire); "
                  "right: node handoff ratio.\nPaper shape: NUCA-aware locks "
                  "~2x faster than queue locks at 8-10 cpus,\nwith "
                  "consistently low node handoffs; queue locks near "
                  "(N/2)/(N-1).");

    const std::vector<int> cpu_counts = {2, 4, 8, 12, 16, 20, 24, 28};
    const auto iters = static_cast<std::uint32_t>(scaled_iters(200, 20));

    stats::Table time_table([&] {
        std::vector<std::string> headers = {"Lock Type"};
        for (int n : cpu_counts)
            headers.push_back("t@" + std::to_string(n));
        return headers;
    }());
    stats::Table handoff_table([&] {
        std::vector<std::string> headers = {"Lock Type"};
        for (int n : cpu_counts)
            headers.push_back("h@" + std::to_string(n));
        return headers;
    }());

    // Fan the independent lock x cpu-count grid out across host threads
    // (--jobs=N, NUCALOCK_JOBS); fill tables sequentially in grid order so
    // the output is byte-identical at every --jobs level.
    const std::vector<LockKind> kinds = paper_lock_kinds();
    const std::size_t ncpu = cpu_counts.size();
    exec::Executor executor(bench::bench_jobs(argc, argv));
    const std::vector<BenchResult> results =
        executor.map<BenchResult>(kinds.size() * ncpu, [&](std::size_t idx) {
            TraditionalConfig config;
            config.threads = cpu_counts[idx % ncpu];
            config.iterations_per_thread = iters;
            return run_traditional(kinds[idx / ncpu], config);
        });

    for (std::size_t k = 0; k < kinds.size(); ++k) {
        time_table.row().cell(lock_name(kinds[k]));
        handoff_table.row().cell(lock_name(kinds[k]));
        for (std::size_t c = 0; c < ncpu; ++c) {
            const BenchResult& r = results[k * ncpu + c];
            time_table.cell(r.avg_iteration_ns, 0);
            handoff_table.cell(r.node_handoff_ratio, 3);
        }
    }

    std::cout << "Iteration time (ns per acquire-release):\n";
    time_table.print(std::cout);
    std::cout << "\nNode handoff ratio (handoffs per acquire):\n";
    handoff_table.print(std::cout);
    return 0;
}
