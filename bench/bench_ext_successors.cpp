/**
 * @file
 * Extension study: HBO against its intellectual descendants and the
 * array-lock baseline it skipped — COHORT (deterministic lock cohorting,
 * Dice/Marathe/Shavit 2012 lineage) and ANDERSON (the paper's reference
 * [1]) on the new microbenchmark. The question: how much of the cohort
 * lock's benefit did the 2003 backoff-probabilistic approach already
 * capture?
 */
#include <iostream>

#include "bench_common.hpp"
#include "harness/newbench.hpp"
#include "stats/table.hpp"

int
main()
{
    using namespace nucalock;
    using namespace nucalock::harness;
    using namespace nucalock::locks;

    bench::banner("Extension: successors and array-lock baseline",
                  "New microbenchmark, 28 cpus, critical work sweep. COHORT "
                  "= deterministic\nnode affinity with a fairness budget; "
                  "HBO_GT = this paper's probabilistic\naffinity; ANDERSON "
                  "= FIFO array lock.");

    const std::vector<std::uint32_t> critical_work = {250, 1000, 2000};
    const std::vector<LockKind> kinds = {LockKind::Anderson, LockKind::Clh,
                                         LockKind::HboGt, LockKind::HboGtSd,
                                         LockKind::Cohort, LockKind::Reactive};

    std::vector<std::string> headers = {"Lock Type"};
    for (auto cw : critical_work) {
        headers.push_back("t@" + std::to_string(cw));
        headers.push_back("g/acq@" + std::to_string(cw));
        headers.push_back("fair%@" + std::to_string(cw));
    }
    stats::Table table(headers);

    for (LockKind kind : kinds) {
        table.row().cell(lock_name(kind));
        for (std::uint32_t cw : critical_work) {
            NewBenchConfig config;
            config.threads = 28;
            config.critical_work = cw;
            config.iterations_per_thread =
                static_cast<std::uint32_t>(scaled_iters(60, 10));
            const BenchResult r = run_newbench(kind, config);
            table.cell(r.avg_iteration_ns, 0);
            table.cell(static_cast<double>(r.traffic.global_tx) /
                           static_cast<double>(r.total_acquires),
                       1);
            table.cell(r.fairness_spread_pct, 1);
        }
    }
    table.print(std::cout);
    return 0;
}
