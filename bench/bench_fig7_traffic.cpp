/**
 * @file
 * Regenerates the paper's Figure 7: the coherence-traffic story of the new
 * microbenchmark under full contention (28 cpus, 2-node WildFire,
 * critical_work = 1500). Where Table 2 reports only the local/global
 * totals, Figure 7 explains *where* the global transactions come from —
 * so this bench prints, per lock, the global transactions per acquisition
 * split by operation phase (acquire spin, handover, critical section,
 * release, gate maintenance), using the simulator's traffic-attribution
 * layer (sim/traffic.hpp).
 *
 * The paper's claim reproduced here: the HBO_GT family pays measurably
 * fewer global transactions per lock handover than TATAS or the queue
 * locks, because spinners throttled by a closed gate stop hammering the
 * remote lock word.
 */
#include <iostream>

#include "bench_common.hpp"
#include "exec/executor.hpp"
#include "harness/newbench.hpp"
#include "obs/metrics.hpp"
#include "stats/table.hpp"

int
main(int argc, char** argv)
{
    using namespace nucalock;
    using namespace nucalock::harness;
    using namespace nucalock::locks;

    bench::banner(
        "Figure 7",
        "Coherence traffic by lock-operation phase; new microbenchmark at\n"
        "full contention (28 cpus, critical_work=1500), all locks. Global\n"
        "transactions per acquisition, normalized to TATAS_EXP: the HBO_GT\n"
        "family spends far fewer global transactions per handover than\n"
        "TATAS or the queue locks.");

    const auto iters = static_cast<std::uint32_t>(scaled_iters(60, 10));

    // Every lock the repo implements (RH is fine: two nodes).
    const auto all = all_lock_kinds();
    const std::vector<LockKind> kinds(all.begin(), all.end());

    // Independent deterministic runs; byte-identical output at every
    // --jobs level (the table is filled in lock order afterwards).
    exec::Executor executor(bench::bench_jobs(argc, argv));
    const std::vector<BenchResult> results =
        executor.map<BenchResult>(kinds.size(), [&](std::size_t i) {
            NewBenchConfig config;
            config.threads = 28;
            config.iterations_per_thread = iters;
            config.critical_work = 1500;
            return run_newbench(kinds[i], config);
        });

    const auto fold = [](const BenchResult& r) {
        return obs::fold_traffic(r.traffic, r.traffic_attribution,
                                 r.contention, r.total_acquires, nullptr);
    };

    // Normalization base, as in Table 2.
    double base_global = 0.0;
    for (std::size_t i = 0; i < kinds.size(); ++i)
        if (kinds[i] == LockKind::TatasExp)
            base_global = fold(results[i]).global_tx_per_acquisition();

    stats::Table table({"Lock", "local/acq", "global/acq", "vs TATAS_EXP",
                        "g spin", "g handover", "g critical", "g release",
                        "g gate", "link util %"});
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        const obs::TrafficMetrics tm = fold(results[i]);
        const double acq = tm.acquisitions == 0
                               ? 1.0
                               : static_cast<double>(tm.acquisitions);
        const auto phase_global = [&](sim::TxPhase p) {
            std::uint64_t g = 0;
            for (const obs::LockTrafficView& lock : tm.locks)
                g += lock.tx.phase(p).global_tx;
            return static_cast<double>(g) / acq;
        };
        table.row()
            .cell(lock_name(kinds[i]))
            .cell(tm.local_tx_per_acquisition(), 2)
            .cell(tm.global_tx_per_acquisition(), 2)
            .cell(base_global == 0.0
                      ? 0.0
                      : tm.global_tx_per_acquisition() / base_global,
                  2)
            .cell(phase_global(sim::TxPhase::AcquireSpin), 2)
            .cell(phase_global(sim::TxPhase::Handover), 2)
            .cell(phase_global(sim::TxPhase::Critical), 2)
            .cell(phase_global(sim::TxPhase::Release), 2)
            .cell(phase_global(sim::TxPhase::GatePublish), 2)
            .cell(100.0 * tm.link_utilization, 1);
    }
    std::cout << "Global coherence transactions per acquisition, by phase\n"
                 "(g columns are global tx/acquisition spent in that "
                 "phase):\n";
    table.print(std::cout);

    obs::ReportConfig rc;
    rc.tool = "bench_fig7_traffic";
    rc.bench = "new";
    rc.nodes = 2;
    rc.cpus_per_node = 14;
    rc.threads = 28;
    rc.critical_work = 1500;
    rc.private_work = 4000;
    rc.iterations = iters;
    rc.seed = 1;
    std::vector<obs::ReportRun> runs;
    for (std::size_t i = 0; i < kinds.size(); ++i)
        runs.push_back(
            obs::ReportRun{lock_name(kinds[i]), results[i], nullptr});
    bench::maybe_write_json(rc, runs);
    return 0;
}
