/**
 * @file
 * Regenerates the paper's Table 1: uncontested acquire-release latency for
 * the three previous-owner scenarios (same processor / same node / remote
 * node) on the simulated 2-node WildFire, for all lock algorithms.
 */
#include <iostream>

#include "bench_common.hpp"
#include "harness/uncontested.hpp"
#include "stats/table.hpp"

int
main()
{
    using namespace nucalock;
    using namespace nucalock::harness;
    using namespace nucalock::locks;

    bench::banner("Table 1",
                  "Uncontested performance for a single acquire-release "
                  "operation (ns),\nsimulated 2-node WildFire. Paper values: "
                  "TATAS 150/660/2050, RH remote 4480.");

    UncontestedConfig config;
    config.iterations =
        static_cast<std::uint32_t>(scaled_iters(1000, 50));

    stats::Table table({"Lock Type", "Same Processor (ns)", "Same Node (ns)",
                        "Remote Node (ns)"});
    for (LockKind kind : all_lock_kinds()) {
        const UncontestedResult r = run_uncontested(kind, config);
        table.row()
            .cell(lock_name(kind))
            .cell(r.same_processor_ns, 0)
            .cell(r.same_node_ns, 0)
            .cell(r.remote_node_ns, 0);
    }
    table.print(std::cout);
    return 0;
}
