/**
 * @file
 * ADAPTIVE contention ramp: the online-adaptive lock against an oracle
 * that picks the best static gear at every contention level.
 *
 * The ramp sweeps critical-section length (longer holds => more waiters
 * piled on the lock word => more contention) on the 2-node 28-cpu
 * WildFire, running each static gear candidate — TATAS_EXP (the low-
 * contention gear), HBO_GT (the NUCA-contended gear) and MCS (the queue
 * gear) — plus ADAPTIVE at each level. The oracle column is the best
 * static ns/acquire at that level; the headline is ADAPTIVE's ratio to
 * it, with a "> +15%" marker where the adaptive lock leaves the target
 * envelope (docs/adaptive.md).
 *
 * Everything here is simulated, so results are bit-identical run to run
 * and at every --jobs level; the acquisition-order hash chain printed at
 * the bottom pins that. With NUCALOCK_BENCH_JSON set, writes a
 * nucalock-bench-report v4 document whose ADAPTIVE runs carry the
 * "adaptive" gear-telemetry object; the report contains no host object,
 * so the file is byte-identical at every --jobs level too.
 */
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "exec/executor.hpp"
#include "harness/newbench.hpp"
#include "obs/metrics.hpp"
#include "stats/table.hpp"

namespace {

using namespace nucalock;
using namespace nucalock::harness;
using namespace nucalock::locks;

/** The static gear candidates the oracle may pick, then ADAPTIVE. */
const std::vector<LockKind> kKinds = {LockKind::TatasExp, LockKind::HboGt,
                                      LockKind::Mcs, LockKind::Adaptive};

/** Contention ramp: critical-section work per acquisition. */
const std::vector<std::uint32_t> kLevels = {0, 250, 1000, 2500};

struct CellRun
{
    BenchResult result;
    /** Finalized registry (ADAPTIVE cells only; nullptr otherwise). */
    std::unique_ptr<obs::MetricsRegistry> metrics;
};

NewBenchConfig
level_config(std::uint32_t critical_work, std::uint32_t iters)
{
    NewBenchConfig config;
    config.threads = 28;
    config.critical_work = critical_work;
    config.iterations_per_thread = iters;
    return config;
}

std::string
hash_hex(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(h));
    return std::string(buf);
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner(
        "ADAPTIVE contention ramp",
        "ns/acquire across a critical-work ramp (2-node, 28-cpu WildFire)\n"
        "for the static gears TATAS_EXP / HBO_GT / MCS and the online-\n"
        "adaptive ADAPTIVE lock. 'oracle' is the best static lock at each\n"
        "level; ADAPTIVE should stay within 15% of it everywhere. All\n"
        "numbers are simulated: bit-identical at every --jobs level.");

    const auto iters = static_cast<std::uint32_t>(scaled_iters(60, 10));
    const int jobs = bench::bench_jobs(argc, argv);

    // One cell per (level, lock), levels outermost so the report reads as
    // the ramp. ADAPTIVE cells carry a metrics registry so the report's
    // "adaptive" object (and the gear summary below) can be emitted.
    const std::size_t nk = kKinds.size();
    std::vector<CellRun> cells(kLevels.size() * nk);
    exec::Executor executor(jobs);
    executor.run_batch(cells.size(), [&](std::size_t idx) {
        CellRun& cell = cells[idx];
        const LockKind kind = kKinds[idx % nk];
        NewBenchConfig config =
            level_config(kLevels[idx / nk], iters);
        if (kind == LockKind::Adaptive) {
            cell.metrics = std::make_unique<obs::MetricsRegistry>();
            config.probe = cell.metrics.get();
        }
        cell.result = run_newbench(kind, config);
        if (cell.metrics)
            cell.metrics->finalize();
    });

    stats::Table table({"crit work", "TATAS_EXP", "HBO_GT", "MCS", "oracle",
                        "ADAPTIVE", "vs oracle", "envelope"});
    bool all_within = true;
    for (std::size_t l = 0; l < kLevels.size(); ++l) {
        const double tatas = cells[l * nk + 0].result.avg_iteration_ns;
        const double hbo = cells[l * nk + 1].result.avg_iteration_ns;
        const double mcs = cells[l * nk + 2].result.avg_iteration_ns;
        const double adaptive = cells[l * nk + 3].result.avg_iteration_ns;
        const double oracle = std::min(tatas, std::min(hbo, mcs));
        const double ratio = oracle == 0.0 ? 1.0 : adaptive / oracle;
        const bool within = ratio <= 1.15;
        all_within = all_within && within;
        table.row()
            .cell(static_cast<std::uint64_t>(kLevels[l]))
            .cell(tatas, 0)
            .cell(hbo, 0)
            .cell(mcs, 0)
            .cell(oracle, 0)
            .cell(adaptive, 0)
            .cell(ratio, 3)
            .cell(within ? "ok" : "> +15%");
    }
    table.print(std::cout);
    std::cout << (all_within
                      ? "ADAPTIVE within 15% of the oracle at every level\n"
                      : "ADAPTIVE left the 15% envelope (see markers)\n");

    // ADAPTIVE gear telemetry per level, from the AdaptSwitch fold.
    for (std::size_t l = 0; l < kLevels.size(); ++l) {
        const obs::LockMetrics* m = cells[l * nk + 3].metrics->primary();
        if (m == nullptr || !m->adapt_seen)
            continue;
        const double total =
            static_cast<double>(m->gear_residency_ns[0] +
                                m->gear_residency_ns[1] +
                                m->gear_residency_ns[2]);
        std::printf("cw=%u: %llu gear switch(es); residency tatas %d%%, "
                    "hbo %d%%, queue %d%%\n",
                    kLevels[l],
                    static_cast<unsigned long long>(m->adapt_switches),
                    total == 0.0 ? 0
                                 : static_cast<int>(
                                       100.0 *
                                           static_cast<double>(
                                               m->gear_residency_ns[0]) /
                                           total +
                                       0.5),
                    total == 0.0 ? 0
                                 : static_cast<int>(
                                       100.0 *
                                           static_cast<double>(
                                               m->gear_residency_ns[1]) /
                                           total +
                                       0.5),
                    total == 0.0 ? 0
                                 : static_cast<int>(
                                       100.0 *
                                           static_cast<double>(
                                               m->gear_residency_ns[2]) /
                                           total +
                                       0.5));
    }

    // Determinism pin: chain every cell's acquisition-order hash in cell
    // order. The chain is identical at every --jobs level.
    std::uint64_t hash = 1469598103934665603ULL; // FNV-1a offset basis
    for (const CellRun& cell : cells)
        for (int shift = 0; shift < 64; shift += 8) {
            hash ^= (cell.result.acquisition_order_hash >> shift) & 0xffu;
            hash *= 1099511628211ULL;
        }
    std::cout << "acq hash chain: 0x" << hash_hex(hash) << "\n";

    obs::ReportConfig rc;
    rc.tool = "bench_adaptive_ramp";
    rc.bench = "new";
    rc.nodes = 2;
    rc.cpus_per_node = 14;
    rc.threads = 28;
    rc.critical_work = kLevels.back();
    rc.private_work = 4000;
    rc.iterations = iters;
    rc.seed = 1;
    std::vector<obs::ReportRun> runs;
    for (std::size_t idx = 0; idx < cells.size(); ++idx) {
        const std::string name =
            std::string(lock_name(kKinds[idx % nk])) + "@cw=" +
            std::to_string(kLevels[idx / nk]);
        runs.push_back(obs::ReportRun{name, cells[idx].result,
                                      cells[idx].metrics.get()});
    }
    bench::maybe_write_json(rc, runs);
    return 0;
}
