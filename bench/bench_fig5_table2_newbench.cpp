/**
 * @file
 * Regenerates the paper's Figure 5 and Table 2: the new microbenchmark on
 * the simulated 2-node WildFire with 28 processors. Figure 5 sweeps the
 * critical work (shared-vector elements modified per critical section);
 * Table 2 reports local/global coherence traffic at critical_work = 1500,
 * normalized to TATAS_EXP.
 */
#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "exec/executor.hpp"
#include "harness/newbench.hpp"
#include "stats/table.hpp"

int
main(int argc, char** argv)
{
    using namespace nucalock;
    using namespace nucalock::harness;
    using namespace nucalock::locks;

    bench::banner("Figure 5 + Table 2",
                  "New microbenchmark, 28 cpus on a 2-node WildFire.\n"
                  "Fig 5: iteration time and node handoff vs critical work; "
                  "NUCA locks improve\nwith contention. Table 2 (paper): "
                  "MCS/CLH ~0.65x global traffic of TATAS_EXP,\nNUCA locks "
                  "~0.3x, TATAS ~4.7x.");

    const std::vector<std::uint32_t> critical_work = {0,    250,  500, 1000,
                                                      1500, 2000, 2500};
    const auto iters = static_cast<std::uint32_t>(scaled_iters(60, 10));

    stats::Table time_table([&] {
        std::vector<std::string> headers = {"Lock Type"};
        for (auto cw : critical_work)
            headers.push_back("t@" + std::to_string(cw));
        return headers;
    }());
    stats::Table handoff_table([&] {
        std::vector<std::string> headers = {"Lock Type"};
        for (auto cw : critical_work)
            headers.push_back("h@" + std::to_string(cw));
        return headers;
    }());

    // Full results at critical_work = 1500: Table 2's traffic, and the
    // headline runs for the optional NUCALOCK_BENCH_JSON report.
    std::map<LockKind, BenchResult> result_at_1500;

    // The whole lock x critical-work grid is independent deterministic
    // runs: fan it out across host threads (--jobs=N, NUCALOCK_JOBS) and
    // fill the tables sequentially in grid order, so the output is
    // byte-identical at every --jobs level.
    const std::vector<LockKind> kinds = paper_lock_kinds();
    const std::size_t ncw = critical_work.size();
    exec::Executor executor(bench::bench_jobs(argc, argv));
    const std::vector<BenchResult> results =
        executor.map<BenchResult>(kinds.size() * ncw, [&](std::size_t idx) {
            // The paper only measures plain TATAS up to ~1300 because its
            // performance collapses; we run it everywhere but flag it.
            NewBenchConfig config;
            config.threads = 28;
            config.iterations_per_thread = iters;
            config.critical_work = critical_work[idx % ncw];
            return run_newbench(kinds[idx / ncw], config);
        });

    for (std::size_t k = 0; k < kinds.size(); ++k) {
        time_table.row().cell(lock_name(kinds[k]));
        handoff_table.row().cell(lock_name(kinds[k]));
        for (std::size_t c = 0; c < ncw; ++c) {
            const BenchResult& r = results[k * ncw + c];
            time_table.cell(r.avg_iteration_ns, 0);
            handoff_table.cell(r.node_handoff_ratio, 3);
            if (critical_work[c] == 1500)
                result_at_1500[kinds[k]] = r;
        }
    }

    std::cout << "Iteration time (ns per acquire-release):\n";
    time_table.print(std::cout);
    std::cout << "\nNode handoff ratio:\n";
    handoff_table.print(std::cout);

    const sim::TrafficStats& base = result_at_1500.at(LockKind::TatasExp).traffic;
    stats::Table traffic_table(
        {"Lock Type", "Local Transactions", "Global Transactions"});
    for (LockKind kind : paper_lock_kinds()) {
        const sim::TrafficStats& t = result_at_1500.at(kind).traffic;
        traffic_table.row()
            .cell(lock_name(kind))
            .cell(static_cast<double>(t.local_tx) /
                      static_cast<double>(base.local_tx),
                  2)
            .cell(static_cast<double>(t.global_tx) /
                      static_cast<double>(base.global_tx),
                  2);
    }
    std::cout << "\nTable 2: traffic at critical_work=1500, normalized to "
                 "TATAS_EXP\n(TATAS_EXP absolute: local="
              << base.local_tx << " global=" << base.global_tx << "):\n";
    traffic_table.print(std::cout);

    obs::ReportConfig rc;
    rc.tool = "bench_fig5_table2_newbench";
    rc.bench = "new";
    rc.nodes = 2;
    rc.cpus_per_node = 14;
    rc.threads = 28;
    rc.critical_work = 1500;
    rc.private_work = 4000;
    rc.iterations = iters;
    rc.seed = 1;
    std::vector<obs::ReportRun> runs;
    for (LockKind kind : paper_lock_kinds())
        runs.push_back(
            obs::ReportRun{lock_name(kind), result_at_1500.at(kind), nullptr});
    bench::maybe_write_json(rc, runs);
    return 0;
}
