/**
 * @file
 * Regenerates the paper's Table 6: local/global coherence traffic of the
 * seven studied application models for all eight locking algorithms,
 * normalized to TATAS_EXP (absolute TATAS_EXP counts shown in parens).
 */
#include <iostream>

#include "apps/app_runner.hpp"
#include "bench_common.hpp"
#include "stats/table.hpp"

int
main()
{
    using namespace nucalock;
    using namespace nucalock::apps;
    using namespace nucalock::locks;

    bench::banner("Table 6",
                  "Normalized traffic (local/global) for the application "
                  "models, 28 cpus.\nPaper shape: NUCA-aware locks cut "
                  "global traffic ~15-50% on Raytrace and\nRadiosity; "
                  "little change for the low-contention programs.");

    AppRunConfig config;
    config.threads = 28;
    config.call_scale = 0.02 * bench_scale();
    const int runs = 2;

    const auto locks = paper_lock_kinds();
    std::vector<std::string> headers = {"Program"};
    for (LockKind kind : locks)
        headers.push_back(lock_name(kind));
    stats::Table table(headers);

    for (const AppWorkload& app : studied_apps()) {
        table.row().cell(app.name);
        std::vector<AppAggregate> row;
        for (LockKind kind : locks)
            row.push_back(run_app(app, kind, config, runs));
        const double base_local = row[1].mean_local_tx;   // TATAS_EXP
        const double base_global = row[1].mean_global_tx; // TATAS_EXP
        for (std::size_t i = 0; i < locks.size(); ++i) {
            std::string cell =
                stats::format_double(row[i].mean_local_tx / base_local, 2) +
                " / " +
                stats::format_double(row[i].mean_global_tx / base_global, 2);
            if (i == 1) {
                cell += " (" +
                        stats::format_double(base_local / 1e6, 2) + "M/" +
                        stats::format_double(base_global / 1e6, 2) + "M)";
            }
            table.cell(cell);
        }
    }
    table.print(std::cout);
    return 0;
}
