/**
 * @file
 * Regenerates the paper's Table 4 and Figure 7: Raytrace execution time for
 * 1-, 28-, and 30-cpu runs (the 30-cpu runs are multiprogrammed — OS
 * preemption injection on — which is what breaks the queue locks), plus the
 * speedup curve from 1 to 28 cpus.
 */
#include <iostream>

#include "apps/app_runner.hpp"
#include "bench_common.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace {

using namespace nucalock;
using namespace nucalock::apps;
using namespace nucalock::locks;

/** Mean/variance of the Raytrace model over seeds at a given cpu count. */
std::pair<double, double>
raytrace_time(LockKind kind, int threads, bool preemption, double scale,
              int runs)
{
    stats::Summary times;
    for (int r = 0; r < runs; ++r) {
        RaytraceConfig config;
        // 30-cpu runs use both full 15-cpu nodes; smaller runs use the
        // paper's 14+14 configuration.
        config.topology = Topology::wildfire(threads > 28 ? 15 : 14);
        config.threads = threads;
        config.total_tasks = static_cast<std::uint32_t>(
            static_cast<double>(app_by_name("Raytrace").lock_calls) * scale / 2.0);
        config.seed = 11 + static_cast<std::uint64_t>(r) * 7919;
        config.preemption = preemption;
        const AppOutcome outcome = run_raytrace_once(kind, config);
        times.add(static_cast<double>(outcome.time) / 1e9);
    }
    return {times.mean(), times.sample_variance()};
}

} // namespace

int
main()
{
    bench::banner("Table 4 + Figure 7",
                  "Raytrace model: execution time (simulated s, variance in "
                  "parens) for 1, 28\nand 30 cpus — 30-cpu runs are "
                  "multiprogrammed (preemption injection), which\nis what "
                  "makes MCS/CLH collapse in the paper (>200 s). Then the "
                  "speedup curve.\nPaper: RH 0.62s / HBO family ~0.7-0.8s vs "
                  "TATAS_EXP 1.71s and MCS/CLH ~1.4s\nat 28 cpus.");

    const double scale = 0.02 * bench_scale();
    const int runs = 3;

    stats::Table table4({"Lock Type", "1 CPU", "28 CPUs", "30 CPUs (preempt)"});
    for (LockKind kind : paper_lock_kinds()) {
        const auto t1 = raytrace_time(kind, 1, false, scale, 1);
        const auto t28 = raytrace_time(kind, 28, false, scale, runs);
        const auto t30 = raytrace_time(kind, 30, true, scale, runs);
        table4.row()
            .cell(lock_name(kind))
            .cell(stats::format_double(t1.first, 3))
            .cell(stats::format_double(t28.first, 3) + " (" +
                  stats::format_double(t28.second, 4) + ")")
            .cell(stats::format_double(t30.first, 3) + " (" +
                  stats::format_double(t30.second, 4) + ")");
    }
    table4.print(std::cout);

    std::cout << "\nFigure 7: Raytrace speedup vs cpu count (T1/Tp):\n";
    const std::vector<int> cpu_counts = {1, 2, 4, 8, 12, 16, 20, 24, 28};
    std::vector<std::string> headers = {"Lock Type"};
    for (int n : cpu_counts)
        headers.push_back("s@" + std::to_string(n));
    stats::Table fig7(headers);
    for (LockKind kind : paper_lock_kinds()) {
        fig7.row().cell(lock_name(kind));
        const double t1 = raytrace_time(kind, 1, false, scale, 1).first;
        for (int n : cpu_counts) {
            const double tn =
                n == 1 ? t1 : raytrace_time(kind, n, false, scale, 1).first;
            fig7.cell(t1 / tn, 2);
        }
    }
    fig7.print(std::cout);
    return 0;
}
