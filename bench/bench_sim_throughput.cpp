/**
 * @file
 * Tracked simulator-throughput benchmark: how fast the discrete-event
 * engine itself runs on this host, independent of any paper figure.
 *
 * Three probes on the 2-node 28-cpu WildFire:
 *
 *  - TATAS  — spin-heavy: dominated by memory-event processing and the
 *             run_timed() ready queue (the hot paths of the engine
 *             overhaul),
 *  - MCS    — queue lock: dominated by watcher wakeups and fiber context
 *             switches,
 *  - SWEEP  — the Figure 5 lock x critical-work grid fanned out over
 *             exec::Executor (--jobs=N / NUCALOCK_JOBS), the shape the
 *             host-parallel executor exists for.
 *
 * Plus the big-topology scaling table (--shape=NxC[,NxC...], default
 * 2x14,4x32,16x64,64x16): one MCS run per shape with equal total work,
 * tracking whether per-event cost stays flat as simulated CPUs go
 * 28 -> 1024 (docs/performance.md, "big-topology engine").
 *
 * Reported metrics are simulated memory operations and fiber switches per
 * host second. The simulated results stay bit-identical run to run (the
 * acquisition-order hashes are printed so a trajectory diff catches any
 * drift); only the host wall-clock numbers vary. With NUCALOCK_BENCH_JSON
 * set, writes a nucalock-bench-report document whose per-run "host"
 * object carries the throughput numbers (the only nondeterministic part of
 * the report).
 */
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "exec/executor.hpp"
#include "harness/newbench.hpp"
#include "harness/options.hpp"
#include "stats/table.hpp"

namespace {

using namespace nucalock;
using namespace nucalock::harness;
using namespace nucalock::locks;

using Clock = std::chrono::steady_clock;

/** One throughput measurement: the (deterministic) simulated result plus
 *  the (host-dependent) wall-clock rates. */
struct Measured
{
    BenchResult result;
    obs::HostStats host;
};

obs::HostStats
rates_of(const BenchResult& result, Clock::duration elapsed, int jobs)
{
    obs::HostStats host;
    host.valid = true;
    host.wall_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
    const double secs = host.wall_ns / 1e9;
    if (secs > 0.0) {
        host.events_per_sec =
            static_cast<double>(result.sim_memory_accesses) / secs;
        host.switches_per_sec =
            static_cast<double>(result.sim_fiber_switches) / secs;
    }
    host.jobs = jobs;
    return host;
}

NewBenchConfig
base_config(std::uint32_t critical_work, std::uint32_t iters)
{
    NewBenchConfig config;
    config.threads = 28;
    config.critical_work = critical_work;
    config.iterations_per_thread = iters;
    return config;
}

/** Single sequential engine run — the "is the engine itself fast" probe. */
Measured
measure_single(LockKind kind, std::uint32_t critical_work,
               std::uint32_t iters)
{
    const NewBenchConfig config = base_config(critical_work, iters);
    const Clock::time_point t0 = Clock::now();
    Measured m;
    m.result = run_newbench(kind, config);
    m.host = rates_of(m.result, Clock::now() - t0, 1);
    return m;
}

/**
 * One scaling-table run: MCS on an NxC symmetric machine, every cpu
 * occupied, with the iteration count scaled so every shape performs the
 * same TOTAL number of acquisitions (the per-thread count of the 1024-cpu
 * shape times 1024/cpus). Equal totals mean equal sampling windows: a
 * fixed per-thread count would give the 28-cpu row a ~1 ms run whose
 * events/sec is dominated by warm caches and setup amortization rather
 * than the steady-state per-event cost the table exists to compare. MCS
 * is the shape-sensitive pick: every blocked thread parks a watcher on
 * its own queue-node line, so big shapes exercise exactly the structures
 * the big-topology engine reworked (watcher lists, ready-queue storms,
 * per-thread hot state) rather than serializing on one test-and-set word.
 *
 * The workload is the paper's Figure 4 microbenchmark at its default
 * critical/private work, so the event mix matches what real runs hosted
 * by this engine look like. A handover-dominated stress variant (tiny
 * critical sections, every few events a switch to a cold thread) pays a
 * further ~10% per event at 1024 threads from host cache misses that
 * prefetching cannot fully hide; docs/performance.md quantifies it.
 *
 * Each shape runs three times and reports the fastest wall time: the
 * simulated result is bit-identical every repetition (asserted), so the
 * repetitions only shrink host-scheduling noise.
 *
 * The wall time used is BenchResult::host_run_ns — the engine's run loop
 * alone. Whole-process timing would fold machine construction (1024
 * fibers, a quarter gigabyte of stacks, a 64-node memory arena) into the
 * big shapes' per-event cost; that is allocator throughput, not the
 * scaling property this table tracks.
 */
Measured
measure_scale(const ShapeSpec& shape, std::uint32_t iters)
{
    constexpr int kReps = 3;
    constexpr int kReferenceCpus = 1024;
    NewBenchConfig config;
    config.topology =
        Topology::symmetric(shape.nodes, shape.cpus_per_node);
    config.threads = shape.total_cpus();
    config.iterations_per_thread = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(iters) *
        static_cast<std::uint64_t>(kReferenceCpus) /
        static_cast<std::uint64_t>(
            std::max(shape.total_cpus(), 1)));
    if (config.iterations_per_thread < iters)
        config.iterations_per_thread = iters;
    Measured m;
    double best_ns = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
        BenchResult result = run_newbench(LockKind::Mcs, config);
        if (rep == 0) {
            m.result = result;
            best_ns = result.host_run_ns;
        } else {
            if (result.acquisition_order_hash !=
                m.result.acquisition_order_hash) {
                std::fprintf(stderr,
                             "SCALE %dx%d: nondeterministic rerun\n",
                             shape.nodes, shape.cpus_per_node);
                std::exit(1);
            }
            best_ns = std::min(best_ns, result.host_run_ns);
        }
    }
    m.host = rates_of(
        m.result,
        std::chrono::nanoseconds(static_cast<std::int64_t>(best_ns)), 1);
    return m;
}

/** The Figure 5 grid through the executor — the "does --jobs scale" probe.
 *  The aggregate result sums the per-run engine counters; the hash chains
 *  the per-run hashes in grid order so drift in any cell shows up. */
Measured
measure_sweep(std::uint32_t iters, int jobs)
{
    const std::vector<LockKind> kinds = paper_lock_kinds();
    const std::vector<std::uint32_t> critical_work = {0,    250,  500, 1000,
                                                      1500, 2000, 2500};
    const std::size_t ncw = critical_work.size();

    exec::Executor executor(jobs);
    const Clock::time_point t0 = Clock::now();
    const std::vector<BenchResult> results =
        executor.map<BenchResult>(kinds.size() * ncw, [&](std::size_t idx) {
            return run_newbench(
                kinds[idx / ncw],
                base_config(critical_work[idx % ncw], iters));
        });
    const Clock::duration elapsed = Clock::now() - t0;

    Measured m;
    std::uint64_t hash = 1469598103934665603ULL; // FNV-1a offset basis
    for (const BenchResult& r : results) {
        m.result.total_time += r.total_time;
        m.result.total_acquires += r.total_acquires;
        m.result.sim_memory_accesses += r.sim_memory_accesses;
        m.result.sim_fiber_switches += r.sim_fiber_switches;
        for (int shift = 0; shift < 64; shift += 8) {
            hash ^= (r.acquisition_order_hash >> shift) & 0xffu;
            hash *= 1099511628211ULL;
        }
    }
    m.result.acquisition_order_hash = hash;
    m.result.avg_iteration_ns =
        m.result.total_acquires == 0
            ? 0.0
            : static_cast<double>(m.result.total_time) /
                  static_cast<double>(m.result.total_acquires);
    m.host = rates_of(m.result, elapsed, executor.jobs());
    return m;
}

void
print_row(stats::Table& table, const std::string& name, const Measured& m)
{
    table.row()
        .cell(name)
        .cell(m.host.jobs)
        .cell(m.host.wall_ns / 1e6, 1)
        .cell(m.host.events_per_sec / 1e6, 2)
        .cell(m.host.switches_per_sec / 1e6, 3)
        .cell("0x" + [](std::uint64_t h) {
            char buf[17];
            std::snprintf(buf, sizeof buf, "%016llx",
                          static_cast<unsigned long long>(h));
            return std::string(buf);
        }(m.result.acquisition_order_hash));
}

/** --shape=NxC[,NxC...] from argv; exits on a malformed value. */
std::vector<ShapeSpec>
scale_shapes(int argc, char** argv)
{
    std::string spec = "2x14,4x32,16x64,64x16";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--shape=", 0) == 0)
            spec = arg.substr(8);
    }
    const auto shapes = parse_shape_list(spec);
    if (!shapes) {
        std::fprintf(stderr, "bad --shape '%s' (want NxC[,NxC...])\n",
                     spec.c_str());
        std::exit(2);
    }
    for (const ShapeSpec& s : *shapes) {
        if (s.nodes > sim::SimMemory::kMaxNodes ||
            s.total_cpus() > sim::SimMemory::kMaxCpus) {
            std::fprintf(stderr,
                         "shape %dx%d exceeds the simulator's limits "
                         "(%d nodes, %d cpus)\n",
                         s.nodes, s.cpus_per_node, sim::SimMemory::kMaxNodes,
                         sim::SimMemory::kMaxCpus);
            std::exit(2);
        }
    }
    return *shapes;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner(
        "Simulator throughput",
        "Engine events and fiber switches per host second. TATAS/MCS run\n"
        "sequentially on the 2-node 28-cpu WildFire and track the engine\n"
        "hot paths; SWEEP fans the Figure 5 grid out over --jobs host\n"
        "threads (default: NUCALOCK_JOBS, else hardware concurrency); the\n"
        "SCALE rows run MCS with equal total work at each\n"
        "--shape=NxC[,NxC...] (default 2x14,4x32,16x64,64x16) — flat-to-\n"
        "rising Mevents/s down the rows is the big-topology engine's\n"
        "success metric. Hashes are bit-identical at every --jobs level.");

    const auto iters = static_cast<std::uint32_t>(scaled_iters(60, 10));
    const auto scale_iters = static_cast<std::uint32_t>(scaled_iters(20, 4));
    const int jobs = bench::bench_jobs(argc, argv);
    const std::vector<ShapeSpec> shapes = scale_shapes(argc, argv);

    // TATAS at cw=0 maximizes spinning (ready-queue + memory-event load);
    // MCS at cw=1500 maximizes blocking handovers (watcher + switch load).
    const Measured tatas = measure_single(LockKind::Tatas, 0, iters);
    const Measured mcs = measure_single(LockKind::Mcs, 1500, iters);
    const Measured sweep = measure_sweep(iters, jobs);
    std::vector<Measured> scaled;
    scaled.reserve(shapes.size());
    for (const ShapeSpec& shape : shapes)
        scaled.push_back(measure_scale(shape, scale_iters));

    stats::Table table({"Shape", "jobs", "wall ms", "Mevents/s",
                        "Mswitches/s", "acq hash"});
    print_row(table, "TATAS cw=0", tatas);
    print_row(table, "MCS cw=1500", mcs);
    print_row(table, "SWEEP fig5", sweep);
    for (std::size_t i = 0; i < shapes.size(); ++i) {
        const std::string name = "SCALE " + std::to_string(shapes[i].nodes) +
                                 "x" +
                                 std::to_string(shapes[i].cpus_per_node);
        print_row(table, name, scaled[i]);
    }
    table.print(std::cout);

    obs::ReportConfig rc;
    rc.tool = "bench_sim_throughput";
    rc.bench = "new";
    rc.nodes = 2;
    rc.cpus_per_node = 14;
    rc.threads = 28;
    rc.critical_work = 1500;
    rc.private_work = 4000;
    rc.iterations = iters;
    rc.seed = 1;
    std::vector<obs::ReportRun> runs;
    runs.push_back(obs::ReportRun{"TATAS", tatas.result, nullptr});
    runs.back().host = tatas.host;
    runs.push_back(obs::ReportRun{"MCS", mcs.result, nullptr});
    runs.back().host = mcs.host;
    runs.push_back(obs::ReportRun{"SWEEP", sweep.result, nullptr});
    runs.back().host = sweep.host;
    for (std::size_t i = 0; i < shapes.size(); ++i) {
        const std::string name = "SCALE " + std::to_string(shapes[i].nodes) +
                                 "x" +
                                 std::to_string(shapes[i].cpus_per_node);
        runs.push_back(obs::ReportRun{name, scaled[i].result, nullptr});
        runs.back().host = scaled[i].host;
    }
    bench::maybe_write_json(rc, runs);
    return 0;
}
