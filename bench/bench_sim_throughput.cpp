/**
 * @file
 * Tracked simulator-throughput benchmark: how fast the discrete-event
 * engine itself runs on this host, independent of any paper figure.
 *
 * Three shapes, all on the 2-node 28-cpu WildFire:
 *
 *  - TATAS  — spin-heavy: dominated by memory-event processing and the
 *             run_timed() ready queue (the hot paths of the engine
 *             overhaul),
 *  - MCS    — queue lock: dominated by watcher wakeups and fiber context
 *             switches,
 *  - SWEEP  — the Figure 5 lock x critical-work grid fanned out over
 *             exec::Executor (--jobs=N / NUCALOCK_JOBS), the shape the
 *             host-parallel executor exists for.
 *
 * Reported metrics are simulated memory operations and fiber switches per
 * host second. The simulated results stay bit-identical run to run (the
 * acquisition-order hashes are printed so a trajectory diff catches any
 * drift); only the host wall-clock numbers vary. With NUCALOCK_BENCH_JSON
 * set, writes a nucalock-bench-report v1 document whose per-run "host"
 * object carries the throughput numbers (the only nondeterministic part of
 * the report).
 */
#include <chrono>
#include <cstdint>
#include <iostream>

#include "bench_common.hpp"
#include "exec/executor.hpp"
#include "harness/newbench.hpp"
#include "stats/table.hpp"

namespace {

using namespace nucalock;
using namespace nucalock::harness;
using namespace nucalock::locks;

using Clock = std::chrono::steady_clock;

/** One throughput measurement: the (deterministic) simulated result plus
 *  the (host-dependent) wall-clock rates. */
struct Measured
{
    BenchResult result;
    obs::HostStats host;
};

obs::HostStats
rates_of(const BenchResult& result, Clock::duration elapsed, int jobs)
{
    obs::HostStats host;
    host.valid = true;
    host.wall_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count());
    const double secs = host.wall_ns / 1e9;
    if (secs > 0.0) {
        host.events_per_sec =
            static_cast<double>(result.sim_memory_accesses) / secs;
        host.switches_per_sec =
            static_cast<double>(result.sim_fiber_switches) / secs;
    }
    host.jobs = jobs;
    return host;
}

NewBenchConfig
base_config(std::uint32_t critical_work, std::uint32_t iters)
{
    NewBenchConfig config;
    config.threads = 28;
    config.critical_work = critical_work;
    config.iterations_per_thread = iters;
    return config;
}

/** Single sequential engine run — the "is the engine itself fast" probe. */
Measured
measure_single(LockKind kind, std::uint32_t critical_work,
               std::uint32_t iters)
{
    const NewBenchConfig config = base_config(critical_work, iters);
    const Clock::time_point t0 = Clock::now();
    Measured m;
    m.result = run_newbench(kind, config);
    m.host = rates_of(m.result, Clock::now() - t0, 1);
    return m;
}

/** The Figure 5 grid through the executor — the "does --jobs scale" probe.
 *  The aggregate result sums the per-run engine counters; the hash chains
 *  the per-run hashes in grid order so drift in any cell shows up. */
Measured
measure_sweep(std::uint32_t iters, int jobs)
{
    const std::vector<LockKind> kinds = paper_lock_kinds();
    const std::vector<std::uint32_t> critical_work = {0,    250,  500, 1000,
                                                      1500, 2000, 2500};
    const std::size_t ncw = critical_work.size();

    exec::Executor executor(jobs);
    const Clock::time_point t0 = Clock::now();
    const std::vector<BenchResult> results =
        executor.map<BenchResult>(kinds.size() * ncw, [&](std::size_t idx) {
            return run_newbench(
                kinds[idx / ncw],
                base_config(critical_work[idx % ncw], iters));
        });
    const Clock::duration elapsed = Clock::now() - t0;

    Measured m;
    std::uint64_t hash = 1469598103934665603ULL; // FNV-1a offset basis
    for (const BenchResult& r : results) {
        m.result.total_time += r.total_time;
        m.result.total_acquires += r.total_acquires;
        m.result.sim_memory_accesses += r.sim_memory_accesses;
        m.result.sim_fiber_switches += r.sim_fiber_switches;
        for (int shift = 0; shift < 64; shift += 8) {
            hash ^= (r.acquisition_order_hash >> shift) & 0xffu;
            hash *= 1099511628211ULL;
        }
    }
    m.result.acquisition_order_hash = hash;
    m.result.avg_iteration_ns =
        m.result.total_acquires == 0
            ? 0.0
            : static_cast<double>(m.result.total_time) /
                  static_cast<double>(m.result.total_acquires);
    m.host = rates_of(m.result, elapsed, executor.jobs());
    return m;
}

void
print_row(stats::Table& table, const char* name, const Measured& m)
{
    table.row()
        .cell(name)
        .cell(m.host.jobs)
        .cell(m.host.wall_ns / 1e6, 1)
        .cell(m.host.events_per_sec / 1e6, 2)
        .cell(m.host.switches_per_sec / 1e6, 3)
        .cell("0x" + [](std::uint64_t h) {
            char buf[17];
            std::snprintf(buf, sizeof buf, "%016llx",
                          static_cast<unsigned long long>(h));
            return std::string(buf);
        }(m.result.acquisition_order_hash));
}

} // namespace

int
main(int argc, char** argv)
{
    bench::banner(
        "Simulator throughput",
        "Engine events and fiber switches per host second (2-node, 28-cpu\n"
        "WildFire). TATAS/MCS run sequentially and track the engine hot\n"
        "paths; SWEEP fans the Figure 5 grid out over --jobs host threads\n"
        "(default: NUCALOCK_JOBS, else hardware concurrency). Hashes are\n"
        "bit-identical at every --jobs level.");

    const auto iters = static_cast<std::uint32_t>(scaled_iters(60, 10));
    const int jobs = bench::bench_jobs(argc, argv);

    // TATAS at cw=0 maximizes spinning (ready-queue + memory-event load);
    // MCS at cw=1500 maximizes blocking handovers (watcher + switch load).
    const Measured tatas = measure_single(LockKind::Tatas, 0, iters);
    const Measured mcs = measure_single(LockKind::Mcs, 1500, iters);
    const Measured sweep = measure_sweep(iters, jobs);

    stats::Table table({"Shape", "jobs", "wall ms", "Mevents/s",
                        "Mswitches/s", "acq hash"});
    print_row(table, "TATAS cw=0", tatas);
    print_row(table, "MCS cw=1500", mcs);
    print_row(table, "SWEEP fig5", sweep);
    table.print(std::cout);

    obs::ReportConfig rc;
    rc.tool = "bench_sim_throughput";
    rc.bench = "new";
    rc.nodes = 2;
    rc.cpus_per_node = 14;
    rc.threads = 28;
    rc.critical_work = 1500;
    rc.private_work = 4000;
    rc.iterations = iters;
    rc.seed = 1;
    std::vector<obs::ReportRun> runs;
    runs.push_back(obs::ReportRun{"TATAS", tatas.result, nullptr});
    runs.back().host = tatas.host;
    runs.push_back(obs::ReportRun{"MCS", mcs.result, nullptr});
    runs.back().host = mcs.host;
    runs.push_back(obs::ReportRun{"SWEEP", sweep.result, nullptr});
    runs.back().host = sweep.host;
    bench::maybe_write_json(rc, runs);
    return 0;
}
