/**
 * @file
 * nucabench: a command-line front end to the microbenchmark harness.
 * Pick a benchmark, a (simulated) machine shape, and one lock or ALL;
 * results print as a table or CSV. Everything is deterministic per --seed.
 *
 * Examples:
 *   nucabench --bench=new --threads=28 --critical-work=1500
 *   nucabench --bench=uncontested --lock=HBO_GT
 *   nucabench --nodes=4 --cpus-per-node=8 --nuca-ratio=10 --csv
 */
#include <fstream>
#include <iostream>
#include <vector>

#include "apps/app_runner.hpp"
#include "apps/kv_service.hpp"
#include "apps/workload.hpp"
#include "exec/executor.hpp"
#include "harness/newbench.hpp"
#include "harness/options.hpp"
#include "harness/traditional.hpp"
#include "harness/uncontested.hpp"
#include "obs/report.hpp"
#include "stats/csv.hpp"
#include "stats/table.hpp"

namespace {

using namespace nucalock;
using namespace nucalock::harness;
using namespace nucalock::locks;

std::vector<LockKind>
selected_locks(const CliOptions& opts)
{
    if (opts.lock != "ALL")
        return {*parse_lock_name(opts.lock)};
    std::vector<LockKind> kinds;
    for (LockKind kind : all_lock_kinds()) {
        if (kind == LockKind::Rh && opts.nodes > 2)
            continue;
        kinds.push_back(kind);
    }
    return kinds;
}

sim::LatencyModel
latency_of(const CliOptions& opts)
{
    return opts.nuca_ratio == 0.0 ? sim::LatencyModel::wildfire()
                                  : sim::LatencyModel::scaled(opts.nuca_ratio);
}

/** Write the machine-readable report to --json's path ("-" = stdout). */
int
write_json_report(const CliOptions& opts, const char* bench_name,
                  const std::vector<obs::ReportRun>& runs)
{
    obs::ReportConfig rc;
    rc.tool = "nucabench";
    rc.bench = bench_name;
    rc.nodes = opts.nodes;
    rc.cpus_per_node = opts.cpus_per_node;
    rc.threads = opts.threads;
    rc.critical_work = opts.critical_work;
    rc.private_work = opts.private_work;
    rc.iterations = opts.iterations;
    rc.nuca_ratio = opts.nuca_ratio;
    rc.seed = opts.seed;
    if (opts.json == "-") {
        obs::write_report(std::cout, rc, runs);
        return 0;
    }
    std::ofstream out(opts.json);
    if (!out) {
        std::cerr << "error: cannot write --json file '" << opts.json << "'\n";
        return 1;
    }
    obs::write_report(out, rc, runs);
    return 0;
}

int
run_contended(const CliOptions& opts)
{
    const Topology topo = Topology::symmetric(opts.nodes, opts.cpus_per_node);
    const bool faulty = !opts.faults.empty();
    std::vector<std::string> headers = {"Lock",          "ns/acquire",
                                        "handoff ratio", "local tx",
                                        "global tx",     "fairness %"};
    if (faulty) {
        headers.push_back("faults");
        headers.push_back("mutex viol");
        headers.push_back("timeouts");
    }
    stats::Table table(headers);
    std::unique_ptr<stats::CsvWriter> csv;
    if (opts.csv)
        csv = std::make_unique<stats::CsvWriter>(std::cout, headers);
    std::vector<obs::ReportRun> runs;

    // Per-lock runs are independent deterministic simulations: fan them out
    // across host threads, then emit tables/CSV/JSON sequentially in lock
    // order so the output is byte-identical at every --jobs level.
    const std::vector<LockKind> kinds = selected_locks(opts);
    exec::Executor executor(opts.jobs);
    const std::vector<BenchResult> results =
        executor.map<BenchResult>(kinds.size(), [&](std::size_t i) {
            const LockKind kind = kinds[i];
            if (opts.bench == CliBench::New) {
                NewBenchConfig config;
                config.topology = topo;
                config.latency = latency_of(opts);
                config.params = opts.params;
                config.threads = opts.threads;
                config.critical_work = opts.critical_work;
                config.private_work = opts.private_work;
                config.iterations_per_thread = opts.iterations;
                config.seed = opts.seed;
                config.preemption = opts.preemption;
                if (faulty) {
                    // Spec already validated by parse_cli.
                    config.fault_plan = *sim::FaultPlan::parse(
                        opts.faults, opts.seed, opts.threads);
                }
                return run_newbench(kind, config);
            }
            TraditionalConfig config;
            config.topology = topo;
            config.latency = latency_of(opts);
            config.params = opts.params;
            config.threads = opts.threads;
            config.iterations_per_thread = opts.iterations;
            config.seed = opts.seed;
            return run_traditional(kind, config);
        });

    for (std::size_t i = 0; i < kinds.size(); ++i) {
        const LockKind kind = kinds[i];
        const BenchResult& r = results[i];
        if (!opts.json.empty())
            runs.push_back(obs::ReportRun{lock_name(kind), r, nullptr});
        if (csv) {
            csv->cell(lock_name(kind))
                .cell(r.avg_iteration_ns)
                .cell(r.node_handoff_ratio)
                .cell(r.traffic.local_tx)
                .cell(r.traffic.global_tx)
                .cell(r.fairness_spread_pct);
            if (faulty)
                csv->cell(r.faults_injected)
                    .cell(r.mutex_violations)
                    .cell(r.lock_timeouts);
            csv->end_row();
        } else {
            auto& row = table.row()
                            .cell(lock_name(kind))
                            .cell(r.avg_iteration_ns, 0)
                            .cell(r.node_handoff_ratio, 3)
                            .cell(r.traffic.local_tx)
                            .cell(r.traffic.global_tx)
                            .cell(r.fairness_spread_pct, 1);
            if (faulty)
                row.cell(r.faults_injected)
                    .cell(r.mutex_violations)
                    .cell(r.lock_timeouts);
        }
    }
    if (!csv)
        table.print(std::cout);
    if (!opts.json.empty())
        return write_json_report(
            opts, opts.bench == CliBench::New ? "new" : "traditional", runs);
    return 0;
}

/** Build the KV-service config a --bench=app --app=kv run uses. */
apps::KvServiceConfig
kv_config_of(const CliOptions& opts)
{
    apps::KvServiceConfig config;
    config.topology = Topology::symmetric(opts.nodes, opts.cpus_per_node);
    config.latency = latency_of(opts);
    config.params = opts.params;
    config.threads = opts.threads;
    config.keys = opts.kv_keys;
    config.stripes = opts.kv_stripes;
    config.zipf_skew = opts.kv_skew;
    config.read_pct = static_cast<int>(opts.kv_read_pct);
    config.write_pct = static_cast<int>(opts.kv_write_pct);
    config.scan_len = opts.kv_scan_len;
    config.ops_per_thread = opts.kv_ops;
    config.resize_storms = static_cast<int>(opts.kv_storms);
    config.seed = opts.seed;
    return config;
}

int
run_app_kv(const CliOptions& opts)
{
    const std::vector<std::string> headers = {
        "Lock",      "ns/op",      "handoff ratio", "local tx",
        "global tx", "fairness %", "resizes",       "local handover %"};
    stats::Table table(headers);
    std::unique_ptr<stats::CsvWriter> csv;
    if (opts.csv)
        csv = std::make_unique<stats::CsvWriter>(std::cout, headers);

    const apps::KvServiceConfig config = kv_config_of(opts);
    const std::vector<LockKind> kinds = selected_locks(opts);
    exec::Executor executor(opts.jobs);
    const std::vector<apps::KvOutcome> outcomes =
        executor.map<apps::KvOutcome>(kinds.size(), [&](std::size_t i) {
            return apps::run_kv_service(kinds[i], config);
        });

    std::vector<obs::ReportRun> runs;
    for (std::size_t i = 0; i < kinds.size(); ++i) {
        const LockKind kind = kinds[i];
        const apps::KvOutcome& o = outcomes[i];
        const BenchResult& r = o.bench;
        const double local_pct = o.structs.local_handover_fraction() * 100.0;
        if (!opts.json.empty()) {
            obs::ReportRun run(lock_name(kind), r, nullptr);
            run.structs = &outcomes[i].structs;
            runs.push_back(run);
        }
        if (csv) {
            csv->cell(lock_name(kind))
                .cell(r.avg_iteration_ns)
                .cell(r.node_handoff_ratio)
                .cell(r.traffic.local_tx)
                .cell(r.traffic.global_tx)
                .cell(r.fairness_spread_pct)
                .cell(o.structs.resize_epochs)
                .cell(local_pct);
            csv->end_row();
        } else {
            table.row()
                .cell(lock_name(kind))
                .cell(r.avg_iteration_ns, 0)
                .cell(r.node_handoff_ratio, 3)
                .cell(r.traffic.local_tx)
                .cell(r.traffic.global_tx)
                .cell(r.fairness_spread_pct, 1)
                .cell(o.structs.resize_epochs)
                .cell(local_pct, 1);
        }
    }
    if (!csv)
        table.print(std::cout);
    if (!opts.json.empty())
        return write_json_report(opts, "app-kv", runs);
    return 0;
}

int
run_app_cli(const CliOptions& opts)
{
    if (opts.app == "kv")
        return run_app_kv(opts);

    // A SPLASH-2 descriptor by name: validate without app_by_name's fatal.
    const std::vector<apps::AppWorkload> suite = apps::splash2_suite();
    const apps::AppWorkload* app = nullptr;
    for (const apps::AppWorkload& candidate : suite)
        if (candidate.name == opts.app)
            app = &candidate;
    if (app == nullptr) {
        std::cerr << "error: unknown --app '" << opts.app
                  << "' (want kv or a SPLASH-2 name, e.g. Raytrace)\n";
        return 2;
    }
    if (!opts.json.empty()) {
        std::cerr << "error: --json with --bench=app needs --app=kv\n";
        return 2;
    }

    const std::vector<std::string> headers = {"Lock", "time ms", "local tx",
                                              "global tx", "lock calls"};
    stats::Table table(headers);
    std::unique_ptr<stats::CsvWriter> csv;
    if (opts.csv)
        csv = std::make_unique<stats::CsvWriter>(std::cout, headers);

    apps::AppRunConfig config;
    config.topology = Topology::symmetric(opts.nodes, opts.cpus_per_node);
    config.latency = latency_of(opts);
    config.params = opts.params;
    config.threads = opts.threads;
    config.seed = opts.seed;
    config.preemption = opts.preemption;

    const std::vector<LockKind> kinds = selected_locks(opts);
    exec::Executor executor(opts.jobs);
    const std::vector<apps::AppOutcome> outcomes =
        executor.map<apps::AppOutcome>(kinds.size(), [&](std::size_t i) {
            return apps::run_app_once(*app, kinds[i], config);
        });

    for (std::size_t i = 0; i < kinds.size(); ++i) {
        const apps::AppOutcome& o = outcomes[i];
        const double ms = static_cast<double>(o.time) / 1e6;
        if (csv) {
            csv->cell(lock_name(kinds[i]))
                .cell(ms)
                .cell(o.traffic.local_tx)
                .cell(o.traffic.global_tx)
                .cell(o.lock_calls);
            csv->end_row();
        } else {
            table.row()
                .cell(lock_name(kinds[i]))
                .cell(ms, 2)
                .cell(o.traffic.local_tx)
                .cell(o.traffic.global_tx)
                .cell(o.lock_calls);
        }
    }
    if (!csv)
        table.print(std::cout);
    return 0;
}

int
run_uncontested_cli(const CliOptions& opts)
{
    std::vector<std::string> headers = {"Lock", "same processor ns",
                                        "same node ns", "remote node ns"};
    stats::Table table(headers);
    std::unique_ptr<stats::CsvWriter> csv;
    if (opts.csv)
        csv = std::make_unique<stats::CsvWriter>(std::cout, headers);

    UncontestedConfig config;
    config.topology = Topology::symmetric(opts.nodes, opts.cpus_per_node);
    config.latency = latency_of(opts);
    config.params = opts.params;
    config.iterations = opts.iterations;
    config.seed = opts.seed;

    const std::vector<LockKind> kinds = selected_locks(opts);
    exec::Executor executor(opts.jobs);
    const std::vector<UncontestedResult> results =
        executor.map<UncontestedResult>(kinds.size(), [&](std::size_t i) {
            return run_uncontested(kinds[i], config);
        });

    for (std::size_t i = 0; i < kinds.size(); ++i) {
        const LockKind kind = kinds[i];
        const UncontestedResult& r = results[i];
        if (csv) {
            csv->cell(lock_name(kind))
                .cell(r.same_processor_ns)
                .cell(r.same_node_ns)
                .cell(r.remote_node_ns);
            csv->end_row();
        } else {
            table.row()
                .cell(lock_name(kind))
                .cell(r.same_processor_ns, 0)
                .cell(r.same_node_ns, 0)
                .cell(r.remote_node_ns, 0);
        }
    }
    if (!csv)
        table.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    const CliParse parsed = parse_cli(args);
    if (!parsed.options) {
        std::cerr << "error: " << parsed.error << "\n\n" << cli_usage();
        return 2;
    }
    const CliOptions& opts = *parsed.options;
    if (opts.help) {
        std::cout << cli_usage();
        return 0;
    }
    if (!opts.trace.empty() || !opts.check_schema.empty()) {
        std::cerr << "error: --trace/--check-schema belong to nucaprof\n";
        return 2;
    }
    if (opts.bench == CliBench::App)
        return run_app_cli(opts);
    if (opts.bench == CliBench::Uncontested) {
        if (!opts.json.empty()) {
            std::cerr << "error: --json is not supported with "
                         "--bench=uncontested\n";
            return 2;
        }
        return run_uncontested_cli(opts);
    }
    return run_contended(opts);
}
