/**
 * @file
 * nucaprof: the observability front end (src/obs/). Runs a harness
 * benchmark with the lock-event probes enabled, folds the event stream
 * into per-lock / per-node / per-CPU metrics, and emits:
 *
 *  - a human-readable table (local vs remote handover split, node batch
 *    lengths, backoff time breakdown, GT gate traffic, SD anger),
 *  - `--traffic`: the coherence-traffic attribution tables (per-lock
 *    per-phase local/global transactions per acquisition, global-link
 *    utilisation and queue-delay p99 — the paper's Table 2/6 shape),
 *  - `--json=PATH`: the versioned machine-readable report
 *    (schema nucalock-bench-report v6, obs/report.hpp),
 *  - `--trace=PATH`: a Chrome/Perfetto trace_event JSON of per-CPU lock
 *    states plus link-utilisation / bus-rate counter tracks (single
 *    --lock runs only; open in ui.perfetto.dev),
 *  - `--memtrace=PATH`: the raw memory-access trace as CSV (single --lock,
 *    capped at 1M events; the drop count is reported and in the JSON),
 *  - `--check-schema=FILE`: validate an existing report and exit (what
 *    the CI perf-smoke job runs on its own artifact),
 *  - `--robustness=FILE`: render the "robustness" object of a report
 *    written by `nucacheck --campaign --report=...` (per-lock recovery
 *    tables, failing cells with replay traces),
 *  - `--diff=A,B`: compare two reports over their deterministic fields
 *    (the nondeterministic "host" and "native_traffic" objects are
 *    stripped first) and list every differing path — what the CI
 *    determinism jobs run instead of raw byte comparison,
 *  - `--counters`: probe hardware-counter availability on this host (one
 *    line per perf event: available / multiplexed / denied with the
 *    perf_event_paranoid level / unsupported) and exit.
 *
 * Everything is deterministic per --seed, and — pinned by a debug-build
 * assertion here and by tests/obs_test.cpp — observing a run never
 * changes it: the acquisition order is bit-identical with probes off.
 *
 * Examples:
 *   nucaprof --bench=new --nodes=2 --cpus-per-node=4 --lock=ALL
 *   nucaprof --lock=HBO_GT_SD --trace=hbo.trace.json --json=hbo.json
 *   nucaprof --check-schema=hbo.json
 */
#include <array>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "apps/kv_service.hpp"
#include "common/logging.hpp"
#include "exec/executor.hpp"
#include "harness/newbench.hpp"
#include "harness/options.hpp"
#include "harness/traditional.hpp"
#include "locks/adaptive_policy.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/report.hpp"
#include "obs/timeline.hpp"
#include "stats/table.hpp"

namespace {

using namespace nucalock;
using namespace nucalock::harness;
using namespace nucalock::locks;

std::string
prof_usage()
{
    return "nucaprof — profile a lock microbenchmark run through the "
           "observability probes\n"
           "\n"
           "usage: nucaprof [--bench=new|traditional|app] [--lock=NAME|ALL]\n"
           "                [--nodes=N] [--cpus-per-node=N] [--threads=N]\n"
           "                [--critical-work=INTS] [--private-work=ITERS]\n"
           "                [--iterations=N] [--nuca-ratio=R] [--seed=S]\n"
           "                [--traffic] [--json=PATH] [--trace=PATH]\n"
           "                [--memtrace=PATH] [--jobs=N]\n"
           "                [--app=kv] [--kv-keys=N] [--kv-stripes=N]\n"
           "                [--kv-read-pct=P] [--kv-write-pct=P]\n"
           "                [--kv-scan-len=N] [--kv-skew=S] [--kv-ops=N]\n"
           "                [--kv-storms=N]\n"
           "       nucaprof --check-schema=REPORT.json\n"
           "       nucaprof --robustness=REPORT.json\n"
           "       nucaprof --diff=A.json,B.json\n"
           "       nucaprof --counters\n"
           "\n"
           "locks: TATAS TATAS_EXP TICKET ANDERSON MCS CLH RH HBO HBO_GT\n"
           "       HBO_GT_SD HBO_HIER REACTIVE COHORT CLH_TRY (RH: "
           "--nodes<=2)\n"
           "\n"
           "--traffic prints the coherence-traffic attribution tables\n"
           "(per-phase local/global transactions per acquisition);\n"
           "--json writes the nucalock-bench-report v6 document (- = "
           "stdout);\n"
           "--trace needs a single --lock and writes Chrome trace_event "
           "JSON\nwith link-utilisation counter tracks; --memtrace needs a "
           "single\n--lock and writes the raw access trace CSV (1M-event "
           "cap).\n"
           "\n"
           "--bench=app profiles the KV-service application model (the\n"
           "sharded striped-map store; only --app=kv) through the same\n"
           "probes: per-stripe locks show up as separate attribution rows\n"
           "in --traffic, and --json adds the v6 per-run structs object.\n"
           "\n"
           "--counters probes perf_event availability on this host: one\n"
           "line per hardware event (available / multiplexed / denied with\n"
           "the perf_event_paranoid level / unsupported). Exit 0 when at\n"
           "least one event counts, 1 when none do. --diff strips the\n"
           "nondeterministic host and native_traffic objects before\n"
           "comparing.\n";
}

std::vector<LockKind>
selected_locks(const CliOptions& opts)
{
    if (opts.lock != "ALL")
        return {*parse_lock_name(opts.lock)};
    std::vector<LockKind> kinds;
    for (LockKind kind : all_lock_kinds()) {
        if (kind == LockKind::Rh && opts.nodes > 2)
            continue;
        kinds.push_back(kind);
    }
    return kinds;
}

sim::LatencyModel
latency_of(const CliOptions& opts)
{
    return opts.nuca_ratio == 0.0 ? sim::LatencyModel::wildfire()
                                  : sim::LatencyModel::scaled(opts.nuca_ratio);
}

/** One profiled benchmark run: result plus its finalized registry. */
struct ProfiledRun
{
    LockKind kind;
    BenchResult result;
    std::unique_ptr<obs::MetricsRegistry> metrics;
    /** --bench=app only: the run's structs telemetry (v5 report object). */
    std::unique_ptr<structs::KvStructsStats> structs;
};

/** Utilisation-series bin width for --trace counter tracks (10 µs). */
constexpr sim::SimTime kCounterBinNs = 10'000;

/** --memtrace recording cap; drops past this are counted, not stored. */
constexpr std::size_t kMemtraceCap = 1'000'000;

BenchResult
run_bench(LockKind kind, const CliOptions& opts, const Topology& topo,
          obs::ProbeSink* probe, sim::TraceRecorder* memtrace = nullptr,
          structs::KvStructsStats* structs_out = nullptr)
{
    // Record the utilisation series whenever a Perfetto trace was asked
    // for; it is pure accounting (never perturbs the run).
    const sim::SimTime bin = opts.trace.empty() ? 0 : kCounterBinNs;
    if (opts.bench == CliBench::App) {
        apps::KvServiceConfig config;
        config.topology = topo;
        config.latency = latency_of(opts);
        config.params = opts.params;
        config.threads = opts.threads;
        config.keys = opts.kv_keys;
        config.stripes = opts.kv_stripes;
        config.zipf_skew = opts.kv_skew;
        config.read_pct = static_cast<int>(opts.kv_read_pct);
        config.write_pct = static_cast<int>(opts.kv_write_pct);
        config.scan_len = opts.kv_scan_len;
        config.ops_per_thread = opts.kv_ops;
        config.resize_storms = static_cast<int>(opts.kv_storms);
        config.seed = opts.seed;
        config.probe = probe;
        config.contention_bin_ns = bin;
        apps::KvOutcome outcome = apps::run_kv_service(kind, config);
        if (structs_out != nullptr)
            *structs_out = outcome.structs;
        return outcome.bench;
    }
    if (opts.bench == CliBench::Traditional) {
        TraditionalConfig config;
        config.topology = topo;
        config.latency = latency_of(opts);
        config.params = opts.params;
        config.threads = opts.threads;
        config.iterations_per_thread = opts.iterations;
        config.seed = opts.seed;
        config.probe = probe;
        config.contention_bin_ns = bin;
        config.memory_trace = memtrace;
        return run_traditional(kind, config);
    }
    NewBenchConfig config;
    config.topology = topo;
    config.latency = latency_of(opts);
    config.params = opts.params;
    config.threads = opts.threads;
    config.critical_work = opts.critical_work;
    config.private_work = opts.private_work;
    config.iterations_per_thread = opts.iterations;
    config.seed = opts.seed;
    config.preemption = opts.preemption;
    config.probe = probe;
    config.contention_bin_ns = bin;
    config.memory_trace = memtrace;
    return run_newbench(kind, config);
}

int
check_schema(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "error: cannot read '" << path << "'\n";
        return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    if (!obs::validate_report_text(text.str(), &error)) {
        std::cerr << path << ": schema validation FAILED: " << error << "\n";
        return 1;
    }
    std::cout << path << ": valid " << obs::kReportSchemaName << " v"
              << obs::kReportSchemaVersion << "\n";
    return 0;
}

/** Read + parse a report file; nullopt (with a message) on failure. */
std::optional<obs::JsonValue>
load_report(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "error: cannot read '" << path << "'\n";
        return std::nullopt;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::string error;
    auto document = obs::json_parse(text.str(), &error);
    if (!document) {
        std::cerr << path << ": JSON parse error: " << error << "\n";
        return std::nullopt;
    }
    return document;
}

std::uint64_t
num_of(const obs::JsonValue& parent, const char* name)
{
    const obs::JsonValue* v = parent.find(name);
    return v == nullptr ? 0 : static_cast<std::uint64_t>(v->number);
}

std::string
str_of(const obs::JsonValue& parent, const char* name)
{
    const obs::JsonValue* v = parent.find(name);
    return v == nullptr ? std::string{} : v->string;
}

/** --robustness: render a campaign report's recovery verdict. */
int
show_robustness(const std::string& path)
{
    const auto document = load_report(path);
    if (!document)
        return 1;
    std::string error;
    if (!obs::validate_report(*document, &error)) {
        std::cerr << path << ": schema validation FAILED: " << error << "\n";
        return 1;
    }
    const obs::JsonValue* rob = document->find("robustness");
    if (rob == nullptr) {
        std::cerr << path << ": no \"robustness\" object (write one with "
                     "nucacheck --campaign --report=...)\n";
        return 1;
    }

    const obs::JsonValue* campaign = rob->find("campaign");
    std::cout << "campaign:";
    if (const obs::JsonValue* presets = campaign->find("presets"))
        for (const obs::JsonValue& p : presets->array)
            std::cout << " " << p.string;
    std::cout << "\n  timeout_ns=" << num_of(*campaign, "timeout_ns")
              << " iterations=" << num_of(*campaign, "iterations")
              << " first_seed=" << num_of(*campaign, "first_seed")
              << " num_seeds=" << num_of(*campaign, "num_seeds") << "\n\n";

    stats::Table table({"Lock", "cells", "fail", "acq", "timeouts",
                        "abandons", "parked", "races", "reclaims", "rejoins",
                        "unparks", "leaked", "overshoot", "verdict"});
    for (const obs::JsonValue& row : rob->find("per_lock")->array)
        table.row()
            .cell(str_of(row, "lock"))
            .cell(num_of(row, "cells"))
            .cell(num_of(row, "failures"))
            .cell(num_of(row, "acquisitions"))
            .cell(num_of(row, "timeouts"))
            .cell(num_of(row, "abandons"))
            .cell(num_of(row, "parked"))
            .cell(num_of(row, "grant_races"))
            .cell(num_of(row, "reclaims"))
            .cell(num_of(row, "rejoins"))
            .cell(num_of(row, "unparks"))
            .cell(num_of(row, "leaked_nodes"))
            .cell(num_of(row, "max_overshoot_ns"))
            .cell(num_of(row, "failures") != 0 ? "FAIL" : "ok");
    table.print(std::cout);

    const obs::JsonValue* cells = rob->find("cells");
    for (const obs::JsonValue& cell : cells->array) {
        if (str_of(cell, "verdict") != "FAIL")
            continue;
        std::cout << "\n"
                  << str_of(cell, "lock") << " preset="
                  << str_of(cell, "preset") << " " << num_of(cell, "nodes")
                  << "x" << num_of(cell, "cpus_per_node")
                  << " seed=" << num_of(cell, "seed") << ":\n"
                  << "  failure: " << str_of(cell, "what") << "\n";
        if (const obs::JsonValue* t = cell.find("trace"))
            std::cout << "  trace:   " << t->string << "\n";
        if (const obs::JsonValue* t = cell.find("minimal_trace"))
            std::cout << "  minimal: " << t->string << "\n";
    }
    const std::uint64_t failures = num_of(*rob, "failures");
    std::cout << "\nrobustness: " << cells->array.size() << " cells, "
              << failures << " failure" << (failures == 1 ? "" : "s") << " ("
              << str_of(*rob, "verdict") << ")\n";
    return failures == 0 ? 0 : 1;
}

/** Drop every nondeterministic report object: "host" (wall-clock host
 *  measurements) and "native_traffic" (hardware-counter readings vary
 *  between hosts and repetitions). */
void
strip_nondeterministic(obs::JsonValue& v)
{
    if (v.type == obs::JsonValue::Type::Object) {
        v.object.erase("host");
        v.object.erase("native_traffic");
        for (auto& [key, child] : v.object)
            strip_nondeterministic(child);
    } else if (v.type == obs::JsonValue::Type::Array) {
        for (obs::JsonValue& child : v.array)
            strip_nondeterministic(child);
    }
}

/** Append every path where @p a and @p b differ (caps at 32 entries). */
void
diff_values(const obs::JsonValue& a, const obs::JsonValue& b,
            const std::string& path, std::vector<std::string>& out)
{
    constexpr std::size_t kMaxDiffs = 32;
    if (out.size() >= kMaxDiffs)
        return;
    if (a.type != b.type) {
        out.push_back(path + ": type differs");
        return;
    }
    switch (a.type) {
      case obs::JsonValue::Type::Object: {
        for (const auto& [key, av] : a.object) {
            const obs::JsonValue* bv = b.find(key);
            if (bv == nullptr)
                out.push_back(path + "." + key + ": only in first");
            else
                diff_values(av, *bv, path + "." + key, out);
            if (out.size() >= kMaxDiffs)
                return;
        }
        for (const auto& [key, bv] : b.object)
            if (a.find(key) == nullptr) {
                out.push_back(path + "." + key + ": only in second");
                if (out.size() >= kMaxDiffs)
                    return;
            }
        break;
      }
      case obs::JsonValue::Type::Array: {
        if (a.array.size() != b.array.size()) {
            out.push_back(path + ": array length " +
                          std::to_string(a.array.size()) + " vs " +
                          std::to_string(b.array.size()));
            return;
        }
        for (std::size_t i = 0; i < a.array.size(); ++i) {
            diff_values(a.array[i], b.array[i],
                        path + "[" + std::to_string(i) + "]", out);
            if (out.size() >= kMaxDiffs)
                return;
        }
        break;
      }
      case obs::JsonValue::Type::String:
        if (a.string != b.string)
            out.push_back(path + ": \"" + a.string + "\" vs \"" + b.string +
                          "\"");
        break;
      case obs::JsonValue::Type::Number:
        if (a.number != b.number)
            out.push_back(path + ": " + std::to_string(a.number) + " vs " +
                          std::to_string(b.number));
        break;
      case obs::JsonValue::Type::Bool:
        if (a.boolean != b.boolean)
            out.push_back(path + ": boolean differs");
        break;
      case obs::JsonValue::Type::Null:
        break;
    }
}

/** --diff=A,B: deterministic-field comparison of two reports. */
int
diff_reports(const std::string& spec)
{
    const std::size_t comma = spec.find(',');
    const std::string path_a = spec.substr(0, comma);
    const std::string path_b = spec.substr(comma + 1);
    auto a = load_report(path_a);
    auto b = load_report(path_b);
    if (!a || !b)
        return 2;
    strip_nondeterministic(*a);
    strip_nondeterministic(*b);
    std::vector<std::string> diffs;
    diff_values(*a, *b, "$", diffs);
    if (diffs.empty()) {
        std::cout << path_a << " and " << path_b
                  << ": identical over deterministic fields\n";
        return 0;
    }
    std::cout << path_a << " and " << path_b << " DIFFER:\n";
    for (const std::string& d : diffs)
        std::cout << "  " << d << "\n";
    return 1;
}

int
write_trace(const ProfiledRun& run, const obs::TimelineBuilder& timeline,
            const std::string& path)
{
    std::ofstream out(path);
    if (!out) {
        std::cerr << "error: cannot write --trace file '" << path << "'\n";
        return 1;
    }
    timeline.write_chrome_trace(
        out, lock_name(run.kind),
        obs::contention_counter_tracks(run.result.contention));
    return 0;
}

/** The --traffic tables: per-acquisition attribution + link contention. */
void
print_traffic(const std::vector<ProfiledRun>& runs)
{
    // Per-acquisition rates in the paper's Table 2/6 shape, with the
    // global column split by the phase the transactions served.
    stats::Table table({"Lock", "acquires", "local/acq", "global/acq",
                        "g spin", "g handover", "g critical", "g release",
                        "g gate", "g unattr", "link util %", "link p99 ns"});
    for (const ProfiledRun& run : runs) {
        const obs::TrafficMetrics tm = obs::fold_traffic(
            run.result.traffic, run.result.traffic_attribution,
            run.result.contention, run.result.total_acquires,
            run.metrics.get());
        const double acq =
            tm.acquisitions == 0 ? 1.0 : static_cast<double>(tm.acquisitions);
        // Phase split summed over every attributed lock tier of the run.
        std::array<std::uint64_t, sim::kNumTxPhases> phase_global{};
        for (const obs::LockTrafficView& lock : tm.locks)
            for (int p = 0; p < sim::kNumTxPhases; ++p)
                phase_global[static_cast<std::size_t>(p)] +=
                    lock.tx.by_phase[static_cast<std::size_t>(p)].global_tx;
        const auto per_acq = [&](sim::TxPhase p) {
            return static_cast<double>(
                       phase_global[static_cast<std::size_t>(p)]) /
                   acq;
        };
        table.row()
            .cell(lock_name(run.kind))
            .cell(tm.acquisitions)
            .cell(tm.local_tx_per_acquisition(), 2)
            .cell(tm.global_tx_per_acquisition(), 2)
            .cell(per_acq(sim::TxPhase::AcquireSpin), 2)
            .cell(per_acq(sim::TxPhase::Handover), 2)
            .cell(per_acq(sim::TxPhase::Critical), 2)
            .cell(per_acq(sim::TxPhase::Release), 2)
            .cell(per_acq(sim::TxPhase::GatePublish), 2)
            .cell(static_cast<double>(tm.unattributed.global_tx) / acq, 2)
            .cell(100.0 * tm.link_utilization, 1)
            .cell(tm.link_queue_delay_ns.percentile(99.0), 0);
    }
    std::cout << "\nCoherence traffic per acquisition (global split by "
                 "phase):\n";
    table.print(std::cout);
}

} // namespace

int
main(int argc, char** argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    const CliParse parsed = parse_cli(args);
    if (!parsed.options) {
        std::cerr << "error: " << parsed.error << "\n\n" << prof_usage();
        return 2;
    }
    const CliOptions& opts = *parsed.options;
    if (opts.help) {
        std::cout << prof_usage();
        return 0;
    }
    if (!opts.check_schema.empty())
        return check_schema(opts.check_schema);
    if (!opts.robustness.empty())
        return show_robustness(opts.robustness);
    if (!opts.diff.empty())
        return diff_reports(opts.diff);
    if (opts.counters) {
        // Informational probe: report per-event availability on this host.
        // Exit 0 when at least one event counts, 1 when none do — the CI
        // perf-smoke job treats both as "probe ran"; only a crash fails it.
        obs::PerfCounterSource source;
        return obs::print_counter_capabilities(source, stdout);
    }
    if (opts.bench == CliBench::Uncontested) {
        std::cerr << "error: nucaprof profiles contended runs; use "
                     "--bench=new or --bench=traditional\n";
        return 2;
    }
    if (!opts.faults.empty()) {
        std::cerr << "error: --faults profiling is not supported; use "
                     "nucabench\n";
        return 2;
    }
    if (opts.bench == CliBench::App) {
        if (opts.app != "kv") {
            std::cerr << "error: nucaprof --bench=app profiles the KV "
                         "service only (--app=kv); SPLASH-2 models run "
                         "under nucabench\n";
            return 2;
        }
        if (!opts.memtrace.empty()) {
            std::cerr << "error: --memtrace is not supported with "
                         "--bench=app\n";
            return 2;
        }
    }

    const Topology topo = Topology::symmetric(opts.nodes, opts.cpus_per_node);
    const std::vector<LockKind> kinds = selected_locks(opts);
    const bool want_trace = !opts.trace.empty();

    // Each lock profiles into its own MetricsRegistry, so the per-lock runs
    // shard across host threads; the summary/report below walks them in
    // lock order, keeping output byte-identical at every --jobs level. The
    // shared TimelineBuilder is only attached under --trace, which
    // parse_cli restricts to a single lock (a one-job batch runs inline).
    const bool want_memtrace = !opts.memtrace.empty();
    std::vector<ProfiledRun> runs(kinds.size());
    obs::TimelineBuilder timeline;     // only fed when --trace is set
    sim::TraceRecorder memtrace;       // only attached under --memtrace
    memtrace.set_max_events(kMemtraceCap);
    exec::Executor executor(opts.jobs);
    executor.run_batch(kinds.size(), [&](std::size_t i) {
        ProfiledRun& run = runs[i];
        run.kind = kinds[i];
        run.metrics = std::make_unique<obs::MetricsRegistry>();
        obs::MultiSink sink;
        sink.add(run.metrics.get());
        if (want_trace)
            sink.add(&timeline); // single lock: parse_cli enforced it
        if (opts.bench == CliBench::App)
            run.structs = std::make_unique<structs::KvStructsStats>();
        run.result = run_bench(run.kind, opts, topo, &sink,
                               want_memtrace ? &memtrace : nullptr,
                               run.structs.get());
        run.metrics->finalize();

#ifndef NDEBUG
        // Observer-effect tripwire (debug builds only, doubles the work):
        // the identical run without a sink must produce the identical
        // simulated history. tests/obs_test.cpp pins the same property.
        const BenchResult bare = run_bench(run.kind, opts, topo, nullptr);
        NUCA_ASSERT(bare.acquisition_order_hash ==
                        run.result.acquisition_order_hash,
                    "probes changed the acquisition order of ",
                    lock_name(run.kind));
        NUCA_ASSERT(bare.total_time == run.result.total_time,
                    "probes changed the run time of ", lock_name(run.kind));
#endif
    });
    if (want_trace)
        timeline.finalize();

    // Human-readable summary. "local ho %" is the paper's locality
    // headline: handovers that stayed within a node.
    stats::Table table({"Lock", "ns/acquire", "local ho %", "remote ho %",
                        "node batch", "backoff us", "gate block %", "angry"});
    for (const ProfiledRun& run : runs) {
        const obs::LockMetrics* m = run.metrics->primary();
        const double local_pct =
            m == nullptr ? 0.0 : 100.0 * m->local_handover_fraction();
        const double remote_pct =
            m == nullptr ? 0.0 : 100.0 * m->remote_handover_fraction();
        const double batch =
            m == nullptr ? 0.0 : m->node_batch_lengths.mean();
        const double backoff_us =
            m == nullptr ? 0.0
                         : static_cast<double>(m->backoff_ns_total()) / 1e3;
        const double gate_pct =
            m == nullptr ? 0.0 : 100.0 * m->gate_block_fraction();
        const std::uint64_t angry = m == nullptr ? 0 : m->angry_transitions;
        table.row()
            .cell(lock_name(run.kind))
            .cell(run.result.avg_iteration_ns, 0)
            .cell(local_pct, 1)
            .cell(remote_pct, 1)
            .cell(batch, 2)
            .cell(backoff_us, 1)
            .cell(gate_pct, 1)
            .cell(angry);
    }
    table.print(std::cout);

    // ADAPTIVE gear telemetry: shown only for runs whose primary lock
    // actually switched gears (LockEvent::AdaptSwitch folded by the
    // registry; the same numbers land in the report's "adaptive" object).
    for (const ProfiledRun& run : runs) {
        const obs::LockMetrics* m = run.metrics->primary();
        if (m == nullptr || !m->adapt_seen)
            continue;
        std::cout << "\n"
                  << lock_name(run.kind) << " gears: " << m->adapt_switches
                  << " switch" << (m->adapt_switches == 1 ? "" : "es")
                  << " (";
        bool first = true;
        for (int r = 0; r < locks::kAdaptReasonCount; ++r) {
            if (m->adapt_reasons[r] == 0)
                continue;
            if (!first)
                std::cout << ", ";
            first = false;
            std::cout << locks::adapt_reason_name(
                             static_cast<locks::AdaptReason>(r))
                      << " " << m->adapt_reasons[r];
        }
        std::cout << "); residency";
        const double total =
            static_cast<double>(m->gear_residency_ns[0] +
                                m->gear_residency_ns[1] +
                                m->gear_residency_ns[2]);
        for (int g = 0; g < locks::kAdaptGearCount; ++g) {
            const double pct =
                total == 0.0
                    ? 0.0
                    : 100.0 *
                          static_cast<double>(
                              m->gear_residency_ns[g]) /
                          total;
            std::cout << (g == 0 ? " " : ", ")
                      << locks::adapt_gear_name(
                             static_cast<locks::AdaptGear>(g))
                      << " " << static_cast<int>(pct + 0.5) << "%";
        }
        if (m->demote_latency_ns.count() != 0)
            std::cout << "; demote p50 "
                      << static_cast<std::uint64_t>(
                             m->demote_latency_ns.percentile(50.0))
                      << " ns";
        std::cout << "\n";
    }

    if (opts.traffic)
        print_traffic(runs);

    int rc = 0;
    if (want_trace)
        rc = write_trace(runs.front(), timeline, opts.trace);

    if (want_memtrace) {
        std::ofstream out(opts.memtrace);
        if (!out) {
            std::cerr << "error: cannot write --memtrace file '"
                      << opts.memtrace << "'\n";
            return 1;
        }
        memtrace.dump_csv(out);
        std::cout << "memtrace: " << memtrace.events().size()
                  << " events written to " << opts.memtrace;
        if (memtrace.dropped() != 0)
            std::cout << " (" << memtrace.dropped()
                      << " dropped at the " << kMemtraceCap << "-event cap)";
        std::cout << "\n";
    }

    if (!opts.json.empty()) {
        obs::ReportConfig rc_cfg;
        rc_cfg.tool = "nucaprof";
        rc_cfg.bench = opts.bench == CliBench::App
                           ? "app-kv"
                           : (opts.bench == CliBench::New ? "new"
                                                          : "traditional");
        rc_cfg.nodes = opts.nodes;
        rc_cfg.cpus_per_node = opts.cpus_per_node;
        rc_cfg.threads = opts.threads;
        rc_cfg.critical_work = opts.critical_work;
        rc_cfg.private_work = opts.private_work;
        rc_cfg.iterations = opts.iterations;
        rc_cfg.nuca_ratio = opts.nuca_ratio;
        rc_cfg.seed = opts.seed;
        std::vector<obs::ReportRun> report_runs;
        report_runs.reserve(runs.size());
        for (const ProfiledRun& run : runs) {
            obs::ReportRun rr(lock_name(run.kind), run.result,
                              run.metrics.get());
            rr.structs = run.structs.get();
            report_runs.push_back(rr);
        }
        if (opts.json == "-") {
            obs::write_report(std::cout, rc_cfg, report_runs);
        } else {
            std::ofstream out(opts.json);
            if (!out) {
                std::cerr << "error: cannot write --json file '" << opts.json
                          << "'\n";
                return 1;
            }
            obs::write_report(out, rc_cfg, report_runs);
        }
    }
    return rc;
}
