/**
 * @file
 * nucacheck: systematic concurrency checking for the lock library.
 *
 * Runs every lock (or one) through a checking strategy on a small simulated
 * machine and prints a per-lock verdict table. Any failing schedule is
 * recorded as a compact trace string, replayed to prove it reproduces
 * bit-identically, and delta-debugged down to a minimal repro.
 *
 * Modes:
 *   --mode=exhaustive  bounded DFS with sleep sets + preemption bound
 *   --mode=pct         randomized priority scheduling (PCT)
 *   --structs          random-walk schedules over the striped hash map
 *                      (src/structs/) with resize-forcing inserts, audited
 *                      for lost updates and migration loss
 *                      (check/structs_check.hpp); --lock=MAP_UNSYNC is the
 *                      planted unsynchronized variant for --expect-fail
 *   --replay=TRACE     re-run one recorded trace string
 *   --campaign[=SPECS] deterministic fault-campaign soak over the
 *                      abandonment-capable locks (check/campaign.hpp):
 *                      presets x locks x shapes x seeds, each cell a
 *                      bounded run under fault injection audited for the
 *                      recovery invariants (docs/robustness.md); failures
 *                      shrink to minimal replay traces and --report writes
 *                      the schema-v4 "robustness" report object
 *
 * Examples:
 *   nucacheck --mode=exhaustive --cpus=4
 *   nucacheck --mode=pct --cpus=2x4 --pct-runs=100 --pct-depth=3
 *   nucacheck --lock=TATAS_BROKEN --expect-fail
 *   nucacheck --lock=ADAPTIVE_BROKEN --expect-fail
 *   nucacheck --structs --lock=MCS --schedules=40
 *   nucacheck --structs --lock=MAP_UNSYNC --expect-fail
 *   nucacheck --replay='nc1;lock=TATAS;nodes=2;cpus=2;iters=2;seed=1;bounded=0;sched=0x12,1x3' --expect-fail
 *   nucacheck --campaign --seeds=2 --report=campaign.json
 *   nucacheck --campaign=death --lock=MCS --shapes=2x2
 *
 * Exit status: 0 = expectation met (all pass, or --expect-fail and the bug
 * was caught, replayed, and minimized), 1 = expectation not met, 2 = usage.
 */
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "check/broken.hpp"
#include "check/campaign.hpp"
#include "check/explore.hpp"
#include "check/harness.hpp"
#include "check/pct.hpp"
#include "check/schedule.hpp"
#include "check/structs_check.hpp"
#include "exec/executor.hpp"
#include "obs/report.hpp"
#include "stats/table.hpp"

namespace {

using namespace nucalock;
using namespace nucalock::check;
using locks::LockKind;

struct Options
{
    std::string mode = "exhaustive";
    std::string lock = "ALL";
    int nodes = 2;
    int cpus_per_node = 2;
    std::uint32_t iterations = 2;
    std::uint64_t seed = 1;
    std::uint64_t schedules = 1000;
    bool schedules_set = false;
    std::uint64_t steps = 0; // 0 = per-mode default
    int preemptions = 3;
    std::uint64_t pct_runs = 50;
    int pct_depth = 3;
    bool bounded = false;
    std::uint64_t timeout_ns = 2'000'000'000;
    std::uint64_t bypass_bound = 0;
    bool expect_fail = false;
    bool minimize = true;
    std::string replay;
    /** --campaign mode: run the fault-campaign soak. */
    bool campaign = false;
    /** --structs mode: random-walk check of the striped map. */
    bool structs = false;
    /** Preset override ("death" or "holder,spike,..."); empty = defaults. */
    std::string campaign_presets;
    /** Shape override ("2x2,2x4"); empty = campaign defaults. */
    std::string shapes;
    /** Consecutive seeds starting at --seed. */
    int seeds = 2;
    /** --iters was given explicitly (campaign has its own default). */
    bool iters_set = false;
    /** Campaign report JSON path ("-" = stdout); empty = off. */
    std::string report;
    /** --timeout-ns was given explicitly (campaign has its own default). */
    bool timeout_set = false;
    /** Campaign overshoot budget base override (ns); campaign default
     *  when unset. 0 is meaningful: any late return fails its cell. */
    std::uint64_t overshoot_base_ns = 0;
    bool overshoot_set = false;
    /** Host worker threads (exec::Executor); 0 = NUCALOCK_JOBS, else
     *  hardware concurrency. Verdicts are identical at every level. */
    int jobs = 0;
};

int
usage(std::ostream& os)
{
    os << "usage: nucacheck [--mode=exhaustive|pct] [--lock=ALL|NAME]\n"
          "                 [--cpus=NxM|TOTAL] [--iters=K] [--seed=S]\n"
          "                 [--schedules=N] [--steps=N] [--preemptions=P]\n"
          "                 [--pct-runs=N] [--pct-depth=D] [--bounded]\n"
          "                 [--timeout-ns=T] [--bypass-bound=B] [--jobs=N]\n"
          "                 [--replay=TRACE] [--expect-fail] [--no-minimize]\n"
          "                 [--campaign[=PRESETS]] [--shapes=NxM[,NxM...]]\n"
          "                 [--seeds=K] [--overshoot-base-ns=T]\n"
          "                 [--report=PATH|-]\n"
          "                 [--structs]  (striped-map random-walk check;\n"
          "                  --lock=MAP_UNSYNC is the planted-bug variant)\n";
    return 2;
}

bool
parse_u64(std::string_view text, std::uint64_t& out)
{
    if (text.empty())
        return false;
    std::uint64_t value = 0;
    for (char c : text) {
        if (c < '0' || c > '9')
            return false;
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = value;
    return true;
}

bool
parse_int(std::string_view text, int& out)
{
    std::uint64_t v = 0;
    if (!parse_u64(text, v) || v > 1'000'000)
        return false;
    out = static_cast<int>(v);
    return true;
}

/** "--cpus=NxM" (nodes x cpus per node) or "--cpus=TOTAL" (split 2 ways). */
bool
parse_cpus(std::string_view text, Options& opts)
{
    const std::size_t x = text.find('x');
    if (x != std::string_view::npos)
        return parse_int(text.substr(0, x), opts.nodes) &&
               parse_int(text.substr(x + 1), opts.cpus_per_node) &&
               opts.nodes > 0 && opts.cpus_per_node > 0;
    int total = 0;
    if (!parse_int(text, total) || total < 2 || total % 2 != 0)
        return false;
    opts.nodes = 2;
    opts.cpus_per_node = total / 2;
    return true;
}

bool
parse_args(int argc, char** argv, Options& opts)
{
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        const std::size_t eq = arg.find('=');
        const std::string_view key =
            eq == std::string_view::npos ? arg : arg.substr(0, eq);
        const std::string_view value =
            eq == std::string_view::npos ? std::string_view{}
                                         : arg.substr(eq + 1);
        if (key == "--mode") {
            opts.mode = std::string(value);
            if (opts.mode != "exhaustive" && opts.mode != "pct")
                return false;
        } else if (key == "--lock") {
            opts.lock = std::string(value);
        } else if (key == "--cpus") {
            if (!parse_cpus(value, opts))
                return false;
        } else if (key == "--iters") {
            std::uint64_t v = 0;
            if (!parse_u64(value, v) || v == 0 || v > 1'000'000)
                return false;
            opts.iterations = static_cast<std::uint32_t>(v);
            opts.iters_set = true;
        } else if (key == "--seed") {
            if (!parse_u64(value, opts.seed))
                return false;
        } else if (key == "--schedules") {
            if (!parse_u64(value, opts.schedules) || opts.schedules == 0)
                return false;
            opts.schedules_set = true;
        } else if (key == "--structs") {
            opts.structs = true;
        } else if (key == "--steps") {
            if (!parse_u64(value, opts.steps))
                return false;
        } else if (key == "--preemptions") {
            if (!parse_int(value, opts.preemptions))
                return false;
        } else if (key == "--pct-runs") {
            if (!parse_u64(value, opts.pct_runs) || opts.pct_runs == 0)
                return false;
        } else if (key == "--pct-depth") {
            if (!parse_int(value, opts.pct_depth) || opts.pct_depth < 1)
                return false;
        } else if (key == "--bounded") {
            opts.bounded = true;
        } else if (key == "--timeout-ns") {
            if (!parse_u64(value, opts.timeout_ns) || opts.timeout_ns == 0)
                return false;
            opts.timeout_set = true;
        } else if (key == "--campaign") {
            opts.campaign = true;
            opts.campaign_presets = std::string(value); // empty = defaults
        } else if (key == "--shapes") {
            opts.shapes = std::string(value);
            if (opts.shapes.empty())
                return false;
        } else if (key == "--seeds") {
            if (!parse_int(value, opts.seeds) || opts.seeds < 1 ||
                opts.seeds > 1024)
                return false;
        } else if (key == "--overshoot-base-ns") {
            if (!parse_u64(value, opts.overshoot_base_ns))
                return false;
            opts.overshoot_set = true;
        } else if (key == "--report") {
            opts.report = std::string(value);
            if (opts.report.empty())
                return false;
        } else if (key == "--bypass-bound") {
            if (!parse_u64(value, opts.bypass_bound))
                return false;
        } else if (key == "--jobs") {
            if (!parse_int(value, opts.jobs) || opts.jobs < 1 ||
                opts.jobs > 1024)
                return false;
        } else if (key == "--replay") {
            opts.replay = std::string(value);
            if (opts.replay.empty())
                return false;
        } else if (key == "--expect-fail") {
            opts.expect_fail = true;
        } else if (key == "--no-minimize") {
            opts.minimize = false;
        } else {
            return false;
        }
    }
    return true;
}

/** The lock selection: every LockKind, or one name (possibly a broken
 *  variant); empty on an unknown name. */
struct Selection
{
    std::vector<CheckSetup> setups;
    bool ok = false;
};

Selection
select_locks(const Options& opts)
{
    Selection sel;
    CheckSetup base;
    base.nodes = opts.nodes;
    base.cpus_per_node = opts.cpus_per_node;
    base.iterations = opts.iterations;
    base.seed = opts.seed;
    base.bounded = opts.bounded;
    base.timeout_ns = opts.timeout_ns;
    base.bypass_bound = opts.bypass_bound;

    if (opts.lock == "ALL") {
        for (LockKind kind : locks::all_lock_kinds()) {
            if (kind == LockKind::Rh && opts.nodes > 2)
                continue; // RH is a two-node algorithm (as in nucabench)
            CheckSetup setup = base;
            setup.kind = kind;
            sel.setups.push_back(setup);
        }
        sel.ok = true;
        return sel;
    }
#ifdef NUCALOCK_ENABLE_BROKEN_LOCKS
    if (opts.lock == kBrokenTatasName) {
        CheckSetup setup = base;
        setup.use_broken_tatas = true;
        sel.setups.push_back(setup);
        sel.ok = true;
        return sel;
    }
    if (opts.lock == kBrokenAdaptiveName) {
        CheckSetup setup = base;
        setup.use_broken_adaptive = true;
        sel.setups.push_back(setup);
        sel.ok = true;
        return sel;
    }
#endif
    const auto kind = locks::parse_lock_name(opts.lock);
    if (!kind)
        return sel;
    CheckSetup setup = base;
    setup.kind = *kind;
    sel.setups.push_back(setup);
    sel.ok = true;
    return sel;
}

const char*
setup_name(const CheckSetup& setup)
{
    return setup.use_broken_tatas      ? kBrokenTatasName
           : setup.use_broken_adaptive ? kBrokenAdaptiveName
                                       : locks::lock_name(setup.kind);
}

/**
 * Record -> replay -> minimize for one failing run. Returns true when the
 * trace replayed bit-identically and the minimized schedule still fails.
 */
bool
handle_failure(const CheckSetup& setup, const RunReport& failure,
               bool minimize)
{
    const Trace trace = make_trace(setup, failure.schedule);
    std::cout << "  failure: " << failure.what << "\n"
              << "  trace:   " << encode_trace(trace) << "\n";

    ReplayScheduler replayer(failure.schedule);
    const RunReport replayed = run_one(setup, replayer);
    const bool identical = replayed.failed && !replayer.diverged() &&
                           replayed.schedule == failure.schedule &&
                           replayed.what == failure.what;
    std::cout << "  replay:  "
              << (identical ? "reproduced bit-identically"
                            : "DID NOT reproduce")
              << " (" << sim::stop_reason_name(replayed.stop) << ", "
              << replayed.steps << " steps)\n";
    if (!identical)
        return false;
    if (!minimize)
        return true;

    const std::uint64_t step_cap = failure.steps * 4 + 1000;
    const ScheduleOracle oracle = [&setup, step_cap](const Schedule& s) {
        ReplayScheduler candidate(s, step_cap);
        return run_one(setup, candidate).failed;
    };
    // Deepest-first DFS tends to surface the latest race; hunt for the
    // earliest one before shrinking, so the repro is as short as possible.
    ExploreConfig short_cfg;
    short_cfg.max_steps = failure.steps;
    const auto short_failure = find_short_failure(setup, short_cfg);
    const Schedule minimal = minimize_schedule(
        short_failure ? short_failure->schedule : failure.schedule, oracle);
    Trace min_trace = trace;
    min_trace.schedule = minimal;
    std::cout << "  minimal: " << minimal.size() << " forced decision"
              << (minimal.size() == 1 ? "" : "s") << " (from "
              << failure.schedule.size() << ")\n"
              << "  trace:   " << encode_trace(min_trace) << "\n";
    return true;
}

int
run_replay(const Options& opts)
{
    const auto trace = decode_trace(opts.replay);
    if (!trace) {
        std::cerr << "nucacheck: malformed trace string\n";
        return 2;
    }
#ifndef NUCALOCK_ENABLE_BROKEN_LOCKS
    if (trace->lock == kBrokenTatasName || trace->lock == kBrokenAdaptiveName) {
        std::cerr << "nucacheck: built without NUCALOCK_BROKEN_LOCKS\n";
        return 2;
    }
#endif
    const auto setup = setup_from_trace(*trace);
    if (!setup) {
        std::cerr << "nucacheck: unknown lock \"" << trace->lock
                  << "\" in trace\n";
        return 2;
    }
    ReplayScheduler replayer(trace->schedule);
    const RunReport report = run_one(*setup, replayer);
    std::cout << "replay " << trace->lock << ": "
              << (report.failed ? "FAIL" : "ok") << " ("
              << sim::stop_reason_name(report.stop) << ", " << report.steps
              << " steps" << (replayer.diverged() ? ", DIVERGED" : "") << ")\n";
    if (report.failed)
        std::cout << "  " << report.what << "\n";
    const bool expectation_met = report.failed == opts.expect_fail;
    return expectation_met ? 0 : 1;
}

/** Split @p text on ',' or '+' into non-empty pieces. */
std::vector<std::string>
split_list(std::string_view text)
{
    std::vector<std::string> out;
    std::string piece;
    for (char c : text) {
        if (c == ',' || c == '+') {
            if (!piece.empty())
                out.push_back(piece);
            piece.clear();
        } else {
            piece += c;
        }
    }
    if (!piece.empty())
        out.push_back(piece);
    return out;
}

/** "--shapes=NxM[,NxM...]" into campaign shapes; false on any bad piece. */
bool
parse_shapes(std::string_view text, std::vector<CampaignShape>& out)
{
    for (const std::string& piece : split_list(text)) {
        const std::size_t x = piece.find('x');
        CampaignShape shape;
        if (x == std::string::npos ||
            !parse_int(std::string_view(piece).substr(0, x), shape.nodes) ||
            !parse_int(std::string_view(piece).substr(x + 1),
                       shape.cpus_per_node) ||
            shape.nodes < 1 || shape.cpus_per_node < 1)
            return false;
        out.push_back(shape);
    }
    return !out.empty();
}

obs::RobustnessReport
robustness_from_campaign(const CampaignConfig& cfg,
                         const CampaignResult& result)
{
    obs::RobustnessReport rob;
    rob.presets = cfg.presets;
    rob.timeout_ns = cfg.timeout_ns;
    rob.iterations = cfg.iterations;
    rob.first_seed = cfg.first_seed;
    rob.num_seeds = cfg.num_seeds;
    rob.failures = result.failures;
    for (const CampaignCell& cell : result.cells) {
        obs::RobustnessCell c;
        c.lock = cell.lock;
        c.preset = cell.preset;
        c.nodes = cell.nodes;
        c.cpus_per_node = cell.cpus_per_node;
        c.seed = cell.seed;
        c.failed = cell.failed;
        c.what = cell.what;
        c.stop = cell.stop;
        c.steps = cell.steps;
        c.acquisitions = cell.acquisitions;
        c.timeouts = cell.timeouts;
        c.mutex_violations = cell.mutex_violations;
        c.faults_injected = cell.faults_injected;
        c.max_overshoot_ns = cell.max_overshoot_ns;
        c.overshoot_bound_ns = cell.overshoot_bound_ns;
        c.abandons = cell.abandon.abandons;
        c.parked = cell.abandon.parked;
        c.grant_races = cell.abandon.grant_races;
        c.reclaims = cell.abandon.reclaims;
        c.rejoins = cell.abandon.rejoins;
        c.unparks = cell.abandon.unparks;
        c.leaked_nodes = cell.leaked_nodes;
        c.trace = cell.trace;
        c.minimal_trace = cell.minimal_trace;
        rob.cells.push_back(std::move(c));
    }
    for (const CampaignLockSummary& row : result.per_lock) {
        obs::RobustnessLockRow r;
        r.lock = row.lock;
        r.cells = row.cells;
        r.failures = row.failures;
        r.acquisitions = row.acquisitions;
        r.timeouts = row.timeouts;
        r.abandons = row.abandons;
        r.parked = row.parked;
        r.grant_races = row.grant_races;
        r.reclaims = row.reclaims;
        r.rejoins = row.rejoins;
        r.unparks = row.unparks;
        r.leaked_nodes = row.leaked_nodes;
        r.max_overshoot_ns = row.max_overshoot_ns;
        rob.per_lock.push_back(std::move(r));
    }
    return rob;
}

int
run_campaign_mode(const Options& opts)
{
    CampaignConfig cfg;
    cfg.presets = split_list(opts.campaign_presets);
    if (opts.lock != "ALL") {
        const auto kind = locks::parse_lock_name(opts.lock);
        if (!kind) {
            std::cerr << "nucacheck: unknown lock \"" << opts.lock << "\"\n";
            return 2;
        }
        if (!locks::lock_supports_native_timeout(*kind)) {
            std::cerr << "nucacheck: lock \"" << opts.lock
                      << "\" has no native timeout path; the campaign "
                         "audits abandonment-capable locks only\n";
            return 2;
        }
        cfg.kinds.push_back(*kind);
    }
    if (!opts.shapes.empty() && !parse_shapes(opts.shapes, cfg.shapes)) {
        std::cerr << "nucacheck: bad --shapes \"" << opts.shapes << "\"\n";
        return 2;
    }
    cfg.first_seed = opts.seed;
    cfg.num_seeds = opts.seeds;
    if (opts.iters_set)
        cfg.iterations = opts.iterations;
    if (opts.timeout_set)
        cfg.timeout_ns = opts.timeout_ns;
    if (opts.overshoot_set)
        cfg.overshoot_base_ns = opts.overshoot_base_ns;
    cfg.shrink = opts.minimize;
    cfg.jobs = opts.jobs;
    cfg.apply_defaults(); // fix presets/kinds/shapes before echoing them

    const CampaignResult result = run_campaign(cfg);

    stats::Table table({"Lock", "cells", "fail", "acq", "timeouts",
                        "abandons", "parked", "races", "reclaims", "rejoins",
                        "unparks", "leaked", "overshoot", "verdict"});
    for (const CampaignLockSummary& row : result.per_lock)
        table.row()
            .cell(row.lock)
            .cell(row.cells)
            .cell(row.failures)
            .cell(row.acquisitions)
            .cell(row.timeouts)
            .cell(row.abandons)
            .cell(row.parked)
            .cell(row.grant_races)
            .cell(row.reclaims)
            .cell(row.rejoins)
            .cell(row.unparks)
            .cell(row.leaked_nodes)
            .cell(row.max_overshoot_ns)
            .cell(row.failures != 0 ? "FAIL" : "ok");

    for (const CampaignCell& cell : result.cells) {
        if (!cell.failed)
            continue;
        std::cout << cell.lock << " preset=" << cell.preset << " "
                  << cell.nodes << "x" << cell.cpus_per_node
                  << " seed=" << cell.seed << ":\n"
                  << "  failure: " << cell.what << "\n";
        if (!cell.trace.empty())
            std::cout << "  trace:   " << cell.trace << "\n";
        if (!cell.minimal_trace.empty())
            std::cout << "  minimal: " << cell.minimal_trace << "\n";
    }
    table.print(std::cout);
    std::cout << "campaign: " << result.cells.size() << " cells, "
              << result.failures << " failure"
              << (result.failures == 1 ? "" : "s") << " ("
              << (result.failures == 0 ? "ok" : "FAIL") << ")\n";

    if (!opts.report.empty()) {
        const obs::RobustnessReport rob =
            robustness_from_campaign(cfg, result);
        obs::ReportConfig report_cfg;
        report_cfg.tool = "nucacheck";
        report_cfg.bench = "campaign";
        report_cfg.iterations = cfg.iterations;
        report_cfg.seed = cfg.first_seed;
        if (opts.report == "-") {
            obs::write_report(std::cout, report_cfg, {}, &rob);
        } else {
            std::ofstream out(opts.report);
            if (!out) {
                std::cerr << "nucacheck: cannot write " << opts.report
                          << "\n";
                return 2;
            }
            obs::write_report(out, report_cfg, {}, &rob);
        }
    }

    if (opts.expect_fail)
        return result.failures != 0 ? 0 : 1;
    return result.failures == 0 ? 0 : 1;
}

/** --structs planted-bug lock name: map writes skip the stripe lock. */
constexpr const char* kMapUnsyncName = "MAP_UNSYNC";

int
run_structs_mode(const Options& opts)
{
    // Setups: every lock kind (RH only on <=2 nodes), one named lock, or
    // the planted unsynchronized-map variant.
    std::vector<StructsCheckSetup> setups;
    StructsCheckSetup base;
    base.nodes = opts.nodes;
    base.cpus_per_node = opts.cpus_per_node;
    base.seed = opts.seed;
    if (opts.lock == "ALL") {
        for (LockKind kind : locks::all_lock_kinds()) {
            if (kind == LockKind::Rh && opts.nodes > 2)
                continue;
            StructsCheckSetup setup = base;
            setup.kind = kind;
            setups.push_back(setup);
        }
    } else if (opts.lock == kMapUnsyncName) {
#ifdef NUCALOCK_ENABLE_BROKEN_LOCKS
        StructsCheckSetup setup = base;
        setup.unsynchronized = true;
        setups.push_back(setup);
#else
        std::cerr << "nucacheck: built without NUCALOCK_BROKEN_LOCKS\n";
        return 2;
#endif
    } else {
        const auto kind = locks::parse_lock_name(opts.lock);
        if (!kind) {
            std::cerr << "nucacheck: unknown lock \"" << opts.lock << "\"\n";
            return 2;
        }
        StructsCheckSetup setup = base;
        setup.kind = *kind;
        setups.push_back(setup);
    }

    StructsCheckConfig cfg;
    cfg.executions = opts.schedules_set ? opts.schedules : 40;
    cfg.max_steps = opts.steps != 0 ? opts.steps : 200000;
    cfg.seed = opts.seed;
    // One setup shards its executions across host threads; a multi-lock
    // selection shards at the lock level instead (same idiom as PCT).
    const bool single = setups.size() == 1;
    cfg.jobs = single ? opts.jobs : 1;
    exec::Executor executor(single ? 1 : opts.jobs);
    const std::vector<StructsCheckResult> results =
        executor.map<StructsCheckResult>(setups.size(), [&](std::size_t i) {
            return structs_check(setups[i], cfg);
        });

    stats::Table table({"Lock", "runs", "fail", "truncated", "max steps",
                        "resizes", "migrated", "verdict"});
    std::uint64_t failing = 0;
    for (std::size_t i = 0; i < setups.size(); ++i) {
        const StructsCheckResult& r = results[i];
        const char* name = setups[i].unsynchronized
                               ? kMapUnsyncName
                               : locks::lock_name(setups[i].kind);
        if (r.failures != 0) {
            ++failing;
            std::cout << name << ":\n  failure: " << r.first_failure.what
                      << "\n  (" << sim::stop_reason_name(r.first_failure.stop)
                      << ", " << r.first_failure.steps << " steps, "
                      << r.first_failure.resize_epochs << " resize epoch"
                      << (r.first_failure.resize_epochs == 1 ? "" : "s")
                      << ")\n";
        }
        table.row()
            .cell(name)
            .cell(r.executions)
            .cell(r.failures)
            .cell(r.truncated)
            .cell(r.max_steps_seen)
            .cell(r.total_resize_epochs)
            .cell(r.total_migrated_keys)
            .cell(r.failures != 0 ? "FAIL" : "ok");
    }
    table.print(std::cout);
    std::cout << "structs: " << setups.size() << " lock"
              << (setups.size() == 1 ? "" : "s") << ", " << failing
              << " failing (" << (failing == 0 ? "ok" : "FAIL") << ")\n";

    if (opts.expect_fail)
        return failing != 0 ? 0 : 1;
    return failing == 0 ? 0 : 1;
}

int
run_check(const Options& opts)
{
    const Selection sel = select_locks(opts);
    if (!sel.ok) {
        std::cerr << "nucacheck: unknown lock \"" << opts.lock << "\"\n";
        return 2;
    }

    const bool exhaustive = opts.mode == "exhaustive";
    std::vector<std::string> headers =
        exhaustive ? std::vector<std::string>{"Lock", "runs", "pruned",
                                              "truncated", "exhausted",
                                              "max steps", "bypasses",
                                              "streak", "verdict"}
                   : std::vector<std::string>{"Lock", "runs", "truncated",
                                              "max steps", "bypasses",
                                              "streak", "verdict"};
    stats::Table table(headers);

    // Per-lock verdicts are independent deterministic checks: shard them
    // across host threads, then emit rows and failure handling sequentially
    // in lock order so the output is byte-identical at every --jobs level.
    // Exhaustive DFS is inherently sequential per lock (one shared schedule
    // stack), so only the lock level shards there; a single-lock PCT run
    // shards its randomized executions instead (PctConfig::jobs).
    const bool pct_single = !exhaustive && sel.setups.size() == 1;
    exec::Executor executor(pct_single ? 1 : opts.jobs);

    std::vector<std::uint64_t> failures(sel.setups.size(), 0);
    std::vector<RunReport> first_failures(sel.setups.size());
    if (exhaustive) {
        ExploreConfig cfg;
        cfg.max_schedules = opts.schedules;
        cfg.max_steps = opts.steps != 0 ? opts.steps : 5000;
        cfg.preemption_bound = opts.preemptions;
        const std::vector<ExploreResult> results =
            executor.map<ExploreResult>(sel.setups.size(), [&](std::size_t i) {
                return explore(sel.setups[i], cfg);
            });
        for (std::size_t i = 0; i < sel.setups.size(); ++i) {
            const ExploreResult& r = results[i];
            failures[i] = r.failures;
            first_failures[i] = r.first_failure;
            table.row()
                .cell(setup_name(sel.setups[i]))
                .cell(r.executions)
                .cell(r.pruned)
                .cell(r.truncated)
                .cell(r.exhausted ? "yes" : "no")
                .cell(r.max_steps_seen)
                .cell(r.max_bypasses)
                .cell(r.max_node_streak)
                .cell(r.failures != 0 ? "FAIL" : "ok");
        }
    } else {
        PctConfig cfg;
        cfg.executions = opts.pct_runs;
        cfg.depth = opts.pct_depth;
        cfg.max_steps = opts.steps != 0 ? opts.steps : 20000;
        cfg.seed = opts.seed;
        cfg.jobs = pct_single ? opts.jobs : 1;
        const std::vector<PctResult> results =
            executor.map<PctResult>(sel.setups.size(), [&](std::size_t i) {
                return pct_check(sel.setups[i], cfg);
            });
        for (std::size_t i = 0; i < sel.setups.size(); ++i) {
            const PctResult& r = results[i];
            failures[i] = r.failures;
            first_failures[i] = r.first_failure;
            table.row()
                .cell(setup_name(sel.setups[i]))
                .cell(r.executions)
                .cell(r.truncated)
                .cell(r.max_steps_seen)
                .cell(r.max_bypasses)
                .cell(r.max_node_streak)
                .cell(r.failures != 0 ? "FAIL" : "ok");
        }
    }

    std::uint64_t failing_locks = 0;
    bool failure_handling_ok = true;
    for (std::size_t i = 0; i < sel.setups.size(); ++i) {
        if (failures[i] == 0)
            continue;
        ++failing_locks;
        std::cout << setup_name(sel.setups[i]) << ":\n";
        if (!handle_failure(sel.setups[i], first_failures[i], opts.minimize))
            failure_handling_ok = false;
    }
    table.print(std::cout);

    if (opts.expect_fail)
        return failing_locks != 0 && failure_handling_ok ? 0 : 1;
    return failing_locks == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char** argv)
{
    Options opts;
    if (!parse_args(argc, argv, opts))
        return usage(std::cerr);
    if (!opts.replay.empty())
        return run_replay(opts);
    if (opts.campaign)
        return run_campaign_mode(opts);
    if (opts.structs)
        return run_structs_mode(opts);
    return run_check(opts);
}
