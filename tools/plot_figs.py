#!/usr/bin/env python3
"""Turn nucalock-bench-report JSON documents into the paper's figures.

Reads one or more versioned reports (schema ``nucalock-bench-report``,
written by ``nucabench --json``, ``nucaprof --json`` or any bench binary
run with ``NUCALOCK_BENCH_JSON``) and renders:

  fig5   ns/acquire per lock (bar chart; the new-benchmark headline)
  fig7   coherence traffic per acquisition, local vs global (grouped
         bars); when runs carry an available v6 ``native_traffic``
         object, the hardware-counter proxy rates are overlaid as
         markers on the same axis (simulated vs measured)
  fig8   fairness spread per lock (bar chart)
  kv     ns/op per lock per contention level for app-kv / bench_table_kv
         reports whose run names look like ``LOCK@level`` (grouped bars)

Usage:
  tools/plot_figs.py report.json [more.json ...] [--out-dir plots]
                     [--figs fig5,fig7,fig8,kv]

Plain matplotlib only — no other dependencies. When matplotlib is not
installed the script prints a note and exits 0, so CI and dev boxes
without it skip plotting gracefully rather than fail.
"""

import argparse
import json
import os
import sys

try:
    import matplotlib

    matplotlib.use("Agg")  # never require a display
    import matplotlib.pyplot as plt
except ImportError:
    print("plot_figs: matplotlib not installed; skipping plot generation")
    sys.exit(0)

KNOWN_FIGS = ("fig5", "fig7", "fig8", "kv")


def load_report(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "nucalock-bench-report":
        raise ValueError(f"{path}: not a nucalock-bench-report document")
    version = doc.get("schema_version")
    if not isinstance(version, (int, float)) or version < 2:
        raise ValueError(f"{path}: unsupported schema_version {version!r}")
    return doc


def run_rows(doc):
    """(name, result, traffic, structs, native) per run, skipping
    malformed rows. `native` is the v6 native_traffic object, or None
    when absent or carrying the unavailable marker."""
    for run in doc.get("runs", []):
        name = run.get("lock")
        result = run.get("result")
        if not name or not isinstance(result, dict):
            continue
        native = run.get("native_traffic")
        if not isinstance(native, dict) or not native.get("available"):
            native = None
        yield name, result, run.get("traffic") or {}, run.get("structs"), \
            native


def bar_chart(path, title, ylabel, labels, values, color="#4477aa"):
    fig, ax = plt.subplots(figsize=(max(6, 0.55 * len(labels)), 4))
    ax.bar(range(len(labels)), values, color=color)
    ax.set_xticks(range(len(labels)))
    ax.set_xticklabels(labels, rotation=60, ha="right", fontsize=8)
    ax.set_ylabel(ylabel)
    ax.set_title(title)
    fig.tight_layout()
    fig.savefig(path, dpi=120)
    plt.close(fig)
    print(f"wrote {path}")


def plot_fig5(doc, out_dir, stem):
    rows = [(n, r["avg_iteration_ns"]) for n, r, _, _, _ in run_rows(doc)]
    if not rows:
        return False
    bar_chart(
        os.path.join(out_dir, f"{stem}_fig5_ns_per_acquire.png"),
        f"ns per acquisition ({doc['config']['bench']}, "
        f"{doc['config']['threads']} threads)",
        "simulated ns / acquisition",
        [n for n, _ in rows],
        [v for _, v in rows],
    )
    return True


def plot_fig7(doc, out_dir, stem):
    rows = [
        (
            n,
            t.get("local_tx_per_acquisition", 0.0),
            t.get("global_tx_per_acquisition", 0.0),
            native,
        )
        for n, _, t, _, native in run_rows(doc)
    ]
    rows = [r for r in rows if r[1] or r[2] or r[3]]
    if not rows:
        return False
    labels = [n for n, _, _, _ in rows]
    xs = range(len(labels))
    width = 0.4
    fig, ax = plt.subplots(figsize=(max(6, 0.6 * len(labels)), 4))
    ax.bar([x - width / 2 for x in xs], [r[1] for r in rows], width,
           label="local", color="#4477aa")
    ax.bar([x + width / 2 for x in xs], [r[2] for r in rows], width,
           label="global", color="#ee6677")
    # Overlay the hardware-counter proxy rates (v6 native_traffic) as
    # markers over the corresponding bars, so simulated and measured
    # per-acquisition traffic read off the same axis.
    native_pts = [
        (x, r[3]) for x, r in zip(xs, rows) if r[3] is not None
    ]
    if native_pts:
        ax.scatter(
            [x - width / 2 for x, nt in native_pts],
            [nt.get("local_tx_per_acquisition", 0.0) for _, nt in native_pts],
            marker="D", color="#222255", zorder=3, label="local (native)")
        ax.scatter(
            [x + width / 2 for x, nt in native_pts],
            [nt.get("global_tx_per_acquisition", 0.0) for _, nt in native_pts],
            marker="D", color="#882222", zorder=3, label="global (native)")
    ax.set_xticks(list(xs))
    ax.set_xticklabels(labels, rotation=60, ha="right", fontsize=8)
    ax.set_ylabel("coherence tx / acquisition")
    ax.set_title("Coherence traffic per acquisition (local vs global)"
                 + (" — markers: hardware counters" if native_pts else ""))
    ax.legend()
    fig.tight_layout()
    path = os.path.join(out_dir, f"{stem}_fig7_traffic.png")
    fig.savefig(path, dpi=120)
    plt.close(fig)
    print(f"wrote {path}")
    return True


def plot_fig8(doc, out_dir, stem):
    rows = [(n, r["fairness_spread_pct"]) for n, r, _, _, _ in run_rows(doc)]
    if not rows:
        return False
    bar_chart(
        os.path.join(out_dir, f"{stem}_fig8_fairness.png"),
        "Fairness: per-thread acquisition spread",
        "spread (% of mean)",
        [n for n, _ in rows],
        [v for _, v in rows],
        color="#228833",
    )
    return True


def plot_kv(doc, out_dir, stem):
    """bench_table_kv shape: run names LOCK@level -> grouped bars."""
    by_lock = {}
    levels = []
    for name, result, _, _, _ in run_rows(doc):
        if "@" not in name:
            continue
        lock, level = name.split("@", 1)
        if level not in levels:
            levels.append(level)
        by_lock.setdefault(lock, {})[level] = result["avg_iteration_ns"]
    if not by_lock:
        return False
    locks = list(by_lock)
    width = 0.8 / len(levels)
    fig, ax = plt.subplots(figsize=(max(8, 0.8 * len(locks)), 4.5))
    for i, level in enumerate(levels):
        xs = [x + (i - (len(levels) - 1) / 2) * width
              for x in range(len(locks))]
        ax.bar(xs, [by_lock[lk].get(level, 0.0) for lk in locks], width,
               label=level)
    ax.set_xticks(range(len(locks)))
    ax.set_xticklabels(locks, rotation=60, ha="right", fontsize=8)
    ax.set_ylabel("simulated ns / KV service op")
    ax.set_title("Sharded-KV shootout: ns/op per lock per contention level")
    ax.legend(title="level")
    fig.tight_layout()
    path = os.path.join(out_dir, f"{stem}_kv_shootout.png")
    fig.savefig(path, dpi=120)
    plt.close(fig)
    print(f"wrote {path}")
    return True


PLOTTERS = {
    "fig5": plot_fig5,
    "fig7": plot_fig7,
    "fig8": plot_fig8,
    "kv": plot_kv,
}


def main():
    parser = argparse.ArgumentParser(
        description="Render nucalock-bench-report JSON files as figures.")
    parser.add_argument("reports", nargs="+", help="report JSON paths")
    parser.add_argument("--out-dir", default="plots",
                        help="output directory (default: plots/)")
    parser.add_argument("--figs", default=",".join(KNOWN_FIGS),
                        help="comma-separated subset of "
                             f"{','.join(KNOWN_FIGS)}")
    args = parser.parse_args()

    figs = [f for f in args.figs.split(",") if f]
    unknown = [f for f in figs if f not in PLOTTERS]
    if unknown:
        parser.error(f"unknown figure(s): {', '.join(unknown)}")

    os.makedirs(args.out_dir, exist_ok=True)
    wrote = 0
    for path in args.reports:
        try:
            doc = load_report(path)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"plot_figs: {err}", file=sys.stderr)
            return 1
        stem = os.path.splitext(os.path.basename(path))[0]
        for fig in figs:
            if PLOTTERS[fig](doc, args.out_dir, stem):
                wrote += 1
    if wrote == 0:
        print("plot_figs: no plottable runs found in the given reports")
    return 0


if __name__ == "__main__":
    sys.exit(main())
