# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_task_queue "/root/repo/build/examples/task_queue")
set_tests_properties(example_task_queue PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sim_explore "/root/repo/build/examples/sim_explore")
set_tests_properties(example_sim_explore PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lock_shootout "/root/repo/build/examples/lock_shootout" "4" "2000")
set_tests_properties(example_lock_shootout PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lock_stats "/root/repo/build/examples/lock_stats")
set_tests_properties(example_lock_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
