# Empty dependencies file for sim_explore.
# This may be replaced when dependencies are built.
