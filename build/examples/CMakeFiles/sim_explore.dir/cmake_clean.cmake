file(REMOVE_RECURSE
  "CMakeFiles/sim_explore.dir/sim_explore.cpp.o"
  "CMakeFiles/sim_explore.dir/sim_explore.cpp.o.d"
  "sim_explore"
  "sim_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
