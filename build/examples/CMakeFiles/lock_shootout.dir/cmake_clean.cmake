file(REMOVE_RECURSE
  "CMakeFiles/lock_shootout.dir/lock_shootout.cpp.o"
  "CMakeFiles/lock_shootout.dir/lock_shootout.cpp.o.d"
  "lock_shootout"
  "lock_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
