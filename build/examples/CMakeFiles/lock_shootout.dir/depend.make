# Empty dependencies file for lock_shootout.
# This may be replaced when dependencies are built.
