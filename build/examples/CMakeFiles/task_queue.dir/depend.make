# Empty dependencies file for task_queue.
# This may be replaced when dependencies are built.
