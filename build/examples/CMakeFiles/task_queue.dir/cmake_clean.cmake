file(REMOVE_RECURSE
  "CMakeFiles/task_queue.dir/task_queue.cpp.o"
  "CMakeFiles/task_queue.dir/task_queue.cpp.o.d"
  "task_queue"
  "task_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
