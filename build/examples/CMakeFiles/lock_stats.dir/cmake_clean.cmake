file(REMOVE_RECURSE
  "CMakeFiles/lock_stats.dir/lock_stats.cpp.o"
  "CMakeFiles/lock_stats.dir/lock_stats.cpp.o.d"
  "lock_stats"
  "lock_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
