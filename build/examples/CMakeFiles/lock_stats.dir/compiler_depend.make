# Empty compiler generated dependencies file for lock_stats.
# This may be replaced when dependencies are built.
