# Empty compiler generated dependencies file for nucabench.
# This may be replaced when dependencies are built.
