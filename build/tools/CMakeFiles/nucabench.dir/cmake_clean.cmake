file(REMOVE_RECURSE
  "CMakeFiles/nucabench.dir/nucabench.cpp.o"
  "CMakeFiles/nucabench.dir/nucabench.cpp.o.d"
  "nucabench"
  "nucabench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nucabench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
