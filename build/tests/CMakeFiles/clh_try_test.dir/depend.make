# Empty dependencies file for clh_try_test.
# This may be replaced when dependencies are built.
