file(REMOVE_RECURSE
  "CMakeFiles/clh_try_test.dir/clh_try_test.cpp.o"
  "CMakeFiles/clh_try_test.dir/clh_try_test.cpp.o.d"
  "clh_try_test"
  "clh_try_test.pdb"
  "clh_try_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clh_try_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
