# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for clh_try_test.
