# Empty compiler generated dependencies file for locks_sim_test.
# This may be replaced when dependencies are built.
