file(REMOVE_RECURSE
  "CMakeFiles/locks_sim_test.dir/locks_sim_test.cpp.o"
  "CMakeFiles/locks_sim_test.dir/locks_sim_test.cpp.o.d"
  "locks_sim_test"
  "locks_sim_test.pdb"
  "locks_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locks_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
