# Empty compiler generated dependencies file for instrumented_test.
# This may be replaced when dependencies are built.
