file(REMOVE_RECURSE
  "CMakeFiles/instrumented_test.dir/instrumented_test.cpp.o"
  "CMakeFiles/instrumented_test.dir/instrumented_test.cpp.o.d"
  "instrumented_test"
  "instrumented_test.pdb"
  "instrumented_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instrumented_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
