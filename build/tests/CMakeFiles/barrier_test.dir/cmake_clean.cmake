file(REMOVE_RECURSE
  "CMakeFiles/barrier_test.dir/barrier_test.cpp.o"
  "CMakeFiles/barrier_test.dir/barrier_test.cpp.o.d"
  "barrier_test"
  "barrier_test.pdb"
  "barrier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barrier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
