# Empty dependencies file for barrier_test.
# This may be replaced when dependencies are built.
