file(REMOVE_RECURSE
  "CMakeFiles/any_lock_test.dir/any_lock_test.cpp.o"
  "CMakeFiles/any_lock_test.dir/any_lock_test.cpp.o.d"
  "any_lock_test"
  "any_lock_test.pdb"
  "any_lock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/any_lock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
