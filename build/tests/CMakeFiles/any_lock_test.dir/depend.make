# Empty dependencies file for any_lock_test.
# This may be replaced when dependencies are built.
