file(REMOVE_RECURSE
  "CMakeFiles/locks_native_test.dir/locks_native_test.cpp.o"
  "CMakeFiles/locks_native_test.dir/locks_native_test.cpp.o.d"
  "locks_native_test"
  "locks_native_test.pdb"
  "locks_native_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/locks_native_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
