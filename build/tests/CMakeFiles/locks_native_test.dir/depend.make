# Empty dependencies file for locks_native_test.
# This may be replaced when dependencies are built.
