# Empty compiler generated dependencies file for memory_test.
# This may be replaced when dependencies are built.
