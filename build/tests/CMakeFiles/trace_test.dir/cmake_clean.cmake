file(REMOVE_RECURSE
  "CMakeFiles/trace_test.dir/trace_test.cpp.o"
  "CMakeFiles/trace_test.dir/trace_test.cpp.o.d"
  "trace_test"
  "trace_test.pdb"
  "trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
