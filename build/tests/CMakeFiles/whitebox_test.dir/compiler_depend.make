# Empty compiler generated dependencies file for whitebox_test.
# This may be replaced when dependencies are built.
