file(REMOVE_RECURSE
  "CMakeFiles/whitebox_test.dir/whitebox_test.cpp.o"
  "CMakeFiles/whitebox_test.dir/whitebox_test.cpp.o.d"
  "whitebox_test"
  "whitebox_test.pdb"
  "whitebox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whitebox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
