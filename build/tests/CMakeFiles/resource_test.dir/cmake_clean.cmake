file(REMOVE_RECURSE
  "CMakeFiles/resource_test.dir/resource_test.cpp.o"
  "CMakeFiles/resource_test.dir/resource_test.cpp.o.d"
  "resource_test"
  "resource_test.pdb"
  "resource_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
