file(REMOVE_RECURSE
  "CMakeFiles/paper_claims_test.dir/paper_claims_test.cpp.o"
  "CMakeFiles/paper_claims_test.dir/paper_claims_test.cpp.o.d"
  "paper_claims_test"
  "paper_claims_test.pdb"
  "paper_claims_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_claims_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
