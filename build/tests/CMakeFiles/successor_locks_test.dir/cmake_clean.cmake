file(REMOVE_RECURSE
  "CMakeFiles/successor_locks_test.dir/successor_locks_test.cpp.o"
  "CMakeFiles/successor_locks_test.dir/successor_locks_test.cpp.o.d"
  "successor_locks_test"
  "successor_locks_test.pdb"
  "successor_locks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/successor_locks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
