# Empty compiler generated dependencies file for successor_locks_test.
# This may be replaced when dependencies are built.
