# Empty dependencies file for fiber_test.
# This may be replaced when dependencies are built.
