file(REMOVE_RECURSE
  "CMakeFiles/fiber_test.dir/fiber_test.cpp.o"
  "CMakeFiles/fiber_test.dir/fiber_test.cpp.o.d"
  "fiber_test"
  "fiber_test.pdb"
  "fiber_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fiber_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
