
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/options_test.cpp" "tests/CMakeFiles/options_test.dir/options_test.cpp.o" "gcc" "tests/CMakeFiles/options_test.dir/options_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nucalock_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nucalock_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nucalock_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nucalock_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nucalock_native.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nucalock_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nucalock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
