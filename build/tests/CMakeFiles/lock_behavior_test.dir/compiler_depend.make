# Empty compiler generated dependencies file for lock_behavior_test.
# This may be replaced when dependencies are built.
