file(REMOVE_RECURSE
  "CMakeFiles/lock_behavior_test.dir/lock_behavior_test.cpp.o"
  "CMakeFiles/lock_behavior_test.dir/lock_behavior_test.cpp.o.d"
  "lock_behavior_test"
  "lock_behavior_test.pdb"
  "lock_behavior_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_behavior_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
