# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/fiber_test[1]_include.cmake")
include("/root/repo/build/tests/resource_test[1]_include.cmake")
include("/root/repo/build/tests/memory_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/locks_sim_test[1]_include.cmake")
include("/root/repo/build/tests/lock_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/locks_native_test[1]_include.cmake")
include("/root/repo/build/tests/barrier_test[1]_include.cmake")
include("/root/repo/build/tests/harness_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/any_lock_test[1]_include.cmake")
include("/root/repo/build/tests/options_test[1]_include.cmake")
include("/root/repo/build/tests/instrumented_test[1]_include.cmake")
include("/root/repo/build/tests/paper_claims_test[1]_include.cmake")
include("/root/repo/build/tests/successor_locks_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/whitebox_test[1]_include.cmake")
include("/root/repo/build/tests/clh_try_test[1]_include.cmake")
