file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_traditional.dir/bench/bench_fig3_traditional.cpp.o"
  "CMakeFiles/bench_fig3_traditional.dir/bench/bench_fig3_traditional.cpp.o.d"
  "bench/bench_fig3_traditional"
  "bench/bench_fig3_traditional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_traditional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
