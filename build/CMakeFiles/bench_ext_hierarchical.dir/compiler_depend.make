# Empty compiler generated dependencies file for bench_ext_hierarchical.
# This may be replaced when dependencies are built.
