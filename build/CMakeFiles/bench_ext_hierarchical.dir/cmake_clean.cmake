file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_hierarchical.dir/bench/bench_ext_hierarchical.cpp.o"
  "CMakeFiles/bench_ext_hierarchical.dir/bench/bench_ext_hierarchical.cpp.o.d"
  "bench/bench_ext_hierarchical"
  "bench/bench_ext_hierarchical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
