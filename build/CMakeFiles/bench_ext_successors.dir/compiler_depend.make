# Empty compiler generated dependencies file for bench_ext_successors.
# This may be replaced when dependencies are built.
