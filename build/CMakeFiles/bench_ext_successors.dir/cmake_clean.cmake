file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_successors.dir/bench/bench_ext_successors.cpp.o"
  "CMakeFiles/bench_ext_successors.dir/bench/bench_ext_successors.cpp.o.d"
  "bench/bench_ext_successors"
  "bench/bench_ext_successors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_successors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
