file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_apptraffic.dir/bench/bench_table6_apptraffic.cpp.o"
  "CMakeFiles/bench_table6_apptraffic.dir/bench/bench_table6_apptraffic.cpp.o.d"
  "bench/bench_table6_apptraffic"
  "bench/bench_table6_apptraffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_apptraffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
