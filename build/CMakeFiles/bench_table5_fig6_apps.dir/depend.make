# Empty dependencies file for bench_table5_fig6_apps.
# This may be replaced when dependencies are built.
