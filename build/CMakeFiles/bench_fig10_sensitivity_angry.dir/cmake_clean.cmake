file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_sensitivity_angry.dir/bench/bench_fig10_sensitivity_angry.cpp.o"
  "CMakeFiles/bench_fig10_sensitivity_angry.dir/bench/bench_fig10_sensitivity_angry.cpp.o.d"
  "bench/bench_fig10_sensitivity_angry"
  "bench/bench_fig10_sensitivity_angry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_sensitivity_angry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
