# Empty dependencies file for bench_fig10_sensitivity_angry.
# This may be replaced when dependencies are built.
