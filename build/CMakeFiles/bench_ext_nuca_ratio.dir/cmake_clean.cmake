file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_nuca_ratio.dir/bench/bench_ext_nuca_ratio.cpp.o"
  "CMakeFiles/bench_ext_nuca_ratio.dir/bench/bench_ext_nuca_ratio.cpp.o.d"
  "bench/bench_ext_nuca_ratio"
  "bench/bench_ext_nuca_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_nuca_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
