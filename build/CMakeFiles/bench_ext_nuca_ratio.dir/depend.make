# Empty dependencies file for bench_ext_nuca_ratio.
# This may be replaced when dependencies are built.
