file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_fairness.dir/bench/bench_fig8_fairness.cpp.o"
  "CMakeFiles/bench_fig8_fairness.dir/bench/bench_fig8_fairness.cpp.o.d"
  "bench/bench_fig8_fairness"
  "bench/bench_fig8_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
