# Empty dependencies file for bench_table3_appstats.
# This may be replaced when dependencies are built.
