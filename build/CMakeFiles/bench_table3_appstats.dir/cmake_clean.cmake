file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_appstats.dir/bench/bench_table3_appstats.cpp.o"
  "CMakeFiles/bench_table3_appstats.dir/bench/bench_table3_appstats.cpp.o.d"
  "bench/bench_table3_appstats"
  "bench/bench_table3_appstats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_appstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
