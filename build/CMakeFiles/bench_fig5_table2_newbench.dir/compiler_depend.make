# Empty compiler generated dependencies file for bench_fig5_table2_newbench.
# This may be replaced when dependencies are built.
