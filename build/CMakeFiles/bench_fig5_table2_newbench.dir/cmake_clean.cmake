file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_table2_newbench.dir/bench/bench_fig5_table2_newbench.cpp.o"
  "CMakeFiles/bench_fig5_table2_newbench.dir/bench/bench_fig5_table2_newbench.cpp.o.d"
  "bench/bench_fig5_table2_newbench"
  "bench/bench_fig5_table2_newbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_table2_newbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
