file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_fig7_raytrace.dir/bench/bench_table4_fig7_raytrace.cpp.o"
  "CMakeFiles/bench_table4_fig7_raytrace.dir/bench/bench_table4_fig7_raytrace.cpp.o.d"
  "bench/bench_table4_fig7_raytrace"
  "bench/bench_table4_fig7_raytrace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_fig7_raytrace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
