# Empty dependencies file for bench_table4_fig7_raytrace.
# This may be replaced when dependencies are built.
