# Empty dependencies file for bench_native_locks.
# This may be replaced when dependencies are built.
