file(REMOVE_RECURSE
  "CMakeFiles/bench_native_locks.dir/bench/bench_native_locks.cpp.o"
  "CMakeFiles/bench_native_locks.dir/bench/bench_native_locks.cpp.o.d"
  "bench/bench_native_locks"
  "bench/bench_native_locks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_native_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
