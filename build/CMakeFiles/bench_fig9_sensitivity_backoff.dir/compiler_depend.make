# Empty compiler generated dependencies file for bench_fig9_sensitivity_backoff.
# This may be replaced when dependencies are built.
