file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_sensitivity_backoff.dir/bench/bench_fig9_sensitivity_backoff.cpp.o"
  "CMakeFiles/bench_fig9_sensitivity_backoff.dir/bench/bench_fig9_sensitivity_backoff.cpp.o.d"
  "bench/bench_fig9_sensitivity_backoff"
  "bench/bench_fig9_sensitivity_backoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sensitivity_backoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
