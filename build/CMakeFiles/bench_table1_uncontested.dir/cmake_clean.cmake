file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_uncontested.dir/bench/bench_table1_uncontested.cpp.o"
  "CMakeFiles/bench_table1_uncontested.dir/bench/bench_table1_uncontested.cpp.o.d"
  "bench/bench_table1_uncontested"
  "bench/bench_table1_uncontested.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_uncontested.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
