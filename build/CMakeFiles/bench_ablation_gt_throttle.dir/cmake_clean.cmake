file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gt_throttle.dir/bench/bench_ablation_gt_throttle.cpp.o"
  "CMakeFiles/bench_ablation_gt_throttle.dir/bench/bench_ablation_gt_throttle.cpp.o.d"
  "bench/bench_ablation_gt_throttle"
  "bench/bench_ablation_gt_throttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gt_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
