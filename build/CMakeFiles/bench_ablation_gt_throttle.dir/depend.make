# Empty dependencies file for bench_ablation_gt_throttle.
# This may be replaced when dependencies are built.
