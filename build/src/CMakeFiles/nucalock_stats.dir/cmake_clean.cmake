file(REMOVE_RECURSE
  "CMakeFiles/nucalock_stats.dir/stats/csv.cpp.o"
  "CMakeFiles/nucalock_stats.dir/stats/csv.cpp.o.d"
  "CMakeFiles/nucalock_stats.dir/stats/table.cpp.o"
  "CMakeFiles/nucalock_stats.dir/stats/table.cpp.o.d"
  "libnucalock_stats.a"
  "libnucalock_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nucalock_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
