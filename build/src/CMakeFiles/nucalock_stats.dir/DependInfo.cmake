
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/csv.cpp" "src/CMakeFiles/nucalock_stats.dir/stats/csv.cpp.o" "gcc" "src/CMakeFiles/nucalock_stats.dir/stats/csv.cpp.o.d"
  "/root/repo/src/stats/table.cpp" "src/CMakeFiles/nucalock_stats.dir/stats/table.cpp.o" "gcc" "src/CMakeFiles/nucalock_stats.dir/stats/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nucalock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
