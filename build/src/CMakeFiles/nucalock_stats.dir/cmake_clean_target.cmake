file(REMOVE_RECURSE
  "libnucalock_stats.a"
)
