# Empty dependencies file for nucalock_stats.
# This may be replaced when dependencies are built.
