
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/affinity.cpp" "src/CMakeFiles/nucalock_topology.dir/topology/affinity.cpp.o" "gcc" "src/CMakeFiles/nucalock_topology.dir/topology/affinity.cpp.o.d"
  "/root/repo/src/topology/host.cpp" "src/CMakeFiles/nucalock_topology.dir/topology/host.cpp.o" "gcc" "src/CMakeFiles/nucalock_topology.dir/topology/host.cpp.o.d"
  "/root/repo/src/topology/mapping.cpp" "src/CMakeFiles/nucalock_topology.dir/topology/mapping.cpp.o" "gcc" "src/CMakeFiles/nucalock_topology.dir/topology/mapping.cpp.o.d"
  "/root/repo/src/topology/topology.cpp" "src/CMakeFiles/nucalock_topology.dir/topology/topology.cpp.o" "gcc" "src/CMakeFiles/nucalock_topology.dir/topology/topology.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nucalock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
