file(REMOVE_RECURSE
  "libnucalock_topology.a"
)
