# Empty compiler generated dependencies file for nucalock_topology.
# This may be replaced when dependencies are built.
