file(REMOVE_RECURSE
  "CMakeFiles/nucalock_topology.dir/topology/affinity.cpp.o"
  "CMakeFiles/nucalock_topology.dir/topology/affinity.cpp.o.d"
  "CMakeFiles/nucalock_topology.dir/topology/host.cpp.o"
  "CMakeFiles/nucalock_topology.dir/topology/host.cpp.o.d"
  "CMakeFiles/nucalock_topology.dir/topology/mapping.cpp.o"
  "CMakeFiles/nucalock_topology.dir/topology/mapping.cpp.o.d"
  "CMakeFiles/nucalock_topology.dir/topology/topology.cpp.o"
  "CMakeFiles/nucalock_topology.dir/topology/topology.cpp.o.d"
  "libnucalock_topology.a"
  "libnucalock_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nucalock_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
