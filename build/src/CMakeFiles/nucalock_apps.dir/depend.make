# Empty dependencies file for nucalock_apps.
# This may be replaced when dependencies are built.
