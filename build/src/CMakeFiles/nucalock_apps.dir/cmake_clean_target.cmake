file(REMOVE_RECURSE
  "libnucalock_apps.a"
)
