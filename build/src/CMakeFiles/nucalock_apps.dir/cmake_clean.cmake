file(REMOVE_RECURSE
  "CMakeFiles/nucalock_apps.dir/apps/app_runner.cpp.o"
  "CMakeFiles/nucalock_apps.dir/apps/app_runner.cpp.o.d"
  "CMakeFiles/nucalock_apps.dir/apps/raytrace.cpp.o"
  "CMakeFiles/nucalock_apps.dir/apps/raytrace.cpp.o.d"
  "CMakeFiles/nucalock_apps.dir/apps/workload.cpp.o"
  "CMakeFiles/nucalock_apps.dir/apps/workload.cpp.o.d"
  "libnucalock_apps.a"
  "libnucalock_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nucalock_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
