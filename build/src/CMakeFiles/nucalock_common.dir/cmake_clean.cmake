file(REMOVE_RECURSE
  "CMakeFiles/nucalock_common.dir/common/env.cpp.o"
  "CMakeFiles/nucalock_common.dir/common/env.cpp.o.d"
  "CMakeFiles/nucalock_common.dir/common/logging.cpp.o"
  "CMakeFiles/nucalock_common.dir/common/logging.cpp.o.d"
  "libnucalock_common.a"
  "libnucalock_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nucalock_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
