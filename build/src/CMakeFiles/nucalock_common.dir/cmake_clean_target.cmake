file(REMOVE_RECURSE
  "libnucalock_common.a"
)
