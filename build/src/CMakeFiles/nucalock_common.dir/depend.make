# Empty dependencies file for nucalock_common.
# This may be replaced when dependencies are built.
