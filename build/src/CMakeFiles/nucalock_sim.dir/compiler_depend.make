# Empty compiler generated dependencies file for nucalock_sim.
# This may be replaced when dependencies are built.
