file(REMOVE_RECURSE
  "libnucalock_sim.a"
)
