file(REMOVE_RECURSE
  "CMakeFiles/nucalock_sim.dir/sim/engine.cpp.o"
  "CMakeFiles/nucalock_sim.dir/sim/engine.cpp.o.d"
  "CMakeFiles/nucalock_sim.dir/sim/fiber.cpp.o"
  "CMakeFiles/nucalock_sim.dir/sim/fiber.cpp.o.d"
  "CMakeFiles/nucalock_sim.dir/sim/latency.cpp.o"
  "CMakeFiles/nucalock_sim.dir/sim/latency.cpp.o.d"
  "CMakeFiles/nucalock_sim.dir/sim/memory.cpp.o"
  "CMakeFiles/nucalock_sim.dir/sim/memory.cpp.o.d"
  "CMakeFiles/nucalock_sim.dir/sim/resource.cpp.o"
  "CMakeFiles/nucalock_sim.dir/sim/resource.cpp.o.d"
  "CMakeFiles/nucalock_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/nucalock_sim.dir/sim/trace.cpp.o.d"
  "libnucalock_sim.a"
  "libnucalock_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nucalock_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
