
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/nucalock_sim.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/nucalock_sim.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/fiber.cpp" "src/CMakeFiles/nucalock_sim.dir/sim/fiber.cpp.o" "gcc" "src/CMakeFiles/nucalock_sim.dir/sim/fiber.cpp.o.d"
  "/root/repo/src/sim/latency.cpp" "src/CMakeFiles/nucalock_sim.dir/sim/latency.cpp.o" "gcc" "src/CMakeFiles/nucalock_sim.dir/sim/latency.cpp.o.d"
  "/root/repo/src/sim/memory.cpp" "src/CMakeFiles/nucalock_sim.dir/sim/memory.cpp.o" "gcc" "src/CMakeFiles/nucalock_sim.dir/sim/memory.cpp.o.d"
  "/root/repo/src/sim/resource.cpp" "src/CMakeFiles/nucalock_sim.dir/sim/resource.cpp.o" "gcc" "src/CMakeFiles/nucalock_sim.dir/sim/resource.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/nucalock_sim.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/nucalock_sim.dir/sim/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nucalock_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nucalock_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nucalock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
