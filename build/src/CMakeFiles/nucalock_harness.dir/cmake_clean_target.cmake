file(REMOVE_RECURSE
  "libnucalock_harness.a"
)
