
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/fairness.cpp" "src/CMakeFiles/nucalock_harness.dir/harness/fairness.cpp.o" "gcc" "src/CMakeFiles/nucalock_harness.dir/harness/fairness.cpp.o.d"
  "/root/repo/src/harness/newbench.cpp" "src/CMakeFiles/nucalock_harness.dir/harness/newbench.cpp.o" "gcc" "src/CMakeFiles/nucalock_harness.dir/harness/newbench.cpp.o.d"
  "/root/repo/src/harness/options.cpp" "src/CMakeFiles/nucalock_harness.dir/harness/options.cpp.o" "gcc" "src/CMakeFiles/nucalock_harness.dir/harness/options.cpp.o.d"
  "/root/repo/src/harness/sensitivity.cpp" "src/CMakeFiles/nucalock_harness.dir/harness/sensitivity.cpp.o" "gcc" "src/CMakeFiles/nucalock_harness.dir/harness/sensitivity.cpp.o.d"
  "/root/repo/src/harness/traditional.cpp" "src/CMakeFiles/nucalock_harness.dir/harness/traditional.cpp.o" "gcc" "src/CMakeFiles/nucalock_harness.dir/harness/traditional.cpp.o.d"
  "/root/repo/src/harness/uncontested.cpp" "src/CMakeFiles/nucalock_harness.dir/harness/uncontested.cpp.o" "gcc" "src/CMakeFiles/nucalock_harness.dir/harness/uncontested.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nucalock_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nucalock_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nucalock_native.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nucalock_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/nucalock_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
