# Empty dependencies file for nucalock_harness.
# This may be replaced when dependencies are built.
