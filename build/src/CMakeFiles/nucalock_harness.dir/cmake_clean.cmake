file(REMOVE_RECURSE
  "CMakeFiles/nucalock_harness.dir/harness/fairness.cpp.o"
  "CMakeFiles/nucalock_harness.dir/harness/fairness.cpp.o.d"
  "CMakeFiles/nucalock_harness.dir/harness/newbench.cpp.o"
  "CMakeFiles/nucalock_harness.dir/harness/newbench.cpp.o.d"
  "CMakeFiles/nucalock_harness.dir/harness/options.cpp.o"
  "CMakeFiles/nucalock_harness.dir/harness/options.cpp.o.d"
  "CMakeFiles/nucalock_harness.dir/harness/sensitivity.cpp.o"
  "CMakeFiles/nucalock_harness.dir/harness/sensitivity.cpp.o.d"
  "CMakeFiles/nucalock_harness.dir/harness/traditional.cpp.o"
  "CMakeFiles/nucalock_harness.dir/harness/traditional.cpp.o.d"
  "CMakeFiles/nucalock_harness.dir/harness/uncontested.cpp.o"
  "CMakeFiles/nucalock_harness.dir/harness/uncontested.cpp.o.d"
  "libnucalock_harness.a"
  "libnucalock_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nucalock_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
