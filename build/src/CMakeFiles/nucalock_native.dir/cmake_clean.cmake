file(REMOVE_RECURSE
  "CMakeFiles/nucalock_native.dir/native/machine.cpp.o"
  "CMakeFiles/nucalock_native.dir/native/machine.cpp.o.d"
  "libnucalock_native.a"
  "libnucalock_native.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nucalock_native.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
