# Empty compiler generated dependencies file for nucalock_native.
# This may be replaced when dependencies are built.
