file(REMOVE_RECURSE
  "libnucalock_native.a"
)
