/**
 * @file
 * Domain example: a work-stealing task queue guarded by NUCA-aware locks
 * on real threads — the structure of SPLASH-2 Raytrace, and the workload
 * where the paper's locks shine.
 *
 * Each worker owns a queue of tasks (here: chunks of a numerical
 * integration); when its queue runs dry it steals from a victim. Queue
 * locks and the shared progress counter use HBO_GT locks so that, on a
 * NUCA host, handovers stay inside a node whenever possible.
 */
#include <cmath>
#include <cstdio>
#include <deque>
#include <vector>

#include "locks/guard.hpp"
#include "locks/hbo_gt.hpp"
#include "native/machine.hpp"
#include "topology/host.hpp"

namespace {

using namespace nucalock;
using namespace nucalock::native;
using namespace nucalock::locks;

struct Task
{
    double begin;
    double end;
};

/** One queue per worker, each guarded by its own lock. */
struct WorkQueue
{
    explicit WorkQueue(NativeMachine& machine) : lock(machine) {}

    HboGtLock<NativeContext> lock;
    std::deque<Task> tasks;
};

double
integrate(const Task& task)
{
    // f(x) = 4 / (1 + x^2): integrates to pi over [0, 1].
    constexpr int kSteps = 20'000;
    const double h = (task.end - task.begin) / kSteps;
    double acc = 0.0;
    for (int i = 0; i < kSteps; ++i) {
        const double x = task.begin + (i + 0.5) * h;
        acc += 4.0 / (1.0 + x * x) * h;
    }
    return acc;
}

} // namespace

int
main()
{
    // Use the real host layout when it is big enough; otherwise lay a
    // 2x2 logical NUCA over it (threads timeshare, spin loops yield).
    const HostLayout host = discover_host();
    const Topology topology = host.topology.num_cpus() >= 4
                                  ? host.topology
                                  : Topology::symmetric(2, 2);
    NativeMachine machine(topology);
    const int workers = std::min(4, machine.max_threads());

    std::vector<std::unique_ptr<WorkQueue>> queues;
    for (int w = 0; w < workers; ++w)
        queues.push_back(std::make_unique<WorkQueue>(machine));

    // Carve [0, 1] into many small integration tasks, dealt round-robin.
    constexpr int kTasks = 512;
    for (int t = 0; t < kTasks; ++t) {
        const double lo = static_cast<double>(t) / kTasks;
        const double hi = static_cast<double>(t + 1) / kTasks;
        queues[static_cast<std::size_t>(t % workers)]->tasks.push_back(
            Task{lo, hi});
    }

    // Shared result accumulator behind its own NUCA-aware lock.
    HboGtLock<NativeContext> result_lock(machine);
    double pi = 0.0;
    std::vector<std::uint64_t> stolen(static_cast<std::size_t>(workers), 0);

    machine.run_threads(workers, Placement::RoundRobinNodes,
                        [&](NativeContext& ctx, int me) {
        while (true) {
            Task task{};
            bool got = false;
            for (int probe = 0; probe < workers && !got; ++probe) {
                auto& q = *queues[static_cast<std::size_t>((me + probe) % workers)];
                LockGuard guard(q.lock, ctx);
                if (!q.tasks.empty()) {
                    task = q.tasks.front();
                    q.tasks.pop_front();
                    got = true;
                    if (probe != 0)
                        ++stolen[static_cast<std::size_t>(me)];
                }
            }
            if (!got)
                return;

            const double part = integrate(task);
            LockGuard guard(result_lock, ctx);
            pi += part;
        }
    });

    std::uint64_t total_stolen = 0;
    for (std::uint64_t s : stolen)
        total_stolen += s;
    std::printf("workers=%d tasks=%d stolen=%llu\n", workers, kTasks,
                static_cast<unsigned long long>(total_stolen));
    std::printf("pi ~= %.9f (error %.2e)\n", pi, std::fabs(pi - M_PI));
    return std::fabs(pi - M_PI) < 1e-6 ? 0 : 1;
}
