/**
 * @file
 * Domain example: use the NUCA simulator as a design-exploration tool.
 *
 * Question a systems designer might ask: "my service protects a hot hash
 * bucket with one lock — what happens to lock handover cost and coherence
 * traffic if I move from a flat 16-core SMP to two 8-core NUCA nodes, and
 * which lock should I use?" Three lines of setup per scenario answer it
 * with deterministic, reproducible numbers.
 */
#include <cstdio>
#include <iostream>

#include "locks/any_lock.hpp"
#include "sim/engine.hpp"
#include "stats/table.hpp"

namespace {

using namespace nucalock;
using namespace nucalock::locks;
using namespace nucalock::sim;

struct Scenario
{
    const char* name;
    Topology topology;
    LatencyModel latency;
};

/** Contended hot-bucket update: 16 threads, 8-line record, light think. */
void
run_scenario(const Scenario& scenario, stats::Table& table)
{
    for (LockKind kind : {LockKind::TatasExp, LockKind::Mcs, LockKind::HboGtSd}) {
        SimMachine machine(scenario.topology, scenario.latency);
        AnyLock<SimContext> lock(machine, kind);
        const MemRef record = machine.alloc_array(8, 0, 0);

        std::uint64_t acquires = 0;
        machine.add_threads(16, Placement::RoundRobinNodes,
                            [&](SimContext& ctx, int) {
                                for (int i = 0; i < 300; ++i) {
                                    lock.acquire(ctx);
                                    ++acquires;
                                    ctx.touch_array(record, 8, true);
                                    lock.release(ctx);
                                    ctx.delay(1500);
                                    ctx.delay(ctx.rng().next_below(1500));
                                }
                            });
        machine.run();

        table.row()
            .cell(scenario.name)
            .cell(lock.name())
            .cell(static_cast<double>(machine.now()) /
                      static_cast<double>(acquires),
                  0)
            .cell(static_cast<double>(machine.traffic().global_tx) /
                      static_cast<double>(acquires),
                  2);
    }
}

} // namespace

int
main()
{
    std::printf("Hot-bucket design exploration (16 threads, 300 updates "
                "each):\n\n");

    const Scenario scenarios[] = {
        {"flat 1x16 SMP", Topology::symmetric(1, 16), LatencyModel::flat_smp()},
        {"NUCA 2x8 (ratio ~3.5)", Topology::symmetric(2, 8),
         LatencyModel::wildfire()},
        {"NUCA 2x8 (ratio 10)", Topology::symmetric(2, 8),
         LatencyModel::numaq()},
    };

    stats::Table table({"Machine", "Lock", "ns/update", "global tx/update"});
    for (const Scenario& s : scenarios)
        run_scenario(s, table);
    table.print(std::cout);

    // Bonus: the simulator's end-of-run stats dump for one configuration.
    std::printf("\nmachine stats for 'NUCA 2x8 ratio 10' + HBO_GT_SD:\n");
    SimMachine machine(Topology::symmetric(2, 8), LatencyModel::numaq());
    AnyLock<SimContext> lock(machine, LockKind::HboGtSd);
    const MemRef record = machine.alloc_array(8, 0, 0);
    machine.add_threads(16, Placement::RoundRobinNodes,
                        [&](SimContext& ctx, int) {
                            for (int i = 0; i < 300; ++i) {
                                lock.acquire(ctx);
                                ctx.touch_array(record, 8, true);
                                lock.release(ctx);
                                ctx.delay(1500);
                                ctx.delay(ctx.rng().next_below(1500));
                            }
                        });
    machine.run();
    machine.print_stats(std::cout);
    return 0;
}
