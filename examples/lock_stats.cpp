/**
 * @file
 * Domain example: profile a contended lock with InstrumentedLock and the
 * simulator's access tracer — the workflow for answering "is this lock a
 * bottleneck, and is it fair?" before touching production code.
 *
 * Scenario: a shared LRU-ish metadata table protected by one lock, updated
 * by 16 threads across two NUCA nodes. We print wait/hold-time percentiles
 * and node-handoff behaviour for two candidate locks, plus the first lines
 * of a raw lock-word trace.
 */
#include <iostream>
#include <sstream>

#include "locks/hbo_gt_sd.hpp"
#include "locks/instrumented.hpp"
#include "locks/mcs.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "stats/table.hpp"

namespace {

using namespace nucalock;
using namespace nucalock::locks;
using namespace nucalock::sim;

template <typename Lock>
void
profile(const char* name, stats::Table& table, bool dump_trace)
{
    SimMachine machine(Topology::wildfire(8));
    const std::uint32_t first_line = machine.memory().num_lines();
    InstrumentedLock<Lock, SimContext> lock(machine);

    TraceRecorder recorder;
    recorder.watch_only({MemRef{first_line}});
    if (dump_trace)
        machine.memory().set_trace_hook(recorder.hook());

    const MemRef table_data = machine.alloc_array(24, 0, 0);
    machine.add_threads(16, Placement::RoundRobinNodes,
                        [&](SimContext& ctx, int) {
                            ctx.delay(ctx.rng().next_below(6000));
                            for (int i = 0; i < 120; ++i) {
                                lock.acquire(ctx);
                                ctx.touch_array(table_data, 24, true);
                                lock.release(ctx);
                                ctx.delay(3000);
                                ctx.delay(ctx.rng().next_below(3000));
                            }
                        });
    machine.run();

    const LockStats& s = lock.stats();
    table.row()
        .cell(name)
        .cell(s.acquisitions)
        .cell(s.wait_ns.percentile(50), 0)
        .cell(s.wait_ns.percentile(99), 0)
        .cell(s.hold_ns.percentile(50), 0)
        .cell(100.0 * static_cast<double>(s.contended_acquisitions) /
                  static_cast<double>(s.acquisitions),
              1)
        .cell(s.handoff_ratio(), 3);

    if (dump_trace) {
        std::ostringstream oss;
        recorder.dump_csv(oss);
        std::istringstream lines(oss.str());
        std::string line;
        std::cout << "first lock-word trace records (" << name << "):\n";
        for (int i = 0; i < 6 && std::getline(lines, line); ++i)
            std::cout << "  " << line << "\n";
        std::cout << "  ... (" << recorder.events().size() << " events)\n\n";
    }
}

} // namespace

int
main()
{
    std::cout << "Lock profile: shared metadata table, 16 threads, 2-node "
                 "NUCA\n\n";
    stats::Table table({"Lock", "acquires", "wait p50 (ns)", "wait p99 (ns)",
                        "hold p50 (ns)", "contended %", "node handoff"});
    profile<McsLock<SimContext>>("MCS", table, false);
    profile<HboGtSdLock<SimContext>>("HBO_GT_SD", table, true);
    table.print(std::cout);
    return 0;
}
