/**
 * @file
 * Quickstart: protect a shared counter with an HBO_GT_SD lock on real
 * threads (native backend), using a logical NUCA layout over the host.
 *
 * Build and run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */
#include <cstdio>
#include <vector>

#include "locks/guard.hpp"
#include "locks/hbo_gt_sd.hpp"
#include "native/machine.hpp"
#include "topology/host.hpp"

int
main()
{
    using namespace nucalock;
    using namespace nucalock::native;
    using namespace nucalock::locks;

    // Describe the machine. On a real NUMA host, discover_host() gives the
    // true layout; here we always get something usable (a flat host is
    // treated as one node, or split it logically with logical_host(n)).
    const HostLayout host = discover_host();
    std::printf("host: %s\n", host.topology.describe().c_str());

    NativeMachine machine(host.topology);

    // The lock: the paper's HBO_GT_SD. One shared word plus one gate word
    // per node; cas is the only atomic primitive it needs.
    HboGtSdLock<NativeContext> lock(machine);

    const NativeRef counter = machine.alloc(0);
    constexpr int kThreads = 4;
    constexpr int kIncrements = 100'000;

    const int threads = std::min(kThreads, machine.max_threads());
    machine.run_threads(threads, Placement::RoundRobinNodes,
                        [&](NativeContext& ctx, int) {
                            for (int i = 0; i < kIncrements; ++i) {
                                LockGuard guard(lock, ctx);
                                // Non-atomic RMW, safe only under the lock.
                                ctx.store(counter, ctx.load(counter) + 1);
                            }
                        });

    NativeContext main_ctx = machine.make_context(0, 0);
    const std::uint64_t total = main_ctx.load(counter);
    std::printf("counter = %llu (expected %llu)\n",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(threads) * kIncrements);
    return total == static_cast<std::uint64_t>(threads) * kIncrements ? 0 : 1;
}
