/**
 * @file
 * Domain example: compare every lock in the library on the host machine
 * (native backend) under a tunable producer/consumer-style workload, and
 * print a ranked table. Demonstrates the AnyLock runtime registry and the
 * logical-node mapping for flat hosts.
 *
 * Usage: lock_shootout [threads] [iterations]
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "locks/any_lock.hpp"
#include "native/machine.hpp"
#include "stats/table.hpp"
#include "topology/host.hpp"

int
main(int argc, char** argv)
{
    using namespace nucalock;
    using namespace nucalock::native;
    using namespace nucalock::locks;
    using Clock = std::chrono::steady_clock;

    // Lay two logical NUCA nodes over the host so the NUCA-aware locks
    // have node ids to work with even on a flat machine. If the host has
    // fewer than four cpus, overcommit a 2x2 logical layout — threads then
    // timeshare (the spin loops yield), which still exercises every lock.
    const HostLayout discovered = discover_host();
    const Topology topology = discovered.topology.num_cpus() >= 4
                                  ? logical_host(2).topology
                                  : Topology::symmetric(2, 2);
    NativeMachine machine(topology);

    const int threads =
        argc > 1 ? std::atoi(argv[1])
                 : std::min(4, machine.max_threads());
    const int iterations = argc > 2 ? std::atoi(argv[2]) : 20'000;
    if (threads < 1 || threads > machine.max_threads() || iterations < 1) {
        std::fprintf(stderr, "usage: %s [threads<=%d] [iterations]\n", argv[0],
                     machine.max_threads());
        return 2;
    }
    std::printf("host: %s; running as: %s, %d threads, %d iterations each\n\n",
                discovered.topology.describe().c_str(),
                topology.describe().c_str(), threads, iterations);

    stats::Table table({"Lock", "total ms", "ns/op", "final counter"});
    for (LockKind kind : all_lock_kinds()) {
        if (kind == LockKind::Rh && topology.num_nodes() > 2)
            continue; // RH is a two-node design
        AnyLock<NativeContext> lock(machine, kind);
        const NativeRef counter = machine.alloc(0);

        const auto start = Clock::now();
        machine.run_threads(threads, Placement::RoundRobinNodes,
                            [&](NativeContext& ctx, int) {
                                for (int i = 0; i < iterations; ++i) {
                                    lock.acquire(ctx);
                                    ctx.store(counter, ctx.load(counter) + 1);
                                    lock.release(ctx);
                                }
                            });
        const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now() - start);

        NativeContext main_ctx = machine.make_context(0, 0);
        const std::uint64_t total = main_ctx.load(counter);
        const auto expected =
            static_cast<std::uint64_t>(threads) *
            static_cast<std::uint64_t>(iterations);
        table.row()
            .cell(lock.name())
            .cell(static_cast<double>(elapsed.count()) / 1e6, 1)
            .cell(static_cast<double>(elapsed.count()) /
                      static_cast<double>(expected),
                  0)
            .cell(total == expected ? std::to_string(total) + " OK"
                                    : std::to_string(total) + " MISMATCH");
        if (total != expected)
            return 1;
    }
    table.print(std::cout);
    return 0;
}
