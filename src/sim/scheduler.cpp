#include "sim/scheduler.hpp"

namespace nucalock::sim {

const char*
sched_op_name(SchedOp op)
{
    switch (op) {
      case SchedOp::ThreadStart: return "start";
      case SchedOp::Load: return "load";
      case SchedOp::Store: return "store";
      case SchedOp::Cas: return "cas";
      case SchedOp::Swap: return "swap";
      case SchedOp::Tas: return "tas";
      case SchedOp::Delay: return "delay";
      case SchedOp::Wakeup: return "wakeup";
      case SchedOp::CsWaitBegin: return "cs-wait";
      case SchedOp::CsWaitAbort: return "cs-abort";
      case SchedOp::CsEnter: return "cs-enter";
      case SchedOp::CsExit: return "cs-exit";
    }
    return "?";
}

const char*
stop_reason_name(StopReason reason)
{
    switch (reason) {
      case StopReason::Completed: return "completed";
      case StopReason::Deadlock: return "deadlock";
      case StopReason::SchedulerStop: return "scheduler-stop";
      case StopReason::TimeLimit: return "time-limit";
    }
    return "?";
}

} // namespace nucalock::sim
