/**
 * @file
 * Coherence traffic accounting, matching the paper's local / global
 * transaction counts (Tables 2 and 6), plus the attribution layer that
 * tags each transaction with the lock and lock-operation phase that
 * generated it (the Figure 7 traffic story).
 */
#ifndef NUCALOCK_SIM_TRAFFIC_HPP
#define NUCALOCK_SIM_TRAFFIC_HPP

#include <array>
#include <cstdint>
#include <vector>

namespace nucalock::sim {

/**
 * Transaction counters. A transaction that crosses the inter-node link is
 * global; one contained within a node (node-local cache-to-cache transfer,
 * local memory fetch, intra-node invalidation) is local. Cache hits are not
 * transactions.
 *
 * The by-cause breakdown partitions the same transactions: every counted
 * transaction is exactly one of data_fetch_tx / invalidation_tx /
 * atomic_tx, so data_fetch_tx + invalidation_tx + atomic_tx ==
 * local_tx + global_tx always holds (pinned by tests/traffic_test.cpp).
 */
struct TrafficStats
{
    std::uint64_t local_tx = 0;
    std::uint64_t global_tx = 0;

    // Breakdown by cause, for diagnostics and the ablation benches.
    std::uint64_t data_fetch_tx = 0;
    std::uint64_t invalidation_tx = 0;
    std::uint64_t atomic_tx = 0;

    std::uint64_t total() const { return local_tx + global_tx; }

    TrafficStats
    operator-(const TrafficStats& rhs) const
    {
        TrafficStats d;
        d.local_tx = local_tx - rhs.local_tx;
        d.global_tx = global_tx - rhs.global_tx;
        d.data_fetch_tx = data_fetch_tx - rhs.data_fetch_tx;
        d.invalidation_tx = invalidation_tx - rhs.invalidation_tx;
        d.atomic_tx = atomic_tx - rhs.atomic_tx;
        return d;
    }
};

/**
 * The lock-operation phase a coherence transaction is attributed to. Set
 * through the per-thread op-context by the probe layer (obs/probe.hpp maps
 * lock events to phases); None when no phase information is available
 * (probes compiled out, or traffic outside any lock operation, e.g. the
 * harness's own bookkeeping words).
 *
 * Attribution is labelling only: it never feeds back into timing or lock
 * behaviour, so the TrafficStats totals are bit-identical whether phases
 * are tracked or not (-DNUCALOCK_NO_PROBES drops the attribution, never
 * the counts).
 */
enum class TxPhase : std::uint8_t
{
    None = 0,    ///< no op-context available
    AcquireSpin, ///< between an acquire attempt and the acquisition
    Handover,    ///< first access after a releaser's store woke the spinner
    Critical,    ///< lock held: critical-section data traffic
    Release,     ///< from the release until the next acquire attempt
    GatePublish, ///< GT throttle gate maintenance (publish / reopen store)
};

inline constexpr int kNumTxPhases = 6;

/** Printable phase mnemonic (stable — used in reports and tests). */
inline const char*
tx_phase_name(TxPhase phase)
{
    switch (phase) {
      case TxPhase::None: return "none";
      case TxPhase::AcquireSpin: return "acquire_spin";
      case TxPhase::Handover: return "handover";
      case TxPhase::Critical: return "critical";
      case TxPhase::Release: return "release";
      case TxPhase::GatePublish: return "gate_publish";
    }
    return "?";
}

/** A local/global transaction pair (one cell of an attribution table). */
struct TxCount
{
    std::uint64_t local_tx = 0;
    std::uint64_t global_tx = 0;

    std::uint64_t total() const { return local_tx + global_tx; }

    TxCount&
    operator+=(const TxCount& rhs)
    {
        local_tx += rhs.local_tx;
        global_tx += rhs.global_tx;
        return *this;
    }
};

/** Traffic attributed to one lock, split by operation phase. */
struct LockTrafficStats
{
    /** The lock's probe identity (its primary word's Ref token). */
    std::uint64_t lock_id = 0;
    /** Indexed by TxPhase (None slot stays empty for attributed locks). */
    std::array<TxCount, kNumTxPhases> by_phase{};

    const TxCount&
    phase(TxPhase p) const
    {
        return by_phase[static_cast<std::size_t>(p)];
    }

    TxCount
    totals() const
    {
        TxCount t;
        for (const TxCount& c : by_phase)
            t += c;
        return t;
    }
};

/**
 * The full attribution snapshot of a run: per-lock/per-phase tables (only
 * populated while an op-context is set, i.e. with probes compiled in) and
 * per-node initiator counts (always populated — they are part of the
 * determinism contract and never vanish under -DNUCALOCK_NO_PROBES).
 */
struct TrafficAttribution
{
    /** Sorted by lock_id. Empty when no transaction carried a lock id. */
    std::vector<LockTrafficStats> per_lock;
    /** Indexed by initiating node. */
    std::vector<TxCount> per_node;

    /** Sum over every attributed (lock, phase) cell. */
    TxCount
    attributed_totals() const
    {
        TxCount t;
        for (const LockTrafficStats& lock : per_lock)
            t += lock.totals();
        return t;
    }
};

} // namespace nucalock::sim

#endif // NUCALOCK_SIM_TRAFFIC_HPP
