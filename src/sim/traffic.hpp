/**
 * @file
 * Coherence traffic accounting, matching the paper's local / global
 * transaction counts (Tables 2 and 6).
 */
#ifndef NUCALOCK_SIM_TRAFFIC_HPP
#define NUCALOCK_SIM_TRAFFIC_HPP

#include <cstdint>

namespace nucalock::sim {

/**
 * Transaction counters. A transaction that crosses the inter-node link is
 * global; one contained within a node (node-local cache-to-cache transfer,
 * local memory fetch, intra-node invalidation) is local. Cache hits are not
 * transactions.
 */
struct TrafficStats
{
    std::uint64_t local_tx = 0;
    std::uint64_t global_tx = 0;

    // Breakdown by cause, for diagnostics and the ablation benches.
    std::uint64_t data_fetch_tx = 0;
    std::uint64_t invalidation_tx = 0;
    std::uint64_t atomic_tx = 0;

    std::uint64_t total() const { return local_tx + global_tx; }

    TrafficStats
    operator-(const TrafficStats& rhs) const
    {
        TrafficStats d;
        d.local_tx = local_tx - rhs.local_tx;
        d.global_tx = global_tx - rhs.global_tx;
        d.data_fetch_tx = data_fetch_tx - rhs.data_fetch_tx;
        d.invalidation_tx = invalidation_tx - rhs.invalidation_tx;
        d.atomic_tx = atomic_tx - rhs.atomic_tx;
        return d;
    }
};

} // namespace nucalock::sim

#endif // NUCALOCK_SIM_TRAFFIC_HPP
