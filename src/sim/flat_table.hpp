/**
 * @file
 * Open-addressing table for per-lock traffic attribution rows.
 *
 * The attribution hot path (SimMemory::count_tx) needs "the row for lock L"
 * on every counted transaction. A `std::map` put a red-black-tree walk plus
 * pointer-chasing node layout on that path; this table is a power-of-two
 * array of (key, row-index) slots probed linearly, with the rows themselves
 * in one contiguous vector. Row indices are stable across growth (only the
 * slot array rehashes), so the caller may cache the index of the current
 * lock and hit the row with a single vector load.
 */
#ifndef NUCALOCK_SIM_FLAT_TABLE_HPP
#define NUCALOCK_SIM_FLAT_TABLE_HPP

#include <cstdint>
#include <vector>

#include "common/logging.hpp"
#include "sim/traffic.hpp"

namespace nucalock::sim {

class FlatTrafficTable
{
  public:
    /** @p initial_slots is rounded up to a power of two (tests use small
     *  values to force probing and growth; the default fits most runs). */
    explicit FlatTrafficTable(std::uint32_t initial_slots = 64)
    {
        std::uint32_t cap = 8;
        while (cap < initial_slots)
            cap *= 2;
        slots_.assign(cap, Slot{});
    }

    /**
     * Index of the row for @p lock_id (nonzero), inserting a fresh row when
     * absent. The index is stable for the table's lifetime — growth rehashes
     * only the slot array, never moves or renumbers rows.
     */
    std::uint32_t
    index_of(std::uint64_t lock_id)
    {
        NUCA_ASSERT(lock_id != 0, "lock id 0 is the unattributed sentinel");
        if ((rows_.size() + 1) * 4 > slots_.size() * 3)
            grow();
        const std::uint32_t mask =
            static_cast<std::uint32_t>(slots_.size()) - 1;
        std::uint32_t i = static_cast<std::uint32_t>(mix(lock_id)) & mask;
        while (true) {
            Slot& slot = slots_[i];
            if (slot.key == lock_id)
                return slot.index;
            if (slot.key == 0) {
                slot.key = lock_id;
                slot.index = static_cast<std::uint32_t>(rows_.size());
                LockTrafficStats row;
                row.lock_id = lock_id;
                rows_.push_back(row);
                return slot.index;
            }
            i = (i + 1) & mask;
        }
    }

    LockTrafficStats& row(std::uint32_t index) { return rows_[index]; }

    /** All rows, in insertion order (attribution snapshots sort a copy). */
    const std::vector<LockTrafficStats>& rows() const { return rows_; }

    std::size_t size() const { return rows_.size(); }
    /** Current slot-array capacity (tests pin the growth path). */
    std::size_t slot_capacity() const { return slots_.size(); }

  private:
    struct Slot
    {
        std::uint64_t key = 0; // 0 = empty (lock id 0 is never stored)
        std::uint32_t index = 0;
    };

    /** splitmix64 finalizer: avalanches the line-token keys, which are
     *  small consecutive integers, across the whole word. */
    static std::uint64_t
    mix(std::uint64_t x)
    {
        x ^= x >> 30;
        x *= 0xbf58476d1ce4e5b9ULL;
        x ^= x >> 27;
        x *= 0x94d049bb133111ebULL;
        x ^= x >> 31;
        return x;
    }

    void
    grow()
    {
        std::vector<Slot> old = std::move(slots_);
        slots_.assign(old.size() * 2, Slot{});
        const std::uint32_t mask =
            static_cast<std::uint32_t>(slots_.size()) - 1;
        for (const Slot& slot : old) {
            if (slot.key == 0)
                continue;
            std::uint32_t i = static_cast<std::uint32_t>(mix(slot.key)) & mask;
            while (slots_[i].key != 0)
                i = (i + 1) & mask;
            slots_[i] = slot;
        }
    }

    std::vector<Slot> slots_;
    std::vector<LockTrafficStats> rows_;
};

} // namespace nucalock::sim

#endif // NUCALOCK_SIM_FLAT_TABLE_HPP
