/**
 * @file
 * Chunked arena for simulator objects that are allocated incrementally and
 * addressed by dense index.
 *
 * `std::vector<Line>` storage for the memory model had two costs at big
 * topologies: every growth realloc copies all existing lines (the structs
 * workloads allocate lines mid-run, so this happens while the simulation is
 * hot), and the copy invalidates any reference held across an alloc. The
 * arena allocates fixed-size chunks and never moves an element once placed:
 * growth is one chunk allocation, references are stable for the arena's
 * lifetime, and indexing is a shift/mask plus two dependent loads (the
 * chunk-pointer array is a few cache lines even at a million elements).
 */
#ifndef NUCALOCK_SIM_ARENA_HPP
#define NUCALOCK_SIM_ARENA_HPP

#include <cstddef>
#include <memory>
#include <vector>

#include "common/logging.hpp"

namespace nucalock::sim {

/**
 * Index-addressed chunked arena. Elements are value-initialized per chunk
 * and never move; @p kChunkPow is the log2 of the chunk size in elements.
 */
template <typename T, std::size_t kChunkPow = 12>
class ChunkArena
{
  public:
    static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkPow;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T&
    operator[](std::size_t i)
    {
        NUCA_ASSERT(i < size_, "arena index ", i, " of ", size_);
        return chunks_[i >> kChunkPow][i & (kChunkSize - 1)];
    }

    const T&
    operator[](std::size_t i) const
    {
        NUCA_ASSERT(i < size_, "arena index ", i, " of ", size_);
        return chunks_[i >> kChunkPow][i & (kChunkSize - 1)];
    }

    /** Append a copy of @p value; the returned reference never moves. */
    T&
    push_back(const T& value)
    {
        if (size_ == chunks_.size() * kChunkSize)
            chunks_.push_back(std::make_unique<T[]>(kChunkSize));
        T& slot = chunks_[size_ >> kChunkPow][size_ & (kChunkSize - 1)];
        slot = value;
        ++size_;
        return slot;
    }

    /** Chunks currently allocated (tests). */
    std::size_t num_chunks() const { return chunks_.size(); }

  private:
    std::vector<std::unique_ptr<T[]>> chunks_;
    std::size_t size_ = 0;
};

} // namespace nucalock::sim

#endif // NUCALOCK_SIM_ARENA_HPP
