/**
 * @file
 * Controlled-scheduler hook for systematic concurrency checking.
 *
 * Installing a Scheduler on a SimMachine replaces the engine's timing-driven
 * min-wake-time policy with explicit scheduling decisions: every memory
 * operation, backoff delay, and critical-section marker becomes a decision
 * point where the scheduler picks which runnable thread performs its pending
 * operation next. The simulated clock still advances (so acquire_for
 * deadlines stay meaningful), but it no longer decides the interleaving —
 * the scheduler does, which is what makes bounded exhaustive exploration,
 * PCT-style randomized priority scheduling, and bit-identical replay of a
 * recorded schedule possible (see src/check/).
 *
 * Semantics of a decision point: a thread yields *before* performing its
 * next visible operation and advertises that operation (a PendingOp), so
 * the scheduler sees, for every runnable thread, what it would do if picked.
 * Picking a thread executes exactly that one operation plus any invisible
 * host-side code up to the thread's next decision point. Threads parked on
 * a line watcher (spin_while_equal) are not runnable and are therefore not
 * offered; they rejoin the candidate set when a write wakes them.
 */
#ifndef NUCALOCK_SIM_SCHEDULER_HPP
#define NUCALOCK_SIM_SCHEDULER_HPP

#include <cstdint>
#include <vector>

#include "sim/memory.hpp"
#include "sim/time.hpp"

namespace nucalock::sim {

/**
 * The operation a thread will perform when scheduled next. Load..Tas mirror
 * MemOp; the rest are the non-memory decision points.
 */
enum class SchedOp : std::uint8_t
{
    ThreadStart, // fiber not yet started; first pick runs it to its first op
    Load,
    Store,
    Cas,
    Swap,
    Tas,
    Delay,     // backoff / private work: a *voluntary* yield point
    Wakeup,    // woken from a line watcher; next pick re-polls the line
    CsWaitBegin,
    CsWaitAbort,
    CsEnter,
    CsExit,
};

/** Printable name ("load", "cas", "delay", ...). */
const char* sched_op_name(SchedOp op);

/** Pending operation of a runnable thread: kind plus the line it touches
 *  (MemRef::kInvalid for non-memory operations). */
struct PendingOp
{
    SchedOp op = SchedOp::ThreadStart;
    std::uint32_t line = MemRef::kInvalid;
};

/** True for operations that write (or may write) the line: any of these by
 *  one thread does not commute with any same-line access by another. */
inline bool
sched_op_writes(SchedOp op)
{
    // A failed cas still takes the line exclusively (see sim/memory.hpp),
    // so for dependence purposes every RMW counts as a write.
    return op == SchedOp::Store || op == SchedOp::Cas || op == SchedOp::Swap ||
           op == SchedOp::Tas;
}

/** True for memory operations (the ones carrying a meaningful line). */
inline bool
sched_op_is_mem(SchedOp op)
{
    return op == SchedOp::Load || sched_op_writes(op);
}

/** True for critical-section markers (they mutate the invariant checker's
 *  global holder/wait state, so their mutual order is observable). */
inline bool
sched_op_is_cs_marker(SchedOp op)
{
    return op == SchedOp::CsWaitBegin || op == SchedOp::CsWaitAbort ||
           op == SchedOp::CsEnter || op == SchedOp::CsExit;
}

/** True when the thread *chose* to give up the cpu (backoff delay, watcher
 *  wakeup): switching away here is not a preemption, and a controlled
 *  scheduler must switch away from a delaying thread eventually or a
 *  backoff spin loop livelocks the schedule. */
inline bool
sched_op_is_yield(SchedOp op)
{
    return op == SchedOp::Delay || op == SchedOp::Wakeup ||
           op == SchedOp::ThreadStart;
}

/**
 * Conservative dependence (non-commutativity) relation used for sleep-set
 * pruning: two pending operations are dependent iff reordering them could
 * change any observable outcome. Memory ops conflict on the same line when
 * at least one writes; CS markers conflict with each other (the checker's
 * verdict depends on their order); everything else is local.
 */
inline bool
sched_ops_dependent(const PendingOp& a, const PendingOp& b)
{
    if (sched_op_is_mem(a.op) && sched_op_is_mem(b.op))
        return a.line == b.line && (sched_op_writes(a.op) || sched_op_writes(b.op));
    if (sched_op_is_cs_marker(a.op) && sched_op_is_cs_marker(b.op))
        return true;
    return false;
}

/** One schedulable candidate offered to the scheduler. */
struct SchedChoice
{
    int tid = -1;
    PendingOp op;
};

/** Why a controlled run() returned (timed runs still panic instead). */
enum class StopReason
{
    Completed,     // every thread finished
    Deadlock,      // threads remain but none is runnable
    SchedulerStop, // the scheduler returned kStopRun (step budget, etc.)
    TimeLimit,     // simulated time exceeded SimConfig::max_sim_time
};

/** Printable name ("completed", "deadlock", ...). */
const char* stop_reason_name(StopReason reason);

/** Sentinel a Scheduler returns from pick() to abort the run gracefully. */
inline constexpr int kStopRun = -1;

/**
 * Scheduling strategy interface. Implementations (src/check/) must be
 * deterministic functions of their own state and the offered candidates —
 * that is what makes recorded schedules replay bit-identically.
 */
class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    /**
     * Choose the next thread to run. @p runnable is nonempty and sorted by
     * tid; return one of its tids, or kStopRun to end the run (the engine
     * then reports StopReason::SchedulerStop).
     */
    virtual int pick(SimTime now, const std::vector<SchedChoice>& runnable) = 0;
};

} // namespace nucalock::sim

#endif // NUCALOCK_SIM_SCHEDULER_HPP
