#include "sim/fiber.hpp"

#include <cstdint>

#include "common/logging.hpp"

namespace nucalock::sim {

Fiber::Fiber(Entry entry, std::size_t stack_bytes)
    : entry_(std::move(entry)), stack_(new char[stack_bytes])
{
    NUCA_ASSERT(entry_ != nullptr);
    NUCA_ASSERT(stack_bytes >= 16 * 1024, "fiber stack too small");

    if (getcontext(&context_) != 0)
        NUCA_PANIC("getcontext failed");
    context_.uc_stack.ss_sp = stack_.get();
    context_.uc_stack.ss_size = stack_bytes;
    context_.uc_link = &caller_;

    // makecontext only passes ints, so split `this` across two of them.
    const auto self = reinterpret_cast<std::uintptr_t>(this);
    const auto hi = static_cast<unsigned int>(self >> 32);
    const auto lo = static_cast<unsigned int>(self & 0xffffffffu);
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                hi, lo);
}

void
Fiber::trampoline(unsigned int hi, unsigned int lo)
{
    const auto self = (static_cast<std::uintptr_t>(hi) << 32) |
                      static_cast<std::uintptr_t>(lo);
    reinterpret_cast<Fiber*>(self)->run();
}

void
Fiber::run()
{
    entry_();
    finished_ = true;
    // Falling off the end returns to uc_link (== caller_).
}

void
Fiber::resume()
{
    NUCA_ASSERT(!finished_, "resume of finished fiber");
    NUCA_ASSERT(!inside_, "recursive resume");
    started_ = true;
    inside_ = true;
    if (swapcontext(&caller_, &context_) != 0)
        NUCA_PANIC("swapcontext into fiber failed");
    inside_ = false;
}

void
Fiber::yield()
{
    NUCA_ASSERT(inside_, "yield outside of fiber");
    if (swapcontext(&context_, &caller_) != 0)
        NUCA_PANIC("swapcontext out of fiber failed");
}

} // namespace nucalock::sim
