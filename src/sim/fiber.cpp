#include "sim/fiber.hpp"

#include <cstdint>

#include "common/logging.hpp"
#include "sim/stack_pool.hpp"

// ThreadSanitizer has to be told about manual context switches, or it sees
// one host thread's shadow stack teleporting between fiber stacks and
// reports bogus races. Annotations are compiled in only under TSan; the
// normal build pays nothing.
#if defined(__SANITIZE_THREAD__)
#define NUCALOCK_TSAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NUCALOCK_TSAN_FIBERS 1
#endif
#endif

#ifdef NUCALOCK_TSAN_FIBERS
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

#ifdef NUCALOCK_FIBER_FAST_SWITCH

/**
 * Save the SysV callee-saved GPRs on the current stack, park the stack
 * pointer in *save_sp, switch to restore_sp and pop the same registers.
 * The xmm registers are caller-saved, and nothing in the simulator changes
 * mxcsr/x87 control modes or the signal mask, so none of those are touched
 * — that omission (vs swapcontext) is the entire speedup.
 */
extern "C" void nucalock_fiber_swap(void** save_sp, void* restore_sp);

// clang-format off
asm(R"(
        .text
        .align  16
        .globl  nucalock_fiber_swap
        .hidden nucalock_fiber_swap
        .type   nucalock_fiber_swap, @function
nucalock_fiber_swap:
        endbr64
        pushq   %rbp
        pushq   %rbx
        pushq   %r12
        pushq   %r13
        pushq   %r14
        pushq   %r15
        movq    %rsp, (%rdi)
        movq    %rsi, %rsp
        popq    %r15
        popq    %r14
        popq    %r13
        popq    %r12
        popq    %rbx
        popq    %rbp
        ret
        .size   nucalock_fiber_swap, . - nucalock_fiber_swap

        /* First activation of a fiber "returns" here (the constructor
           plants this address as the return address on the fresh stack,
           and the Fiber* in the r12 slot). */
        .align  16
        .globl  nucalock_fiber_thunk
        .hidden nucalock_fiber_thunk
        .type   nucalock_fiber_thunk, @function
nucalock_fiber_thunk:
        endbr64
        movq    %r12, %rdi
        callq   nucalock_fiber_entry
        ud2
        .size   nucalock_fiber_thunk, . - nucalock_fiber_thunk
)");
// clang-format on

extern "C" void nucalock_fiber_thunk();

extern "C" void
nucalock_fiber_entry(void* fiber)
{
    static_cast<nucalock::sim::Fiber*>(fiber)->run();
    __builtin_trap(); // run() never returns on this path
}

#endif // NUCALOCK_FIBER_FAST_SWITCH

namespace nucalock::sim {

Fiber::Fiber(Entry entry, std::size_t stack_bytes)
    : entry_(std::move(entry)), stack_(StackPool::acquire(stack_bytes)),
      stack_bytes_(stack_bytes)
{
    NUCA_ASSERT(entry_ != nullptr);
    NUCA_ASSERT(stack_bytes >= 16 * 1024, "fiber stack too small");

#ifdef NUCALOCK_FIBER_FAST_SWITCH
    // Build the stack image nucalock_fiber_swap will "return" into: six
    // callee-saved register slots (r12 carries `this` to the thunk) below
    // the thunk's address. The return-address slot sits at B-8 for a
    // 16-aligned B, so the thunk starts with rsp % 16 == 0 — the state the
    // ABI prescribes immediately before a call instruction.
    //
    // The top is slid down by a per-stack color (0..63 cache lines, hashed
    // from the base address): equal-size stacks otherwise put every
    // fiber's active frames at the same address modulo the cache-set
    // stride, and at 1024 fibers (big-topology runs) the stack tops all
    // collide on a handful of L1/L2 sets — the coloring spreads them. It
    // changes host addresses only; simulated results don't see it.
    const std::uintptr_t color =
        ((reinterpret_cast<std::uintptr_t>(stack_) *
          std::uintptr_t{0x9E3779B97F4A7C15ull}) >>
         58)
        << 6;
    std::uintptr_t top =
        ((reinterpret_cast<std::uintptr_t>(stack_) + stack_bytes) &
         ~std::uintptr_t{15}) -
        color;
    auto* sp = reinterpret_cast<std::uint64_t*>(top);
    *--sp = reinterpret_cast<std::uint64_t>(&nucalock_fiber_thunk);
    *--sp = 0;                                      // rbp
    *--sp = 0;                                      // rbx
    *--sp = reinterpret_cast<std::uint64_t>(this);  // r12
    *--sp = 0;                                      // r13
    *--sp = 0;                                      // r14
    *--sp = 0;                                      // r15
    switch_sp_ = sp;
#else
    if (getcontext(&context_) != 0)
        NUCA_PANIC("getcontext failed");
    context_.uc_stack.ss_sp = stack_;
    context_.uc_stack.ss_size = stack_bytes;
    context_.uc_link = &caller_;

    // makecontext only passes ints, so split `this` across two of them.
    const auto self = reinterpret_cast<std::uintptr_t>(this);
    const auto hi = static_cast<unsigned int>(self >> 32);
    const auto lo = static_cast<unsigned int>(self & 0xffffffffu);
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                hi, lo);
#endif

#ifdef NUCALOCK_TSAN_FIBERS
    tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber()
{
#ifdef NUCALOCK_TSAN_FIBERS
    if (tsan_fiber_ != nullptr)
        __tsan_destroy_fiber(tsan_fiber_);
#endif
    StackPool::release(stack_, stack_bytes_);
}

#ifndef NUCALOCK_FIBER_FAST_SWITCH
void
Fiber::trampoline(unsigned int hi, unsigned int lo)
{
    const auto self = (static_cast<std::uintptr_t>(hi) << 32) |
                      static_cast<std::uintptr_t>(lo);
    reinterpret_cast<Fiber*>(self)->run();
}
#endif

void
Fiber::run()
{
    entry_();
    finished_ = true;
#ifdef NUCALOCK_TSAN_FIBERS
    // The switch below bypasses yield(), so announce it here.
    __tsan_switch_to_fiber(tsan_caller_, 0);
#endif
#ifdef NUCALOCK_FIBER_FAST_SWITCH
    // Final switch back to the resumer; the fiber is never entered again
    // (resume() asserts !finished_), so the saved sp is write-only.
    nucalock_fiber_swap(&switch_sp_, caller_sp_);
#endif
    // ucontext path: falling off the end returns to uc_link (== caller_).
}

void
Fiber::resume()
{
    NUCA_ASSERT(!finished_, "resume of finished fiber");
    NUCA_ASSERT(!inside_, "recursive resume");
    started_ = true;
    inside_ = true;
#ifdef NUCALOCK_TSAN_FIBERS
    tsan_caller_ = __tsan_get_current_fiber();
    __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
#ifdef NUCALOCK_FIBER_FAST_SWITCH
    nucalock_fiber_swap(&caller_sp_, switch_sp_);
#else
    if (swapcontext(&caller_, &context_) != 0)
        NUCA_PANIC("swapcontext into fiber failed");
#endif
    inside_ = false;
}

void
Fiber::yield()
{
    NUCA_ASSERT(inside_, "yield outside of fiber");
#ifdef NUCALOCK_TSAN_FIBERS
    __tsan_switch_to_fiber(tsan_caller_, 0);
#endif
#ifdef NUCALOCK_FIBER_FAST_SWITCH
    nucalock_fiber_swap(&switch_sp_, caller_sp_);
#else
    if (swapcontext(&context_, &caller_) != 0)
        NUCA_PANIC("swapcontext out of fiber failed");
#endif
}

} // namespace nucalock::sim
