/**
 * @file
 * The discrete-event simulation engine: simulated threads on fibers, a
 * deterministic scheduler, and the per-thread SimContext through which lock
 * algorithms issue memory operations.
 */
#ifndef NUCALOCK_SIM_ENGINE_HPP
#define NUCALOCK_SIM_ENGINE_HPP

#include <functional>
#include <memory>
#include <ostream>
#include <vector>

#include "common/rng.hpp"
#include "sim/fiber.hpp"
#include "sim/latency.hpp"
#include "sim/memory.hpp"
#include "sim/ready_queue.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "topology/mapping.hpp"
#include "topology/topology.hpp"

namespace nucalock::obs {
class ProbeSink;
}

namespace nucalock::sim {

class SimMachine;
class FaultInjector;
class InvariantChecker;

/**
 * Exit status used by panic_with_diagnosis (deadlock, livelock watchdog,
 * invariant violation with a full diagnosis attached). Distinct from the
 * bare panic() abort (SIGABRT) and from fatal()'s exit(1), so CI can tell
 * "a checked property failed" from "the simulator itself crashed". When the
 * NUCALOCK_DIAG_JSON environment variable names a file, the diagnosis is
 * also written there as a machine-readable JSON report.
 */
inline constexpr int kDiagnosisExitCode = 86;

/** Engine-level configuration. */
struct SimConfig
{
    /** Seed for every per-thread generator; same seed => same run. */
    std::uint64_t seed = 1;

    /**
     * OS-preemption injection (off by default). When enabled, each thread
     * is descheduled for @ref preempt_duration roughly every
     * @ref preempt_mean_interval of its own progress (exponentially
     * distributed). This models the multiprogramming noise behind the
     * paper's Table 4 queue-lock collapse at 30 cpus.
     */
    bool preemption = false;
    SimTime preempt_mean_interval = 40'000'000; // 40 ms
    SimTime preempt_duration = 10'000'000;      // 10 ms

    /** Guard against livelock: run() panics past this simulated time. */
    SimTime max_sim_time = 500ULL * 1000 * 1000 * 1000; // 500 simulated s

    std::size_t fiber_stack_bytes = Fiber::kDefaultStackBytes;
};

/**
 * Per-thread handle the lock algorithms are written against. Models the
 * LockContext concept (see locks/context.hpp); the native backend provides
 * the same interface over std::atomic.
 */
class SimContext
{
  public:
    using Machine = SimMachine;
    using Ref = MemRef;

    int thread_id() const { return tid_; }
    int cpu() const { return cpu_; }
    int node() const { return node_; }
    int chip() const { return chip_; }
    int num_nodes() const;

    Machine& machine() { return *machine_; }
    Xoshiro256& rng() { return rng_; }
    SimTime now() const;

    std::uint64_t load(Ref ref);
    void store(Ref ref, std::uint64_t value);

    /**
     * Observability-only read: the word's current value without coherence
     * traffic, latency, or any effect on the simulation. Never use from
     * lock algorithms proper — only from probes (obs/probe.hpp), which
     * must not perturb the run they observe.
     */
    std::uint64_t peek(Ref ref) const;

    /** The machine's installed probe sink (nullptr = observability off). */
    obs::ProbeSink* probe_sink() const;
    /** Compare-and-swap; returns the previous value (paper semantics). */
    std::uint64_t cas(Ref ref, std::uint64_t expected, std::uint64_t desired);
    std::uint64_t swap(Ref ref, std::uint64_t value);
    /** test&set: writes nonzero, returns previous value. */
    std::uint64_t tas(Ref ref);

    /**
     * Spin while the word equals @p value; returns the first differing
     * value observed. Equivalent to a polling load loop, but the simulator
     * blocks the thread and wakes it when another cpu writes the line.
     */
    std::uint64_t spin_while_equal(Ref ref, std::uint64_t value);

    /** Busy-wait for @p iterations empty loop iterations (backoff delay). */
    void delay(std::uint64_t iterations);
    /** Busy-wait for @p ns nanoseconds of private work. */
    void delay_ns(SimTime ns);

    /**
     * Read (and, when @p write, also increment) @p count consecutive words
     * starting at @p first — the critical-section data access of the
     * microbenchmarks, batched into one engine event for speed.
     */
    void touch_array(Ref first, std::uint32_t count, bool write);

    /**
     * Traffic-attribution op-context (observability only; see
     * sim/traffic.hpp). The probe layer calls set_op_phase() on lock
     * events so every subsequent coherence transaction is attributed to
     * @p lock_id in @p phase; set_transient_phase() overrides the phase
     * for the next single access (a GT gate publish/reopen store).
     * Labelling never changes timing or values — with probes compiled out
     * these are simply never called and traffic stays unattributed.
     */
    void
    set_op_phase(std::uint64_t lock_id, TxPhase phase)
    {
        op_lock_ = lock_id;
        op_phase_ = phase;
    }

    void set_transient_phase(TxPhase phase) { op_transient_ = phase; }

    /**
     * Critical-section markers for the robustness subsystem (all no-ops
     * unless an InvariantChecker or FaultInjector is installed; they never
     * consume simulated time by themselves). Call cs_wait_begin() before
     * starting an acquire, cs_enter() once the lock is held, cs_exit()
     * before releasing. cs_enter() is also the holder-preemption injection
     * point, so an injected holder fault deschedules the thread here.
     */
    void cs_wait_begin();
    /** A bounded wait gave up (acquire_for timeout) without entering. */
    void cs_wait_abort();
    void cs_enter();
    void cs_exit();

  private:
    friend class SimMachine;

    SimMachine* machine_ = nullptr;
    int tid_ = -1;
    int cpu_ = -1;
    int node_ = -1;
    int chip_ = -1;
    Xoshiro256 rng_{0};

    // Traffic-attribution op-context (see set_op_phase above).
    std::uint64_t op_lock_ = 0;
    TxPhase op_phase_ = TxPhase::None;
    TxPhase op_transient_ = TxPhase::None;
};

/**
 * A complete simulated NUCA machine: topology, coherent memory, and
 * simulated threads. Single-host-threaded and fully deterministic.
 */
class SimMachine
{
  public:
    explicit SimMachine(Topology topo,
                        LatencyModel lat = LatencyModel::wildfire(),
                        SimConfig cfg = SimConfig{});
    ~SimMachine();

    SimMachine(const SimMachine&) = delete;
    SimMachine& operator=(const SimMachine&) = delete;

    const Topology& topology() const { return topo_; }
    const LatencyModel& latency() const { return lat_; }
    const SimConfig& config() const { return cfg_; }

    /** Allocate one shared word homed in @p home_node. */
    MemRef alloc(std::uint64_t init, int home_node = 0);
    MemRef alloc_array(std::uint32_t count, std::uint64_t init, int home_node = 0);

    /**
     * The per-node `is_spinning` gate word of the HBO_GT/SD algorithms
     * (one word per node, homed in that node, initially kGateDummy).
     */
    MemRef node_gate(int node);

    /** Upper bound on thread ids (one thread per cpu). */
    int max_threads() const { return topo_.num_cpus(); }

    /**
     * Rebuild a Ref from a token produced by MemRef::token(). The static
     * assert is exact on the representable range (tokens are line+1, so
     * [1, kInvalid] are the only values a valid() ref can produce); it
     * cannot know how many lines exist — use checked_ref_from_token when a
     * machine is at hand to also reject tokens beyond the allocated lines.
     */
    static MemRef
    ref_from_token(std::uint64_t token)
    {
        NUCA_ASSERT(token != 0 && token <= MemRef::kInvalid, "bad token ", token);
        return MemRef{static_cast<std::uint32_t>(token - 1)};
    }

    /** ref_from_token, additionally rejecting tokens past the last line
     *  actually allocated in this machine. */
    MemRef
    checked_ref_from_token(std::uint64_t token) const
    {
        const MemRef ref = ref_from_token(token);
        NUCA_ASSERT(ref.line < memory_.num_lines(),
                    "token ", token, " beyond ", memory_.num_lines(),
                    " allocated lines");
        return ref;
    }

    /**
     * Add a simulated thread bound to @p cpu (at most one per cpu).
     * @return its thread id (dense, in creation order).
     */
    int add_thread(int cpu, std::function<void(SimContext&)> body);

    /**
     * Convenience: add @p count threads placed per @p policy; @p body
     * receives the context and the thread index.
     */
    void add_threads(int count, Placement policy,
                     std::function<void(SimContext&, int)> body);

    /** Run until every thread finishes. Panics on deadlock. */
    void run();

    SimTime now() const { return now_; }
    /** Simulated time at which thread @p tid finished. */
    SimTime finish_time(int tid) const;

    int num_threads() const { return static_cast<int>(threads_.size()); }

    TrafficStats traffic() const { return memory_.traffic(); }
    /** Per-lock/per-phase and per-node traffic attribution snapshot. */
    TrafficAttribution traffic_attribution() const { return memory_.attribution(); }
    /** Per-resource (node buses + global link) contention snapshot. */
    ContentionStats contention() const { return memory_.contention(now_); }
    SimMemory& memory() { return memory_; }
    const SimMemory& memory() const { return memory_; }

    std::uint64_t fiber_switches() const { return fiber_switches_; }

    /**
     * Install a fault injector (non-owning; nullptr uninstalls). Must be
     * set before run(). Also routes the injector's link-spike penalty into
     * the memory system's global link.
     */
    void install_faults(FaultInjector* injector);
    FaultInjector* faults() { return injector_; }

    /** Install an invariant checker (non-owning; nullptr uninstalls). */
    void install_invariants(InvariantChecker* checker);
    InvariantChecker* invariants() { return checker_; }

    /**
     * Install a lock-event probe sink (non-owning; nullptr uninstalls).
     * Probes only read the clock and thread identity, so installing a sink
     * must not change the simulated run (pinned by tests/obs_test.cpp).
     */
    void install_probe(obs::ProbeSink* sink) { probe_ = sink; }
    obs::ProbeSink* probe() const { return probe_; }

    /**
     * Install a controlled scheduler (non-owning; nullptr uninstalls). Must
     * be set before run(). With a scheduler installed, run() asks it to
     * pick a runnable thread at every decision point (memory op, delay,
     * cs marker) instead of following wake times, and ends gracefully with
     * a StopReason instead of panicking on deadlock or the time limit —
     * systematic checkers treat those as verdicts, not crashes.
     */
    void install_scheduler(Scheduler* scheduler);
    Scheduler* scheduler() { return scheduler_; }

    /** Why the (controlled) run ended. Completed for timed runs. */
    StopReason stop_reason() const { return stop_; }

    /** Scheduling decisions taken during a controlled run. */
    std::uint64_t sched_steps() const { return sched_steps_; }

    /** Whether @p ref is one of the per-node is_spinning gate words. */
    bool is_node_gate(MemRef ref) const { return memory_.is_node_gate(ref); }

    /**
     * Human-readable end-of-run report: simulated time, traffic totals,
     * and per-resource utilization/queueing (gem5-style stats dump).
     */
    void print_stats(std::ostream& os) const;

  private:
    friend class SimContext;

    enum class ThreadState : std::uint8_t
    {
        Runnable,
        Waiting, // blocked on a line watcher
        Done,
    };

    /**
     * Hot per-thread scheduling state, packed into a dense array indexed by
     * tid. Every event touches (wake, state, fiber); keeping those in a
     * 32-byte record — 2 threads per cache line — instead of scattered
     * heap-allocated SimThread objects is what keeps the scheduler's
     * per-event cost flat as thread counts grow into the hundreds
     * (docs/performance.md, "big-topology engine").
     */
    struct ThreadHot
    {
        SimTime wake = 0;
        Fiber* fiber = nullptr; // owned by the cold SimThread
        /** Where the fiber's stack is suspended (timed mode; mirrors
         *  Fiber::suspended_sp after every yield). Lets the resume-path
         *  prefetches below read this record only, instead of chasing a
         *  dependent load through the cold Fiber object first. */
        const void* resume_sp = nullptr;
        std::uint32_t waiting_line = MemRef::kInvalid; // diagnostics only
        ThreadState state = ThreadState::Runnable;
        /** Set by wake_watchers: the thread's next access is the
         *  post-release re-fetch (attributed Handover when the thread was
         *  in its acquire spin). */
        bool handover_pending = false;
    };

    /**
     * Start pulling a suspended thread's host-side resume state into cache
     * ahead of an imminent Fiber::resume(). At 1024 simulated threads
     * (big-topology runs) the per-thread state cannot all stay resident,
     * so every switch otherwise begins with serial demand misses on the
     * Fiber object, the thread's SimContext, the saved register frame and
     * the lines the resumed call chain reads right above it; issuing
     * prefetches while the waker's event finishes overlaps those misses.
     * Pure host-side hint — no effect on simulated results.
     */
    void prefetch_resume_state(int tid) const
    {
#ifdef NUCALOCK_FIBER_FAST_SWITCH
        const ThreadHot& hot = hot_[static_cast<std::size_t>(tid)];
        // The Fiber object itself: resume() reads and writes its switch
        // state before touching the stack.
        __builtin_prefetch(hot.fiber);
        // The SimContext the resumed lock code immediately returns into
        // (it lives in the cold heap-allocated SimThread).
        __builtin_prefetch(&threads_[static_cast<std::size_t>(tid)]->ctx);
        const char* sp = static_cast<const char*>(hot.resume_sp);
        if (sp == nullptr)
            return; // running, or a platform without fast switches
        // Cover the saved register frame plus the first frames of the
        // suspended call chain (yield -> engine -> lock code) that
        // resume() pops straight through. Eight lines: enough to hide the
        // switch-path misses, few enough not to saturate the core's fill
        // buffers and stall the caller. Prefetches that hit in cache cost
        // ~a cycle, so the small shapes don't pay for this.
        for (int line = 0; line < 8; ++line)
            __builtin_prefetch(sp + line * 64);
#else
        (void)tid;
#endif
    }

    /** Cold per-thread state: identity, diagnostics, and everything the
     *  per-event loop does not read. Heap-allocated so the fiber entry
     *  lambda's captured pointer stays valid as threads_ grows. */
    struct SimThread
    {
        int tid = -1;
        int cpu = -1;
        std::unique_ptr<Fiber> fiber;
        SimTime finish = 0;
        SimTime next_preempt = kTimeInfinity;
        PendingOp pending; // controlled mode only
        std::function<void(SimContext&)> body;
        SimContext ctx;
    };

    /** Issue a memory op for the current thread and handle wakeups. */
    AccessOutcome do_access(SimContext& ctx, MemOp op, MemRef ref,
                            std::uint64_t a, std::uint64_t b);

    /**
     * Controlled mode: advertise the thread's next operation and yield to
     * the scheduler; returns when the scheduler picks this thread again.
     */
    void decision_point(SimContext& ctx, PendingOp op);

    /** The timing-driven scheduling loop (no Scheduler installed). */
    void run_timed();

    /** The controlled scheduling loop (Scheduler installed). */
    void run_controlled();

    /** Block the current thread until simulated time @p t. */
    void block_until(SimContext& ctx, SimTime t);

    /** Block the current thread on a watcher for @p ref (value @p v). */
    void wait_on(SimContext& ctx, MemRef ref, std::uint64_t v);

    /** Wake the watchers of @p ref at time @p t. */
    void wake_watchers(MemRef ref, SimTime t);

    /** Apply preemption injection to a wake time. */
    SimTime apply_preemption(SimThread& thr, SimTime wake);

    /** Apply configured preemption plus injected stalls to a wake time. */
    SimTime disturb_wake(SimThread& thr, SimTime wake);

    /** Retire threads whose injected death time has arrived. */
    void sweep_deaths(std::size_t& done);

    /**
     * Abort with a full diagnosis: per-thread scheduler state, the invariant
     * checker's report (holder, waits, recent CS events) and the applied
     * fault log — instead of a bare one-line panic.
     */
    [[noreturn]] void panic_with_diagnosis(const std::string& what) const;

    SimThread& current();

    Topology topo_;
    LatencyModel lat_;
    SimConfig cfg_;
    SimMemory memory_;
    std::vector<std::unique_ptr<SimThread>> threads_;
    /** Hot scheduling state by tid (see ThreadHot). */
    std::vector<ThreadHot> hot_;
    /** Runnable threads by (wake, tid); maintained only in timed mode. */
    ReadyQueue ready_;
    /** Reused by wake_watchers (see SimMemory::take_watchers). */
    std::vector<int> watcher_scratch_;
    /** Reused by wake_watchers for the ReadyQueue::push_bulk batch. */
    std::vector<ReadyQueue::Entry> wake_batch_;
    std::vector<MemRef> node_gates_;
    std::vector<bool> cpu_used_;
    SimTime now_ = 0;
    int current_tid_ = -1;
    bool running_ = false;
    bool ran_ = false;
    std::uint64_t fiber_switches_ = 0;
    std::uint64_t sched_steps_ = 0;
    StopReason stop_ = StopReason::Completed;
    FaultInjector* injector_ = nullptr;   // non-owning
    InvariantChecker* checker_ = nullptr; // non-owning
    Scheduler* scheduler_ = nullptr;      // non-owning
    obs::ProbeSink* probe_ = nullptr;     // non-owning
};

/** Value of an idle is_spinning gate (the paper's "dummy value"). */
inline constexpr std::uint64_t kGateDummy = 0;

} // namespace nucalock::sim

#endif // NUCALOCK_SIM_ENGINE_HPP
