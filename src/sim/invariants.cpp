#include "sim/invariants.hpp"

#include <algorithm>
#include <sstream>

#include "common/logging.hpp"

namespace nucalock::sim {

InvariantChecker::InvariantChecker(InvariantConfig cfg) : cfg_(cfg)
{
    ring_.reserve(cfg_.trace_ring_capacity);
}

InvariantChecker::ThreadState&
InvariantChecker::state_of(int tid)
{
    NUCA_ASSERT(tid >= 0, "tid=", tid);
    if (static_cast<std::size_t>(tid) >= threads_.size())
        threads_.resize(static_cast<std::size_t>(tid) + 1);
    return threads_[static_cast<std::size_t>(tid)];
}

void
InvariantChecker::push_event(SimTime at, int tid, int node, CsEventKind kind)
{
    if (cfg_.trace_ring_capacity == 0)
        return;
    if (ring_.size() < cfg_.trace_ring_capacity) {
        ring_.push_back(CsEvent{at, tid, node, kind});
    } else {
        ring_[ring_next_] = CsEvent{at, tid, node, kind};
        ring_next_ = (ring_next_ + 1) % cfg_.trace_ring_capacity;
    }
}

void
InvariantChecker::violation(SimTime now, const std::string& what)
{
    ++me_violations_;
    if (violation_log_.size() < 16) {
        std::ostringstream oss;
        oss << "t=" << now << ": " << what;
        violation_log_.push_back(oss.str());
    }
    if (cfg_.panic_on_violation)
        NUCA_PANIC("invariant violation: ", violation_log_.back());
}

std::uint64_t
InvariantChecker::live_bypasses(const ThreadState& t) const
{
    return t.waiting ? acquisitions_ - t.wait_epoch : t.bypasses;
}

void
InvariantChecker::settle_wait(ThreadState& t)
{
    t.bypasses = acquisitions_ - t.wait_epoch;
    t.max_bypasses = std::max(t.max_bypasses, t.bypasses);
    if (cfg_.fairness_window != 0 && t.bypasses >= cfg_.fairness_window + 1)
        ++fairness_violations_;
}

int&
InvariantChecker::node_waiting(int node)
{
    NUCA_ASSERT(node >= 0, "node=", node);
    if (static_cast<std::size_t>(node) >= waiting_by_node_.size())
        waiting_by_node_.resize(static_cast<std::size_t>(node) + 1, 0);
    return waiting_by_node_[static_cast<std::size_t>(node)];
}

void
InvariantChecker::on_wait_begin(int tid, int node, SimTime now)
{
    ThreadState& t = state_of(tid);
    if (t.waiting && t.node != node) {
        --node_waiting(t.node);
        ++node_waiting(node);
    }
    t.node = node;
    if (!t.waiting) {
        t.waiting = true;
        t.wait_since = now;
        t.wait_epoch = acquisitions_;
        t.bypasses = 0;
        ++waiting_count_;
        ++node_waiting(node);
    }
    last_activity_ = now;
    armed_ = true;
    push_event(now, tid, node, CsEventKind::WaitBegin);
}

void
InvariantChecker::on_wait_abort(int tid, int node, SimTime now)
{
    ThreadState& t = state_of(tid);
    if (t.waiting) {
        settle_wait(t);
        t.waiting = false;
        --waiting_count_;
        --node_waiting(t.node);
    }
    last_activity_ = now;
    push_event(now, tid, node, CsEventKind::WaitAbort);
}

void
InvariantChecker::on_enter(int tid, int node, SimTime now)
{
    ThreadState& t = state_of(tid);
    if (t.waiting && t.node != node) {
        --node_waiting(t.node);
        ++node_waiting(node);
    }
    t.node = node;

    if (!holders_.empty()) {
        std::ostringstream oss;
        oss << "mutual exclusion violated: t" << tid
            << " entered the critical section while held by";
        for (int h : holders_)
            oss << " t" << h;
        violation(now, oss.str());
    }
    holders_.push_back(tid);

    // Everyone still waiting was bypassed by this acquisition: implicit in
    // the acquisition epoch (a waiter's bypass count is acquisitions_ -
    // wait_epoch), so no per-waiter work happens here.

    // Same-node handover streak, counted only while a thread of another
    // node is waiting (an uncontested phase is not unfair). The enterer
    // itself is still counted under its own node, so the subtraction
    // excludes it exactly like the old scan's i != tid test.
    const bool remote_waiter = waiting_count_ > node_waiting(node);
    if (node == last_holder_node_ && remote_waiter)
        ++node_streak_;
    else
        node_streak_ = 1;
    max_node_streak_ = std::max(max_node_streak_, node_streak_);
    last_holder_node_ = node;

    if (t.waiting) {
        settle_wait(t); // before ++acquisitions_: no self-bypass
        t.waiting = false;
        --waiting_count_;
        --node_waiting(t.node);
    }
    t.in_cs = true;
    ++t.acquisitions;
    ++acquisitions_;
    last_activity_ = now;
    armed_ = true;
    push_event(now, tid, node, CsEventKind::Enter);
}

void
InvariantChecker::on_exit(int tid, int node, SimTime now)
{
    ThreadState& t = state_of(tid);
    const auto it = std::find(holders_.begin(), holders_.end(), tid);
    if (it == holders_.end()) {
        std::ostringstream oss;
        oss << "t" << tid << " exited a critical section it never entered";
        violation(now, oss.str());
    } else {
        holders_.erase(it);
    }
    t.in_cs = false;
    last_activity_ = now;
    push_event(now, tid, node, CsEventKind::Exit);
}

void
InvariantChecker::on_thread_death(int tid, SimTime now)
{
    ThreadState& t = state_of(tid);
    t.dead = true;
    if (t.waiting) {
        settle_wait(t);
        t.waiting = false;
        --waiting_count_;
        --node_waiting(t.node);
    }
    push_event(now, tid, t.node, CsEventKind::Died);
    // A dead holder stays in holders_ on purpose: report() names it as the
    // abandonment diagnosis, and survivors entering the CS would be real
    // mutual-exclusion violations unless they recovered the lock first.
}

bool
InvariantChecker::watchdog_expired(SimTime now) const
{
    return cfg_.watchdog_window_ns != 0 && armed_ && waiting_count_ > 0 &&
           now > last_activity_ &&
           now - last_activity_ > cfg_.watchdog_window_ns;
}

int
InvariantChecker::current_holder() const
{
    return holders_.empty() ? -1 : holders_.front();
}

std::uint64_t
InvariantChecker::max_bypasses(int tid) const
{
    if (tid < 0 || static_cast<std::size_t>(tid) >= threads_.size())
        return 0;
    const ThreadState& t = threads_[static_cast<std::size_t>(tid)];
    return std::max(t.max_bypasses, live_bypasses(t));
}

std::uint64_t
InvariantChecker::fairness_violations() const
{
    // Settled waits are counted in fairness_violations_; waits still in
    // flight that have already crossed the window are added here so the
    // value matches the old eager-crossing accounting at any query point.
    std::uint64_t v = fairness_violations_;
    if (cfg_.fairness_window != 0 && waiting_count_ > 0)
        for (const ThreadState& t : threads_)
            if (t.waiting &&
                acquisitions_ - t.wait_epoch >= cfg_.fairness_window + 1)
                ++v;
    return v;
}

std::uint64_t
InvariantChecker::max_bypasses() const
{
    std::uint64_t worst = 0;
    for (std::size_t i = 0; i < threads_.size(); ++i)
        worst = std::max(worst, max_bypasses(static_cast<int>(i)));
    return worst;
}

namespace {

const char*
cs_event_name(CsEventKind kind)
{
    switch (kind) {
      case CsEventKind::WaitBegin: return "wait";
      case CsEventKind::WaitAbort: return "abort";
      case CsEventKind::Enter: return "enter";
      case CsEventKind::Exit: return "exit";
      case CsEventKind::Died: return "died";
    }
    return "?";
}

} // namespace

void
InvariantChecker::dump(std::ostream& os) const
{
    os << "invariant checker: " << acquisitions_ << " acquisitions, "
       << me_violations_ << " mutual-exclusion violations, "
       << fairness_violations() << " fairness violations, max node streak "
       << max_node_streak_ << ", max bypasses " << max_bypasses() << "\n";
    if (holders_.empty()) {
        os << "  critical section: free\n";
    } else {
        os << "  critical section held by:";
        for (int h : holders_) {
            os << " t" << h;
            if (static_cast<std::size_t>(h) < threads_.size() &&
                threads_[static_cast<std::size_t>(h)].dead)
                os << " (DEAD - lock abandoned)";
        }
        os << "\n";
    }
    for (std::size_t i = 0; i < threads_.size(); ++i) {
        const ThreadState& t = threads_[i];
        os << "  t" << i << " node=" << t.node << " acqs=" << t.acquisitions
           << (t.dead ? " dead" : t.in_cs ? " in-cs" : t.waiting ? " waiting"
                                                                 : " running");
        if (t.waiting)
            os << " since=" << t.wait_since
               << "ns bypassed=" << live_bypasses(t);
        os << "\n";
    }
    for (const std::string& v : violation_log_)
        os << "  violation: " << v << "\n";
    if (!ring_.empty()) {
        os << "  last " << ring_.size() << " CS events:\n";
        // The ring starts at ring_next_ when full, at 0 while filling.
        const std::size_t n = ring_.size();
        const std::size_t start = n < cfg_.trace_ring_capacity ? 0 : ring_next_;
        for (std::size_t i = 0; i < n; ++i) {
            const CsEvent& e = ring_[(start + i) % n];
            os << "    t=" << e.at << " t" << e.tid << " node=" << e.node
               << " " << cs_event_name(e.kind) << "\n";
        }
    }
}

std::string
InvariantChecker::report() const
{
    std::ostringstream oss;
    dump(oss);
    return oss.str();
}

} // namespace nucalock::sim
