#include "sim/memory.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "sim/trace.hpp"

namespace nucalock::sim {
namespace {

bool
is_atomic(MemOp op)
{
    return op == MemOp::Cas || op == MemOp::Swap || op == MemOp::Tas;
}

} // namespace

SimMemory::SimMemory(const Topology& topo, const LatencyModel& lat)
    : topo_(topo), lat_(lat), global_link_("global-link")
{
    NUCA_ASSERT(topo_.num_cpus() <= kMaxCpus, "simulator supports at most ",
                kMaxCpus, " cpus, topology has ", topo_.num_cpus());
    node_buses_.reserve(static_cast<std::size_t>(topo_.num_nodes()));
    for (int n = 0; n < topo_.num_nodes(); ++n)
        node_buses_.emplace_back("node-bus-" + std::to_string(n));
    node_tx_.resize(static_cast<std::size_t>(topo_.num_nodes()));
}

MemRef
SimMemory::alloc(std::uint64_t init, int home_node)
{
    return alloc_array(1, init, home_node);
}

MemRef
SimMemory::alloc_array(std::uint32_t count, std::uint64_t init, int home_node)
{
    NUCA_ASSERT(count > 0);
    NUCA_ASSERT(home_node >= 0 && home_node < topo_.num_nodes(),
                "home_node=", home_node);
    const auto first = static_cast<std::uint32_t>(lines_.size());
    for (std::uint32_t i = 0; i < count; ++i) {
        Line line;
        line.value = init;
        line.home_node = static_cast<std::int16_t>(home_node);
        lines_.push_back(std::move(line));
    }
    return MemRef{first};
}

SimMemory::Line&
SimMemory::line_of(MemRef ref)
{
    NUCA_ASSERT(ref.valid() && ref.line < lines_.size(), "bad MemRef ", ref.line);
    return lines_[ref.line];
}

const SimMemory::Line&
SimMemory::line_of(MemRef ref) const
{
    NUCA_ASSERT(ref.valid() && ref.line < lines_.size(), "bad MemRef ", ref.line);
    return lines_[ref.line];
}

Resource&
SimMemory::node_bus(int node)
{
    NUCA_ASSERT(node >= 0 && node < topo_.num_nodes());
    return node_buses_[static_cast<std::size_t>(node)];
}

const Resource&
SimMemory::node_bus(int node) const
{
    NUCA_ASSERT(node >= 0 && node < topo_.num_nodes());
    return node_buses_[static_cast<std::size_t>(node)];
}

void
SimMemory::set_tx_context(std::uint64_t lock_id, TxPhase phase)
{
    tx_phase_ = phase;
    if (lock_id != tx_lock_) {
        tx_lock_ = lock_id;
        if (lock_id == 0) {
            tx_lock_row_ = nullptr;
        } else {
            LockTrafficStats& row = lock_tx_[lock_id];
            row.lock_id = lock_id;
            tx_lock_row_ = &row;
        }
    }
}

void
SimMemory::count_tx(bool global, std::uint64_t TrafficStats::* kind)
{
    if (global)
        ++traffic_.global_tx;
    else
        ++traffic_.local_tx;
    ++(traffic_.*kind);

    TxCount& node_row = node_tx_[static_cast<std::size_t>(requester_node_)];
    if (global)
        ++node_row.global_tx;
    else
        ++node_row.local_tx;

    if (tx_lock_row_ != nullptr) {
        TxCount& cell =
            tx_lock_row_->by_phase[static_cast<std::size_t>(tx_phase_)];
        if (global)
            ++cell.global_tx;
        else
            ++cell.local_tx;
    }
}

TrafficAttribution
SimMemory::attribution() const
{
    TrafficAttribution a;
    a.per_lock.reserve(lock_tx_.size());
    for (const auto& [lock_id, row] : lock_tx_)
        a.per_lock.push_back(row); // std::map: already sorted by lock_id
    a.per_node = node_tx_;
    return a;
}

void
SimMemory::enable_contention_series(SimTime bin_ns)
{
    for (Resource& bus : node_buses_)
        bus.enable_series(bin_ns);
    global_link_.enable_series(bin_ns);
}

ContentionStats
SimMemory::contention(SimTime now) const
{
    ContentionStats c;
    c.sim_time_ns = now;
    c.series_bin_ns = global_link_.series_bin_ns();
    c.resources.reserve(node_buses_.size() + 1);
    for (int n = 0; n < topo_.num_nodes(); ++n)
        c.resources.push_back(node_buses_[static_cast<std::size_t>(n)].usage(n));
    c.resources.push_back(global_link_.usage(-1));
    return c;
}

SimTime
SimMemory::route(SimTime t, int from_node, int to_node)
{
    t = node_bus(from_node).serve(t, lat_.node_bus_occupancy);
    if (from_node != to_node) {
        // A fault-injected link spike lengthens the service time, so the
        // spike also queues every later transaction behind it (congestion).
        const SimTime extra = link_hook_ ? link_hook_(t) : 0;
        t = global_link_.serve(t, lat_.global_link_occupancy + extra);
        t = node_bus(to_node).serve(t, lat_.node_bus_occupancy);
    }
    return t;
}

SimTime
SimMemory::fetch(const Line& line, int cpu, SimTime t,
                 std::uint64_t TrafficStats::* kind)
{
    const int rnode = topo_.node_of_cpu(cpu);
    SimTime wire = 0;
    int source_node = 0;
    if (line.owner_cpu >= 0) {
        // Cache-to-cache transfer from the current owner.
        const int onode = topo_.node_of_cpu(line.owner_cpu);
        source_node = onode;
        if (onode != rnode) {
            wire = lat_.remote_c2c;
        } else if (topo_.chip_of_cpu(line.owner_cpu) == topo_.chip_of_cpu(cpu) &&
                   !topo_.flat_chips()) {
            wire = lat_.same_chip_c2c;
        } else {
            wire = lat_.same_node_c2c;
        }
    } else {
        // Fetch from the home node's memory.
        source_node = line.home_node;
        wire = source_node == rnode ? lat_.local_mem : lat_.remote_mem;
    }
    count_tx(source_node != rnode, kind);
    t = route(t, rnode, source_node);
    return t + wire;
}

SimTime
SimMemory::invalidate_others(Line& line, int cpu, SimTime t)
{
    const int rnode = topo_.node_of_cpu(cpu);
    const std::uint64_t self_bit = std::uint64_t{1} << cpu;
    std::uint64_t holders = line.sharers;
    if (line.owner_cpu >= 0)
        holders |= std::uint64_t{1} << line.owner_cpu;
    holders &= ~self_bit;
    if (holders == 0)
        return t;

    // One invalidation transaction per node holding a copy; the requester
    // waits for the farthest acknowledgement, the buses see each one.
    SimTime done = t;
    for (int n = 0; n < topo_.num_nodes(); ++n) {
        std::uint64_t node_mask = 0;
        const int first = topo_.first_cpu_of_node(n);
        for (int c = first; c < first + topo_.cpus_in_node(n); ++c)
            node_mask |= std::uint64_t{1} << c;
        if ((holders & node_mask) == 0)
            continue;
        const bool global = n != rnode;
        count_tx(global, &TrafficStats::invalidation_tx);
        const SimTime arrive = route(t, rnode, n);
        done = std::max(done, arrive + (global ? lat_.inval_remote : lat_.inval_local));
    }
    return done;
}

AccessOutcome
SimMemory::access(MemOp op, int cpu, SimTime now, MemRef ref, std::uint64_t a,
                  std::uint64_t b)
{
    NUCA_ASSERT(cpu >= 0 && cpu < topo_.num_cpus(), "cpu=", cpu);
    Line& line = line_of(ref);
    ++accesses_;
    requester_node_ = topo_.node_of_cpu(cpu);

    const std::uint64_t self_bit = std::uint64_t{1} << cpu;
    const bool holds_copy = line.owner_cpu == cpu || (line.sharers & self_bit) != 0;

    AccessOutcome out;
    out.old_value = line.value;
    SimTime t = now + lat_.issue;

    if (op == MemOp::Load) {
        if (!holds_copy) {
            t = fetch(line, cpu, t, &TrafficStats::data_fetch_tx);
            line.sharers |= self_bit;
        } else {
            t += lat_.cache_hit;
        }
        out.complete = t;
        if (trace_hook_) {
            trace_hook_(TraceEvent{now, out.complete, cpu, op, ref.line,
                                   out.old_value, line.value});
        }
        return out;
    }

    // Writes and atomics need the line exclusively. The ownership-acquiring
    // transaction (data fetch or shared-copy upgrade) is kinded atomic_tx
    // when the op is an atomic read-modify-write, so the by-cause breakdown
    // partitions the local/global totals exactly.
    std::uint64_t TrafficStats::* const own_kind =
        is_atomic(op) ? &TrafficStats::atomic_tx : &TrafficStats::data_fetch_tx;
    const bool exclusive_already =
        line.owner_cpu == cpu && (line.sharers & ~self_bit) == 0;
    if (exclusive_already) {
        t += is_atomic(op) ? lat_.own_atomic : lat_.own_store;
    } else {
        if (!holds_copy)
            t = fetch(line, cpu, t, own_kind);
        t = invalidate_others(line, cpu, t);
        if (holds_copy && line.owner_cpu != cpu) {
            // Upgrade of a shared copy: ownership request, no data moved.
            count_tx(line.owner_cpu >= 0 &&
                         topo_.node_of_cpu(line.owner_cpu) != topo_.node_of_cpu(cpu),
                     own_kind);
        }
        line.owner_cpu = static_cast<std::int16_t>(cpu);
        line.sharers = self_bit;
    }

    switch (op) {
      case MemOp::Store:
        line.value = a;
        break;
      case MemOp::Swap:
        line.value = a;
        break;
      case MemOp::Tas:
        line.value = 1;
        break;
      case MemOp::Cas:
        if (line.value == a)
            line.value = b;
        break;
      case MemOp::Load:
        NUCA_PANIC("unreachable");
    }

    // Any write/atomic by this cpu invalidated every other spinner's copy;
    // they must be woken to re-fetch (models the refill burst).
    out.wakes_watchers = !line.watchers.empty();
    out.complete = t;
    if (trace_hook_) {
        trace_hook_(TraceEvent{now, out.complete, cpu, op, ref.line,
                               out.old_value, line.value});
    }
    return out;
}

std::uint64_t
SimMemory::peek(MemRef ref) const
{
    return line_of(ref).value;
}

void
SimMemory::poke(MemRef ref, std::uint64_t value)
{
    line_of(ref).value = value;
}

bool
SimMemory::watch(MemRef ref, int tid, std::uint64_t watched)
{
    Line& line = line_of(ref);
    if (line.value != watched)
        return false;
    NUCA_ASSERT(std::find(line.watchers.begin(), line.watchers.end(), tid) ==
                    line.watchers.end(),
                "thread ", tid, " already watching line ", ref.line);
    line.watchers.push_back(tid);
    return true;
}

void
SimMemory::take_watchers(MemRef ref, std::vector<int>& out)
{
    Line& line = line_of(ref);
    out.clear();
    // Swap rather than copy: the line inherits out's empty-but-reserved
    // buffer, so repeated wake processing reuses two buffers forever.
    std::swap(out, line.watchers);
}

std::vector<int>
SimMemory::take_watchers(MemRef ref)
{
    std::vector<int> out;
    take_watchers(ref, out);
    return out;
}

void
SimMemory::mark_node_gate(MemRef ref)
{
    line_of(ref).is_gate = true;
}

int
SimMemory::home_node(MemRef ref) const
{
    return line_of(ref).home_node;
}

int
SimMemory::owner_cpu(MemRef ref) const
{
    return line_of(ref).owner_cpu;
}

bool
SimMemory::caches(MemRef ref, int cpu) const
{
    const Line& line = line_of(ref);
    return line.owner_cpu == cpu ||
           (line.sharers & (std::uint64_t{1} << cpu)) != 0;
}

} // namespace nucalock::sim
