#include "sim/memory.hpp"

#include <algorithm>
#include <bit>

#include "common/logging.hpp"
#include "sim/trace.hpp"

namespace nucalock::sim {
namespace {

bool
is_atomic(MemOp op)
{
    return op == MemOp::Cas || op == MemOp::Swap || op == MemOp::Tas;
}

} // namespace

SimMemory::SimMemory(const Topology& topo, const LatencyModel& lat)
    : topo_(topo), lat_(lat), global_link_("global-link")
{
    NUCA_ASSERT(topo_.num_cpus() <= kMaxCpus, "simulator supports at most ",
                kMaxCpus, " cpus, topology has ", topo_.num_cpus());
    NUCA_ASSERT(topo_.num_nodes() <= kMaxNodes, "simulator supports at most ",
                kMaxNodes, " nodes, topology has ", topo_.num_nodes());
    node_buses_.reserve(static_cast<std::size_t>(topo_.num_nodes()));
    for (int n = 0; n < topo_.num_nodes(); ++n)
        node_buses_.emplace_back("node-bus-" + std::to_string(n));
    node_tx_.resize(static_cast<std::size_t>(topo_.num_nodes()));

    words_per_line_ = static_cast<std::uint32_t>(topo_.num_cpus() + 63) / 64;

    // Dense cpu -> node/chip lookups: Topology answers these with binary
    // searches, which is fine for setup but not for the per-access path.
    cpu_node_.resize(static_cast<std::size_t>(topo_.num_cpus()));
    cpu_chip_.resize(static_cast<std::size_t>(topo_.num_cpus()));
    for (int c = 0; c < topo_.num_cpus(); ++c) {
        cpu_node_[static_cast<std::size_t>(c)] =
            static_cast<std::int16_t>(topo_.node_of_cpu(c));
        cpu_chip_[static_cast<std::size_t>(c)] =
            static_cast<std::int16_t>(topo_.chip_of_cpu(c));
    }

    // Each node's cpus are a contiguous bit range of the sharer bitset;
    // precompute the word span and edge masks so per-node holder checks
    // touch only that node's words.
    node_spans_.resize(static_cast<std::size_t>(topo_.num_nodes()));
    for (int n = 0; n < topo_.num_nodes(); ++n) {
        const int first = topo_.first_cpu_of_node(n);
        const int last = first + topo_.cpus_in_node(n) - 1;
        NodeSpan& span = node_spans_[static_cast<std::size_t>(n)];
        span.first_word = first >> 6;
        span.last_word = last >> 6;
        span.first_mask = ~std::uint64_t{0} << (first & 63);
        span.last_mask = ~std::uint64_t{0} >> (63 - (last & 63));
    }
}

MemRef
SimMemory::alloc(std::uint64_t init, int home_node)
{
    return alloc_array(1, init, home_node);
}

MemRef
SimMemory::alloc_array(std::uint32_t count, std::uint64_t init, int home_node)
{
    NUCA_ASSERT(count > 0);
    NUCA_ASSERT(home_node >= 0 && home_node < topo_.num_nodes(),
                "home_node=", home_node);
    const auto first = static_cast<std::uint32_t>(lines_.size());
    Line line;
    line.value = init;
    line.home_node = static_cast<std::int16_t>(home_node);
    for (std::uint32_t i = 0; i < count; ++i)
        lines_.push_back(line);
    sharer_words_.resize(lines_.size() * words_per_line_, 0);
    return MemRef{first};
}

SimMemory::Line&
SimMemory::line_of(MemRef ref)
{
    NUCA_ASSERT(ref.valid() && ref.line < lines_.size(), "bad MemRef ", ref.line);
    return lines_[ref.line];
}

const SimMemory::Line&
SimMemory::line_of(MemRef ref) const
{
    NUCA_ASSERT(ref.valid() && ref.line < lines_.size(), "bad MemRef ", ref.line);
    return lines_[ref.line];
}

Resource&
SimMemory::node_bus(int node)
{
    NUCA_ASSERT(node >= 0 && node < topo_.num_nodes());
    return node_buses_[static_cast<std::size_t>(node)];
}

const Resource&
SimMemory::node_bus(int node) const
{
    NUCA_ASSERT(node >= 0 && node < topo_.num_nodes());
    return node_buses_[static_cast<std::size_t>(node)];
}

void
SimMemory::set_tx_context(std::uint64_t lock_id, TxPhase phase)
{
    tx_phase_ = phase;
    if (lock_id != tx_lock_) {
        tx_lock_ = lock_id;
        tx_lock_row_ = lock_id == 0 ? kNoRow : lock_tx_.index_of(lock_id);
    }
}

void
SimMemory::count_tx(bool global, std::uint64_t TrafficStats::* kind)
{
    if (global)
        ++traffic_.global_tx;
    else
        ++traffic_.local_tx;
    ++(traffic_.*kind);

    TxCount& node_row = node_tx_[static_cast<std::size_t>(requester_node_)];
    if (global)
        ++node_row.global_tx;
    else
        ++node_row.local_tx;

    if (tx_lock_row_ != kNoRow) {
        TxCount& cell = lock_tx_.row(tx_lock_row_)
                            .by_phase[static_cast<std::size_t>(tx_phase_)];
        if (global)
            ++cell.global_tx;
        else
            ++cell.local_tx;
    }
}

TrafficAttribution
SimMemory::attribution() const
{
    TrafficAttribution a;
    a.per_lock = lock_tx_.rows();
    std::sort(a.per_lock.begin(), a.per_lock.end(),
              [](const LockTrafficStats& x, const LockTrafficStats& y) {
                  return x.lock_id < y.lock_id;
              });
    a.per_node = node_tx_;
    return a;
}

void
SimMemory::enable_contention_series(SimTime bin_ns)
{
    for (Resource& bus : node_buses_)
        bus.enable_series(bin_ns);
    global_link_.enable_series(bin_ns);
}

ContentionStats
SimMemory::contention(SimTime now) const
{
    ContentionStats c;
    c.sim_time_ns = now;
    c.series_bin_ns = global_link_.series_bin_ns();
    c.resources.reserve(node_buses_.size() + 1);
    for (int n = 0; n < topo_.num_nodes(); ++n)
        c.resources.push_back(node_buses_[static_cast<std::size_t>(n)].usage(n));
    c.resources.push_back(global_link_.usage(-1));
    return c;
}

SimTime
SimMemory::route(SimTime t, int from_node, int to_node)
{
    t = node_bus(from_node).serve(t, lat_.node_bus_occupancy);
    if (from_node != to_node) {
        // A fault-injected link spike lengthens the service time, so the
        // spike also queues every later transaction behind it (congestion).
        const SimTime extra = link_hook_ ? link_hook_(t) : 0;
        t = global_link_.serve(t, lat_.global_link_occupancy + extra);
        t = node_bus(to_node).serve(t, lat_.node_bus_occupancy);
    }
    return t;
}

SimTime
SimMemory::fetch(const Line& line, int cpu, SimTime t,
                 std::uint64_t TrafficStats::* kind)
{
    const int rnode = cpu_node_[static_cast<std::size_t>(cpu)];
    SimTime wire = 0;
    int source_node = 0;
    if (line.owner_cpu >= 0) {
        // Cache-to-cache transfer from the current owner.
        const int onode = cpu_node_[static_cast<std::size_t>(line.owner_cpu)];
        source_node = onode;
        if (onode != rnode) {
            wire = lat_.remote_c2c;
        } else if (cpu_chip_[static_cast<std::size_t>(line.owner_cpu)] ==
                       cpu_chip_[static_cast<std::size_t>(cpu)] &&
                   !topo_.flat_chips()) {
            wire = lat_.same_chip_c2c;
        } else {
            wire = lat_.same_node_c2c;
        }
    } else {
        // Fetch from the home node's memory.
        source_node = line.home_node;
        wire = source_node == rnode ? lat_.local_mem : lat_.remote_mem;
    }
    count_tx(source_node != rnode, kind);
    t = route(t, rnode, source_node);
    return t + wire;
}

bool
SimMemory::node_has_sharer_other_than(const std::uint64_t* sw, int node,
                                      int cpu) const
{
    const NodeSpan& span = node_spans_[static_cast<std::size_t>(node)];
    const auto self_word = static_cast<std::int32_t>(cpu >> 6);
    const std::uint64_t self_bit = std::uint64_t{1} << (cpu & 63);
    for (std::int32_t w = span.first_word; w <= span.last_word; ++w) {
        std::uint64_t word = sw[w];
        if (w == span.first_word)
            word &= span.first_mask;
        if (w == span.last_word)
            word &= span.last_mask;
        if (w == self_word)
            word &= ~self_bit;
        if (word != 0)
            return true;
    }
    return false;
}

SimTime
SimMemory::invalidate_others(Line& line, const std::uint64_t* sw, int cpu,
                             SimTime t)
{
    const int rnode = cpu_node_[static_cast<std::size_t>(cpu)];

    // Nodes that might hold a copy: the per-line summary plus (defensively)
    // the owner's node. Bits are visited in ascending node order, matching
    // the full node scan this replaces, so transaction counts and the
    // farthest-acknowledgement time are bit-identical.
    std::uint64_t candidates = line.sharer_nodes;
    if (line.owner_cpu >= 0) {
        candidates |= std::uint64_t{1}
                      << cpu_node_[static_cast<std::size_t>(line.owner_cpu)];
    }

    // One invalidation transaction per node holding a copy; the requester
    // waits for the farthest acknowledgement, the buses see each one.
    SimTime done = t;
    while (candidates != 0) {
        const int n = std::countr_zero(candidates);
        candidates &= candidates - 1;
        const bool holds =
            node_has_sharer_other_than(sw, n, cpu) ||
            (line.owner_cpu >= 0 && line.owner_cpu != cpu &&
             cpu_node_[static_cast<std::size_t>(line.owner_cpu)] == n);
        if (!holds)
            continue;
        const bool global = n != rnode;
        count_tx(global, &TrafficStats::invalidation_tx);
        const SimTime arrive = route(t, rnode, n);
        done = std::max(done, arrive + (global ? lat_.inval_remote : lat_.inval_local));
    }
    return done;
}

AccessOutcome
SimMemory::access(MemOp op, int cpu, SimTime now, MemRef ref, std::uint64_t a,
                  std::uint64_t b)
{
    NUCA_ASSERT(cpu >= 0 && cpu < topo_.num_cpus(), "cpu=", cpu);
    Line& line = line_of(ref);
    std::uint64_t* const sw = sharers_of(ref.line);
    ++accesses_;
    requester_node_ = cpu_node_[static_cast<std::size_t>(cpu)];

    const auto self_word = static_cast<std::uint32_t>(cpu >> 6);
    const std::uint64_t self_bit = std::uint64_t{1} << (cpu & 63);
    const bool holds_copy =
        line.owner_cpu == cpu || (sw[self_word] & self_bit) != 0;

    AccessOutcome out;
    out.old_value = line.value;
    SimTime t = now + lat_.issue;

    if (op == MemOp::Load) {
        if (!holds_copy) {
            t = fetch(line, cpu, t, &TrafficStats::data_fetch_tx);
            sw[self_word] |= self_bit;
            line.sharer_nodes |= std::uint64_t{1} << requester_node_;
        } else {
            t += lat_.cache_hit;
        }
        out.complete = t;
        if (trace_hook_) {
            trace_hook_(TraceEvent{now, out.complete, cpu, op, ref.line,
                                   out.old_value, line.value});
        }
        return out;
    }

    // Writes and atomics need the line exclusively. The ownership-acquiring
    // transaction (data fetch or shared-copy upgrade) is kinded atomic_tx
    // when the op is an atomic read-modify-write, so the by-cause breakdown
    // partitions the local/global totals exactly.
    std::uint64_t TrafficStats::* const own_kind =
        is_atomic(op) ? &TrafficStats::atomic_tx : &TrafficStats::data_fetch_tx;
    // "No sharer besides self" via the exact node summary: another node's
    // bit set means a foreign sharer exists; otherwise only this node's
    // span (a word or two) needs scanning — O(1) regardless of machine
    // size, where a raw bitset scan would touch words_per_line_ words on
    // every repeat write.
    const std::uint64_t self_node_bit = std::uint64_t{1} << requester_node_;
    const bool exclusive_already =
        line.owner_cpu == cpu &&
        (line.sharer_nodes & ~self_node_bit) == 0 &&
        !node_has_sharer_other_than(sw, requester_node_, cpu);
    if (exclusive_already) {
        t += is_atomic(op) ? lat_.own_atomic : lat_.own_store;
    } else {
        if (!holds_copy)
            t = fetch(line, cpu, t, own_kind);
        t = invalidate_others(line, sw, cpu, t);
        if (holds_copy && line.owner_cpu != cpu) {
            // Upgrade of a shared copy: ownership request, no data moved.
            count_tx(line.owner_cpu >= 0 &&
                         cpu_node_[static_cast<std::size_t>(line.owner_cpu)] !=
                             requester_node_,
                     own_kind);
        }
        line.owner_cpu = static_cast<std::int16_t>(cpu);
        // Clear only the spans of nodes that actually hold sharer bits
        // (every set bit's node is in sharer_nodes, which is exact), not
        // the whole multi-word bitset.
        std::uint64_t clear_nodes = line.sharer_nodes;
        while (clear_nodes != 0) {
            const int n = std::countr_zero(clear_nodes);
            clear_nodes &= clear_nodes - 1;
            const NodeSpan& span = node_spans_[static_cast<std::size_t>(n)];
            for (std::int32_t w = span.first_word; w <= span.last_word; ++w)
                sw[w] = 0;
        }
        sw[self_word] = self_bit;
        line.sharer_nodes = self_node_bit;
    }

    switch (op) {
      case MemOp::Store:
        line.value = a;
        break;
      case MemOp::Swap:
        line.value = a;
        break;
      case MemOp::Tas:
        line.value = 1;
        break;
      case MemOp::Cas:
        if (line.value == a)
            line.value = b;
        break;
      case MemOp::Load:
        NUCA_PANIC("unreachable");
    }

    // Any write/atomic by this cpu invalidated every other spinner's copy;
    // they must be woken to re-fetch (models the refill burst).
    out.wakes_watchers = line.watcher_head != -1;
    out.complete = t;
    if (trace_hook_) {
        trace_hook_(TraceEvent{now, out.complete, cpu, op, ref.line,
                               out.old_value, line.value});
    }
    return out;
}

std::uint64_t
SimMemory::peek(MemRef ref) const
{
    return line_of(ref).value;
}

void
SimMemory::poke(MemRef ref, std::uint64_t value)
{
    line_of(ref).value = value;
}

bool
SimMemory::watch(MemRef ref, int tid, std::uint64_t watched)
{
    Line& line = line_of(ref);
    if (line.value != watched)
        return false;
    NUCA_ASSERT(tid >= 0, "tid=", tid);
    if (static_cast<std::size_t>(tid) >= watcher_next_.size()) {
        watcher_next_.resize(static_cast<std::size_t>(tid) + 1, -1);
        watcher_line_.resize(static_cast<std::size_t>(tid) + 1,
                             MemRef::kInvalid);
    }
    NUCA_ASSERT(watcher_line_[static_cast<std::size_t>(tid)] ==
                    MemRef::kInvalid,
                "thread ", tid, " already watching line ",
                watcher_line_[static_cast<std::size_t>(tid)]);
    // FIFO append onto the line's intrusive list: wake order matches the
    // old vector's push_back order exactly.
    watcher_next_[static_cast<std::size_t>(tid)] = -1;
    watcher_line_[static_cast<std::size_t>(tid)] = ref.line;
    if (line.watcher_head == -1)
        line.watcher_head = tid;
    else
        watcher_next_[static_cast<std::size_t>(line.watcher_tail)] = tid;
    line.watcher_tail = tid;
    return true;
}

void
SimMemory::take_watchers(MemRef ref, std::vector<int>& out)
{
    Line& line = line_of(ref);
    out.clear();
    for (std::int32_t tid = line.watcher_head; tid != -1;) {
        out.push_back(tid);
        watcher_line_[static_cast<std::size_t>(tid)] = MemRef::kInvalid;
        const std::int32_t next = watcher_next_[static_cast<std::size_t>(tid)];
        watcher_next_[static_cast<std::size_t>(tid)] = -1;
        tid = next;
    }
    line.watcher_head = -1;
    line.watcher_tail = -1;
}

void
SimMemory::mark_node_gate(MemRef ref)
{
    line_of(ref).is_gate = true;
}

int
SimMemory::home_node(MemRef ref) const
{
    return line_of(ref).home_node;
}

int
SimMemory::owner_cpu(MemRef ref) const
{
    return line_of(ref).owner_cpu;
}

bool
SimMemory::caches(MemRef ref, int cpu) const
{
    const Line& line = line_of(ref);
    if (line.owner_cpu == cpu)
        return true;
    const std::uint64_t* sw = sharers_of(ref.line);
    return (sw[static_cast<std::uint32_t>(cpu >> 6)] &
            (std::uint64_t{1} << (cpu & 63))) != 0;
}

} // namespace nucalock::sim
