/**
 * @file
 * Simulated time base.
 */
#ifndef NUCALOCK_SIM_TIME_HPP
#define NUCALOCK_SIM_TIME_HPP

#include <cstdint>

namespace nucalock::sim {

/** Simulated time in nanoseconds. */
using SimTime = std::uint64_t;

/** "Never" sentinel for blocked threads. */
inline constexpr SimTime kTimeInfinity = ~SimTime{0};

} // namespace nucalock::sim

#endif // NUCALOCK_SIM_TIME_HPP
