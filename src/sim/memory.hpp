/**
 * @file
 * Simulated cache-coherent memory with a NUCA timing model.
 *
 * Memory is modelled at lock-word granularity: every allocated word is its
 * own cache line with a directory entry (owner cpu + sharer set + home
 * node). Accesses return both the old value and a completion time computed
 * from the latency model plus FIFO queuing on the node buses and the global
 * link. Local and global coherence transactions are counted exactly the way
 * the paper's Tables 2 and 6 count them.
 *
 * Key modelling choices (see DESIGN.md):
 *  - A failed cas still acquires the line exclusively, as on SPARC/x86;
 *    this is what makes remote spinning with cas expensive and what the
 *    HBO_GT throttle exists to avoid.
 *  - Threads spin-waiting on a line register as watchers; any write or
 *    atomic by another cpu wakes them (their cached copy was invalidated),
 *    and the re-fetch they then perform models the refill burst after a
 *    lock release.
 *
 * Big-topology engineering (docs/performance.md, "big-topology engine"):
 * the per-line state is a 32-byte POD in a chunked arena; sharer sets are
 * multi-word bitsets in one slab (kMaxCpus is 1024, not the historical 64)
 * with a per-line node-summary mask so invalidation walks only nodes that
 * hold a copy; watcher lists are intrusive per-thread links (registration
 * and wake are allocation-free); and traffic attribution rows live in an
 * open-addressing flat table instead of a std::map.
 */
#ifndef NUCALOCK_SIM_MEMORY_HPP
#define NUCALOCK_SIM_MEMORY_HPP

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/arena.hpp"
#include "sim/flat_table.hpp"
#include "sim/latency.hpp"
#include "sim/resource.hpp"
#include "sim/time.hpp"
#include "sim/traffic.hpp"
#include "topology/topology.hpp"

namespace nucalock::sim {

/** Handle to one simulated memory word (== one cache line). */
struct MemRef
{
    static constexpr std::uint32_t kInvalid = 0xffffffffu;

    std::uint32_t line = kInvalid;

    bool valid() const { return line != kInvalid; }

    /** Nonzero identity of this word, used as an is_spinning gate value. */
    std::uint64_t token() const { return static_cast<std::uint64_t>(line) + 1; }

    /** The @p i-th word of an array allocated with alloc_array(). */
    MemRef at(std::uint32_t i) const { return MemRef{line + i}; }

    friend bool operator==(const MemRef&, const MemRef&) = default;
};

/** Memory operation kinds. Cas/Swap/Tas are atomic read-modify-writes. */
enum class MemOp
{
    Load,
    Store,
    Cas,
    Swap,
    Tas,
};

/** Result of one simulated access. */
struct AccessOutcome
{
    /** Value of the word before the operation. */
    std::uint64_t old_value = 0;
    /** Time the operation completes (requester may proceed). */
    SimTime complete = 0;
    /** Whether watchers of the line must be woken (any write by another). */
    bool wakes_watchers = false;
};

/**
 * The simulated coherent memory. Sharer sets are multi-word bitsets sized
 * to the topology, so up to kMaxCpus cpus are supported; the per-line node
 * summary is a single word, capping nodes at kMaxNodes.
 */
class SimMemory
{
  public:
    static constexpr int kMaxCpus = 1024;
    static constexpr int kMaxNodes = 64;

    SimMemory(const Topology& topo, const LatencyModel& lat);

    SimMemory(const SimMemory&) = delete;
    SimMemory& operator=(const SimMemory&) = delete;

    /** Allocate one word, value @p init, homed in @p home_node. */
    MemRef alloc(std::uint64_t init, int home_node);

    /** Allocate @p count contiguous words; returns the first. */
    MemRef alloc_array(std::uint32_t count, std::uint64_t init, int home_node);

    /**
     * Perform @p op by @p cpu starting at @p now.
     * Cas: @p a = expected, @p b = desired. Store/Swap: @p a = new value.
     */
    AccessOutcome access(MemOp op, int cpu, SimTime now, MemRef ref,
                         std::uint64_t a = 0, std::uint64_t b = 0);

    /** Current value, without traffic or state change (tests/diagnostics). */
    std::uint64_t peek(MemRef ref) const;

    /** Set a value directly, bypassing coherence (setup only). */
    void poke(MemRef ref, std::uint64_t value);

    /**
     * Register @p tid as a spin-waiter on @p ref.
     * @return false if registration is refused because the current value
     *         already differs from @p watched (caller should not block).
     */
    bool watch(MemRef ref, int tid, std::uint64_t watched);

    /**
     * Move the watcher tids of @p ref into @p out (cleared first), in
     * registration order. Watchers are intrusive per-thread links, so both
     * registration and take are allocation-free; @p out is the engine's
     * reusable scratch buffer. (The old vector-returning overload is gone
     * on purpose — it reintroduced a per-wake allocation.)
     */
    void take_watchers(MemRef ref, std::vector<int>& out);

    /**
     * First watcher tid of @p ref, or -1 when nobody watches it. Pure
     * read, used by the engine to start prefetching the would-be-woken
     * thread's host-side state (ThreadHot, fiber, stack) before the
     * access itself is simulated — by wake time the prefetches have had
     * the whole route/serve/invalidate sequence to land. At 1024
     * simulated threads that state is cold on every lock handover.
     */
    int
    first_watcher(MemRef ref) const
    {
        return ref.valid() && ref.line < lines_.size()
                   ? lines_[ref.line].watcher_head
                   : -1;
    }

    /**
     * Flag @p ref as a per-node is_spinning gate word so the fault
     * injector's gate-store check (SimMachine::is_node_gate) is one flag
     * load instead of a scan over every node's gate ref.
     */
    void mark_node_gate(MemRef ref);

    /** Whether @p ref was flagged by mark_node_gate(). O(1). */
    bool
    is_node_gate(MemRef ref) const
    {
        return ref.valid() && ref.line < lines_.size() &&
               lines_[ref.line].is_gate;
    }

    std::uint32_t num_lines() const { return static_cast<std::uint32_t>(lines_.size()); }
    std::uint64_t num_accesses() const { return accesses_; }

    /**
     * Install a per-access trace hook (see sim/trace.hpp). Pass an empty
     * function to disable. The hook runs synchronously inside access().
     */
    void
    set_trace_hook(std::function<void(const struct TraceEvent&)> hook)
    {
        trace_hook_ = std::move(hook);
    }

    /**
     * Install a global-link latency hook (fault injection): called with the
     * transaction start time, returns extra service time (ns) added to that
     * global-link crossing. Pass an empty function to disable.
     */
    void
    set_link_hook(std::function<SimTime(SimTime)> hook)
    {
        link_hook_ = std::move(hook);
    }

    const TrafficStats& traffic() const { return traffic_; }

    /**
     * Label the transactions of subsequent access() calls with the lock and
     * operation phase they belong to (set by the engine from the per-thread
     * op-context before every access). lock_id 0 / TxPhase::None leaves
     * them unattributed. Labelling is accounting only: it never changes
     * values, timing, or the TrafficStats totals.
     */
    void set_tx_context(std::uint64_t lock_id, TxPhase phase);

    /** Attribution snapshot: per-lock/per-phase and per-node tables. */
    TrafficAttribution attribution() const;

    /**
     * Record time-binned busy/transaction series on every node bus and the
     * global link (Resource::enable_series). Call before the run.
     */
    void enable_contention_series(SimTime bin_ns);

    /** Per-resource contention snapshot (buses in node order, then link). */
    ContentionStats contention(SimTime now) const;

    Resource& node_bus(int node);
    const Resource& node_bus(int node) const;
    Resource& global_link() { return global_link_; }
    const Resource& global_link() const { return global_link_; }

    /** Home node of a line (diagnostics). */
    int home_node(MemRef ref) const;
    /** Owner cpu of a line, or -1 when memory owns it (diagnostics). */
    int owner_cpu(MemRef ref) const;
    /** Whether @p cpu holds a valid copy of the line (diagnostics). */
    bool caches(MemRef ref, int cpu) const;

  private:
    /**
     * Per-line directory entry: a 32-byte trivially-copyable record. The
     * variable-size parts live outside the line — sharer bits in the
     * sharer_words_ slab, watcher links in watcher_next_ — so lines pack
     * densely in the arena and copying/growing never allocates per line.
     */
    struct Line
    {
        std::uint64_t value = 0;
        /** Bit per node holding a copy (owner included): the invalidation
         *  walk visits only these nodes instead of scanning all cpus. */
        std::uint64_t sharer_nodes = 0;
        std::int32_t watcher_head = -1; ///< first watcher tid, -1 = none
        std::int32_t watcher_tail = -1; ///< last watcher tid (FIFO append)
        std::int16_t owner_cpu = -1;
        std::int16_t home_node = 0;
        bool is_gate = false; // a node_gate() word (fault-injection check)
    };

    /** Bit range of one node's cpus inside a line's sharer words. */
    struct NodeSpan
    {
        std::int32_t first_word = 0;
        std::int32_t last_word = 0;
        std::uint64_t first_mask = 0; ///< valid bits in first_word
        std::uint64_t last_mask = 0;  ///< valid bits in last_word
    };

    Line& line_of(MemRef ref);
    const Line& line_of(MemRef ref) const;

    /** The sharer bitset of line @p line (words_per_line_ words). */
    std::uint64_t*
    sharers_of(std::uint32_t line)
    {
        return &sharer_words_[static_cast<std::size_t>(line) *
                              words_per_line_];
    }

    const std::uint64_t*
    sharers_of(std::uint32_t line) const
    {
        return &sharer_words_[static_cast<std::size_t>(line) *
                              words_per_line_];
    }

    /** Whether node @p node has a sharer bit besides @p cpu's in @p sw. */
    bool node_has_sharer_other_than(const std::uint64_t* sw, int node,
                                    int cpu) const;

    /** Queue one transaction from @p from_node to @p to_node at @p t. */
    SimTime route(SimTime t, int from_node, int to_node);

    /**
     * Count one transaction (local or global) of the given kind, also
     * crediting the current per-node and per-lock/per-phase attribution
     * rows (requester_node_ and the tx context).
     */
    void count_tx(bool global, std::uint64_t TrafficStats::* kind);

    /**
     * Fetch latency+queuing for @p cpu reading the line; counts one
     * transaction of @p kind (data_fetch_tx for plain loads/stores,
     * atomic_tx when the fetch serves an atomic read-modify-write).
     */
    SimTime fetch(const Line& line, int cpu, SimTime t,
                  std::uint64_t TrafficStats::* kind);

    /** Invalidate all other holders; returns completion; counts traffic. */
    SimTime invalidate_others(Line& line, const std::uint64_t* sw, int cpu,
                              SimTime t);

    const Topology& topo_;
    LatencyModel lat_;
    /** Per-line directory entries; chunked so mid-run allocation (structs
     *  resize) never copies or moves existing lines. */
    ChunkArena<Line> lines_;
    /** Sharer bitsets, words_per_line_ words per line, one slab. */
    std::vector<std::uint64_t> sharer_words_;
    std::uint32_t words_per_line_ = 1;
    /** Intrusive watcher links: watcher_next_[tid] chains the FIFO list of
     *  the line tid watches; watcher_line_[tid] is that line (kInvalid when
     *  not watching — also the double-watch assert). */
    std::vector<std::int32_t> watcher_next_;
    std::vector<std::uint32_t> watcher_line_;
    /** Dense cpu -> node/chip lookups (Topology's are binary searches). */
    std::vector<std::int16_t> cpu_node_;
    std::vector<std::int16_t> cpu_chip_;
    /** Per-node bit ranges inside a sharer bitset. */
    std::vector<NodeSpan> node_spans_;
    std::vector<Resource> node_buses_;
    Resource global_link_;
    TrafficStats traffic_;
    std::uint64_t accesses_ = 0;
    std::function<void(const struct TraceEvent&)> trace_hook_;
    std::function<SimTime(SimTime)> link_hook_;

    // ----- traffic attribution (accounting only, never affects timing) ----
    /** Initiating node of the access in flight (set by access()). */
    int requester_node_ = 0;
    /** Per-initiating-node counts; indexed by node. */
    std::vector<TxCount> node_tx_;
    /** Per-lock/per-phase rows, keyed by probe lock id (open addressing;
     *  row indices are stable so the hot path caches one). */
    FlatTrafficTable lock_tx_;
    /** The op-context of the access in flight (set_tx_context). */
    std::uint64_t tx_lock_ = 0;
    TxPhase tx_phase_ = TxPhase::None;
    /** Cached row index for tx_lock_ (kNoRow when unattributed). */
    static constexpr std::uint32_t kNoRow = 0xffffffffu;
    std::uint32_t tx_lock_row_ = kNoRow;
};

} // namespace nucalock::sim

#endif // NUCALOCK_SIM_MEMORY_HPP
