#include "sim/stack_pool.hpp"

#include <vector>

namespace nucalock::sim {

namespace {

struct Block
{
    char* stack;
    std::size_t bytes;
};

/**
 * Free list, most-recently-released last so acquire() reuses warm stacks.
 * Bounded: SimMemory::kMaxCpus caps simulated threads per machine at 64 and
 * a host thread runs one machine at a time, so anything past a small
 * multiple of that is a leak-shaped workload we'd rather give back.
 */
struct Cache
{
    static constexpr std::size_t kMaxPooled = 128;

    std::vector<Block> free;

    ~Cache()
    {
        for (const Block& b : free)
            delete[] b.stack;
    }
};

Cache&
cache()
{
    thread_local Cache c;
    return c;
}

} // namespace

char*
StackPool::acquire(std::size_t bytes)
{
    std::vector<Block>& free = cache().free;
    // Scan newest-first: runs use one stack size, so this is hit [0].
    for (std::size_t i = free.size(); i > 0; --i) {
        if (free[i - 1].bytes == bytes) {
            char* stack = free[i - 1].stack;
            free.erase(free.begin() +
                       static_cast<std::ptrdiff_t>(i - 1));
            return stack;
        }
    }
    return new char[bytes];
}

void
StackPool::release(char* stack, std::size_t bytes) noexcept
{
    if (stack == nullptr)
        return;
    std::vector<Block>& free = cache().free;
    if (free.size() >= Cache::kMaxPooled) {
        delete[] stack;
        return;
    }
    try {
        free.push_back(Block{stack, bytes});
    } catch (...) {
        delete[] stack;
    }
}

std::size_t
StackPool::pooled_count()
{
    return cache().free.size();
}

void
StackPool::trim() noexcept
{
    std::vector<Block>& free = cache().free;
    for (const Block& b : free)
        delete[] b.stack;
    free.clear();
}

} // namespace nucalock::sim
