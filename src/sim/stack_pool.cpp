#include "sim/stack_pool.hpp"

#include <cstdint>
#include <vector>

#ifdef __linux__
#include <sys/mman.h>
#endif

namespace nucalock::sim {

namespace {

/**
 * Big stacks are carved out of large mmap'd slabs instead of individual
 * allocations. Motivation is the TLB, not the allocator: a big-topology
 * run holds 1024 x 256 KiB fiber stacks, and as separate allocations each
 * stack top needs its own 4 KiB dTLB entry — more entries than the TLB
 * has, so every fiber handover started with a page walk (which also
 * silently drops the stack prefetches the engine issues ahead of each
 * resume — see SimMachine::prefetch_resume_state).
 * Slabs are 2 MiB-aligned and madvise(MADV_HUGEPAGE)'d, so under THP a
 * single TLB entry covers eight stacks and the whole 256 MiB of stacks
 * fits comfortably in the second-level TLB.
 */
constexpr std::size_t kSlabBytes = 16 * 1024 * 1024;
constexpr std::size_t kHugePage = 2 * 1024 * 1024;
/** Stacks below this come from new[]: their TLB footprint is small and
 *  slab-carving them would fragment the slabs across odd sizes. */
constexpr std::size_t kMinSlabCarve = 64 * 1024;

struct Block
{
    char* stack;
    std::size_t bytes;
    bool from_slab;
};

struct Slab
{
    char* map_base;        // what mmap returned (munmap target)
    std::size_t map_bytes; // full mapped length
    char* base;            // 2 MiB-aligned carve region
    std::size_t used;      // bump offset into base
};

/**
 * Free list, most-recently-released last so acquire() reuses warm stacks.
 * Bounded for new[]-backed blocks: SimMemory::kMaxCpus caps simulated
 * threads per machine at 1024 and a host thread runs one machine at a
 * time, so the pool holds one big-topology machine's worth of stacks;
 * anything past that is a leak-shaped workload we'd rather give back.
 * Slab-backed blocks stay listed regardless — their memory is committed
 * for the slab's lifetime either way, and dropping the entry would only
 * make it unreachable.
 */
struct Cache
{
    static constexpr std::size_t kMaxPooled = 1024;

    std::vector<Block> free;
    std::vector<Slab> slabs;

    ~Cache()
    {
        for (const Block& b : free)
            if (!b.from_slab)
                delete[] b.stack;
#ifdef __linux__
        for (const Slab& s : slabs)
            ::munmap(s.map_base, s.map_bytes);
#endif
    }
};

Cache&
cache()
{
    thread_local Cache c;
    return c;
}

/** Carve @p bytes from the slabs (mapping a new one if needed), or return
 *  nullptr to fall back to new[]. */
char*
carve_from_slab(std::size_t bytes)
{
#ifdef __linux__
    std::vector<Slab>& slabs = cache().slabs;
    if (slabs.empty() || slabs.back().used + bytes > kSlabBytes) {
        // Over-map by one huge page so the carve region can be aligned to
        // a huge-page boundary without a separate aligned allocator.
        const std::size_t map_bytes = kSlabBytes + kHugePage;
        void* map = ::mmap(nullptr, map_bytes, PROT_READ | PROT_WRITE,
                           MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        if (map == MAP_FAILED)
            return nullptr;
        const auto addr = reinterpret_cast<std::uintptr_t>(map);
        const std::uintptr_t aligned =
            (addr + kHugePage - 1) & ~(std::uintptr_t{kHugePage} - 1);
        Slab slab;
        slab.map_base = static_cast<char*>(map);
        slab.map_bytes = map_bytes;
        slab.base = reinterpret_cast<char*>(aligned);
        slab.used = 0;
        ::madvise(slab.base, kSlabBytes, MADV_HUGEPAGE);
        slabs.push_back(slab);
    }
    Slab& slab = slabs.back();
    char* stack = slab.base + slab.used;
    slab.used += bytes;
    return stack;
#else
    (void)bytes;
    return nullptr;
#endif
}

} // namespace

char*
StackPool::acquire(std::size_t bytes)
{
    std::vector<Block>& free = cache().free;
    // Scan newest-first: runs use one stack size, so this is hit [0].
    for (std::size_t i = free.size(); i > 0; --i) {
        if (free[i - 1].bytes == bytes) {
            char* stack = free[i - 1].stack;
            free.erase(free.begin() +
                       static_cast<std::ptrdiff_t>(i - 1));
            return stack;
        }
    }
    if (bytes >= kMinSlabCarve) {
        if (char* stack = carve_from_slab(bytes); stack != nullptr)
            return stack;
    }
    return new char[bytes];
}

void
StackPool::release(char* stack, std::size_t bytes) noexcept
{
    if (stack == nullptr)
        return;
    std::vector<Block>& free = cache().free;
    // Which origin? A stack inside any slab's carve region came from it.
    bool from_slab = false;
    for (const Slab& s : cache().slabs) {
        if (stack >= s.base && stack < s.base + kSlabBytes) {
            from_slab = true;
            break;
        }
    }
    if (!from_slab && free.size() >= Cache::kMaxPooled) {
        delete[] stack;
        return;
    }
    try {
        free.push_back(Block{stack, bytes, from_slab});
    } catch (...) {
        if (!from_slab)
            delete[] stack;
    }
}

std::size_t
StackPool::pooled_count()
{
    return cache().free.size();
}

void
StackPool::trim() noexcept
{
    std::vector<Block>& free = cache().free;
    for (const Block& b : free)
        if (!b.from_slab)
            delete[] b.stack;
    // Slab-backed entries are dropped, not unmapped: the slabs stay with
    // the host thread (trim() is a test hook; outstanding stacks may still
    // point into them). Their bytes are re-carved only via the free list,
    // so a trim leaks them until thread exit — fine for tests.
    free.clear();
}

} // namespace nucalock::sim
