#include "sim/engine.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"
#include "sim/faults.hpp"
#include "sim/invariants.hpp"

namespace nucalock::sim {

namespace {

SchedOp
sched_op_of(MemOp op)
{
    switch (op) {
      case MemOp::Load: return SchedOp::Load;
      case MemOp::Store: return SchedOp::Store;
      case MemOp::Cas: return SchedOp::Cas;
      case MemOp::Swap: return SchedOp::Swap;
      case MemOp::Tas: return SchedOp::Tas;
    }
    return SchedOp::Load;
}

} // namespace

// ---------------------------------------------------------------------------
// SimContext
// ---------------------------------------------------------------------------

int
SimContext::num_nodes() const
{
    return machine_->topology().num_nodes();
}

SimTime
SimContext::now() const
{
    return machine_->now();
}

std::uint64_t
SimContext::peek(Ref ref) const
{
    return machine_->memory().peek(ref);
}

obs::ProbeSink*
SimContext::probe_sink() const
{
    return machine_->probe();
}

std::uint64_t
SimContext::load(Ref ref)
{
    return machine_->do_access(*this, MemOp::Load, ref, 0, 0).old_value;
}

void
SimContext::store(Ref ref, std::uint64_t value)
{
    machine_->do_access(*this, MemOp::Store, ref, value, 0);
}

std::uint64_t
SimContext::cas(Ref ref, std::uint64_t expected, std::uint64_t desired)
{
    return machine_->do_access(*this, MemOp::Cas, ref, expected, desired).old_value;
}

std::uint64_t
SimContext::swap(Ref ref, std::uint64_t value)
{
    return machine_->do_access(*this, MemOp::Swap, ref, value, 0).old_value;
}

std::uint64_t
SimContext::tas(Ref ref)
{
    return machine_->do_access(*this, MemOp::Tas, ref, 0, 0).old_value;
}

std::uint64_t
SimContext::spin_while_equal(Ref ref, std::uint64_t value)
{
    while (true) {
        const std::uint64_t observed = load(ref);
        if (observed != value)
            return observed;
        machine_->wait_on(*this, ref, value);
    }
}

void
SimContext::delay(std::uint64_t iterations)
{
    delay_ns(iterations * machine_->latency().ns_per_delay_iteration);
}

void
SimContext::delay_ns(SimTime ns)
{
    machine_->block_until(*this, machine_->now() + ns);
}

void
SimContext::touch_array(Ref first, std::uint32_t count, bool write)
{
    // One engine event per access: batching a whole array walk into a
    // single step would call Resource::serve() for future arrival times up
    // front, making later-issued (but earlier-arriving) transactions queue
    // behind the entire walk — a FIFO violation that distorts handover
    // latency under contention.
    for (std::uint32_t i = 0; i < count; ++i) {
        const Ref ref = first.at(i);
        const std::uint64_t v = load(ref);
        if (write)
            store(ref, v + 1);
    }
}

void
SimContext::cs_wait_begin()
{
    if (machine_->scheduler_ != nullptr)
        machine_->decision_point(*this, PendingOp{SchedOp::CsWaitBegin,
                                                  MemRef::kInvalid});
    if (machine_->checker_ != nullptr)
        machine_->checker_->on_wait_begin(tid_, node_, machine_->now_);
}

void
SimContext::cs_wait_abort()
{
    if (machine_->scheduler_ != nullptr)
        machine_->decision_point(*this, PendingOp{SchedOp::CsWaitAbort,
                                                  MemRef::kInvalid});
    if (machine_->checker_ != nullptr)
        machine_->checker_->on_wait_abort(tid_, node_, machine_->now_);
}

void
SimContext::cs_enter()
{
    if (machine_->scheduler_ != nullptr)
        machine_->decision_point(*this, PendingOp{SchedOp::CsEnter,
                                                  MemRef::kInvalid});
    if (machine_->checker_ != nullptr)
        machine_->checker_->on_enter(tid_, node_, machine_->now_);
    if (machine_->injector_ != nullptr) {
        const SimTime p = machine_->injector_->on_cs_enter(tid_, machine_->now_);
        if (p != 0)
            machine_->block_until(*this, machine_->now_ + p);
    }
}

void
SimContext::cs_exit()
{
    if (machine_->scheduler_ != nullptr)
        machine_->decision_point(*this, PendingOp{SchedOp::CsExit,
                                                  MemRef::kInvalid});
    if (machine_->checker_ != nullptr)
        machine_->checker_->on_exit(tid_, node_, machine_->now_);
}

// ---------------------------------------------------------------------------
// SimMachine
// ---------------------------------------------------------------------------

SimMachine::SimMachine(Topology topo, LatencyModel lat, SimConfig cfg)
    : topo_(std::move(topo)), lat_(lat), cfg_(cfg), memory_(topo_, lat_),
      node_gates_(static_cast<std::size_t>(topo_.num_nodes())),
      cpu_used_(static_cast<std::size_t>(topo_.num_cpus()), false)
{
}

SimMachine::~SimMachine() = default;

MemRef
SimMachine::alloc(std::uint64_t init, int home_node)
{
    return memory_.alloc(init, home_node);
}

MemRef
SimMachine::alloc_array(std::uint32_t count, std::uint64_t init, int home_node)
{
    return memory_.alloc_array(count, init, home_node);
}

MemRef
SimMachine::node_gate(int node)
{
    NUCA_ASSERT(node >= 0 && node < topo_.num_nodes(), "node=", node);
    auto& gate = node_gates_[static_cast<std::size_t>(node)];
    if (!gate.valid()) {
        gate = memory_.alloc(kGateDummy, node);
        memory_.mark_node_gate(gate);
    }
    return gate;
}

int
SimMachine::add_thread(int cpu, std::function<void(SimContext&)> body)
{
    NUCA_ASSERT(!running_ && !ran_, "add_thread after run()");
    NUCA_ASSERT(cpu >= 0 && cpu < topo_.num_cpus(), "cpu=", cpu);
    NUCA_ASSERT(!cpu_used_[static_cast<std::size_t>(cpu)],
                "cpu ", cpu, " already has a thread");
    cpu_used_[static_cast<std::size_t>(cpu)] = true;

    auto thr = std::make_unique<SimThread>();
    const int tid = static_cast<int>(threads_.size());
    thr->tid = tid;
    thr->cpu = cpu;
    thr->body = std::move(body);
    thr->ctx.machine_ = this;
    thr->ctx.tid_ = tid;
    thr->ctx.cpu_ = cpu;
    thr->ctx.node_ = topo_.node_of_cpu(cpu);
    thr->ctx.chip_ = topo_.chip_of_cpu(cpu);
    thr->ctx.rng_ = Xoshiro256(cfg_.seed * std::uint64_t{0x9e3779b97f4a7c15} +
                               static_cast<std::uint64_t>(tid));

    if (cfg_.preemption) {
        // First preemption point, exponentially distributed.
        const double u = thr->ctx.rng_.next_double();
        thr->next_preempt = static_cast<SimTime>(
            -std::log(1.0 - u) * static_cast<double>(cfg_.preempt_mean_interval));
    }

    SimThread* raw = thr.get();
    thr->fiber = std::make_unique<Fiber>([raw] { raw->body(raw->ctx); },
                                         cfg_.fiber_stack_bytes);
    ThreadHot hot;
    hot.fiber = thr->fiber.get();
    hot_.push_back(hot);
    threads_.push_back(std::move(thr));
    return tid;
}

void
SimMachine::add_threads(int count, Placement policy,
                        std::function<void(SimContext&, int)> body)
{
    const std::vector<int> cpus = map_threads(topo_, count, policy);
    for (int i = 0; i < count; ++i) {
        add_thread(cpus[static_cast<std::size_t>(i)],
                   [body, i](SimContext& ctx) { body(ctx, i); });
    }
}

SimMachine::SimThread&
SimMachine::current()
{
    NUCA_ASSERT(current_tid_ >= 0, "no current thread");
    return *threads_[static_cast<std::size_t>(current_tid_)];
}

SimTime
SimMachine::apply_preemption(SimThread& thr, SimTime wake)
{
    if (!cfg_.preemption)
        return wake;
    if (wake < thr.next_preempt)
        return wake;
    wake += cfg_.preempt_duration;
    const double u = thr.ctx.rng_.next_double();
    thr.next_preempt =
        wake + static_cast<SimTime>(
                   -std::log(1.0 - u) *
                   static_cast<double>(cfg_.preempt_mean_interval));
    return wake;
}

SimTime
SimMachine::disturb_wake(SimThread& thr, SimTime wake)
{
    wake = apply_preemption(thr, wake);
    if (injector_ != nullptr)
        wake = injector_->adjust_wake(thr.tid, wake);
    return wake;
}

void
SimMachine::block_until(SimContext& ctx, SimTime t)
{
    if (scheduler_ != nullptr) {
        // Controlled mode: a delay is a voluntary yield point. The clock
        // still advances (deadlines depend on it) but does not decide who
        // runs next.
        decision_point(ctx, PendingOp{SchedOp::Delay, MemRef::kInvalid});
        now_ = std::max(now_, t);
        return;
    }
    NUCA_ASSERT(ctx.tid_ == current_tid_, "block from non-current thread");
    ThreadHot& hot = hot_[static_cast<std::size_t>(ctx.tid_)];
    // Skip the cold-struct deref unless preemption/faults can disturb the
    // wake time (disturb_wake is the identity otherwise).
    hot.wake = cfg_.preemption || injector_ != nullptr
                   ? disturb_wake(
                         *threads_[static_cast<std::size_t>(ctx.tid_)], t)
                   : t;
    hot.state = ThreadState::Runnable;
    ready_.push_or_update(ctx.tid_, hot.wake);
    hot.fiber->yield();
}

void
SimMachine::wait_on(SimContext& ctx, MemRef ref, std::uint64_t v)
{
    NUCA_ASSERT(ctx.tid_ == current_tid_, "wait from non-current thread");
    if (!memory_.watch(ref, ctx.tid_, v))
        return; // value already changed; caller re-loads
    ThreadHot& hot = hot_[static_cast<std::size_t>(ctx.tid_)];
    hot.state = ThreadState::Waiting;
    hot.wake = kTimeInfinity;
    hot.waiting_line = ref.line;
    if (scheduler_ == nullptr)
        ready_.remove(ctx.tid_);
    hot.fiber->yield();
}

void
SimMachine::wake_watchers(MemRef ref, SimTime t)
{
    memory_.take_watchers(ref, watcher_scratch_);
    if (watcher_scratch_.empty())
        return;
    const bool disturb = cfg_.preemption || injector_ != nullptr;
    wake_batch_.clear();
    for (int tid : watcher_scratch_) {
        ThreadHot& hot = hot_[static_cast<std::size_t>(tid)];
        if (hot.state == ThreadState::Done)
            continue; // died (injected fault) while spin-waiting
        NUCA_ASSERT(hot.state == ThreadState::Waiting, "woken thread not waiting");
        hot.state = ThreadState::Runnable;
        hot.wake = disturb
                       ? disturb_wake(*threads_[static_cast<std::size_t>(tid)], t)
                       : t;
        hot.waiting_line = MemRef::kInvalid;
        // The woken thread's next access is the refill after the writer's
        // invalidation — under a lock's acquire spin that is the handover
        // burst, which the attribution layer tags as TxPhase::Handover.
        hot.handover_pending = true;
        if (scheduler_ != nullptr) {
            // The wakeup itself is a local step: when scheduled, the thread
            // returns from wait_on and advertises its re-poll as the next
            // decision point. Only controlled mode reads pending; the timed
            // loop instead needs the thread back in the ready queue.
            threads_[static_cast<std::size_t>(tid)]->pending =
                PendingOp{SchedOp::Wakeup, ref.line};
        } else {
            // The woken thread typically runs as soon as the waker blocks;
            // starting its cold-stack fetch here gives the prefetch the
            // whole remainder of the waker's event to land.
            prefetch_resume_state(tid);
            wake_batch_.push_back(ReadyQueue::Entry{hot.wake, tid});
        }
    }
    // A release wakes every spinner of the line at once (the refill storm);
    // one bulk insert restores the heap in a single pass instead of one
    // sift per woken thread.
    if (scheduler_ == nullptr)
        ready_.push_bulk(wake_batch_.data(), wake_batch_.size());
}

AccessOutcome
SimMachine::do_access(SimContext& ctx, MemOp op, MemRef ref, std::uint64_t a,
                      std::uint64_t b)
{
    if (scheduler_ != nullptr)
        decision_point(ctx, PendingOp{sched_op_of(op), ref.line});
    // Resolve the attribution phase for this access: a one-shot transient
    // (gate publish store) wins, else a pending wakeup upgrades an acquire
    // spin to the handover burst. Pure labelling — no timing effect.
    ThreadHot& hot = hot_[static_cast<std::size_t>(ctx.tid_)];
    TxPhase phase = ctx.op_phase_;
    if (ctx.op_transient_ != TxPhase::None) {
        phase = ctx.op_transient_;
        ctx.op_transient_ = TxPhase::None;
    } else if (hot.handover_pending && phase == TxPhase::AcquireSpin) {
        phase = TxPhase::Handover;
    }
    hot.handover_pending = false;
    // A write that will wake a spin-waiter: start the waiter's cold state
    // (ThreadHot line, fiber, stack) on its way into cache now, so the
    // whole route/serve/invalidate sequence below overlaps the misses.
    // The dependent loads here are off every critical path — nothing in
    // access() consumes them. Timed mode only: controlled runs are tiny
    // and their wakes go through `pending`, not the ready queue.
    if (op != MemOp::Load && scheduler_ == nullptr) {
        const int w = memory_.first_watcher(ref);
        if (w >= 0)
            prefetch_resume_state(w);
    }
    memory_.set_tx_context(ctx.op_lock_, phase);
    const AccessOutcome out = memory_.access(op, ctx.cpu_, now_, ref, a, b);
    if (out.wakes_watchers)
        wake_watchers(ref, out.complete);
    SimTime resume = out.complete;
    if (injector_ != nullptr) {
        // Structural fault points: a swap is a queue lock's tail enqueue
        // (the window before the node publish), a nonzero store to a node
        // gate is an is_spinning registration. The write itself completes —
        // watchers woke above — only the issuing thread is descheduled
        // inside the vulnerable window.
        const bool publish_window = op == MemOp::Swap;
        const bool gate_closed =
            op == MemOp::Store && a != kGateDummy && is_node_gate(ref);
        if (publish_window || gate_closed)
            resume += injector_->on_access(ctx.tid_, now_, publish_window,
                                           gate_closed);
    }
    if (scheduler_ != nullptr) {
        // The decision point already happened before the access; the
        // thread keeps running until its next one.
        now_ = std::max(now_, resume);
        return out;
    }
    block_until(ctx, resume);
    return out;
}

void
SimMachine::decision_point(SimContext& ctx, PendingOp op)
{
    NUCA_ASSERT(ctx.tid_ == current_tid_, "decision from non-current thread");
    threads_[static_cast<std::size_t>(ctx.tid_)]->pending = op;
    ThreadHot& hot = hot_[static_cast<std::size_t>(ctx.tid_)];
    hot.state = ThreadState::Runnable;
    hot.wake = now_;
    hot.fiber->yield();
}

void
SimMachine::install_faults(FaultInjector* injector)
{
    NUCA_ASSERT(!running_ && !ran_, "install_faults after run()");
    injector_ = injector;
    if (injector_ != nullptr)
        memory_.set_link_hook(
            [this](SimTime t) { return injector_->link_penalty(t); });
    else
        memory_.set_link_hook({});
}

void
SimMachine::install_invariants(InvariantChecker* checker)
{
    NUCA_ASSERT(!running_ && !ran_, "install_invariants after run()");
    checker_ = checker;
}

void
SimMachine::install_scheduler(Scheduler* scheduler)
{
    NUCA_ASSERT(!running_ && !ran_, "install_scheduler after run()");
    scheduler_ = scheduler;
}

void
SimMachine::sweep_deaths(std::size_t& done)
{
    for (std::size_t i = 0; i < hot_.size(); ++i) {
        ThreadHot& hot = hot_[i];
        if (hot.state == ThreadState::Done)
            continue;
        const int tid = static_cast<int>(i);
        // Earliest time the thread could possibly run again: its wake time
        // when scheduled, or "now" when blocked on a line watcher.
        const SimTime next_run =
            hot.state == ThreadState::Waiting ? now_ : hot.wake;
        if (!injector_->should_die(tid, next_run))
            continue;
        hot.state = ThreadState::Done;
        threads_[i]->finish = next_run == kTimeInfinity ? now_ : next_run;
        if (scheduler_ == nullptr)
            ready_.remove(tid);
        ++done;
        if (checker_ != nullptr)
            checker_->on_thread_death(tid, now_);
    }
}

void
SimMachine::run()
{
    NUCA_ASSERT(!ran_, "run() may only be called once");
    NUCA_ASSERT(!threads_.empty(), "no threads to run");
    running_ = true;
    if (scheduler_ != nullptr)
        run_controlled();
    else
        run_timed();
    running_ = false;
    ran_ = true;
}

void
SimMachine::run_timed()
{
    std::size_t done = 0;
    // Seed the ready queue: every thread starts Runnable at wake time 0.
    // Also seed resume_sp — before the first resume it is the entry frame
    // the Fiber constructor prepared.
    ready_.reset(threads_.size());
    for (const auto& thr : threads_) {
        ThreadHot& hot = hot_[static_cast<std::size_t>(thr->tid)];
        hot.resume_sp = thr->fiber->suspended_sp();
        ready_.push_or_update(thr->tid, hot.wake);
    }
    while (done < threads_.size()) {
        if (injector_ != nullptr)
            sweep_deaths(done);
        if (done >= threads_.size())
            break;
        // The runnable thread with the earliest wake time, ties broken by
        // thread id (determinism): the ready queue's top. Waiting threads
        // (wake == infinity) are not in the queue; wake_watchers reinserts
        // them. The queue is maintained at every state change, so the pick
        // is O(1) instead of the old per-event scan over all threads.
        if (ready_.empty())
            panic_with_diagnosis("deadlock: no runnable thread");
        const int next_tid = ready_.top_tid();
        ThreadHot& next = hot_[static_cast<std::size_t>(next_tid)];
        // Overlap the picked fiber's cold-stack misses with the watchdog
        // and time-limit bookkeeping below (see prefetch_resume_state).
        prefetch_resume_state(next_tid);
        // Also start on the likely pick after this one: timer wakes
        // (backoff/pause expiries) never pass through wake_watchers, so
        // this peek is the only chance to give them a whole event's worth
        // of prefetch distance.
        if (const int follow = ready_.runner_up_tid(); follow >= 0)
            prefetch_resume_state(follow);
        NUCA_ASSERT(next.wake >= now_, "time went backwards");
        now_ = next.wake;
        if (checker_ != nullptr && checker_->watchdog_expired(now_))
            panic_with_diagnosis(
                "progress watchdog expired: threads are waiting but no "
                "critical-section activity for " +
                std::to_string(checker_->config().watchdog_window_ns) + " ns");
        if (now_ > cfg_.max_sim_time)
            panic_with_diagnosis(
                "simulated time exceeded max_sim_time (livelock?)");

        current_tid_ = next_tid;
        ++fiber_switches_;
        next.fiber->resume();
        current_tid_ = -1;
        // Freshly yielded: remember where, so the next wake of this thread
        // can prefetch its stack without first missing on the Fiber object.
        next.resume_sp = next.fiber->suspended_sp();

        if (next.fiber->finished()) {
            next.state = ThreadState::Done;
            threads_[static_cast<std::size_t>(next_tid)]->finish = now_;
            ready_.remove(next_tid);
            ++done;
        }
    }
}

void
SimMachine::run_controlled()
{
    std::size_t done = 0;
    std::vector<SchedChoice> runnable;
    stop_ = StopReason::Completed;
    while (done < threads_.size()) {
        if (injector_ != nullptr)
            sweep_deaths(done);
        if (done >= threads_.size())
            break;
        runnable.clear();
        for (std::size_t i = 0; i < hot_.size(); ++i)
            if (hot_[i].state == ThreadState::Runnable)
                runnable.push_back(
                    SchedChoice{static_cast<int>(i), threads_[i]->pending});
        if (runnable.empty()) {
            // Every remaining thread is parked on a line watcher: a real
            // deadlock under this schedule. A verdict, not a crash.
            stop_ = StopReason::Deadlock;
            return;
        }
        if (now_ > cfg_.max_sim_time) {
            stop_ = StopReason::TimeLimit;
            return;
        }
        const int tid = scheduler_->pick(now_, runnable);
        if (tid == kStopRun) {
            stop_ = StopReason::SchedulerStop;
            return;
        }
        ThreadHot& next = hot_[static_cast<std::size_t>(tid)];
        NUCA_ASSERT(next.state == ThreadState::Runnable,
                    "scheduler picked non-runnable thread ", tid);
        ++sched_steps_;
        current_tid_ = tid;
        ++fiber_switches_;
        next.fiber->resume();
        current_tid_ = -1;

        if (next.fiber->finished()) {
            next.state = ThreadState::Done;
            threads_[static_cast<std::size_t>(tid)]->finish = now_;
            ++done;
        }
    }
}

namespace {

/** Minimal JSON string escaping (quotes, backslashes, control chars). */
std::string
json_escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

void
SimMachine::panic_with_diagnosis(const std::string& what) const
{
    std::ostringstream oss;
    oss << what << " at t=" << now_ << " ns\n";
    for (const auto& thr : threads_) {
        const ThreadHot& hot = hot_[static_cast<std::size_t>(thr->tid)];
        oss << "  t" << thr->tid << " cpu=" << thr->cpu << " ";
        switch (hot.state) {
          case ThreadState::Runnable:
            oss << "runnable, wake=" << hot.wake << " ns";
            break;
          case ThreadState::Waiting:
            oss << "waiting on line " << hot.waiting_line;
            break;
          case ThreadState::Done:
            oss << "done at " << thr->finish << " ns";
            break;
        }
        oss << "\n";
    }
    if (checker_ != nullptr)
        oss << checker_->report();
    if (injector_ != nullptr && injector_->injected() != 0)
        oss << "applied faults (" << injector_->injected() << "):\n"
            << injector_->log();

    // CI-friendly death: a diagnosed failure is a *verdict* (a checked
    // property did not hold under this schedule), not a simulator crash, so
    // it exits with kDiagnosisExitCode instead of abort()ing — CI can tell
    // the two apart by wait status. NUCALOCK_DIAG_JSON=<path> additionally
    // writes the diagnosis as a machine-readable report.
    if (const char* path = std::getenv("NUCALOCK_DIAG_JSON");
        path != nullptr && *path != '\0') {
        std::ofstream json(path);
        json << "{\n  \"error\": \"" << json_escape(what) << "\",\n"
             << "  \"time_ns\": " << now_ << ",\n"
             << "  \"exit_code\": " << kDiagnosisExitCode << ",\n";
        if (checker_ != nullptr) {
            json << "  \"acquisitions\": " << checker_->acquisitions() << ",\n"
                 << "  \"mutual_exclusion_violations\": "
                 << checker_->mutual_exclusion_violations() << ",\n"
                 << "  \"violations\": [";
            for (std::size_t i = 0; i < checker_->violations().size(); ++i)
                json << (i == 0 ? "" : ", ") << "\""
                     << json_escape(checker_->violations()[i]) << "\"";
            json << "],\n";
        }
        if (injector_ != nullptr)
            json << "  \"faults_injected\": " << injector_->injected()
                 << ",\n  \"fault_log\": \"" << json_escape(injector_->log())
                 << "\",\n";
        json << "  \"threads\": [\n";
        for (std::size_t i = 0; i < threads_.size(); ++i) {
            const SimThread& thr = *threads_[i];
            const ThreadState st = hot_[i].state;
            const char* state = st == ThreadState::Runnable ? "runnable"
                                : st == ThreadState::Waiting ? "waiting"
                                                             : "done";
            json << "    {\"tid\": " << thr.tid << ", \"cpu\": " << thr.cpu
                 << ", \"state\": \"" << state << "\"}"
                 << (i + 1 < threads_.size() ? "," : "") << "\n";
        }
        json << "  ]\n}\n";
    }
    std::fprintf(stderr, "diagnosed failure: %s\n", oss.str().c_str());
    std::exit(kDiagnosisExitCode);
}

void
SimMachine::print_stats(std::ostream& os) const
{
    os << "simulated time: " << static_cast<double>(now_) / 1e6 << " ms, "
       << num_threads() << " threads, " << fiber_switches_
       << " scheduling events, " << memory_.num_accesses()
       << " memory accesses\n";
    const TrafficStats t = memory_.traffic();
    os << "traffic: " << t.local_tx << " local / " << t.global_tx
       << " global transactions (" << t.data_fetch_tx << " fetches, "
       << t.invalidation_tx << " invalidations, " << t.atomic_tx
       << " atomics)\n";

    auto utilization = [this](const Resource& r) {
        return now_ == 0 ? 0.0
                         : 100.0 * static_cast<double>(r.busy_time()) /
                               static_cast<double>(now_);
    };
    for (int n = 0; n < topo_.num_nodes(); ++n) {
        const Resource& bus = memory_.node_bus(n);
        os << "  " << bus.name() << ": " << bus.transactions() << " tx, "
           << utilization(bus) << "% busy, "
           << (bus.transactions() == 0
                   ? 0.0
                   : static_cast<double>(bus.queue_time()) /
                         static_cast<double>(bus.transactions()))
           << " ns avg queue (p99 " << bus.queue_delay().percentile(99.0)
           << " ns)\n";
    }
    const Resource& link = memory_.global_link();
    os << "  " << link.name() << ": " << link.transactions() << " tx, "
       << utilization(link) << "% busy, "
       << (link.transactions() == 0
               ? 0.0
               : static_cast<double>(link.queue_time()) /
                     static_cast<double>(link.transactions()))
       << " ns avg queue (p99 " << link.queue_delay().percentile(99.0)
       << " ns)\n";
}

SimTime
SimMachine::finish_time(int tid) const
{
    NUCA_ASSERT(tid >= 0 && tid < num_threads(), "tid=", tid);
    NUCA_ASSERT(hot_[static_cast<std::size_t>(tid)].state == ThreadState::Done,
                "thread ", tid, " not finished");
    return threads_[static_cast<std::size_t>(tid)]->finish;
}

} // namespace nucalock::sim
