/**
 * @file
 * Memory-access tracing for the simulator: an optional per-access hook on
 * SimMemory plus a recorder with line filtering and CSV export. Used for
 * debugging lock dynamics (e.g. watching node ownership batches under
 * HBO_GT_SD) and for the trace_locks example.
 */
#ifndef NUCALOCK_SIM_TRACE_HPP
#define NUCALOCK_SIM_TRACE_HPP

#include <functional>
#include <ostream>
#include <unordered_set>
#include <vector>

#include "sim/memory.hpp"
#include "sim/time.hpp"

namespace nucalock::sim {

/** One traced memory access. */
struct TraceEvent
{
    SimTime start = 0;
    SimTime complete = 0;
    int cpu = -1;
    MemOp op = MemOp::Load;
    std::uint32_t line = 0;
    std::uint64_t old_value = 0;
    std::uint64_t new_value = 0;
};

/** Hook type installed on SimMemory. */
using TraceHook = std::function<void(const TraceEvent&)>;

/** Printable op mnemonic. */
const char* mem_op_name(MemOp op);

/**
 * Collects TraceEvents, optionally restricted to a set of lines. Keep the
 * filter tight: an unfiltered trace of a contended run is large.
 */
class TraceRecorder
{
  public:
    TraceRecorder() = default;

    /** Restrict recording to @p refs (call before installing). */
    void
    watch_only(const std::vector<MemRef>& refs)
    {
        for (const MemRef& ref : refs)
            filter_.insert(ref.line);
    }

    /**
     * Cap the recording at @p max events; later matching events are
     * dropped (and counted in dropped()) instead of growing the buffer
     * without bound on a long contended run. 0 = unlimited (default).
     */
    void set_max_events(std::size_t max) { max_events_ = max; }

    /** The hook to install via SimMemory::set_trace_hook. */
    TraceHook
    hook()
    {
        return [this](const TraceEvent& event) {
            if (!filter_.empty() && !filter_.contains(event.line))
                return;
            if (max_events_ != 0 && events_.size() >= max_events_) {
                ++dropped_;
                return;
            }
            events_.push_back(event);
        };
    }

    const std::vector<TraceEvent>& events() const { return events_; }

    /** Matching events discarded because the cap was reached. */
    std::uint64_t dropped() const { return dropped_; }

    void
    clear()
    {
        events_.clear();
        dropped_ = 0;
    }

    /** Dump as CSV (start,complete,cpu,op,line,old,new). */
    void dump_csv(std::ostream& os) const;

  private:
    std::unordered_set<std::uint32_t> filter_;
    std::vector<TraceEvent> events_;
    std::size_t max_events_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace nucalock::sim

#endif // NUCALOCK_SIM_TRACE_HPP
