/**
 * @file
 * NUCA latency models.
 *
 * Parameters are calibrated so that the simulated Table 1 of the paper
 * (uncontested acquire-release latencies on a 2-node Sun WildFire) lands
 * near the published numbers; presets cover the other machines from the
 * paper's section 2 NUCA-ratio table.
 */
#ifndef NUCALOCK_SIM_LATENCY_HPP
#define NUCALOCK_SIM_LATENCY_HPP

#include "sim/time.hpp"

namespace nucalock::sim {

/** All fixed latencies and occupancies of the simulated memory system (ns). */
struct LatencyModel
{
    /** Fixed pipeline cost of issuing any memory operation. */
    SimTime issue = 6;
    /** Load hit in the cpu's own cache. */
    SimTime cache_hit = 15;
    /** Atomic RMW on a line this cpu already owns exclusively. */
    SimTime own_atomic = 110;
    /** Plain store to a line this cpu already owns exclusively. */
    SimTime own_store = 25;
    /** Cache-to-cache transfer from another cpu in the same chip. */
    SimTime same_chip_c2c = 120;
    /** Cache-to-cache transfer from another cpu in the same node. */
    SimTime same_node_c2c = 520;
    /** Cache-to-cache transfer from a cpu in a remote node. */
    SimTime remote_c2c = 1820;
    /** Fetch from node-local memory (line cached nowhere). */
    SimTime local_mem = 330;
    /** Fetch from a remote node's memory. */
    SimTime remote_mem = 1700;
    /** Added latency to invalidate sharers within the requester's node. */
    SimTime inval_local = 60;
    /** Added latency to invalidate sharers in a remote node. */
    SimTime inval_remote = 300;
    /** Bus occupancy of one intra-node transaction. */
    SimTime node_bus_occupancy = 45;
    /** Link occupancy of one inter-node transaction. */
    SimTime global_link_occupancy = 110;
    /** ns per empty backoff-loop iteration (250 MHz-ish core). */
    SimTime ns_per_delay_iteration = 4;

    /** Effective NUCA ratio (remote vs same-node cache-to-cache). */
    double nuca_ratio() const;

    /** 2-node Sun WildFire with CMR, NUCA ratio ~ 6 on memory, ~3.5 c2c. */
    static LatencyModel wildfire();
    /** Flat SMP (Sun E6000 / SunFire-15k-like): NUCA ratio ~ 1. */
    static LatencyModel flat_smp();
    /** Stanford DASH: NUCA ratio ~ 4.5. */
    static LatencyModel dash();
    /** Sequent NUMA-Q: NUCA ratio ~ 10. */
    static LatencyModel numaq();
    /** Future CMP cluster: cheap same-chip transfers, ratio 6-10. */
    static LatencyModel cmp_cluster();

    /**
     * WildFire model rescaled so remote_c2c / same_node_c2c == @p ratio
     * (>= 1), for NUCA-ratio sweeps. Remote memory scales alongside.
     */
    static LatencyModel scaled(double ratio);
};

} // namespace nucalock::sim

#endif // NUCALOCK_SIM_LATENCY_HPP
