/**
 * @file
 * Per-host-thread pool of fiber stacks.
 *
 * A benchmark sweep constructs thousands of SimMachines, each of which
 * allocates one 256 KiB stack per simulated thread. Those allocations are
 * big enough that the allocator serves them with mmap/munmap, and the page
 * faults + TLB shootdowns dominated system time in full sweeps (~1/3 of
 * wall time on the fig5 bench before pooling). The pool keeps released
 * stacks on a thread-local free list and hands them back to the next Fiber
 * of the same size, so a sweep touches the kernel once per (host thread,
 * stack slot) instead of once per simulated thread.
 *
 * Thread-local on purpose: Executor workers each run whole SimMachines, so
 * stacks never migrate between host threads and the pool needs no locks.
 * The list is freed when the host thread exits.
 *
 * On Linux, big stacks are carved from 16 MiB huge-page-aligned slabs
 * (madvise(MADV_HUGEPAGE)) rather than allocated individually — a
 * big-topology run holds 1024 stacks, whose 4 KiB dTLB entries would
 * otherwise outnumber the TLB and turn every fiber handover into a page
 * walk. See the comment in stack_pool.cpp.
 */
#ifndef NUCALOCK_SIM_STACK_POOL_HPP
#define NUCALOCK_SIM_STACK_POOL_HPP

#include <cstddef>

namespace nucalock::sim {

class StackPool
{
  public:
    /** Get a stack of exactly @p bytes (pooled if available, else new). */
    static char* acquire(std::size_t bytes);

    /** Return a stack obtained from acquire(). Never throws. */
    static void release(char* stack, std::size_t bytes) noexcept;

    /** Stacks currently pooled on this host thread (tests). */
    static std::size_t pooled_count();

    /** Free every pooled stack on this host thread (tests). */
    static void trim() noexcept;
};

} // namespace nucalock::sim

#endif // NUCALOCK_SIM_STACK_POOL_HPP
