#include "sim/faults.hpp"

#include <sstream>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace nucalock::sim {

const char*
fault_kind_name(FaultKind kind)
{
    switch (kind) {
      case FaultKind::HolderPreempt: return "holder";
      case FaultKind::PublishPreempt: return "publish";
      case FaultKind::SpinnerPreempt: return "spinner";
      case FaultKind::LinkSpike: return "spike";
      case FaultKind::ThreadStall: return "stall";
      case FaultKind::ThreadDeath: return "death";
      case FaultKind::HolderDeath: return "holderdeath";
    }
    NUCA_PANIC("unknown FaultKind");
}

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

FaultPlan
FaultPlan::none()
{
    return FaultPlan{};
}

namespace {

FaultPlan
one_event(std::string name, FaultEvent event)
{
    FaultPlan plan;
    plan.name = std::move(name);
    plan.events.push_back(event);
    return plan;
}

} // namespace

FaultPlan
FaultPlan::holder_preempt(SimTime duration, std::uint64_t every, SimTime from,
                          int tid)
{
    return one_event("holder", FaultEvent{FaultKind::HolderPreempt, tid, from,
                                          duration, every, 0});
}

FaultPlan
FaultPlan::publish_preempt(SimTime duration, std::uint64_t every, SimTime from,
                           int tid)
{
    return one_event("publish", FaultEvent{FaultKind::PublishPreempt, tid,
                                           from, duration, every, 0});
}

FaultPlan
FaultPlan::spinner_preempt(SimTime duration, std::uint64_t every, SimTime from,
                           int tid)
{
    return one_event("spinner", FaultEvent{FaultKind::SpinnerPreempt, tid,
                                           from, duration, every, 0});
}

FaultPlan
FaultPlan::link_spike(SimTime from, SimTime duration, SimTime extra_ns)
{
    return one_event("spike", FaultEvent{FaultKind::LinkSpike, -1, from,
                                         duration, 1, extra_ns});
}

FaultPlan
FaultPlan::thread_stall(int tid, SimTime at, SimTime duration)
{
    return one_event("stall",
                     FaultEvent{FaultKind::ThreadStall, tid, at, duration, 1, 0});
}

FaultPlan
FaultPlan::thread_death(int tid, SimTime at)
{
    return one_event("death",
                     FaultEvent{FaultKind::ThreadDeath, tid, at, 0, 1, 0});
}

FaultPlan
FaultPlan::holder_death(std::uint64_t nth, SimTime from)
{
    return one_event("holderdeath", FaultEvent{FaultKind::HolderDeath, -1,
                                               from, 0, nth, 0});
}

FaultPlan&
FaultPlan::operator+=(const FaultPlan& other)
{
    if (empty())
        name = other.name;
    else if (!other.empty())
        name += "+" + other.name;
    events.insert(events.end(), other.events.begin(), other.events.end());
    return *this;
}

std::optional<FaultPlan>
FaultPlan::parse(std::string_view spec, std::uint64_t seed, int threads)
{
    NUCA_ASSERT(threads > 0, "threads=", threads);
    // All derived parameters come from one SplitMix64 stream keyed on the
    // seed only, so the same (spec, seed, threads) triple always expands to
    // the same plan regardless of preset order or repetition.
    SplitMix64 rng(seed ^ 0xfa0175eedULL);
    const auto pick_tid = [&] {
        return static_cast<int>(rng.next() % static_cast<std::uint64_t>(threads));
    };

    FaultPlan plan;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        const std::size_t plus = spec.find('+', pos);
        const std::string_view part =
            spec.substr(pos, plus == std::string_view::npos ? spec.size() - pos
                                                            : plus - pos);
        pos = plus == std::string_view::npos ? spec.size() + 1 : plus + 1;
        if (part.empty() || part == "none") {
            continue;
        } else if (part == "holder") {
            plan += holder_preempt(2'000'000, 7, 0);
        } else if (part == "publish") {
            plan += publish_preempt(2'000'000, 5, 0);
        } else if (part == "spinner") {
            plan += spinner_preempt(2'000'000, 3, 0);
        } else if (part == "spike") {
            const SimTime from = 200'000 + rng.next() % 800'000;
            plan += link_spike(from, 5'000'000, 2'000);
        } else if (part == "stall") {
            const int tid = pick_tid();
            const SimTime at = 100'000 + rng.next() % 900'000;
            plan += thread_stall(tid, at, 8'000'000);
        } else if (part == "death") {
            const int tid = pick_tid();
            const SimTime at = 100'000 + rng.next() % 900'000;
            plan += thread_death(tid, at);
        } else if (part == "holderdeath") {
            // Victim selection is structural (the Nth CS entry), so the
            // preset works at any run length; the seed varies which entry.
            plan += holder_death(2 + rng.next() % 4);
        } else if (part == "chaos") {
            plan += holder_preempt(1'000'000, 11, 0);
            plan += publish_preempt(1'000'000, 13, 0);
            plan += spinner_preempt(1'000'000, 7, 0);
            plan += link_spike(rng.next() % 1'000'000, 4'000'000, 1'500);
            plan += thread_stall(pick_tid(), rng.next() % 1'000'000,
                                 4'000'000);
            plan.name = "chaos";
        } else {
            return std::nullopt;
        }
    }
    if (plan.empty())
        plan.name = "none";
    return plan;
}

std::string
FaultPlan::describe() const
{
    std::ostringstream oss;
    oss << "plan " << name << " (" << events.size() << " events)";
    for (const FaultEvent& e : events) {
        oss << "\n  " << fault_kind_name(e.kind) << " tid=" << e.tid
            << " at=" << e.at << "ns dur=" << e.duration << "ns";
        if (e.kind == FaultKind::HolderPreempt ||
            e.kind == FaultKind::PublishPreempt ||
            e.kind == FaultKind::SpinnerPreempt)
            oss << " every=" << e.every;
        if (e.kind == FaultKind::HolderDeath)
            oss << " nth=" << e.every;
        if (e.kind == FaultKind::LinkSpike)
            oss << " extra=" << e.extra_link_ns << "ns";
    }
    return oss.str();
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), state_(plan_.events.size())
{
}

void
FaultInjector::record(SimTime now, const char* what, int tid, SimTime duration)
{
    ++injected_;
    std::ostringstream oss;
    oss << "t=" << now << " " << what << " tid=" << tid << " dur=" << duration
        << "\n";
    log_ += oss.str();
}

SimTime
FaultInjector::structural_penalty(FaultKind kind, int tid, SimTime now,
                                  const char* what)
{
    SimTime penalty = 0;
    for (std::size_t i = 0; i < plan_.events.size(); ++i) {
        const FaultEvent& e = plan_.events[i];
        if (e.kind != kind || e.every == 0 || now < e.at)
            continue;
        if (e.tid != -1 && e.tid != tid)
            continue;
        EventState& s = state_[i];
        if (++s.triggers % e.every != 0)
            continue;
        record(now, what, tid, e.duration);
        penalty += e.duration;
    }
    return penalty;
}

SimTime
FaultInjector::on_cs_enter(int tid, SimTime now)
{
    // Arm any HolderDeath event whose Nth CS entry this is: the victim is
    // killed by the next sweep_deaths pass, i.e. before it executes another
    // operation — still inside its critical section.
    for (std::size_t i = 0; i < plan_.events.size(); ++i) {
        const FaultEvent& e = plan_.events[i];
        if (e.kind != FaultKind::HolderDeath || e.every == 0 || now < e.at)
            continue;
        EventState& s = state_[i];
        if (s.fired || ++s.triggers != e.every)
            continue;
        s.fired = true;
        s.victim = tid;
    }
    return structural_penalty(FaultKind::HolderPreempt, tid, now,
                              "holder-preempt");
}

SimTime
FaultInjector::on_access(int tid, SimTime now, bool publish_window,
                         bool gate_closed)
{
    SimTime penalty = 0;
    if (publish_window)
        penalty += structural_penalty(FaultKind::PublishPreempt, tid, now,
                                      "publish-preempt");
    if (gate_closed)
        penalty += structural_penalty(FaultKind::SpinnerPreempt, tid, now,
                                      "spinner-preempt");
    return penalty;
}

SimTime
FaultInjector::adjust_wake(int tid, SimTime wake)
{
    for (std::size_t i = 0; i < plan_.events.size(); ++i) {
        const FaultEvent& e = plan_.events[i];
        if (e.kind != FaultKind::ThreadStall)
            continue;
        if (e.tid != -1 && e.tid != tid)
            continue;
        EventState& s = state_[i];
        if (s.fired || wake < e.at)
            continue;
        // Per-thread one-shot only when targeted; an "everyone" stall uses
        // the trigger counter as a bitmap of already-stalled threads.
        if (e.tid == -1) {
            const std::uint64_t bit = std::uint64_t{1}
                                      << (static_cast<unsigned>(tid) % 64);
            if (s.triggers & bit)
                continue;
            s.triggers |= bit;
        } else {
            s.fired = true;
        }
        record(wake, "stall", tid, e.duration);
        wake += e.duration;
    }
    return wake;
}

bool
FaultInjector::should_die(int tid, SimTime next_run)
{
    for (std::size_t i = 0; i < plan_.events.size(); ++i) {
        const FaultEvent& e = plan_.events[i];
        EventState& s = state_[i];
        if (e.kind == FaultKind::HolderDeath && s.victim == tid) {
            s.victim = -1; // record the kill exactly once
            record(next_run, "holder-death", tid, 0);
            return true;
        }
        if (e.kind != FaultKind::ThreadDeath || e.tid != tid)
            continue;
        if (s.fired || next_run < e.at)
            continue;
        s.fired = true;
        record(next_run, "death", tid, 0);
        return true;
    }
    return false;
}

SimTime
FaultInjector::link_penalty(SimTime now)
{
    SimTime extra = 0;
    for (std::size_t i = 0; i < plan_.events.size(); ++i) {
        const FaultEvent& e = plan_.events[i];
        if (e.kind != FaultKind::LinkSpike)
            continue;
        if (now >= e.at && now < e.at + e.duration) {
            extra += e.extra_link_ns;
            if (!state_[i].fired) {
                state_[i].fired = true;
                record(now, "spike", -1, e.duration);
            }
        }
    }
    return extra;
}

} // namespace nucalock::sim
