/**
 * @file
 * Deterministic fault injection for the NUCA simulator.
 *
 * A FaultPlan is pure data: a list of FaultEvents, each describing one
 * adversarial disturbance (who, when, how long, how often). A FaultInjector
 * executes a plan against a SimMachine through narrow hooks the engine
 * calls at structural points of lock execution:
 *
 *  - HolderPreempt:  deschedule a thread right as it enters the critical
 *    section — the Table 4 pathology, but aimed exactly at the holder
 *    instead of falling uniformly at random.
 *  - PublishPreempt: deschedule a thread right after a swap on a lock word,
 *    i.e. inside the window between a queue lock's tail swap and the
 *    store that publishes its queue node (MCS's "timely linking" window).
 *  - SpinnerPreempt: deschedule a thread right after it closes a node's
 *    is_spinning gate — the HBO_GT/SD node winner is knocked out while the
 *    whole node is parked behind its gate.
 *  - LinkSpike:      add fixed latency to every global-link transaction
 *    inside a time window (congestion / link fault).
 *  - ThreadStall:    freeze one thread (or all) for a duration starting at
 *    a given time (multiprogramming, page fault, SMI).
 *  - ThreadDeath:    a thread never runs again past a given time; if it
 *    held a lock, the lock is abandoned and survivors must recover through
 *    try_acquire / acquire_for.
 *  - HolderDeath:    kill the thread performing the Nth critical-section
 *    entry, at its next scheduling point — i.e. while it still holds the
 *    lock. ThreadDeath fires on the victim's own clock, so whether it lands
 *    inside a critical section depends on the schedule; HolderDeath is the
 *    deterministic version of "the holder dies" that the recovery audits
 *    (nucacheck --campaign) rely on.
 *
 * Everything is deterministic: the same plan against the same machine and
 * seed produces a byte-identical applied-fault log (see log()), which the
 * fault-injection tests assert.
 */
#ifndef NUCALOCK_SIM_FAULTS_HPP
#define NUCALOCK_SIM_FAULTS_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/memory.hpp"
#include "sim/time.hpp"

namespace nucalock::sim {

/** Kinds of injectable faults (see the file comment for semantics). */
enum class FaultKind
{
    HolderPreempt,
    PublishPreempt,
    SpinnerPreempt,
    LinkSpike,
    ThreadStall,
    ThreadDeath,
    HolderDeath,
};

/** Printable name ("holder", "publish", ...), matching the CLI spec. */
const char* fault_kind_name(FaultKind kind);

/** One scheduled disturbance. */
struct FaultEvent
{
    FaultKind kind = FaultKind::HolderPreempt;
    /** Victim thread id, or -1 for "any thread". */
    int tid = -1;
    /** Earliest simulated time (ns) at which the fault may fire. */
    SimTime at = 0;
    /** Deschedule/stall/spike length in ns (unused for ThreadDeath). */
    SimTime duration = 0;
    /**
     * Structural faults (Holder/Publish/SpinnerPreempt): fire on every
     * Nth trigger-point hit after @ref at. 0 disables the event.
     */
    std::uint64_t every = 1;
    /** LinkSpike: latency added to each global-link transaction (ns). */
    SimTime extra_link_ns = 0;
};

/**
 * A deterministic schedule of faults. Build one from the factories, or
 * parse a CLI spec (see parse()).
 */
struct FaultPlan
{
    std::string name = "none";
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }
    bool
    has(FaultKind kind) const
    {
        for (const FaultEvent& e : events)
            if (e.kind == kind)
                return true;
        return false;
    }

    /** True when any event can kill a thread (either death kind). Plans
     *  with deaths legitimately lose iterations and abandon held locks. */
    bool
    has_death() const
    {
        return has(FaultKind::ThreadDeath) || has(FaultKind::HolderDeath);
    }

    /** No faults (the default). */
    static FaultPlan none();
    /** Preempt the holder for @p duration at every @p every CS entry. */
    static FaultPlan holder_preempt(SimTime duration, std::uint64_t every,
                                    SimTime from = 0, int tid = -1);
    /** Preempt after every @p every lock-word swap (queue publish window). */
    static FaultPlan publish_preempt(SimTime duration, std::uint64_t every,
                                     SimTime from = 0, int tid = -1);
    /** Preempt after every @p every is_spinning gate registration. */
    static FaultPlan spinner_preempt(SimTime duration, std::uint64_t every,
                                     SimTime from = 0, int tid = -1);
    /** Add @p extra_ns to global-link transactions in [from, from+duration). */
    static FaultPlan link_spike(SimTime from, SimTime duration,
                                SimTime extra_ns);
    /** Freeze @p tid (-1: everyone) for @p duration at @p at. */
    static FaultPlan thread_stall(int tid, SimTime at, SimTime duration);
    /** Kill @p tid at its first scheduling point at or after @p at. */
    static FaultPlan thread_death(int tid, SimTime at);
    /** Kill whichever thread performs the @p nth CS entry at or after
     *  @p from — it dies inside its critical section. */
    static FaultPlan holder_death(std::uint64_t nth, SimTime from = 0);

    /** Concatenate another plan's events (builds combined plans). */
    FaultPlan& operator+=(const FaultPlan& other);

    /**
     * Parse a CLI spec: '+'-separated preset names out of {none, holder,
     * publish, spinner, spike, stall, death, holderdeath, chaos}. Event
     * parameters
     * (victims, times, durations) are derived deterministically from
     * @p seed and @p threads, so the same spec/seed/thread-count always
     * yields the same plan. Returns nullopt on an unknown name.
     */
    static std::optional<FaultPlan> parse(std::string_view spec,
                                          std::uint64_t seed, int threads);

    /** Human-readable one-line-per-event description. */
    std::string describe() const;
};

/**
 * Executes a FaultPlan. Install on a SimMachine with
 * machine.install_faults(&injector) before run(); the engine then consults
 * the hooks below. All hook decisions depend only on the plan and the
 * deterministic simulation state, and every applied fault is appended to
 * log() — so identical runs produce identical logs.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(FaultPlan plan);

    const FaultPlan& plan() const { return plan_; }

    // ----- hooks called by SimMachine / SimMemory ------------------------

    /** CS entry by @p tid: extra deschedule time for the holder (0 = none). */
    SimTime on_cs_enter(int tid, SimTime now);

    /**
     * Post-access classification hook. @p publish_window is true for a
     * swap (queue-lock enqueue); @p gate_closed is true for a store that
     * closes an is_spinning gate. Returns extra deschedule time.
     */
    SimTime on_access(int tid, SimTime now, bool publish_window,
                      bool gate_closed);

    /** Adjust a computed wake time for pending ThreadStall events. */
    SimTime adjust_wake(int tid, SimTime wake);

    /**
     * True when @p tid must die instead of running again.
     * @p next_run is the earliest time it could possibly run next.
     */
    bool should_die(int tid, SimTime next_run);

    /**
     * Extra global-link latency at time @p now (LinkSpike windows). Each
     * spike counts as one injected fault the first time a transaction
     * actually pays it, not once per slowed transaction.
     */
    SimTime link_penalty(SimTime now);

    // ----- results -------------------------------------------------------

    /** Number of faults actually applied. */
    std::uint64_t injected() const { return injected_; }

    /** One line per applied fault, in application order (determinism). */
    const std::string& log() const { return log_; }

  private:
    struct EventState
    {
        std::uint64_t triggers = 0; // structural trigger points seen
        bool fired = false;         // one-shot events (stall, death)
        int victim = -1;            // HolderDeath: tid armed to die
    };

    SimTime structural_penalty(FaultKind kind, int tid, SimTime now,
                               const char* what);
    void record(SimTime now, const char* what, int tid, SimTime duration);

    FaultPlan plan_;
    std::vector<EventState> state_;
    std::uint64_t injected_ = 0;
    std::string log_;
};

} // namespace nucalock::sim

#endif // NUCALOCK_SIM_FAULTS_HPP
