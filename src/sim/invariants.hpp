/**
 * @file
 * Online invariant checking for simulated lock workloads.
 *
 * An InvariantChecker installed on a SimMachine receives critical-section
 * markers (SimContext::cs_wait_begin / cs_enter / cs_exit) and thread-death
 * notifications, and maintains three enforced properties:
 *
 *  - Mutual exclusion: a cs_enter while another thread is inside the
 *    critical section is recorded as a violation (and optionally panics).
 *  - Progress: a watchdog fires when no CS activity happens for a
 *    configurable window while threads are waiting — the engine then dumps
 *    a bounded ring of recent CS events plus per-thread state instead of
 *    the old bare "max_sim_time exceeded" panic.
 *  - Bounded starvation: per-thread bypass counts (how many times other
 *    threads entered the CS while this thread was waiting) and same-node
 *    handover streaks quantify fairness, so HBO_GT_SD's starvation bound
 *    is an assertion, not an assumption.
 *
 * The checker is passive bookkeeping: it adds no simulated time and does
 * not perturb lock behavior, so instrumented runs remain byte-identical to
 * uninstrumented ones.
 *
 * Every hook is O(1) in the thread count (big-topology engine, see
 * docs/performance.md): a waiting thread's bypass count is the number of
 * acquisitions since its wait began, so it is derived from one global
 * acquisition epoch instead of incrementing every waiter per enter, and
 * the "is a remote thread waiting" test reads per-node waiting counters
 * instead of scanning all threads. Only the end-of-run accessors
 * (max_bypasses(), fairness_violations()) walk the thread table.
 */
#ifndef NUCALOCK_SIM_INVARIANTS_HPP
#define NUCALOCK_SIM_INVARIANTS_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace nucalock::sim {

/** Checker configuration. */
struct InvariantConfig
{
    /**
     * Progress watchdog: fire when no CS marker arrives for this long
     * (simulated ns) while at least one thread waits. 0 disables.
     */
    SimTime watchdog_window_ns = 0;

    /** Bounded ring of recent CS events kept for diagnostics. */
    std::size_t trace_ring_capacity = 256;

    /** Panic immediately on a mutual-exclusion violation (tests prefer
     *  collecting and asserting). */
    bool panic_on_violation = false;

    /**
     * Fairness window: a thread bypassed more than this many times during
     * one wait counts as a fairness violation. 0 = record only.
     */
    std::uint64_t fairness_window = 0;
};

/** Kinds of recorded CS events. */
enum class CsEventKind
{
    WaitBegin,
    WaitAbort,
    Enter,
    Exit,
    Died,
};

/** One entry of the diagnostic trace ring. */
struct CsEvent
{
    SimTime at = 0;
    int tid = -1;
    int node = -1;
    CsEventKind kind = CsEventKind::Enter;
};

class InvariantChecker
{
  public:
    explicit InvariantChecker(InvariantConfig cfg = InvariantConfig{});

    const InvariantConfig& config() const { return cfg_; }

    // ----- hooks (called by the engine via SimContext markers) -----------

    void on_wait_begin(int tid, int node, SimTime now);
    void on_wait_abort(int tid, int node, SimTime now);
    void on_enter(int tid, int node, SimTime now);
    void on_exit(int tid, int node, SimTime now);
    void on_thread_death(int tid, SimTime now);

    /** Engine scheduler: should the progress watchdog fire at @p now? */
    bool watchdog_expired(SimTime now) const;

    // ----- results -------------------------------------------------------

    /** Total successful CS entries. */
    std::uint64_t acquisitions() const { return acquisitions_; }

    /** Mutual-exclusion violations seen (0 is the only acceptable value). */
    std::uint64_t mutual_exclusion_violations() const { return me_violations_; }

    /** Bounded list of violation descriptions (first few only). */
    const std::vector<std::string>& violations() const { return violation_log_; }

    /** Thread currently inside the CS, or -1. */
    int current_holder() const;

    /** Worst bypass count any single wait of @p tid experienced. */
    std::uint64_t max_bypasses(int tid) const;
    /** Worst bypass count over all threads. */
    std::uint64_t max_bypasses() const;

    /** Number of waits that exceeded the fairness window. */
    std::uint64_t fairness_violations() const;

    /** Longest run of consecutive same-node acquisitions made while a
     *  thread of another node was waiting. */
    std::uint64_t max_node_streak() const { return max_node_streak_; }

    /** Threads currently marked waiting. */
    int waiting_count() const { return waiting_count_; }

    /**
     * Diagnosis: current holder, per-thread wait/bypass state, and the
     * last trace_ring_capacity CS events. This is what the engine appends
     * to its livelock/deadlock panic.
     */
    std::string report() const;
    void dump(std::ostream& os) const;

  private:
    struct ThreadState
    {
        bool waiting = false;
        bool in_cs = false;
        bool dead = false;
        SimTime wait_since = 0;
        /** acquisitions_ when the current wait began; a waiting thread's
         *  bypass count is acquisitions_ - wait_epoch (every acquisition
         *  during a wait is by someone else), so on_enter never walks the
         *  waiter set. */
        std::uint64_t wait_epoch = 0;
        std::uint64_t bypasses = 0;     // settled at wait end
        std::uint64_t max_bypasses = 0; // worst wait ever
        std::uint64_t acquisitions = 0;
        int node = -1;
    };

    ThreadState& state_of(int tid);
    void push_event(SimTime at, int tid, int node, CsEventKind kind);
    void violation(SimTime now, const std::string& what);
    /** Bypass count right now: live (epoch-derived) while waiting,
     *  settled otherwise. */
    std::uint64_t live_bypasses(const ThreadState& t) const;
    /** Close the current wait: settle bypasses/max_bypasses and count a
     *  fairness violation if the wait crossed the window. The caller
     *  clears t.waiting and the waiting counters. */
    void settle_wait(ThreadState& t);
    /** waiting_by_node_[node], grown on demand. */
    int& node_waiting(int node);

    InvariantConfig cfg_;
    std::vector<ThreadState> threads_;
    std::vector<CsEvent> ring_;
    std::size_t ring_next_ = 0;
    std::vector<int> holders_; // tids inside the CS (size > 1 = violation)
    std::uint64_t acquisitions_ = 0;
    std::uint64_t me_violations_ = 0;
    std::uint64_t fairness_violations_ = 0;
    std::vector<std::string> violation_log_;
    int waiting_count_ = 0;
    /** Waiting threads per node (indexed by node, grown on demand): the
     *  remote-waiter test is waiting_count_ vs this, not a thread scan. */
    std::vector<int> waiting_by_node_;
    int last_holder_node_ = -1;
    std::uint64_t node_streak_ = 0;
    std::uint64_t max_node_streak_ = 0;
    SimTime last_activity_ = 0;
    bool armed_ = false;
};

} // namespace nucalock::sim

#endif // NUCALOCK_SIM_INVARIANTS_HPP
