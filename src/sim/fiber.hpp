/**
 * @file
 * Cooperative fibers (ucontext-based) for simulated threads.
 *
 * Each simulated thread runs its program on a fiber; blocking simulator
 * operations (memory accesses, delays) switch back to the scheduler, so the
 * same straight-line lock code runs unmodified under simulation.
 */
#ifndef NUCALOCK_SIM_FIBER_HPP
#define NUCALOCK_SIM_FIBER_HPP

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>

namespace nucalock::sim {

/**
 * A single cooperative fiber. Not thread-safe: resume() and yield() must be
 * called from one host thread (the simulator is single-threaded by design —
 * that is what makes runs deterministic).
 */
class Fiber
{
  public:
    using Entry = std::function<void()>;

    /** Create a fiber that will run @p entry when first resumed. */
    explicit Fiber(Entry entry, std::size_t stack_bytes = kDefaultStackBytes);

    Fiber(const Fiber&) = delete;
    Fiber& operator=(const Fiber&) = delete;
    ~Fiber() = default;

    /**
     * Switch into the fiber; returns when the fiber calls yield() or its
     * entry function returns. Must not be called on a finished fiber.
     */
    void resume();

    /** Called from inside the fiber: switch back to the resumer. */
    void yield();

    /** True once the entry function has returned. */
    bool finished() const { return finished_; }

    static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  private:
    static void trampoline(unsigned int hi, unsigned int lo);
    void run();

    Entry entry_;
    std::unique_ptr<char[]> stack_;
    ucontext_t context_{};
    ucontext_t caller_{};
    bool started_ = false;
    bool finished_ = false;
    bool inside_ = false;
};

} // namespace nucalock::sim

#endif // NUCALOCK_SIM_FIBER_HPP
