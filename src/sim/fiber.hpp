/**
 * @file
 * Cooperative fibers for simulated threads.
 *
 * Each simulated thread runs its program on a fiber; blocking simulator
 * operations (memory accesses, delays) switch back to the scheduler, so the
 * same straight-line lock code runs unmodified under simulation.
 *
 * On x86-64 Linux the switch is ~20 instructions of hand-rolled register
 * save/restore (callee-saved GPRs + stack pointer). glibc's swapcontext
 * makes a rt_sigprocmask syscall in each direction to preserve the signal
 * mask; at half a million switches per benchmark run those syscalls were
 * ~30% of engine wall time. The simulator never changes the signal mask on
 * a fiber, so skipping it is safe. Other platforms keep the portable
 * ucontext path.
 */
#ifndef NUCALOCK_SIM_FIBER_HPP
#define NUCALOCK_SIM_FIBER_HPP

#include <cstddef>
#include <functional>

#if defined(__x86_64__) && defined(__linux__)
#define NUCALOCK_FIBER_FAST_SWITCH 1
#else
#include <ucontext.h>
#endif

#ifdef NUCALOCK_FIBER_FAST_SWITCH
/** Assembly entry shim: recovers the Fiber* and enters Fiber::run(). */
extern "C" void nucalock_fiber_entry(void* fiber);
#endif

namespace nucalock::sim {

/**
 * A single cooperative fiber. Not thread-safe: resume() and yield() must be
 * called from one host thread (the simulator is single-threaded by design —
 * that is what makes runs deterministic). Distinct fibers may live on
 * distinct host threads (the Executor runs whole machines per worker).
 */
class Fiber
{
  public:
    using Entry = std::function<void()>;

    /** Create a fiber that will run @p entry when first resumed. */
    explicit Fiber(Entry entry, std::size_t stack_bytes = kDefaultStackBytes);

    Fiber(const Fiber&) = delete;
    Fiber& operator=(const Fiber&) = delete;

    /** Returns the stack to the per-host-thread StackPool. */
    ~Fiber();

    /**
     * Switch into the fiber; returns when the fiber calls yield() or its
     * entry function returns. Must not be called on a finished fiber.
     */
    void resume();

    /** Called from inside the fiber: switch back to the resumer. */
    void yield();

    /** True once the entry function has returned. */
    bool finished() const { return finished_; }

    /**
     * Host stack pointer the fiber is suspended at (fast-switch builds;
     * nullptr elsewhere or while the fiber is running). The engine caches
     * this in its hot per-thread record right after each yield so that its
     * resume-path prefetches read one flat array instead of chasing
     * ThreadHot -> Fiber -> stack through two dependent cold misses.
     */
    const void* suspended_sp() const
    {
#ifdef NUCALOCK_FIBER_FAST_SWITCH
        return inside_ ? nullptr : switch_sp_;
#else
        return nullptr;
#endif
    }

    static constexpr std::size_t kDefaultStackBytes = 256 * 1024;

  private:
#ifdef NUCALOCK_FIBER_FAST_SWITCH
    friend void ::nucalock_fiber_entry(void* fiber);
#else
    static void trampoline(unsigned int hi, unsigned int lo);
#endif
    void run();

    Entry entry_;
    char* stack_ = nullptr; // from StackPool; released by the destructor
    std::size_t stack_bytes_ = 0;
#ifdef NUCALOCK_FIBER_FAST_SWITCH
    void* switch_sp_ = nullptr; // suspended fiber's stack pointer
    void* caller_sp_ = nullptr; // resumer's stack pointer while inside
#else
    ucontext_t context_{};
    ucontext_t caller_{};
#endif
    bool started_ = false;
    bool finished_ = false;
    bool inside_ = false;
    void* tsan_fiber_ = nullptr;  // TSan's view of this fiber (TSan only)
    void* tsan_caller_ = nullptr; // TSan fiber to return to on yield
};

} // namespace nucalock::sim

#endif // NUCALOCK_SIM_FIBER_HPP
