#include "sim/resource.hpp"

#include "common/logging.hpp"

namespace nucalock::sim {

Resource::Resource(std::string name) : name_(std::move(name))
{
    NUCA_ASSERT(!name_.empty());
}

void
Resource::record_series_bin(SimTime start, SimTime occupancy)
{
    // The whole occupancy is attributed to the bin service starts in;
    // occupancies are tens of ns against bins of tens of µs, so the
    // spill error is negligible for a utilisation timeline.
    const std::size_t bin = static_cast<std::size_t>(start / series_bin_ns_);
    if (bin >= busy_bins_.size()) {
        busy_bins_.resize(bin + 1, 0);
        tx_bins_.resize(bin + 1, 0);
    }
    busy_bins_[bin] += occupancy;
    ++tx_bins_[bin];
}

void
Resource::enable_series(SimTime bin_ns)
{
    series_bin_ns_ = bin_ns;
    if (bin_ns == 0) {
        busy_bins_.clear();
        tx_bins_.clear();
    }
}

ResourceUsage
Resource::usage(int node) const
{
    ResourceUsage u;
    u.name = name_;
    u.node = node;
    u.transactions = transactions_;
    u.busy_ns = busy_;
    u.queue_ns = queued_;
    u.queue_delay_ns = queue_delay_;
    u.series_bin_ns = series_bin_ns_;
    u.busy_ns_bins = busy_bins_;
    u.tx_bins = tx_bins_;
    return u;
}

void
Resource::reset_stats()
{
    busy_ = 0;
    queued_ = 0;
    transactions_ = 0;
    queue_delay_ = stats::LogHistogram{};
    busy_bins_.clear();
    tx_bins_.clear();
}

} // namespace nucalock::sim
