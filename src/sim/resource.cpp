#include "sim/resource.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace nucalock::sim {

Resource::Resource(std::string name) : name_(std::move(name))
{
    NUCA_ASSERT(!name_.empty());
}

SimTime
Resource::serve(SimTime arrival, SimTime occupancy)
{
    const SimTime start = std::max(arrival, next_free_);
    queued_ += start - arrival;
    next_free_ = start + occupancy;
    busy_ += occupancy;
    ++transactions_;
    return next_free_;
}

void
Resource::reset_stats()
{
    busy_ = 0;
    queued_ = 0;
    transactions_ = 0;
}

} // namespace nucalock::sim
