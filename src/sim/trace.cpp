#include "sim/trace.hpp"

#include "stats/csv.hpp"

namespace nucalock::sim {

const char*
mem_op_name(MemOp op)
{
    switch (op) {
      case MemOp::Load: return "load";
      case MemOp::Store: return "store";
      case MemOp::Cas: return "cas";
      case MemOp::Swap: return "swap";
      case MemOp::Tas: return "tas";
    }
    return "?";
}

void
TraceRecorder::dump_csv(std::ostream& os) const
{
    stats::CsvWriter csv(
        os, {"start_ns", "complete_ns", "cpu", "op", "line", "old", "new"});
    for (const TraceEvent& e : events_) {
        csv.cell(e.start)
            .cell(e.complete)
            .cell(e.cpu)
            .cell(mem_op_name(e.op))
            .cell(static_cast<std::uint64_t>(e.line))
            .cell(e.old_value)
            .cell(e.new_value);
        csv.end_row();
    }
}

} // namespace nucalock::sim
