#include "sim/latency.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace nucalock::sim {

double
LatencyModel::nuca_ratio() const
{
    return static_cast<double>(remote_c2c) / static_cast<double>(same_node_c2c);
}

LatencyModel
LatencyModel::wildfire()
{
    return LatencyModel{}; // defaults are the calibrated WildFire values
}

LatencyModel
LatencyModel::flat_smp()
{
    LatencyModel m;
    m.remote_c2c = m.same_node_c2c;
    m.remote_mem = m.local_mem;
    m.inval_remote = m.inval_local;
    m.global_link_occupancy = m.node_bus_occupancy;
    return m;
}

LatencyModel
LatencyModel::dash()
{
    LatencyModel m;
    m.remote_c2c = static_cast<SimTime>(4.5 * static_cast<double>(m.same_node_c2c));
    m.remote_mem = static_cast<SimTime>(4.5 * static_cast<double>(m.local_mem));
    return m;
}

LatencyModel
LatencyModel::numaq()
{
    LatencyModel m;
    m.remote_c2c = 10 * m.same_node_c2c;
    m.remote_mem = 10 * m.local_mem;
    m.inval_remote = 2 * m.inval_remote;
    return m;
}

LatencyModel
LatencyModel::cmp_cluster()
{
    LatencyModel m;
    m.same_chip_c2c = 40;   // on-die shared cache
    m.same_node_c2c = 220;  // off-die, same board
    m.remote_c2c = 1760;    // ratio 8 vs same-node
    m.local_mem = 200;
    m.remote_mem = 1500;
    return m;
}

LatencyModel
LatencyModel::scaled(double ratio)
{
    NUCA_ASSERT(ratio >= 1.0, "NUCA ratio must be >= 1, got ", ratio);
    LatencyModel m;
    m.remote_c2c =
        static_cast<SimTime>(std::llround(ratio * static_cast<double>(m.same_node_c2c)));
    m.remote_mem =
        static_cast<SimTime>(std::llround(ratio * static_cast<double>(m.local_mem)));
    m.inval_remote = static_cast<SimTime>(
        std::llround(ratio * static_cast<double>(m.inval_local)));
    return m;
}

} // namespace nucalock::sim
