/**
 * @file
 * FIFO-queued shared resources (node buses, the global interconnect link).
 *
 * Every coherence transaction occupies the resources it traverses for a
 * fixed occupancy. Under contention, transactions queue, which is the
 * mechanism that makes TATAS handover time grow with the number of spinners
 * and is the core of the paper's traffic argument.
 *
 * Beyond the aggregate busy/queue totals, each resource keeps a queue-delay
 * histogram (always on — it is pure accounting and never affects timing)
 * and, when enable_series() is called before the run, a time-binned
 * busy/transaction series for utilisation timelines (Perfetto counter
 * tracks, obs/timeline.hpp).
 */
#ifndef NUCALOCK_SIM_RESOURCE_HPP
#define NUCALOCK_SIM_RESOURCE_HPP

#include <string>
#include <vector>

#include "sim/time.hpp"
#include "stats/histogram.hpp"

namespace nucalock::sim {

/**
 * Copyable usage snapshot of one resource (harness results carry these out
 * of the machine, see ContentionStats).
 */
struct ResourceUsage
{
    std::string name;
    /** Initiating-side node for a node bus; -1 for the global link. */
    int node = -1;
    std::uint64_t transactions = 0;
    SimTime busy_ns = 0;
    SimTime queue_ns = 0;
    /** Per-transaction time spent waiting before service. */
    stats::LogHistogram queue_delay_ns;
    /** Bin width of the series below; 0 = series disabled. */
    SimTime series_bin_ns = 0;
    /** Busy ns per time bin (bin i covers [i*bin, (i+1)*bin)). */
    std::vector<std::uint64_t> busy_ns_bins;
    /** Transactions served per time bin. */
    std::vector<std::uint64_t> tx_bins;
};

/**
 * Per-resource contention snapshot of a whole run: every node bus (in node
 * order) followed by the global link. Deterministic for a given seed and
 * bit-identical across --jobs levels and probes on/off.
 */
struct ContentionStats
{
    /** Simulated end time the snapshot was taken at. */
    SimTime sim_time_ns = 0;
    /** Bin width of any recorded series; 0 = series disabled. */
    SimTime series_bin_ns = 0;
    std::vector<ResourceUsage> resources;

    /** The global-link entry, or nullptr when the snapshot is empty. */
    const ResourceUsage*
    global_link() const
    {
        for (const ResourceUsage& r : resources)
            if (r.node < 0)
                return &r;
        return nullptr;
    }
};

/** A single-server FIFO queue with deterministic service. */
class Resource
{
  public:
    explicit Resource(std::string name);

    /**
     * Serve a transaction arriving at @p arrival that holds the resource
     * for @p occupancy ns.
     * @return the time service completes (>= arrival + occupancy).
     *
     * Defined inline: a global access crosses three resources (two buses
     * and the link), so this runs up to three times per simulated memory
     * event and the call overhead is measurable at big topologies.
     */
    SimTime
    serve(SimTime arrival, SimTime occupancy)
    {
        const SimTime start = arrival > next_free_ ? arrival : next_free_;
        queued_ += start - arrival;
        queue_delay_.add(start - arrival);
        next_free_ = start + occupancy;
        busy_ += occupancy;
        ++transactions_;
        if (series_bin_ns_ != 0)
            record_series_bin(start, occupancy);
        return next_free_;
    }

    const std::string& name() const { return name_; }
    std::uint64_t transactions() const { return transactions_; }
    SimTime busy_time() const { return busy_; }
    /** Total time transactions spent waiting before service. */
    SimTime queue_time() const { return queued_; }
    SimTime next_free() const { return next_free_; }

    /** Distribution of per-transaction queue delays (always recorded). */
    const stats::LogHistogram& queue_delay() const { return queue_delay_; }

    /**
     * Start recording a busy-time / transaction series in bins of
     * @p bin_ns (0 disables). Call before the run; recording mid-run
     * leaves earlier bins empty.
     */
    void enable_series(SimTime bin_ns);
    SimTime series_bin_ns() const { return series_bin_ns_; }
    const std::vector<std::uint64_t>& busy_ns_bins() const { return busy_bins_; }
    const std::vector<std::uint64_t>& tx_bins() const { return tx_bins_; }

    /** Copyable snapshot for results/reports. @p node as in ResourceUsage. */
    ResourceUsage usage(int node) const;

    void reset_stats();

  private:
    /** Series bookkeeping, kept out of line so serve()'s inline body stays
     *  small (the series is off in benchmark runs). */
    void record_series_bin(SimTime start, SimTime occupancy);

    std::string name_;
    SimTime next_free_ = 0;
    SimTime busy_ = 0;
    SimTime queued_ = 0;
    std::uint64_t transactions_ = 0;
    stats::LogHistogram queue_delay_;
    SimTime series_bin_ns_ = 0;
    std::vector<std::uint64_t> busy_bins_;
    std::vector<std::uint64_t> tx_bins_;
};

} // namespace nucalock::sim

#endif // NUCALOCK_SIM_RESOURCE_HPP
