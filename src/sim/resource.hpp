/**
 * @file
 * FIFO-queued shared resources (node buses, the global interconnect link).
 *
 * Every coherence transaction occupies the resources it traverses for a
 * fixed occupancy. Under contention, transactions queue, which is the
 * mechanism that makes TATAS handover time grow with the number of spinners
 * and is the core of the paper's traffic argument.
 */
#ifndef NUCALOCK_SIM_RESOURCE_HPP
#define NUCALOCK_SIM_RESOURCE_HPP

#include <string>

#include "sim/time.hpp"

namespace nucalock::sim {

/** A single-server FIFO queue with deterministic service. */
class Resource
{
  public:
    explicit Resource(std::string name);

    /**
     * Serve a transaction arriving at @p arrival that holds the resource
     * for @p occupancy ns.
     * @return the time service completes (>= arrival + occupancy).
     */
    SimTime serve(SimTime arrival, SimTime occupancy);

    const std::string& name() const { return name_; }
    std::uint64_t transactions() const { return transactions_; }
    SimTime busy_time() const { return busy_; }
    /** Total time transactions spent waiting before service. */
    SimTime queue_time() const { return queued_; }
    SimTime next_free() const { return next_free_; }

    void reset_stats();

  private:
    std::string name_;
    SimTime next_free_ = 0;
    SimTime busy_ = 0;
    SimTime queued_ = 0;
    std::uint64_t transactions_ = 0;
};

} // namespace nucalock::sim

#endif // NUCALOCK_SIM_RESOURCE_HPP
