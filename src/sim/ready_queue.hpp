/**
 * @file
 * Indexed min-heap of runnable simulated threads, keyed (wake, tid).
 *
 * run_timed() used to pick the next thread with a linear scan over every
 * thread per event — O(T) per event, the engine's hottest loop. The
 * ReadyQueue replaces that with a 4-ary heap plus a tid->heap-slot index so
 * membership updates (block, wake, death) are O(log T) and the pick is O(1).
 * The heap is 4-ary rather than binary for the big-topology shapes: at 1024
 * runnable threads a sift walks 5 levels instead of 10, and the four
 * children of a node share a cache line (16-byte entries).
 *
 * The ordering is exactly the scan's: earliest wake first, ties broken by
 * lowest tid. That tie-break is part of the determinism contract — changing
 * it changes acquisition order hashes (pinned in tests/harness_test.cpp and
 * tests/exec_test.cpp). Heap *shape* is not part of the contract: the pick
 * is always the global minimum key, so arity and insertion strategy are
 * free to change without moving a single extraction.
 */
#ifndef NUCALOCK_SIM_READY_QUEUE_HPP
#define NUCALOCK_SIM_READY_QUEUE_HPP

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/logging.hpp"
#include "sim/time.hpp"

namespace nucalock::sim {

class ReadyQueue
{
  public:
    /** One (wake, tid) key, exposed for push_bulk() batches. */
    struct Entry
    {
        SimTime wake;
        int tid;
    };

    /** Empty the queue and size the tid index for @p num_threads. */
    void
    reset(std::size_t num_threads)
    {
        heap_.clear();
        heap_.reserve(num_threads);
        pos_.assign(num_threads, kAbsent);
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    bool
    contains(int tid) const
    {
        return pos_[static_cast<std::size_t>(tid)] != kAbsent;
    }

    /** Thread id with the smallest (wake, tid). Queue must be non-empty. */
    int
    top_tid() const
    {
        NUCA_ASSERT(!heap_.empty(), "top of empty ReadyQueue");
        return heap_[0].tid;
    }

    /** Wake time of top_tid(). Queue must be non-empty. */
    SimTime
    top_wake() const
    {
        NUCA_ASSERT(!heap_.empty(), "top of empty ReadyQueue");
        return heap_[0].wake;
    }

    /**
     * Thread id of the likely next pick after top_tid(): the least of the
     * root's children, which is exactly the entry that surfaces if the top
     * leaves or moves later. The engine uses it purely as a prefetch hint
     * one event ahead (timer wakes get no watcher-wake prefetch, so this
     * is their only early notice); being a hint, staleness is harmless.
     * Returns -1 when fewer than two entries are queued.
     */
    int
    runner_up_tid() const
    {
        const std::size_t n = heap_.size();
        if (n < 2)
            return -1;
        const std::size_t last = std::min(std::size_t{1} + kArity, n);
        std::size_t best = 1;
        for (std::size_t c = 2; c < last; ++c)
            if (before(heap_[c], heap_[best]))
                best = c;
        return heap_[best].tid;
    }

    /** Insert @p tid with key @p wake, or re-key it if already present. */
    void
    push_or_update(int tid, SimTime wake)
    {
        std::size_t& slot = pos_[static_cast<std::size_t>(tid)];
        if (slot == kAbsent) {
            slot = heap_.size();
            heap_.push_back(Entry{wake, tid});
            sift_up(heap_.size() - 1);
            return;
        }
        const SimTime old = heap_[slot].wake;
        heap_[slot].wake = wake;
        if (wake < old)
            sift_up(slot);
        else if (wake > old)
            sift_down(slot);
    }

    /**
     * Insert (or re-key) a whole batch at once — the watcher-wake-storm
     * path, where a single release readies every spinner of a line.
     *
     * Extraction order is unaffected by how the batch is inserted: a heap's
     * pop sequence depends only on the set of (wake, tid) keys, and the
     * tie-break on tid makes every key distinct, so any valid heap of the
     * same keys pops identically. That frees this path to append all new
     * entries first and restore the heap property once — O(k + log-sum)
     * sift-ups for small batches, one O(n) Floyd build when the batch
     * rivals the heap size — instead of k full push calls.
     */
    void
    push_bulk(const Entry* entries, std::size_t count)
    {
        // Re-key entries already queued first (rare — a woken thread that
        // was preempted rather than blocked), while the heap invariant
        // still holds everywhere.
        for (std::size_t i = 0; i < count; ++i) {
            if (pos_[static_cast<std::size_t>(entries[i].tid)] != kAbsent)
                push_or_update(entries[i].tid, entries[i].wake);
        }
        const std::size_t old_size = heap_.size();
        for (std::size_t i = 0; i < count; ++i) {
            const Entry& e = entries[i];
            std::size_t& slot = pos_[static_cast<std::size_t>(e.tid)];
            if (slot != kAbsent)
                continue;
            slot = heap_.size();
            heap_.push_back(e);
        }
        const std::size_t appended = heap_.size() - old_size;
        if (appended == 0)
            return;
        if (appended >= old_size) {
            // Batch dominates: rebuild bottom-up in linear time. The last
            // internal node is the parent of the last slot.
            for (std::size_t i = (heap_.size() + kArity - 2) / kArity;
                 i-- > 0;)
                sift_down(i);
        } else {
            for (std::size_t i = old_size; i < heap_.size(); ++i)
                sift_up(i);
        }
    }

    /** Remove @p tid if present; no-op otherwise. */
    void
    remove(int tid)
    {
        const std::size_t slot = pos_[static_cast<std::size_t>(tid)];
        if (slot == kAbsent)
            return;
        pos_[static_cast<std::size_t>(tid)] = kAbsent;
        const std::size_t last = heap_.size() - 1;
        if (slot != last) {
            heap_[slot] = heap_[last];
            pos_[static_cast<std::size_t>(heap_[slot].tid)] = slot;
        }
        heap_.pop_back();
        if (slot < heap_.size()) {
            // The moved-in entry may need to go either direction. If
            // sift_up moves it, whatever lands on @p slot is a former
            // ancestor whose subtree is already ordered, so the following
            // sift_down is a no-op; otherwise sift_down fixes the subtree.
            sift_up(slot);
            sift_down(slot);
        }
    }

  private:
    static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);
    static constexpr std::size_t kArity = 4;

    static bool
    before(const Entry& a, const Entry& b)
    {
        return a.wake < b.wake || (a.wake == b.wake && a.tid < b.tid);
    }

    void
    sift_up(std::size_t i)
    {
        while (i > 0) {
            const std::size_t parent = (i - 1) / kArity;
            if (!before(heap_[i], heap_[parent]))
                break;
            swap_slots(i, parent);
            i = parent;
        }
    }

    void
    sift_down(std::size_t i)
    {
        const std::size_t n = heap_.size();
        while (true) {
            const std::size_t first = kArity * i + 1;
            if (first >= n)
                return;
            const std::size_t last = std::min(first + kArity, n);
            std::size_t best = i;
            for (std::size_t c = first; c < last; ++c)
                if (before(heap_[c], heap_[best]))
                    best = c;
            if (best == i)
                return;
            swap_slots(i, best);
            i = best;
        }
    }

    void
    swap_slots(std::size_t a, std::size_t b)
    {
        std::swap(heap_[a], heap_[b]);
        pos_[static_cast<std::size_t>(heap_[a].tid)] = a;
        pos_[static_cast<std::size_t>(heap_[b].tid)] = b;
    }

    std::vector<Entry> heap_;
    std::vector<std::size_t> pos_; // tid -> heap slot, kAbsent when out
};

} // namespace nucalock::sim

#endif // NUCALOCK_SIM_READY_QUEUE_HPP
