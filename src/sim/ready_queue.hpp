/**
 * @file
 * Indexed min-heap of runnable simulated threads, keyed (wake, tid).
 *
 * run_timed() used to pick the next thread with a linear scan over every
 * thread per event — O(T) per event, the engine's hottest loop. The
 * ReadyQueue replaces that with a binary heap plus a tid->heap-slot index so
 * membership updates (block, wake, death) are O(log T) and the pick is O(1).
 *
 * The ordering is exactly the scan's: earliest wake first, ties broken by
 * lowest tid. That tie-break is part of the determinism contract — changing
 * it changes acquisition order hashes (pinned in tests/harness_test.cpp and
 * tests/exec_test.cpp).
 */
#ifndef NUCALOCK_SIM_READY_QUEUE_HPP
#define NUCALOCK_SIM_READY_QUEUE_HPP

#include <cstddef>
#include <vector>

#include "common/logging.hpp"
#include "sim/time.hpp"

namespace nucalock::sim {

class ReadyQueue
{
  public:
    /** Empty the queue and size the tid index for @p num_threads. */
    void
    reset(std::size_t num_threads)
    {
        heap_.clear();
        heap_.reserve(num_threads);
        pos_.assign(num_threads, kAbsent);
    }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    bool
    contains(int tid) const
    {
        return pos_[static_cast<std::size_t>(tid)] != kAbsent;
    }

    /** Thread id with the smallest (wake, tid). Queue must be non-empty. */
    int
    top_tid() const
    {
        NUCA_ASSERT(!heap_.empty(), "top of empty ReadyQueue");
        return heap_[0].tid;
    }

    /** Wake time of top_tid(). Queue must be non-empty. */
    SimTime
    top_wake() const
    {
        NUCA_ASSERT(!heap_.empty(), "top of empty ReadyQueue");
        return heap_[0].wake;
    }

    /** Insert @p tid with key @p wake, or re-key it if already present. */
    void
    push_or_update(int tid, SimTime wake)
    {
        std::size_t& slot = pos_[static_cast<std::size_t>(tid)];
        if (slot == kAbsent) {
            slot = heap_.size();
            heap_.push_back(Entry{wake, tid});
            sift_up(heap_.size() - 1);
            return;
        }
        const SimTime old = heap_[slot].wake;
        heap_[slot].wake = wake;
        if (wake < old)
            sift_up(slot);
        else if (wake > old)
            sift_down(slot);
    }

    /** Remove @p tid if present; no-op otherwise. */
    void
    remove(int tid)
    {
        const std::size_t slot = pos_[static_cast<std::size_t>(tid)];
        if (slot == kAbsent)
            return;
        pos_[static_cast<std::size_t>(tid)] = kAbsent;
        const std::size_t last = heap_.size() - 1;
        if (slot != last) {
            heap_[slot] = heap_[last];
            pos_[static_cast<std::size_t>(heap_[slot].tid)] = slot;
        }
        heap_.pop_back();
        if (slot < heap_.size()) {
            // The moved-in entry may need to go either direction. If
            // sift_up moves it, whatever lands on @p slot is a former
            // ancestor whose subtree is already ordered, so the following
            // sift_down is a no-op; otherwise sift_down fixes the subtree.
            sift_up(slot);
            sift_down(slot);
        }
    }

  private:
    struct Entry
    {
        SimTime wake;
        int tid;
    };

    static constexpr std::size_t kAbsent = static_cast<std::size_t>(-1);

    static bool
    before(const Entry& a, const Entry& b)
    {
        return a.wake < b.wake || (a.wake == b.wake && a.tid < b.tid);
    }

    void
    sift_up(std::size_t i)
    {
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!before(heap_[i], heap_[parent]))
                break;
            swap_slots(i, parent);
            i = parent;
        }
    }

    void
    sift_down(std::size_t i)
    {
        while (true) {
            const std::size_t l = 2 * i + 1;
            const std::size_t r = 2 * i + 2;
            std::size_t best = i;
            if (l < heap_.size() && before(heap_[l], heap_[best]))
                best = l;
            if (r < heap_.size() && before(heap_[r], heap_[best]))
                best = r;
            if (best == i)
                return;
            swap_slots(i, best);
            i = best;
        }
    }

    void
    swap_slots(std::size_t a, std::size_t b)
    {
        std::swap(heap_[a], heap_[b]);
        pos_[static_cast<std::size_t>(heap_[a].tid)] = a;
        pos_[static_cast<std::size_t>(heap_[b].tid)] = b;
    }

    std::vector<Entry> heap_;
    std::vector<std::size_t> pos_; // tid -> heap slot, kAbsent when out
};

} // namespace nucalock::sim

#endif // NUCALOCK_SIM_READY_QUEUE_HPP
