/**
 * @file
 * Ticket lock with proportional backoff — an extra FIFO baseline beyond the
 * paper's set (useful to separate "FIFO order" from "local spinning" when
 * interpreting the queue-lock results).
 */
#ifndef NUCALOCK_LOCKS_TICKET_HPP
#define NUCALOCK_LOCKS_TICKET_HPP

#include "locks/context.hpp"
#include "locks/params.hpp"
#include "obs/probe.hpp"

namespace nucalock::locks {

template <LockContext Ctx>
class TicketLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "TICKET";

    explicit TicketLock(Machine& machine, const LockParams& params = LockParams{},
                        int home_node = 0)
        : next_(machine.alloc(0, home_node)),
          serving_(machine.alloc(0, home_node)),
          delay_per_waiter_(params.ticket_delay_per_waiter)
    {
    }

    void
    acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, next_.token());
        // fetch-and-increment built from cas (the paper's primitive set).
        std::uint64_t my;
        while (true) {
            my = ctx.load(next_);
            if (ctx.cas(next_, my, my + 1) == my)
                break;
        }
        while (true) {
            const std::uint64_t serving = ctx.load(serving_);
            if (serving == my) {
                obs::probe(ctx, obs::LockEvent::Acquired, next_.token());
                return;
            }
            // Proportional backoff: the further back in line, the longer
            // the wait before polling again.
            const std::uint64_t d = (my - serving) * delay_per_waiter_;
            obs::probe(ctx, obs::LockEvent::BackoffBegin, next_.token(), d,
                       static_cast<std::uint64_t>(obs::BackoffClass::Generic));
            ctx.delay(d);
            obs::probe(ctx, obs::LockEvent::BackoffEnd, next_.token());
        }
    }

    bool
    try_acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, next_.token(), 1);
        const std::uint64_t serving = ctx.load(serving_);
        const std::uint64_t next = ctx.load(next_);
        if (serving != next)
            return false;
        if (ctx.cas(next_, next, next + 1) != next)
            return false;
        obs::probe(ctx, obs::LockEvent::Acquired, next_.token(), 1);
        return true;
    }

    void
    release(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::Released, next_.token());
        // Only the holder writes serving_, so load+store is safe.
        ctx.store(serving_, ctx.load(serving_) + 1);
    }

    /** Identity for probes and traffic attribution: the primary word's
     *  token, the id sim/traffic.hpp keys this lock's transactions by. */
    std::uint64_t lock_id() const { return next_.token(); }

  private:
    Ref next_;
    Ref serving_;
    std::uint32_t delay_per_waiter_;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_TICKET_HPP
