/**
 * @file
 * Gear-switch policy for AdaptiveLock (locks/adaptive.hpp): decides *when*
 * to morph between the TATAS, HBO_GT and timed-queue gears; the lock
 * decides *how* (always-safe gear CAS, see adaptive.hpp).
 *
 * The policy is deliberately decoupled from the observability layer: it
 * samples its own epoch-bucketed counters (fed by the lock from facts it
 * already knows — was the acquire contended, did the lock arrive from a
 * remote node, how busy was the global link) rather than reading probe
 * state, so installing or removing a ProbeSink cannot change lock
 * behaviour (the probe-independence invariant pinned by tests/obs_test.cpp
 * and nucaprof's tripwire).
 *
 * Decision discipline:
 *  - Voluntary switches (Contention/NucaTraffic/Quiet) are evaluated only
 *    at epoch boundaries, only by the current holder (so the evaluation is
 *    serialized by the lock itself), and only outside the post-switch
 *    cooldown — that is the hysteresis that prevents oscillation.
 *  - Degradation (TimeoutStorm) is evaluated by *any* thread whose timed
 *    acquire abandons, because a timeout storm is exactly the situation in
 *    which there may be no live holder to run policy (FaultKind::
 *    HolderDeath). It bypasses the cooldown: bounded handoff beats
 *    stability when waiters are already timing out.
 *  - Promotion out of degraded mode (Recovery) requires a run of fully
 *    quiet epochs, so one good epoch after a storm does not bounce the
 *    lock straight back into the gear that starved.
 *
 * Counters are relaxed atomics (the AbandonCounters convention): the
 * abandonment path is cross-thread, and torn epoch samples merely cost a
 * slightly late or early switch — never safety, which the lock word alone
 * provides.
 */
#ifndef NUCALOCK_LOCKS_ADAPTIVE_POLICY_HPP
#define NUCALOCK_LOCKS_ADAPTIVE_POLICY_HPP

#include <atomic>
#include <cstdint>
#include <optional>

#include "locks/params.hpp"

namespace nucalock::locks {

/** The three gears AdaptiveLock morphs between. Values are wire-stable:
 *  they appear in the gear word and in AdaptSwitch probe payloads. */
enum class AdaptGear : std::uint8_t
{
    Tatas = 0, ///< TATAS_EXP on the word: best at low contention
    Hbo = 1,   ///< HBO_GT arrival shaping: NUCA-contended, link-saturated
    Queue = 2, ///< timed MCS in front of the word: fairness / degraded
};

/** Why the policy ordered a switch (AdaptSwitch probe a1). */
enum class AdaptReason : std::uint8_t
{
    Contention = 0,   ///< epoch contended fraction crossed spin_up
    NucaTraffic = 1,  ///< remote handovers / link utilisation dominate
    Quiet = 2,        ///< epoch contended fraction fell to spin_down
    TimeoutStorm = 3, ///< abandonment storm: degrade to bounded handoff
    Recovery = 4,     ///< quiet period after degradation: promote back
};

inline constexpr int kAdaptGearCount = 3;
inline constexpr int kAdaptReasonCount = 5;

const char* adapt_gear_name(AdaptGear gear);
const char* adapt_reason_name(AdaptReason reason);

/** A switch order: apply with a gear-word CAS and, on winning, report back
 *  via AdaptivePolicy::on_switch. */
struct AdaptDecision
{
    AdaptGear to = AdaptGear::Tatas;
    AdaptReason reason = AdaptReason::Quiet;
};

class AdaptivePolicy
{
  public:
    explicit AdaptivePolicy(const AdaptiveParams& params = AdaptiveParams{});

    /**
     * Holder-side sample, called once per acquisition while the caller
     * still holds the lock. @p contended: the acquire needed more than one
     * attempt at the word. @p remote: the previous holder ran on another
     * node. @p link_util_pct: global-link utilisation percent over the
     * trailing window, or -1 when unavailable (native backend).
     * Returns a switch order at epoch boundaries, when warranted.
     */
    std::optional<AdaptDecision> on_acquire(AdaptGear gear, bool contended,
                                            bool remote, int link_util_pct);

    /** Any-thread abandonment notification (every timed-acquire timeout).
     *  Returns a demotion order when the storm threshold trips. */
    std::optional<AdaptDecision> on_abandon(AdaptGear gear);

    /** The caller won the gear CAS for @p reason and emitted the probe. */
    void on_switch(AdaptGear to, AdaptReason reason);

    /** In degraded (post-storm) mode: promotion requires quiet epochs. */
    bool degraded() const { return degraded_.load(std::memory_order_relaxed); }

    /** Total gear switches applied (all reasons). */
    std::uint64_t switches() const
    {
        return switches_.load(std::memory_order_relaxed);
    }

    /** Abandonments counted toward the current storm window. */
    std::uint64_t storm_abandons() const
    {
        return storm_.load(std::memory_order_relaxed);
    }

  private:
    AdaptiveParams params_;
    // Epoch accumulators, written only under the lock (holder side).
    std::atomic<std::uint32_t> epoch_len_{0};
    std::atomic<std::uint32_t> epoch_contended_{0};
    std::atomic<std::uint32_t> epoch_remote_{0};
    std::atomic<std::uint32_t> cooldown_{0};
    std::atomic<std::uint32_t> quiet_streak_{0};
    // Storm accumulator, written from abandoning threads (any side).
    std::atomic<std::uint32_t> storm_{0};
    std::atomic<bool> degraded_{false};
    std::atomic<std::uint64_t> switches_{0};
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_ADAPTIVE_POLICY_HPP
