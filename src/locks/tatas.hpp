/**
 * @file
 * TATAS: the traditional test-and-test&set lock.
 *
 * Acquire attempts a tas; on failure it polls with plain loads (so spinning
 * stays in the local cache) and re-attempts tas when the lock looks free.
 * No backoff — at high contention every release triggers a refill-and-tas
 * storm, which is exactly the pathology the paper's Table 2 quantifies.
 *
 * Checker view (sim/scheduler.hpp): each tas/store is its own scheduling
 * decision point, and the tas makes test-and-set atomic — no schedule can
 * interleave between its load and store halves. spin_while_equal parks the
 * thread (a voluntary yield); it is re-offered to the scheduler only after
 * a conflicting write. BrokenTatasLock (check/broken.hpp) is this lock
 * with the tas split into a load and a store, which is exactly the window
 * the checker's planted-bug tests preempt in.
 */
#ifndef NUCALOCK_LOCKS_TATAS_HPP
#define NUCALOCK_LOCKS_TATAS_HPP

#include "locks/context.hpp"
#include "locks/params.hpp"
#include "obs/probe.hpp"

namespace nucalock::locks {

template <LockContext Ctx>
class TatasLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "TATAS";

    explicit TatasLock(Machine& machine, const LockParams& = LockParams{},
                       int home_node = 0)
        : word_(machine.alloc(0, home_node))
    {
    }

    void
    acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token());
        if (ctx.tas(word_) != 0)
            acquire_slowpath(ctx);
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token());
    }

    bool
    try_acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token(), 1);
        if (ctx.tas(word_) != 0)
            return false;
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token(), 1);
        return true;
    }

    void
    release(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::Released, word_.token());
        ctx.store(word_, 0);
    }

    /** Identity for probes and traffic attribution: the primary word's
     *  token, the id sim/traffic.hpp keys this lock's transactions by. */
    std::uint64_t lock_id() const { return word_.token(); }

  private:
    void
    acquire_slowpath(Ctx& ctx)
    {
        do {
            ctx.spin_while_equal(word_, 1);
        } while (ctx.tas(word_) != 0);
    }

    Ref word_;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_TATAS_HPP
