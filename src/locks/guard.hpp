/**
 * @file
 * RAII scope guard for any lock + context pair.
 */
#ifndef NUCALOCK_LOCKS_GUARD_HPP
#define NUCALOCK_LOCKS_GUARD_HPP

namespace nucalock::locks {

/**
 * Acquires @p lock on construction and releases it on destruction.
 * Works with every lock in the library and with AnyLock:
 *
 *     LockGuard guard(lock, ctx);
 *     // ... critical section ...
 */
template <typename Lock, typename Ctx>
class LockGuard
{
  public:
    LockGuard(Lock& lock, Ctx& ctx) : lock_(lock), ctx_(ctx)
    {
        lock_.acquire(ctx_);
    }

    ~LockGuard() { lock_.release(ctx_); }

    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;

  private:
    Lock& lock_;
    Ctx& ctx_;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_GUARD_HPP
