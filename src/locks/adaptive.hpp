/**
 * @file
 * ADAPTIVE: an online-adaptive lock that morphs between three gears —
 * TATAS_EXP (low contention), HBO_GT arrival shaping (NUCA-contended,
 * link-saturated) and a timed MCS queue (fairness / degraded mode) —
 * driven by the contention observatory's signals (locks/adaptive_policy.hpp).
 *
 * Composition is the always-safe pattern from reactive.hpp, generalized:
 * mutual exclusion is *always* provided by the one lock word (kHboFree
 * when free, otherwise hbo_node_token(node), so every gear can classify
 * local vs remote holders). The gear word merely routes arrivals — through
 * bare TATAS, through the node gates, or through the MCS queue — so a
 * stale gear sample costs throughput, never safety. Gear switches are a
 * single CAS on the gear word: racing proposals are harmless (one wins,
 * losers drop their order), and any thread may demote — required, because
 * the timeout storms that demand degradation are exactly the runs in which
 * there may be no live holder to run policy (FaultKind::HolderDeath).
 *
 * Graceful degradation ladder (docs/adaptive.md):
 *   any gear --timeout storm--> Queue (bounded FIFO handoff; timed waiters
 *   abandon cleanly and releasers hand over past parked nodes), then
 *   --quiet_epochs quiet epochs--> Tatas/Hbo per the traffic shape.
 *
 * Every switch emits obs::LockEvent::AdaptSwitch{from,to,reason}; the
 * policy never reads probe state, so the probe-independence invariant
 * (bit-identical runs with and without sinks) holds.
 */
#ifndef NUCALOCK_LOCKS_ADAPTIVE_HPP
#define NUCALOCK_LOCKS_ADAPTIVE_HPP

#include <algorithm>
#include <vector>

#include "locks/adaptive_policy.hpp"
#include "locks/backoff.hpp"
#include "locks/context.hpp"
#include "locks/hbo.hpp"
#include "locks/mcs.hpp"
#include "locks/params.hpp"
#include "locks/timed.hpp"
#include "obs/probe.hpp"

namespace nucalock::locks {

template <LockContext Ctx>
class AdaptiveLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "ADAPTIVE";

    explicit AdaptiveLock(Machine& machine,
                          const LockParams& params = LockParams{},
                          int home_node = 0)
        : word_(machine.alloc(kHboFree, home_node)),
          gear_(machine.alloc(gear_word(AdaptGear::Tatas), home_node)),
          queue_(machine, params, home_node), params_(params),
          policy_(params.adaptive)
    {
        const int nodes = machine.topology().num_nodes();
        gates_.reserve(static_cast<std::size_t>(nodes));
        for (int n = 0; n < nodes; ++n)
            gates_.push_back(machine.node_gate(n));
        gate_token_ = word_.token();
    }

    void
    acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token());
        const AdaptGear gear = current_gear(ctx);
        bool contended = false;
        switch (gear) {
          case AdaptGear::Tatas:
            contended = tatas_take_word(ctx) > 1;
            queued_ = false;
            break;
          case AdaptGear::Hbo:
            contended = hbo_acquire(ctx);
            queued_ = false;
            break;
          case AdaptGear::Queue:
            // Wait in the MCS queue, then take the word with an eager spin
            // (only the queue head and stale-gear stragglers compete).
            contended = queue_.acquire_reporting(ctx);
            (void)tatas_take_word(ctx);
            queued_ = true;
            break;
        }
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token());
        holder_policy(ctx, gear, contended);
    }

    bool
    try_acquire(Ctx& ctx)
    {
        // One probe arrival regardless of gear; gears shape waiting, and a
        // try never waits. No policy sample either — adaptation is driven
        // by the paths that can actually observe contention cost.
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token(), 1);
        if (ctx.cas(word_, kHboFree, hbo_node_token(ctx.node())) != kHboFree)
            return false;
        queued_ = false;
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token(), 1);
        return true;
    }

    /**
     * Timed acquisition: every gear's wait is deadline-bounded. The
     * abandonment paths feed AdaptivePolicy::on_abandon, so a storm of
     * timeouts demotes the lock to the queue gear (bounded handoff) even
     * when the holder is dead and no acquisition will ever run policy
     * again. Overshoot is bounded by one capped backoff plus one poll in
     * the word-take loops; the queue wait inherits McsLock's bound.
     */
    bool
    try_acquire_for(Ctx& ctx, std::uint64_t timeout_ns)
    {
        const std::uint64_t deadline = detail::deadline_after(ctx, timeout_ns);
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token(), 1);
        const AdaptGear gear = current_gear(ctx);
        switch (gear) {
          case AdaptGear::Tatas: {
            std::uint64_t rounds = 0;
            if (!timed_take_word(ctx, deadline, &rounds))
                return abandon_own(ctx, gear);
            queued_ = false;
            obs::probe(ctx, obs::LockEvent::Acquired, word_.token(), 1);
            holder_policy(ctx, gear, rounds > 1);
            return true;
          }
          case AdaptGear::Hbo:
            if (!hbo_timed_acquire(ctx, deadline, gear))
                return false; // abandonment handled inside (gate re-open)
            queued_ = false;
            obs::probe(ctx, obs::LockEvent::Acquired, word_.token(), 1);
            holder_policy(ctx, gear, true);
            return true;
          case AdaptGear::Queue: {
            const std::uint64_t now = detail::lock_clock_ns(ctx);
            const std::uint64_t budget = deadline > now ? deadline - now : 0;
            if (!queue_.try_acquire_for(ctx, budget)) {
                // The queue accounted its own abandonment (its counters,
                // its lock id); close this lock's attempt and run the
                // storm check, but do not double-count.
                obs::probe(ctx, obs::LockEvent::AbandonStart, word_.token());
                obs::probe(ctx, obs::LockEvent::AbandonDone, word_.token(),
                           static_cast<std::uint64_t>(
                               obs::AbandonOutcome::Clean));
                storm_check(ctx, gear);
                return false;
            }
            std::uint64_t rounds = 0;
            if (!timed_take_word(ctx, deadline, &rounds)) {
                // Queue headship obtained but the word never freed (e.g.
                // the holder died): hand the grant to our successor so the
                // queue keeps draining — bounded handoff, no wedge.
                queue_.release(ctx);
                return abandon_own(ctx, gear);
            }
            queued_ = true;
            obs::probe(ctx, obs::LockEvent::Acquired, word_.token(), 1);
            holder_policy(ctx, gear, true);
            return true;
          }
        }
        return false; // unreachable
    }

    void
    release(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::Released, word_.token());
        const bool was_queued = queued_;
        ctx.store(word_, kHboFree);
        if (was_queued)
            queue_.release(ctx);
    }

    /** Host-side abandonment accounting: this lock's own timeouts plus the
     *  embedded queue's (see locks/timed.hpp). */
    AbandonStats
    abandon_stats() const
    {
        AbandonStats s = counters_.snapshot();
        const AbandonStats q = queue_.abandon_stats();
        s.abandons += q.abandons;
        s.parked += q.parked;
        s.grant_races += q.grant_races;
        s.reclaims += q.reclaims;
        s.rejoins += q.rejoins;
        s.unparks += q.unparks;
        return s;
    }

    /** The gear arrivals are currently routed through (a real load). */
    AdaptGear
    current_gear(Ctx& ctx)
    {
        const std::uint64_t g = ctx.load(gear_);
        return g >= static_cast<std::uint64_t>(kAdaptGearCount)
                   ? AdaptGear::Queue
                   : static_cast<AdaptGear>(g);
    }

    const AdaptivePolicy& policy() const { return policy_; }

    /** Identity for probes and traffic attribution: the primary word's
     *  token, the id sim/traffic.hpp keys this lock's transactions by. */
    std::uint64_t lock_id() const { return word_.token(); }

  private:
    static std::uint64_t
    gear_word(AdaptGear gear)
    {
        return static_cast<std::uint64_t>(gear);
    }

    Ref
    my_gate(Ctx& ctx) const
    {
        return gates_[static_cast<std::size_t>(ctx.node())];
    }

    /** TATAS_EXP on the word (node token in, so every gear can classify
     *  the holder). Returns the number of backoff rounds paid — the
     *  policy's contention-cost proxy. One round is the cheap, common case
     *  of colliding with a short holder; only waits that keep escalating
     *  the backoff (>1 round) should read as contention worth a gear. */
    std::uint64_t
    tatas_take_word(Ctx& ctx)
    {
        const std::uint64_t mine = hbo_node_token(ctx.node());
        std::uint64_t rounds = 0;
        if (ctx.cas(word_, kHboFree, mine) == kHboFree)
            return rounds;
        std::uint32_t b = params_.tatas.base;
        while (true) {
            ++rounds;
            backoff(ctx, &b, params_.tatas.factor, params_.tatas.cap,
                    params_.jitter, obs::BackoffClass::Generic);
            if (ctx.load(word_) != kHboFree)
                continue;
            if (ctx.cas(word_, kHboFree, mine) == kHboFree)
                return rounds;
        }
    }

    /** Deadline-bounded TATAS_EXP word take; reports backoff rounds like
     *  tatas_take_word. */
    bool
    timed_take_word(Ctx& ctx, std::uint64_t deadline, std::uint64_t* rounds)
    {
        const std::uint64_t mine = hbo_node_token(ctx.node());
        *rounds = 0;
        if (ctx.cas(word_, kHboFree, mine) == kHboFree)
            return true;
        std::uint32_t b = params_.tatas.base;
        while (true) {
            if (detail::lock_clock_ns(ctx) >= deadline)
                return false;
            ++*rounds;
            backoff(ctx, &b, params_.tatas.factor, params_.tatas.cap,
                    params_.jitter, obs::BackoffClass::Generic);
            if (ctx.load(word_) != kHboFree)
                continue;
            if (ctx.cas(word_, kHboFree, mine) == kHboFree)
                return true;
        }
    }

    /** HBO_GT arrival shaping (locks/hbo_gt.hpp, inlined so the gears
     *  share one word). Returns whether the acquire was contended, using
     *  the same cost proxy as tatas_take_word: more than one backoff
     *  round. A single cheap round is what a *working* gear looks like
     *  under light load; reading it as contention would pin the lock in
     *  this gear long after the load that justified it has drained. */
    bool
    hbo_acquire(Ctx& ctx)
    {
        obs::probe_gate(ctx, my_gate(ctx), gate_token_, word_.token());
        ctx.spin_while_equal(my_gate(ctx), gate_token_);
        const std::uint64_t mine = hbo_node_token(ctx.node());
        std::uint64_t tmp = ctx.cas(word_, kHboFree, mine);
        if (tmp == kHboFree)
            return false;
        std::uint64_t rounds = 0;
        while (true) {
            if (tmp == mine) {
                // Local holder: small backoff, gate untouched.
                std::uint32_t b = params_.hbo_local.base;
                bool migrated = false;
                while (!migrated) {
                    ++rounds;
                    backoff(ctx, &b, params_.hbo_local.factor,
                            params_.hbo_local.cap, params_.jitter,
                            obs::BackoffClass::Local);
                    tmp = hbo_poll(ctx, word_, mine);
                    if (tmp == kHboFree)
                        return rounds > 1;
                    if (tmp != mine)
                        migrated = true;
                }
            } else {
                // Remote holder: close our node's gate, back off hard.
                std::uint32_t b = params_.hbo_remote_base;
                obs::probe(ctx, obs::LockEvent::GatePublish, word_.token(),
                           static_cast<std::uint64_t>(ctx.node()));
                ctx.store(my_gate(ctx), gate_token_);
                while (true) {
                    ++rounds;
                    backoff(ctx, &b, 2, params_.hbo_remote_cap, params_.jitter,
                            obs::BackoffClass::Remote);
                    tmp = hbo_poll(ctx, word_, mine);
                    if (tmp == kHboFree || tmp == mine) {
                        obs::probe(ctx, obs::LockEvent::GateOpen,
                                   word_.token(), 1);
                        ctx.store(my_gate(ctx), kGateDummyValue);
                        if (tmp == kHboFree)
                            return rounds > 1;
                        break;
                    }
                }
            }
            // Restart: re-gate, retry, re-dispatch.
            obs::probe_gate(ctx, my_gate(ctx), gate_token_, word_.token());
            ctx.spin_while_equal(my_gate(ctx), gate_token_);
            tmp = hbo_poll(ctx, word_, mine);
            if (tmp == kHboFree)
                return rounds > 1;
        }
    }

    /** Deadline-bounded HBO gear (the HMCS-T gate discipline of
     *  hbo_gt.hpp): a thread that times out after closing its node's gate
     *  re-opens it before leaving, or the node wedges. */
    bool
    hbo_timed_acquire(Ctx& ctx, std::uint64_t deadline, AdaptGear gear)
    {
        const std::uint64_t mine = hbo_node_token(ctx.node());
        if (!gate_wait_until(ctx, deadline))
            return abandon_own(ctx, gear);
        std::uint64_t tmp = ctx.cas(word_, kHboFree, mine);
        while (tmp != kHboFree) {
            if (tmp == mine) {
                std::uint32_t b = params_.hbo_local.base;
                bool migrated = false;
                while (!migrated && tmp != kHboFree) {
                    if (detail::lock_clock_ns(ctx) >= deadline)
                        return abandon_own(ctx, gear);
                    backoff(ctx, &b, params_.hbo_local.factor,
                            params_.hbo_local.cap, params_.jitter,
                            obs::BackoffClass::Local);
                    tmp = hbo_poll(ctx, word_, mine);
                    if (tmp != kHboFree && tmp != mine)
                        migrated = true;
                }
            } else {
                std::uint32_t b = params_.hbo_remote_base;
                obs::probe(ctx, obs::LockEvent::GatePublish, word_.token(),
                           static_cast<std::uint64_t>(ctx.node()));
                ctx.store(my_gate(ctx), gate_token_);
                while (true) {
                    if (detail::lock_clock_ns(ctx) >= deadline)
                        return abandon_reopening_gate(ctx, gear);
                    backoff(ctx, &b, 2, params_.hbo_remote_cap, params_.jitter,
                            obs::BackoffClass::Remote);
                    tmp = hbo_poll(ctx, word_, mine);
                    if (tmp == kHboFree || tmp == mine) {
                        obs::probe(ctx, obs::LockEvent::GateOpen,
                                   word_.token(), 1);
                        ctx.store(my_gate(ctx), kGateDummyValue);
                        break;
                    }
                }
            }
            if (tmp == kHboFree)
                break;
            if (!gate_wait_until(ctx, deadline))
                return abandon_own(ctx, gear);
            tmp = hbo_poll(ctx, word_, mine);
        }
        return true;
    }

    /** Deadline-bounded entry/restart gate wait (HBO gear). */
    bool
    gate_wait_until(Ctx& ctx, std::uint64_t deadline)
    {
        obs::probe_gate(ctx, my_gate(ctx), gate_token_, word_.token());
        while (ctx.load(my_gate(ctx)) == gate_token_) {
            if (detail::lock_clock_ns(ctx) >= deadline)
                return false;
            ctx.delay(kTimedPollQuantum);
        }
        return true;
    }

    /** Timed out with nothing left behind: account, probe, storm-check. */
    bool
    abandon_own(Ctx& ctx, AdaptGear gear)
    {
        counters_.on_abandon();
        obs::probe(ctx, obs::LockEvent::AbandonStart, word_.token());
        obs::probe(ctx, obs::LockEvent::AbandonDone, word_.token(),
                   static_cast<std::uint64_t>(obs::AbandonOutcome::Clean));
        storm_check(ctx, gear);
        return false;
    }

    /** Timed out while our gate closure is published: re-open it first. */
    bool
    abandon_reopening_gate(Ctx& ctx, AdaptGear gear)
    {
        counters_.on_abandon();
        obs::probe(ctx, obs::LockEvent::AbandonStart, word_.token());
        obs::probe(ctx, obs::LockEvent::GateOpen, word_.token(), 1);
        ctx.store(my_gate(ctx), kGateDummyValue);
        obs::probe(ctx, obs::LockEvent::AbandonDone, word_.token(),
                   static_cast<std::uint64_t>(obs::AbandonOutcome::Clean));
        storm_check(ctx, gear);
        return false;
    }

    /** Feed the policy's storm detector; demote on its order. Runs on the
     *  abandoning (non-holder) thread by design — see file comment. */
    void
    storm_check(Ctx& ctx, AdaptGear gear)
    {
        if (const auto decision = policy_.on_abandon(gear))
            apply_switch(ctx, gear, *decision);
    }

    /** Holder-side policy sample; runs while still holding the lock, so
     *  the plain host fields it touches are ordered by the lock itself. */
    void
    holder_policy(Ctx& ctx, AdaptGear gear, bool contended)
    {
        const int node = ctx.node();
        const bool remote = last_holder_node_ >= 0 &&
                            last_holder_node_ != node;
        last_holder_node_ = node;
        const auto decision =
            policy_.on_acquire(gear, contended, remote, link_util_pct(ctx));
        if (decision)
            apply_switch(ctx, gear, *decision);
    }

    /** One CAS applies a switch; losers drop their order (the winner's
     *  sample was just as fresh). The winner reports back to the policy
     *  and emits the AdaptSwitch probe. */
    void
    apply_switch(Ctx& ctx, AdaptGear from, const AdaptDecision& decision)
    {
        if (ctx.cas(gear_, gear_word(from), gear_word(decision.to)) !=
            gear_word(from))
            return;
        policy_.on_switch(decision.to, decision.reason);
        obs::probe(ctx, obs::LockEvent::AdaptSwitch, word_.token(),
                   gear_word(from) |
                       (gear_word(decision.to) << 8),
                   static_cast<std::uint64_t>(decision.reason));
    }

    /**
     * Global-link utilisation percent over the window since the previous
     * holder sampled, or -1 when the backend cannot say (native). The sim
     * accessor is O(1) pure accounting (sim/resource.hpp) and reads no
     * probe state, so sampling is deterministic and probe-independent.
     * Host fields only — holder-serialized like the rest of the policy.
     */
    int
    link_util_pct(Ctx& ctx)
    {
        if constexpr (requires {
                          ctx.machine().memory().global_link().busy_time();
                          ctx.now();
                      }) {
            const auto busy = static_cast<std::uint64_t>(
                ctx.machine().memory().global_link().busy_time());
            const auto now = static_cast<std::uint64_t>(ctx.now());
            const std::uint64_t dbusy = busy - link_busy_last_;
            const std::uint64_t dt = now - link_now_last_;
            link_busy_last_ = busy;
            link_now_last_ = now;
            if (dt == 0)
                return -1;
            return static_cast<int>(
                std::min<std::uint64_t>(100, dbusy * 100 / dt));
        } else {
            (void)ctx;
            return -1;
        }
    }

    Ref word_;
    Ref gear_;
    std::vector<Ref> gates_;
    std::uint64_t gate_token_ = 0;
    McsLock<Ctx> queue_;
    LockParams params_;
    AdaptivePolicy policy_;
    AbandonCounters counters_;
    // Holder-only state, protected by the lock itself (reactive.hpp's
    // convention): which path release() must unwind, handover locality,
    // and the link-utilisation sampling window.
    bool queued_ = false;
    int last_holder_node_ = -1;
    std::uint64_t link_busy_last_ = 0;
    std::uint64_t link_now_last_ = 0;

  public:
    /** The paper's "dummy value": the gate is open (HBO gear). */
    static constexpr std::uint64_t kGateDummyValue = 0;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_ADAPTIVE_HPP
