/**
 * @file
 * The LockContext concept: the single API all lock algorithms are written
 * against, satisfied by both sim::SimContext (simulated NUCA) and
 * native::NativeContext (std::atomic on real threads).
 *
 * Operations mirror the paper's primitives: tas, swap, cas (returning the
 * previous value), plain load/store, a backoff delay measured in empty loop
 * iterations, and the thread's node_id (plus chip for hierarchical NUCAs).
 */
#ifndef NUCALOCK_LOCKS_CONTEXT_HPP
#define NUCALOCK_LOCKS_CONTEXT_HPP

#include <concepts>
#include <cstdint>

namespace nucalock::locks {

template <typename Ctx>
concept LockContext = requires(Ctx ctx, typename Ctx::Ref ref, std::uint64_t v) {
    typename Ctx::Machine;
    typename Ctx::Ref;
    { ctx.load(ref) } -> std::convertible_to<std::uint64_t>;
    { ctx.store(ref, v) };
    { ctx.cas(ref, v, v) } -> std::convertible_to<std::uint64_t>;
    { ctx.swap(ref, v) } -> std::convertible_to<std::uint64_t>;
    { ctx.tas(ref) } -> std::convertible_to<std::uint64_t>;
    { ctx.spin_while_equal(ref, v) } -> std::convertible_to<std::uint64_t>;
    { ctx.delay(v) };
    { ctx.thread_id() } -> std::convertible_to<int>;
    { ctx.cpu() } -> std::convertible_to<int>;
    { ctx.node() } -> std::convertible_to<int>;
    { ctx.chip() } -> std::convertible_to<int>;
    { ctx.num_nodes() } -> std::convertible_to<int>;
    { ctx.machine() } -> std::convertible_to<typename Ctx::Machine&>;
    { ctx.rng().next() } -> std::convertible_to<std::uint64_t>;
};

/**
 * Machine-side requirements: word allocation (with a home-node hint), the
 * per-node is_spinning gates, topology access, and token round-tripping for
 * queue locks that store node references inside lock words.
 */
template <typename M>
concept LockMachine = requires(M m, std::uint64_t v, int node, std::uint32_t n) {
    { m.alloc(v, node) };
    { m.alloc_array(n, v, node) };
    { m.node_gate(node) };
    { m.max_threads() } -> std::convertible_to<int>;
    { m.topology() };
    { M::ref_from_token(v) };
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_CONTEXT_HPP
