#include "locks/adaptive_policy.hpp"

namespace nucalock::locks {

const char*
adapt_gear_name(AdaptGear gear)
{
    switch (gear) {
      case AdaptGear::Tatas: return "tatas";
      case AdaptGear::Hbo: return "hbo";
      case AdaptGear::Queue: return "queue";
    }
    return "?";
}

const char*
adapt_reason_name(AdaptReason reason)
{
    switch (reason) {
      case AdaptReason::Contention: return "contention";
      case AdaptReason::NucaTraffic: return "nuca_traffic";
      case AdaptReason::Quiet: return "quiet";
      case AdaptReason::TimeoutStorm: return "timeout_storm";
      case AdaptReason::Recovery: return "recovery";
    }
    return "?";
}

AdaptivePolicy::AdaptivePolicy(const AdaptiveParams& params) : params_(params)
{
}

std::optional<AdaptDecision>
AdaptivePolicy::on_acquire(AdaptGear gear, bool contended, bool remote,
                           int link_util_pct)
{
    const auto relaxed = std::memory_order_relaxed;
    const std::uint32_t cd = cooldown_.load(relaxed);
    if (cd > 0)
        cooldown_.store(cd - 1, relaxed);

    epoch_contended_.store(epoch_contended_.load(relaxed) +
                               (contended ? 1u : 0u),
                           relaxed);
    epoch_remote_.store(epoch_remote_.load(relaxed) + (remote ? 1u : 0u),
                        relaxed);
    const std::uint32_t len = epoch_len_.load(relaxed) + 1;
    if (len < params_.epoch || params_.epoch == 0) {
        epoch_len_.store(len, relaxed);
        return std::nullopt;
    }

    // Epoch boundary: evaluate, then reset the window.
    const std::uint32_t cont = epoch_contended_.load(relaxed);
    const std::uint32_t rem = epoch_remote_.load(relaxed);
    epoch_len_.store(0, relaxed);
    epoch_contended_.store(0, relaxed);
    epoch_remote_.store(0, relaxed);

    const bool hot = cont >= params_.spin_up;
    const bool quiet = cont <= params_.spin_down;
    const bool nuca =
        rem * 100 >= static_cast<std::uint64_t>(params_.remote_frac_pct) * len ||
        (link_util_pct >= 0 &&
         static_cast<std::uint32_t>(link_util_pct) >= params_.link_util_pct);

    if (degraded_.load(relaxed)) {
        // Promotion ladder: quiet_epochs consecutive quiet epochs, then
        // leave the queue gear toward whatever the traffic shape suggests.
        if (!quiet) {
            quiet_streak_.store(0, relaxed);
            return std::nullopt;
        }
        const std::uint32_t streak = quiet_streak_.load(relaxed) + 1;
        if (streak < params_.quiet_epochs) {
            quiet_streak_.store(streak, relaxed);
            return std::nullopt;
        }
        quiet_streak_.store(0, relaxed);
        const AdaptGear to = nuca ? AdaptGear::Hbo : AdaptGear::Tatas;
        if (to == gear) {
            // Already where recovery would put us (storm tripped while in
            // a fast gear without a losing CAS): just clear the flag.
            degraded_.store(false, relaxed);
            return std::nullopt;
        }
        return AdaptDecision{to, AdaptReason::Recovery};
    }

    if (cooldown_.load(relaxed) > 0)
        return std::nullopt;

    switch (gear) {
      case AdaptGear::Tatas:
        if (hot)
            return AdaptDecision{nuca ? AdaptGear::Hbo : AdaptGear::Queue,
                                 nuca ? AdaptReason::NucaTraffic
                                      : AdaptReason::Contention};
        break;
      case AdaptGear::Hbo:
        // Only quiet leaves this gear voluntarily. A working HBO gear
        // *creates* locality (remote handovers collapse to batch
        // boundaries), so a low remote fraction here is the gear's
        // success signal, not evidence the gates are overhead — reading
        // it as node-local contention would demote the lock out of the
        // gear precisely because the gear is winning.
        if (quiet)
            return AdaptDecision{AdaptGear::Tatas, AdaptReason::Quiet};
        break;
      case AdaptGear::Queue:
        if (quiet)
            return AdaptDecision{AdaptGear::Tatas, AdaptReason::Quiet};
        if (hot && nuca)
            return AdaptDecision{AdaptGear::Hbo, AdaptReason::NucaTraffic};
        break;
    }
    return std::nullopt;
}

std::optional<AdaptDecision>
AdaptivePolicy::on_abandon(AdaptGear gear)
{
    const auto relaxed = std::memory_order_relaxed;
    const std::uint32_t storm = storm_.load(relaxed) + 1;
    storm_.store(storm, relaxed);
    if (storm < params_.storm_abandons)
        return std::nullopt;
    if (gear == AdaptGear::Queue) {
        // Already in the bounded-handoff gear — mark the episode so
        // promotion requires a quiet period, but there is nothing to
        // switch.
        storm_.store(0, relaxed);
        degraded_.store(true, relaxed);
        quiet_streak_.store(0, relaxed);
        return std::nullopt;
    }
    return AdaptDecision{AdaptGear::Queue, AdaptReason::TimeoutStorm};
}

void
AdaptivePolicy::on_switch(AdaptGear to, AdaptReason reason)
{
    const auto relaxed = std::memory_order_relaxed;
    switches_.store(switches_.load(relaxed) + 1, relaxed);
    epoch_len_.store(0, relaxed);
    epoch_contended_.store(0, relaxed);
    epoch_remote_.store(0, relaxed);
    quiet_streak_.store(0, relaxed);
    cooldown_.store(params_.cooldown_acquires, relaxed);
    if (reason == AdaptReason::TimeoutStorm) {
        storm_.store(0, relaxed);
        degraded_.store(true, relaxed);
    } else if (reason == AdaptReason::Recovery) {
        storm_.store(0, relaxed);
        degraded_.store(false, relaxed);
    }
    // Voluntary switches leave the storm window alone: scattered abandons
    // still accumulate toward degradation no matter how often the traffic
    // shape changes underneath them.
    (void)to;
}

} // namespace nucalock::locks
