/**
 * @file
 * Runtime-selectable locks: a LockKind enumeration covering every algorithm
 * in the library, and a type-erased AnyLock wrapper so the benchmark
 * harness can iterate over lock implementations.
 */
#ifndef NUCALOCK_LOCKS_ANY_LOCK_HPP
#define NUCALOCK_LOCKS_ANY_LOCK_HPP

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.hpp"
#include "locks/adaptive.hpp"
#include "locks/anderson.hpp"
#include "locks/clh.hpp"
#include "locks/clh_try.hpp"
#include "locks/cohort.hpp"
#include "locks/context.hpp"
#include "locks/hbo.hpp"
#include "locks/hbo_gt.hpp"
#include "locks/hbo_gt_sd.hpp"
#include "locks/hbo_hier.hpp"
#include "locks/mcs.hpp"
#include "locks/params.hpp"
#include "locks/reactive.hpp"
#include "locks/rh.hpp"
#include "locks/tatas.hpp"
#include "locks/tatas_exp.hpp"
#include "locks/ticket.hpp"
#include "locks/timed.hpp"

namespace nucalock::locks {

/** Every lock algorithm in the library. */
enum class LockKind
{
    Tatas,
    TatasExp,
    Ticket,
    Mcs,
    Clh,
    Rh,
    Hbo,
    HboGt,
    HboGtSd,
    HboHier,
    Reactive,
    Anderson,
    Cohort,
    ClhTry,
    Adaptive,
};

/** Display name matching the paper's tables (e.g. "HBO_GT_SD"). */
inline const char*
lock_name(LockKind kind)
{
    switch (kind) {
      case LockKind::Tatas: return "TATAS";
      case LockKind::TatasExp: return "TATAS_EXP";
      case LockKind::Ticket: return "TICKET";
      case LockKind::Mcs: return "MCS";
      case LockKind::Clh: return "CLH";
      case LockKind::Rh: return "RH";
      case LockKind::Hbo: return "HBO";
      case LockKind::HboGt: return "HBO_GT";
      case LockKind::HboGtSd: return "HBO_GT_SD";
      case LockKind::HboHier: return "HBO_HIER";
      case LockKind::Reactive: return "REACTIVE";
      case LockKind::Anderson: return "ANDERSON";
      case LockKind::Cohort: return "COHORT";
      case LockKind::ClhTry: return "CLH_TRY";
      case LockKind::Adaptive: return "ADAPTIVE";
    }
    NUCA_PANIC("unknown LockKind");
}

/** Parse a lock name (as printed by lock_name); case-sensitive. */
inline std::optional<LockKind>
parse_lock_name(std::string_view name)
{
    for (LockKind kind :
         {LockKind::Tatas, LockKind::TatasExp, LockKind::Ticket, LockKind::Mcs,
          LockKind::Clh, LockKind::Rh, LockKind::Hbo, LockKind::HboGt,
          LockKind::HboGtSd, LockKind::HboHier, LockKind::Reactive,
          LockKind::Anderson, LockKind::Cohort, LockKind::ClhTry,
          LockKind::Adaptive}) {
        if (name == lock_name(kind))
            return kind;
    }
    return std::nullopt;
}

/** The paper's eight algorithms, in its table order. */
inline std::vector<LockKind>
paper_lock_kinds()
{
    return {LockKind::Tatas, LockKind::TatasExp, LockKind::Mcs, LockKind::Clh,
            LockKind::Rh,    LockKind::Hbo,      LockKind::HboGt,
            LockKind::HboGtSd};
}

/** All algorithms, including the extra baselines and extensions. */
inline std::vector<LockKind>
all_lock_kinds()
{
    return {LockKind::Tatas,    LockKind::TatasExp, LockKind::Ticket,
            LockKind::Anderson, LockKind::Mcs,      LockKind::Clh,
            LockKind::Rh,       LockKind::Hbo,      LockKind::HboGt,
            LockKind::HboGtSd,  LockKind::HboHier,  LockKind::Reactive,
            LockKind::Cohort,   LockKind::ClhTry,   LockKind::Adaptive};
}

/** True for the NUCA-aware algorithms (RH and the HBO family). */
inline bool
is_nuca_aware(LockKind kind)
{
    return kind == LockKind::Rh || kind == LockKind::Hbo ||
           kind == LockKind::HboGt || kind == LockKind::HboGtSd ||
           kind == LockKind::HboHier || kind == LockKind::Cohort ||
           kind == LockKind::Adaptive;
}

/**
 * True when the algorithm implements native timed abandonment
 * (try_acquire_for) rather than relying on the generic try/backoff
 * fallback of locks::acquire_for. See docs/robustness.md for what each
 * family's abandonment leaves behind and who cleans it up.
 */
inline bool
lock_supports_native_timeout(LockKind kind)
{
    switch (kind) {
      case LockKind::Mcs:
      case LockKind::HboGt:
      case LockKind::HboGtSd:
      case LockKind::HboHier:
      case LockKind::Cohort:
      case LockKind::ClhTry:
      case LockKind::Reactive:
      case LockKind::Adaptive:
        return true;
      case LockKind::Tatas:
      case LockKind::TatasExp:
      case LockKind::Ticket:
      case LockKind::Clh:
      case LockKind::Rh:
      case LockKind::Hbo:
      case LockKind::Anderson:
        return false;
    }
    NUCA_PANIC("unknown LockKind");
}

/**
 * Type-erased lock over a given context type. Virtual dispatch per
 * operation — fine for the harness; performance-sensitive users
 * instantiate the concrete templates directly.
 */
template <LockContext Ctx>
class AnyLock
{
  public:
    using Machine = typename Ctx::Machine;

    AnyLock(Machine& machine, LockKind kind,
            const LockParams& params = LockParams{}, int home_node = 0)
        : kind_(kind), impl_(make_impl(machine, kind, params, home_node))
    {
    }

    void acquire(Ctx& ctx) { impl_->acquire(ctx); }
    void release(Ctx& ctx) { impl_->release(ctx); }

    /**
     * Non-blocking (for the queue locks: bounded-abort, see each header's
     * try_acquire notes) attempt. Every LockKind supports it.
     */
    bool try_acquire(Ctx& ctx) { return impl_->try_acquire(ctx); }

    /**
     * Bounded-wait acquisition: native try_acquire_for when the algorithm
     * has one (lock_supports_native_timeout), otherwise the generic
     * try/backoff loop of locks::acquire_for.
     */
    bool
    acquire_for(Ctx& ctx, std::uint64_t timeout_ns)
    {
        return impl_->acquire_for(ctx, timeout_ns);
    }

    /**
     * Host-side abandonment accounting for locks with native timeout;
     * all-zero for the rest (and for CLH_TRY's pre-counter redirect
     * protocol, which tracks nothing beyond its probes).
     */
    AbandonStats abandon_stats() const { return impl_->abandon_stats(); }

    /**
     * The lock's probe identity: the token of its primary word, which is
     * the id sim/traffic.hpp attribution and the metrics registry key its
     * transactions by. Stable for the lock's lifetime. Lets multi-lock
     * structures (src/structs/) label attribution rows — stripe k of a
     * striped map is the row whose lock_id matches stripe k's lock.
     */
    std::uint64_t lock_id() const { return impl_->lock_id(); }

    LockKind kind() const { return kind_; }
    const char* name() const { return lock_name(kind_); }

  private:
    struct Base
    {
        virtual ~Base() = default;
        virtual void acquire(Ctx&) = 0;
        virtual void release(Ctx&) = 0;
        virtual bool try_acquire(Ctx&) = 0;
        virtual bool acquire_for(Ctx&, std::uint64_t timeout_ns) = 0;
        virtual AbandonStats abandon_stats() const = 0;
        virtual std::uint64_t lock_id() const = 0;
    };

    template <typename L>
    struct Impl final : Base
    {
        Impl(Machine& machine, const LockParams& params, int home_node)
            : lock(machine, params, home_node)
        {
        }

        void acquire(Ctx& ctx) override { lock.acquire(ctx); }
        void release(Ctx& ctx) override { lock.release(ctx); }
        bool try_acquire(Ctx& ctx) override { return lock.try_acquire(ctx); }

        bool
        acquire_for(Ctx& ctx, std::uint64_t timeout_ns) override
        {
            if constexpr (requires { lock.try_acquire_for(ctx, timeout_ns); })
                return lock.try_acquire_for(ctx, timeout_ns);
            else
                return locks::acquire_for(lock, ctx, timeout_ns);
        }

        AbandonStats
        abandon_stats() const override
        {
            if constexpr (requires { lock.abandon_stats(); })
                return lock.abandon_stats();
            else
                return AbandonStats{};
        }

        std::uint64_t lock_id() const override { return lock.lock_id(); }

        L lock;
    };

    static std::unique_ptr<Base>
    make_impl(Machine& machine, LockKind kind, const LockParams& params,
              int home_node)
    {
        switch (kind) {
          case LockKind::Tatas:
            return std::make_unique<Impl<TatasLock<Ctx>>>(machine, params,
                                                          home_node);
          case LockKind::TatasExp:
            return std::make_unique<Impl<TatasExpLock<Ctx>>>(machine, params,
                                                             home_node);
          case LockKind::Ticket:
            return std::make_unique<Impl<TicketLock<Ctx>>>(machine, params,
                                                           home_node);
          case LockKind::Mcs:
            return std::make_unique<Impl<McsLock<Ctx>>>(machine, params,
                                                        home_node);
          case LockKind::Clh:
            return std::make_unique<Impl<ClhLock<Ctx>>>(machine, params,
                                                        home_node);
          case LockKind::Rh:
            return std::make_unique<Impl<RhLock<Ctx>>>(machine, params,
                                                       home_node);
          case LockKind::Hbo:
            return std::make_unique<Impl<HboLock<Ctx>>>(machine, params,
                                                        home_node);
          case LockKind::HboGt:
            return std::make_unique<Impl<HboGtLock<Ctx>>>(machine, params,
                                                          home_node);
          case LockKind::HboGtSd:
            return std::make_unique<Impl<HboGtSdLock<Ctx>>>(machine, params,
                                                            home_node);
          case LockKind::HboHier:
            return std::make_unique<Impl<HboHierLock<Ctx>>>(machine, params,
                                                            home_node);
          case LockKind::Reactive:
            return std::make_unique<Impl<ReactiveLock<Ctx>>>(machine, params,
                                                             home_node);
          case LockKind::Anderson:
            return std::make_unique<Impl<AndersonLock<Ctx>>>(machine, params,
                                                             home_node);
          case LockKind::Cohort:
            return std::make_unique<Impl<CohortLock<Ctx>>>(machine, params,
                                                           home_node);
          case LockKind::ClhTry:
            return std::make_unique<Impl<ClhTryLock<Ctx>>>(machine, params,
                                                           home_node);
          case LockKind::Adaptive:
            return std::make_unique<Impl<AdaptiveLock<Ctx>>>(machine, params,
                                                             home_node);
        }
        NUCA_PANIC("unknown LockKind");
    }

    LockKind kind_;
    std::unique_ptr<Base> impl_;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_ANY_LOCK_HPP
