/**
 * @file
 * The paper's backoff() helper (Fig. 1, lines 11-16), shared by all
 * backoff-based locks, with optional deterministic jitter.
 */
#ifndef NUCALOCK_LOCKS_BACKOFF_HPP
#define NUCALOCK_LOCKS_BACKOFF_HPP

#include <algorithm>
#include <cstdint>

#include "locks/context.hpp"
#include "locks/params.hpp"
#include "obs/probe.hpp"

namespace nucalock::locks {

/**
 * Delay for *b iterations (+/-25% jitter when enabled), then grow
 * *b geometrically up to @p cap — exactly Fig. 1's backoff(&b, cap).
 *
 * @p cls labels the episode for observability only (which constants this
 * site uses — local vs remote holder); it never changes the delay.
 */
template <LockContext Ctx>
void
backoff(Ctx& ctx, std::uint32_t* b, std::uint32_t factor, std::uint32_t cap,
        bool jitter, obs::BackoffClass cls = obs::BackoffClass::Generic)
{
    std::uint64_t d = *b;
    if (jitter && d >= 4) {
        // d * [0.75, 1.25): subtract a quarter, add back up to a half.
        const std::uint64_t quarter = d / 4;
        d = d - quarter + ctx.rng().next_below(2 * quarter);
    }
    obs::probe(ctx, obs::LockEvent::BackoffBegin, 0, d,
               static_cast<std::uint64_t>(cls));
    ctx.delay(d);
    obs::probe(ctx, obs::LockEvent::BackoffEnd, 0);
    *b = std::min(*b * factor, cap);
}

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_BACKOFF_HPP
