/**
 * @file
 * Timed acquisition on top of any lock with try_acquire(): bounded-wait
 * locking with exponential backoff between attempts. (Full non-blocking
 * timeout for queue locks is a research topic of its own — Scott, PODC
 * 2002, cited by the paper; this helper covers the backoff-based locks,
 * which is what the HBO family is.)
 */
#ifndef NUCALOCK_LOCKS_TIMED_HPP
#define NUCALOCK_LOCKS_TIMED_HPP

#include <cstdint>

#include "locks/context.hpp"
#include "locks/instrumented.hpp" // detail::lock_clock_ns
#include "locks/params.hpp"

namespace nucalock::locks {

/**
 * Try to acquire @p lock within roughly @p timeout_ns.
 * @return true when acquired (caller must release), false on timeout.
 *
 * Requires `lock.try_acquire(ctx)`. The deadline is checked between
 * attempts, so the overshoot is bounded by one backoff period plus one
 * attempt.
 */
template <typename Lock, LockContext Ctx>
bool
acquire_for(Lock& lock, Ctx& ctx, std::uint64_t timeout_ns,
            const BackoffParams& backoff_params = BackoffParams{})
{
    const std::uint64_t deadline =
        detail::lock_clock_ns(ctx) + timeout_ns;
    std::uint32_t b = backoff_params.base;
    while (true) {
        if (lock.try_acquire(ctx))
            return true;
        if (detail::lock_clock_ns(ctx) >= deadline)
            return false;
        ctx.delay(b);
        b = std::min(b * backoff_params.factor, backoff_params.cap);
    }
}

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_TIMED_HPP
