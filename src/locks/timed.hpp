/**
 * @file
 * Timed acquisition: one uniform entry point over every lock.
 *
 * Locks that implement native timed abandonment expose
 * `try_acquire_for(ctx, timeout_ns)` (MCS, CLH_TRY, cohort, the HBO
 * hierarchy — see docs/robustness.md for the per-family abandonment
 * semantics). `acquire_for` dispatches to that when present and falls
 * back to a try_acquire/backoff loop otherwise, so callers never need to
 * know which family they hold. The fallback's overshoot is bounded by
 * one backoff period plus one attempt; native paths document their own
 * (tighter) bounds.
 */
#ifndef NUCALOCK_LOCKS_TIMED_HPP
#define NUCALOCK_LOCKS_TIMED_HPP

#include <atomic>
#include <cstdint>
#include <limits>

#include "locks/context.hpp"
#include "locks/instrumented.hpp" // detail::lock_clock_ns
#include "locks/params.hpp"

namespace nucalock::locks {

/** Poll quantum between deadline checks in native timed paths (matches
 *  CLH_TRY: coarse enough not to hammer the word, fine enough that the
 *  overshoot bound is dominated by the backoff cap, not the poll). */
inline constexpr std::uint32_t kTimedPollQuantum = 64;

/** Snapshot of a lock's host-side abandonment accounting. */
struct AbandonStats
{
    /** try_acquire_for calls that returned false at the deadline. */
    std::uint64_t abandons = 0;
    /** Of those, abandonments that left a marker node in the queue (MCS). */
    std::uint64_t parked = 0;
    /** Deadline hit but the handover won the abandon race; lock accepted. */
    std::uint64_t grant_races = 0;
    /** Abandoned nodes unlinked and recovered by a releaser's walk. */
    std::uint64_t reclaims = 0;
    /** Abandoned nodes resumed in place by their returning owner. */
    std::uint64_t rejoins = 0;
    /** Already-reclaimed nodes found parked and reused by their owner. */
    std::uint64_t unparks = 0;

    /** Abandoned nodes still linked into the queue = the leak audit.
     *  Non-zero at quiescence is only legitimate behind a dead holder. */
    std::uint64_t linked_abandoned() const
    {
        const std::uint64_t recovered = reclaims + rejoins;
        return parked > recovered ? parked - recovered : 0;
    }
};

/**
 * Atomic backing store for AbandonStats. Host-side state (never simulated
 * memory): relaxed increments cannot perturb a sim run and are safe from
 * the native backend's real threads.
 */
class AbandonCounters
{
  public:
    void on_abandon() { bump(abandons_); }
    void on_park() { bump(parked_); }
    void on_grant_race() { bump(grant_races_); }
    void on_reclaim() { bump(reclaims_); }
    void on_rejoin() { bump(rejoins_); }
    void on_unpark() { bump(unparks_); }

    AbandonStats
    snapshot() const
    {
        AbandonStats s;
        s.abandons = abandons_.load(std::memory_order_relaxed);
        s.parked = parked_.load(std::memory_order_relaxed);
        s.grant_races = grant_races_.load(std::memory_order_relaxed);
        s.reclaims = reclaims_.load(std::memory_order_relaxed);
        s.rejoins = rejoins_.load(std::memory_order_relaxed);
        s.unparks = unparks_.load(std::memory_order_relaxed);
        return s;
    }

  private:
    static void
    bump(std::atomic<std::uint64_t>& counter)
    {
        counter.fetch_add(1, std::memory_order_relaxed);
    }

    std::atomic<std::uint64_t> abandons_{0};
    std::atomic<std::uint64_t> parked_{0};
    std::atomic<std::uint64_t> grant_races_{0};
    std::atomic<std::uint64_t> reclaims_{0};
    std::atomic<std::uint64_t> rejoins_{0};
    std::atomic<std::uint64_t> unparks_{0};
};

namespace detail {

/**
 * now + timeout, saturated at UINT64_MAX. Sentinel "infinite" timeouts
 * (UINT64_MAX and friends) must clamp to the end of time, not wrap to a
 * deadline in the past that makes every acquire_for fail instantly.
 */
inline std::uint64_t
saturating_deadline(std::uint64_t now_ns, std::uint64_t timeout_ns)
{
    const std::uint64_t headroom =
        std::numeric_limits<std::uint64_t>::max() - now_ns;
    return timeout_ns >= headroom
               ? std::numeric_limits<std::uint64_t>::max()
               : now_ns + timeout_ns;
}

/** Absolute deadline for a relative timeout on this context's clock. */
template <typename Ctx>
inline std::uint64_t
deadline_after(Ctx& ctx, std::uint64_t timeout_ns)
{
    return saturating_deadline(lock_clock_ns(ctx), timeout_ns);
}

} // namespace detail

/**
 * Fallback timed acquisition for locks without native abandonment:
 * bounded-wait locking with exponential backoff between try_acquire
 * attempts. (Scott, PODC 2002 — cited by the paper — covers why queue
 * locks need more than this; those now implement try_acquire_for.)
 *
 * @return true when acquired (caller must release), false on timeout.
 */
template <typename Lock, LockContext Ctx>
bool
acquire_for_polling(Lock& lock, Ctx& ctx, std::uint64_t timeout_ns,
                    const BackoffParams& backoff_params = BackoffParams{})
{
    const std::uint64_t deadline = detail::deadline_after(ctx, timeout_ns);
    std::uint32_t b = backoff_params.base;
    while (true) {
        if (lock.try_acquire(ctx))
            return true;
        if (detail::lock_clock_ns(ctx) >= deadline)
            return false;
        ctx.delay(b);
        b = std::min(b * backoff_params.factor, backoff_params.cap);
    }
}

/**
 * Try to acquire @p lock within roughly @p timeout_ns, preferring the
 * lock's native timed-abandonment path when it has one.
 * @return true when acquired (caller must release), false on timeout.
 */
template <typename Lock, LockContext Ctx>
bool
acquire_for(Lock& lock, Ctx& ctx, std::uint64_t timeout_ns,
            const BackoffParams& backoff_params = BackoffParams{})
{
    if constexpr (requires { lock.try_acquire_for(ctx, timeout_ns); }) {
        (void)backoff_params;
        return lock.try_acquire_for(ctx, timeout_ns);
    } else {
        return acquire_for_polling(lock, ctx, timeout_ns, backoff_params);
    }
}

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_TIMED_HPP
