/**
 * @file
 * InstrumentedLock: a transparent wrapper that records per-lock statistics
 * (acquisitions, wait and hold time histograms, node-handoff counts)
 * without changing the wrapped algorithm. Works on both backends; time is
 * simulated ns under sim and steady-clock ns natively.
 */
#ifndef NUCALOCK_LOCKS_INSTRUMENTED_HPP
#define NUCALOCK_LOCKS_INSTRUMENTED_HPP

#include <chrono>
#include <cstdint>

#include "locks/context.hpp"
#include "locks/params.hpp"
#include "stats/histogram.hpp"

namespace nucalock::locks {

namespace detail {

/** Timestamp source: ctx.now() when the context provides it (simulator),
 *  std::chrono::steady_clock otherwise (native). */
template <typename Ctx>
std::uint64_t
lock_clock_ns(Ctx& ctx)
{
    if constexpr (requires { ctx.now(); }) {
        return static_cast<std::uint64_t>(ctx.now());
    } else {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }
}

} // namespace detail

/** Statistics gathered by InstrumentedLock. All guarded by the lock. */
struct LockStats
{
    std::uint64_t acquisitions = 0;
    std::uint64_t node_handoffs = 0;
    std::uint64_t contended_acquisitions = 0;
    stats::LogHistogram wait_ns;
    stats::LogHistogram hold_ns;

    double
    handoff_ratio() const
    {
        return acquisitions <= 1
                   ? 0.0
                   : static_cast<double>(node_handoffs) /
                         static_cast<double>(acquisitions - 1);
    }
};

/**
 * Wraps any lock of this library. Statistics are mutated only while the
 * lock is held, so no extra synchronization is needed — the wrapped lock
 * itself serializes them (wait-time measurement brackets the acquire).
 */
template <typename Lock, LockContext Ctx>
class InstrumentedLock
{
  public:
    using Machine = typename Ctx::Machine;

    explicit InstrumentedLock(Machine& machine,
                              const LockParams& params = LockParams{},
                              int home_node = 0)
        : lock_(machine, params, home_node)
    {
    }

    void
    acquire(Ctx& ctx)
    {
        const std::uint64_t t0 = detail::lock_clock_ns(ctx);
        lock_.acquire(ctx);
        const std::uint64_t t1 = detail::lock_clock_ns(ctx);

        ++stats_.acquisitions;
        const std::uint64_t waited = t1 - t0;
        stats_.wait_ns.add(waited);
        if (waited > kContendedThresholdNs)
            ++stats_.contended_acquisitions;
        if (last_node_ >= 0 && last_node_ != ctx.node())
            ++stats_.node_handoffs;
        last_node_ = ctx.node();
        hold_start_ = t1;
    }

    void
    release(Ctx& ctx)
    {
        stats_.hold_ns.add(detail::lock_clock_ns(ctx) - hold_start_);
        lock_.release(ctx);
    }

    /** Snapshot; call while no thread is inside acquire/release. */
    const LockStats& stats() const { return stats_; }

    Lock& underlying() { return lock_; }

    /** Waits longer than this count as contended (rough, both backends). */
    static constexpr std::uint64_t kContendedThresholdNs = 2'000;

  private:
    Lock lock_;
    LockStats stats_;
    int last_node_ = -1;
    std::uint64_t hold_start_ = 0;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_INSTRUMENTED_HPP
