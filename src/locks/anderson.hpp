/**
 * @file
 * Anderson's array-based queue lock (IEEE TPDS 1990 — the paper's
 * reference [1]). A fetch-and-increment (built from cas, the paper's
 * primitive set) assigns each contender a slot in a circular array; each
 * waiter spins on its own slot, consumes the grant, and the releaser
 * grants the next slot. FIFO, one transaction per handover, but O(cpus)
 * memory per lock and no node affinity — the classic middle ground
 * between TATAS and MCS/CLH.
 */
#ifndef NUCALOCK_LOCKS_ANDERSON_HPP
#define NUCALOCK_LOCKS_ANDERSON_HPP

#include <vector>

#include "common/logging.hpp"
#include "locks/context.hpp"
#include "locks/params.hpp"
#include "obs/probe.hpp"

namespace nucalock::locks {

template <LockContext Ctx>
class AndersonLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "ANDERSON";

    explicit AndersonLock(Machine& machine, const LockParams& = LockParams{},
                          int home_node = 0)
        : slots_(static_cast<std::uint64_t>(machine.max_threads())),
          ticket_(machine.alloc(0, home_node)),
          grants_(machine.alloc(0, home_node)),
          flags_(machine.alloc_array(static_cast<std::uint32_t>(slots_),
                                     kMustWait, home_node)),
          holder_slot_(static_cast<std::size_t>(machine.max_threads()), slots_)
    {
        // Ticket 0 holds an implicit initial grant (see acquire); at most
        // max_threads() tickets are outstanding at once, so the ring never
        // laps an unconsumed grant.
    }

    void
    acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, ticket_.token());
        // fetch-and-increment built from cas (the paper's primitive set).
        std::uint64_t t;
        while (true) {
            t = ctx.load(ticket_);
            if (ctx.cas(ticket_, t, t + 1) == t)
                break;
        }
        const std::uint64_t slot = t % slots_;
        if (t != 0) { // the very first ticket owns the implicit initial grant
            const Ref flag = flags_.at(static_cast<std::uint32_t>(slot));
            ctx.spin_while_equal(flag, kMustWait);
            ctx.store(flag, kMustWait); // consume the grant for the next lap
        }
        holder_slot_[static_cast<std::size_t>(ctx.thread_id())] = slot;
        obs::probe(ctx, obs::LockEvent::Acquired, ticket_.token());
    }

    /**
     * Non-blocking try: succeed only when the lock is free and the grant
     * for the next ticket is already posted. `grants_` counts completed
     * releases (single writer — the serialized holder), so observing
     * grants == ticket and then winning the ticket cas proves no acquire
     * intervened: the grant for our slot is posted and consuming it cannot
     * block.
     */
    bool
    try_acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, ticket_.token(), 1);
        const std::uint64_t t = ctx.load(ticket_);
        if (ctx.load(grants_) != t)
            return false; // held, or a handover is still in flight
        if (ctx.cas(ticket_, t, t + 1) != t)
            return false; // lost the race for ticket t
        const std::uint64_t slot = t % slots_;
        if (t != 0) {
            const Ref flag = flags_.at(static_cast<std::uint32_t>(slot));
            ctx.spin_while_equal(flag, kMustWait); // grant posted: no wait
            ctx.store(flag, kMustWait);
        }
        holder_slot_[static_cast<std::size_t>(ctx.thread_id())] = slot;
        obs::probe(ctx, obs::LockEvent::Acquired, ticket_.token(), 1);
        return true;
    }

    void
    release(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::Released, ticket_.token());
        const auto tid = static_cast<std::size_t>(ctx.thread_id());
        const std::uint64_t slot = holder_slot_[tid];
        NUCA_ASSERT(slot < slots_, "release without acquire");
        holder_slot_[tid] = slots_;
        const auto next = static_cast<std::uint32_t>((slot + 1) % slots_);
        ctx.store(flags_.at(next), kHasLock);
        // Grant count after the grant itself: a try_acquire that sees the
        // new count is guaranteed to find its grant flag already set.
        ctx.store(grants_, ++grants_value_);
    }

    /** Identity for probes and traffic attribution: the primary word's
     *  token, the id sim/traffic.hpp keys this lock's transactions by. */
    std::uint64_t lock_id() const { return ticket_.token(); }

  private:
    static constexpr std::uint64_t kMustWait = 0;
    static constexpr std::uint64_t kHasLock = 1;

    std::uint64_t slots_;
    Ref ticket_;
    Ref grants_; // completed releases; == ticket when free and settled
    Ref flags_;
    std::vector<std::uint64_t> holder_slot_; // per-thread, lock-protected
    std::uint64_t grants_value_ = 0;         // shadow of grants_ (holder-only)
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_ANDERSON_HPP
