/**
 * @file
 * HBO: the paper's hierarchical backoff lock (section 4.1, Figure 1 with
 * the emphasized HBO_GT lines omitted).
 *
 * One cas on one word acquires a free lock; the winning thread's *node id*
 * is what gets cas-ed in, so a failed cas tells the loser where the lock
 * lives: same node => small backoff, remote node => large backoff. That
 * asymmetry is the entire mechanism — threads in the holder's node win the
 * next handover with high probability, keeping the lock word and the
 * critical-section data in the node.
 *
 * Values: kFree (0) when free, otherwise node id + 1.
 *
 * Checker view (sim/scheduler.hpp): the cas is the only decision point
 * that can change ownership, so mutual exclusion is schedule-independent;
 * what the backoff asymmetry changes is *which* thread reaches its next
 * cas first. The backoff delays are voluntary yields — the controlled
 * schedulers (and the preemption bound in check/explore.hpp) treat
 * switching away during backoff as free, which is what keeps exploring
 * this lock's schedule space tractable.
 */
#ifndef NUCALOCK_LOCKS_HBO_HPP
#define NUCALOCK_LOCKS_HBO_HPP

#include "locks/backoff.hpp"
#include "locks/context.hpp"
#include "locks/params.hpp"

namespace nucalock::locks {

/** FREE value of an HBO lock word. */
inline constexpr std::uint64_t kHboFree = 0;

/** Lock-word value identifying @p node as the holding node. */
inline std::uint64_t
hbo_node_token(int node)
{
    return static_cast<std::uint64_t>(node) + 1;
}

/**
 * One slowpath poll: test with a load, cas only when the lock looked free.
 * @return kHboFree when the lock was acquired, else the holder's token.
 *
 * Figure 1 polls with a bare cas; a failed cas still migrates the line
 * exclusively, so bare-cas polling makes every waiting thread bounce the
 * lock line and stalls the holder's release (clearly visible in the
 * simulator's coherence model). Polling with a load first keeps waiters'
 * copies shared and is the standard test-and-set-style refinement; the
 * uncontested path (acquire's first cas) is unchanged.
 */
template <LockContext Ctx>
std::uint64_t
hbo_poll(Ctx& ctx, typename Ctx::Ref word, std::uint64_t mine)
{
    const std::uint64_t v = ctx.load(word);
    if (v != kHboFree)
        return v;
    return ctx.cas(word, kHboFree, mine);
}

template <LockContext Ctx>
class HboLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "HBO";

    explicit HboLock(Machine& machine, const LockParams& params = LockParams{},
                     int home_node = 0)
        : word_(machine.alloc(kHboFree, home_node)), params_(params)
    {
    }

    void
    acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token());
        // Figure 1 lines 6-9: the uncontested path is one cas.
        const std::uint64_t tmp = ctx.cas(word_, kHboFree, hbo_node_token(ctx.node()));
        if (tmp != kHboFree)
            acquire_slowpath(ctx, tmp);
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token());
    }

    bool
    try_acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token(), 1);
        if (ctx.cas(word_, kHboFree, hbo_node_token(ctx.node())) != kHboFree)
            return false;
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token(), 1);
        return true;
    }

    void
    release(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::Released, word_.token());
        ctx.store(word_, kHboFree);
    }

    /** Identity for probes and traffic attribution: the primary word's
     *  token, the id sim/traffic.hpp keys this lock's transactions by. */
    std::uint64_t lock_id() const { return word_.token(); }

  private:
    void
    acquire_slowpath(Ctx& ctx, std::uint64_t tmp)
    {
        const std::uint64_t mine = hbo_node_token(ctx.node());
        while (true) {
            if (tmp == mine) {
                // Lock is in our node: spin politely with the small backoff.
                std::uint32_t b = params_.hbo_local.base;
                while (true) {
                    backoff(ctx, &b, params_.hbo_local.factor,
                            params_.hbo_local.cap, params_.jitter,
                            obs::BackoffClass::Local);
                    tmp = hbo_poll(ctx, word_, mine);
                    if (tmp == kHboFree)
                        return;
                    if (tmp != mine) {
                        // The lock migrated away; re-dispatch.
                        backoff(ctx, &b, params_.hbo_local.factor,
                                params_.hbo_local.cap, params_.jitter,
                                obs::BackoffClass::Local);
                        break;
                    }
                }
            } else {
                // Lock is in a remote node: back off hard.
                std::uint32_t b = params_.hbo_remote_base;
                while (true) {
                    backoff(ctx, &b, 2, params_.hbo_remote_cap, params_.jitter,
                            obs::BackoffClass::Remote);
                    tmp = hbo_poll(ctx, word_, mine);
                    if (tmp == kHboFree)
                        return;
                    if (tmp == mine)
                        break; // it came to us; spin locally now
                }
            }
        }
    }

    Ref word_;
    LockParams params_;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_HBO_HPP
