/**
 * @file
 * HBO_HIER: the paper's proposed extension of HBO to hierarchical NUCAs
 * (section 4.1: "This scheme can be expanded in a hierarchical way, using
 * more than two sets of constants").
 *
 * The cas-ed token identifies the holder's *chip*; a loser picks one of
 * three backoff sets depending on whether the holder shares its chip, its
 * node, or neither. Remote-node spinning is gated per node like HBO_GT.
 * On a flat (one chip per node) topology this degenerates to HBO_GT.
 */
#ifndef NUCALOCK_LOCKS_HBO_HIER_HPP
#define NUCALOCK_LOCKS_HBO_HIER_HPP

#include <vector>

#include "locks/backoff.hpp"
#include "locks/context.hpp"
#include "locks/hbo.hpp"
#include "locks/hbo_gt.hpp"
#include "locks/params.hpp"
#include "locks/timed.hpp"
#include "obs/probe.hpp"

namespace nucalock::locks {

template <LockContext Ctx>
class HboHierLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "HBO_HIER";

    explicit HboHierLock(Machine& machine, const LockParams& params = LockParams{},
                         int home_node = 0)
        : machine_(&machine), word_(machine.alloc(kHboFree, home_node)),
          params_(params)
    {
        const int nodes = machine.topology().num_nodes();
        gates_.reserve(static_cast<std::size_t>(nodes));
        for (int n = 0; n < nodes; ++n)
            gates_.push_back(machine.node_gate(n));
        gate_token_ = word_.token();
    }

    void
    acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token());
        obs::probe_gate(ctx, my_gate(ctx), gate_token_, word_.token());
        ctx.spin_while_equal(my_gate(ctx), gate_token_);
        const std::uint64_t tmp = ctx.cas(word_, kHboFree, chip_token(ctx));
        if (tmp != kHboFree)
            acquire_slowpath(ctx, tmp);
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token());
    }

    bool
    try_acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token(), 1);
        if (ctx.load(my_gate(ctx)) == gate_token_) {
            obs::probe(ctx, obs::LockEvent::GateBlocked, word_.token());
            return false;
        }
        if (ctx.cas(word_, kHboFree, chip_token(ctx)) != kHboFree)
            return false;
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token(), 1);
        return true;
    }

    /**
     * Timed acquisition, same obligations as HboGtLock::try_acquire_for:
     * every wait is deadline-bounded and a timeout inside the remote
     * branch re-opens the gate this thread closed. The chip/node/remote
     * dispatch is unchanged; only the remote branch touches the gate, so
     * chip- and node-level timeouts have nothing to undo.
     */
    bool
    try_acquire_for(Ctx& ctx, std::uint64_t timeout_ns)
    {
        const std::uint64_t deadline = detail::deadline_after(ctx, timeout_ns);
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token(), 1);
        const std::uint64_t mine = chip_token(ctx);
        if (!gate_wait_until(ctx, deadline))
            return abandon_clean(ctx);
        std::uint64_t tmp = ctx.cas(word_, kHboFree, mine);
        while (tmp != kHboFree) {
            const Level level = level_of(ctx, tmp);
            if (level == Level::Remote) {
                std::uint32_t b = params_.hbo_remote_base;
                obs::probe(ctx, obs::LockEvent::GatePublish, word_.token(),
                           static_cast<std::uint64_t>(ctx.node()));
                ctx.store(my_gate(ctx), gate_token_);
                while (true) {
                    if (detail::lock_clock_ns(ctx) >= deadline)
                        return abandon_reopening_gate(ctx);
                    backoff(ctx, &b, 2, params_.hbo_remote_cap, params_.jitter,
                            obs::BackoffClass::Remote);
                    tmp = hbo_poll(ctx, word_, mine);
                    if (tmp == kHboFree ||
                        level_of(ctx, tmp) != Level::Remote) {
                        obs::probe(ctx, obs::LockEvent::GateOpen,
                                   word_.token(), 1);
                        ctx.store(my_gate(ctx),
                                  HboGtLock<Ctx>::kGateDummyValue);
                        break;
                    }
                }
            } else {
                const BackoffParams& bp = level == Level::SameChip
                                              ? params_.hier_chip
                                              : params_.hbo_local;
                std::uint32_t b = bp.base;
                bool moved = false;
                while (!moved && tmp != kHboFree) {
                    if (detail::lock_clock_ns(ctx) >= deadline)
                        return abandon_clean(ctx);
                    backoff(ctx, &b, bp.factor, bp.cap, params_.jitter,
                            obs::BackoffClass::Local);
                    tmp = hbo_poll(ctx, word_, mine);
                    if (tmp != kHboFree && level_of(ctx, tmp) != level)
                        moved = true; // holder distance changed; re-dispatch
                }
            }
            if (tmp == kHboFree)
                break;
            if (!gate_wait_until(ctx, deadline))
                return abandon_clean(ctx);
            tmp = hbo_poll(ctx, word_, mine);
        }
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token(), 1);
        return true;
    }

    /** Host-side abandonment accounting (see locks/timed.hpp). */
    AbandonStats abandon_stats() const { return counters_.snapshot(); }

    void
    release(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::Released, word_.token());
        ctx.store(word_, kHboFree);
    }

    /** Identity for probes and traffic attribution: the primary word's
     *  token, the id sim/traffic.hpp keys this lock's transactions by. */
    std::uint64_t lock_id() const { return word_.token(); }

  private:
    enum class Level
    {
        SameChip,
        SameNode,
        Remote,
    };

    static std::uint64_t
    chip_token(Ctx& ctx)
    {
        return static_cast<std::uint64_t>(ctx.chip()) + 1;
    }

    Ref
    my_gate(Ctx& ctx) const
    {
        return gates_[static_cast<std::size_t>(ctx.node())];
    }

    /** Deadline-bounded version of the entry/restart gate wait. */
    bool
    gate_wait_until(Ctx& ctx, std::uint64_t deadline)
    {
        obs::probe_gate(ctx, my_gate(ctx), gate_token_, word_.token());
        while (ctx.load(my_gate(ctx)) == gate_token_) {
            if (detail::lock_clock_ns(ctx) >= deadline)
                return false;
            ctx.delay(kTimedPollQuantum);
        }
        return true;
    }

    /** Timed-out with no gate closed by us: nothing to undo. */
    bool
    abandon_clean(Ctx& ctx)
    {
        counters_.on_abandon();
        obs::probe(ctx, obs::LockEvent::AbandonStart, word_.token());
        obs::probe(ctx, obs::LockEvent::AbandonDone, word_.token(),
                   static_cast<std::uint64_t>(obs::AbandonOutcome::Clean));
        return false;
    }

    /** Timed-out while our gate closure is published: re-open it. */
    bool
    abandon_reopening_gate(Ctx& ctx)
    {
        counters_.on_abandon();
        obs::probe(ctx, obs::LockEvent::AbandonStart, word_.token());
        obs::probe(ctx, obs::LockEvent::GateOpen, word_.token(), 1);
        ctx.store(my_gate(ctx), HboGtLock<Ctx>::kGateDummyValue);
        obs::probe(ctx, obs::LockEvent::AbandonDone, word_.token(),
                   static_cast<std::uint64_t>(obs::AbandonOutcome::Clean));
        return false;
    }

    Level
    level_of(Ctx& ctx, std::uint64_t tmp) const
    {
        const int holder_chip = static_cast<int>(tmp) - 1;
        if (holder_chip == ctx.chip())
            return Level::SameChip;
        if (machine_->topology().node_of_chip(holder_chip) == ctx.node())
            return Level::SameNode;
        return Level::Remote;
    }

    void
    acquire_slowpath(Ctx& ctx, std::uint64_t tmp)
    {
        const std::uint64_t mine = chip_token(ctx);
        while (true) {
            const Level level = level_of(ctx, tmp);
            if (level == Level::Remote) {
                // Gated remote spinning, exactly as HBO_GT.
                std::uint32_t b = params_.hbo_remote_base;
                obs::probe(ctx, obs::LockEvent::GatePublish, word_.token(),
                           static_cast<std::uint64_t>(ctx.node()));
                ctx.store(my_gate(ctx), gate_token_);
                while (true) {
                    backoff(ctx, &b, 2, params_.hbo_remote_cap, params_.jitter,
                            obs::BackoffClass::Remote);
                    tmp = hbo_poll(ctx, word_, mine);
                    if (tmp == kHboFree) {
                        obs::probe(ctx, obs::LockEvent::GateOpen, word_.token(), 1);
                        ctx.store(my_gate(ctx), HboGtLock<Ctx>::kGateDummyValue);
                        return;
                    }
                    if (level_of(ctx, tmp) != Level::Remote) {
                        obs::probe(ctx, obs::LockEvent::GateOpen, word_.token(), 1);
                        ctx.store(my_gate(ctx), HboGtLock<Ctx>::kGateDummyValue);
                        break;
                    }
                }
            } else {
                const BackoffParams& bp = level == Level::SameChip
                                              ? params_.hier_chip
                                              : params_.hbo_local;
                std::uint32_t b = bp.base;
                bool moved = false;
                while (!moved) {
                    backoff(ctx, &b, bp.factor, bp.cap, params_.jitter,
                            obs::BackoffClass::Local);
                    tmp = hbo_poll(ctx, word_, mine);
                    if (tmp == kHboFree)
                        return;
                    if (level_of(ctx, tmp) != level)
                        moved = true; // holder distance changed; re-dispatch
                }
            }
            obs::probe_gate(ctx, my_gate(ctx), gate_token_, word_.token());
            ctx.spin_while_equal(my_gate(ctx), gate_token_);
            tmp = hbo_poll(ctx, word_, mine);
            if (tmp == kHboFree)
                return;
        }
    }

    Machine* machine_;
    Ref word_;
    std::vector<Ref> gates_;
    std::uint64_t gate_token_ = 0;
    LockParams params_;
    AbandonCounters counters_;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_HBO_HIER_HPP
