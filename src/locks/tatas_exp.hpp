/**
 * @file
 * TATAS_EXP: test-and-test&set with Ethernet-style exponential backoff,
 * following the paper's section 3 pseudo-code line by line.
 */
#ifndef NUCALOCK_LOCKS_TATAS_EXP_HPP
#define NUCALOCK_LOCKS_TATAS_EXP_HPP

#include "locks/backoff.hpp"
#include "locks/context.hpp"
#include "locks/params.hpp"

namespace nucalock::locks {

template <LockContext Ctx>
class TatasExpLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "TATAS_EXP";

    explicit TatasExpLock(Machine& machine, const LockParams& params = LockParams{},
                          int home_node = 0)
        : word_(machine.alloc(0, home_node)), params_(params)
    {
    }

    void
    acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token());
        if (ctx.tas(word_) != 0)
            acquire_slowpath(ctx);
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token());
    }

    bool
    try_acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token(), 1);
        if (ctx.tas(word_) != 0)
            return false;
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token(), 1);
        return true;
    }

    void
    release(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::Released, word_.token());
        ctx.store(word_, 0);
    }

    /** Identity for probes and traffic attribution: the primary word's
     *  token, the id sim/traffic.hpp keys this lock's transactions by. */
    std::uint64_t lock_id() const { return word_.token(); }

  private:
    // Paper section 3: delay, grow the backoff, re-test with a load, and
    // only attempt tas when the lock looked free.
    void
    acquire_slowpath(Ctx& ctx)
    {
        std::uint32_t b = params_.tatas.base;
        while (true) {
            backoff(ctx, &b, params_.tatas.factor, params_.tatas.cap,
                    params_.jitter);
            if (ctx.load(word_) != 0)
                continue; // still looks held: back off again without a tas
            if (ctx.tas(word_) == 0)
                return;
        }
    }

    Ref word_;
    LockParams params_;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_TATAS_EXP_HPP
