/**
 * @file
 * HBO_GT_SD: HBO_GT with node-centric starvation detection (paper section
 * 4.3, Figure 2).
 *
 * A node winner that keeps losing remote handovers "gets angry" after
 * GET_ANGRY_LIMIT failures: it (1) spins more frequently (drops back to the
 * local backoff constants) and (2) writes the lock's identity into the
 * *winning* nodes' is_spinning gates, stopping new threads there from even
 * attempting the lock. Once the angry winner finally acquires (or the lock
 * migrates home), it re-opens every gate it closed.
 *
 * Figure 2 stops the single node observed at the limit; we generalize
 * slightly: past the limit, any newly observed holding node is stopped too
 * (the lock may migrate between third-party nodes on >2-node machines).
 */
#ifndef NUCALOCK_LOCKS_HBO_GT_SD_HPP
#define NUCALOCK_LOCKS_HBO_GT_SD_HPP

#include <array>
#include <vector>

#include "common/logging.hpp"
#include "locks/backoff.hpp"
#include "locks/context.hpp"
#include "locks/hbo.hpp"
#include "locks/hbo_gt.hpp"
#include "locks/params.hpp"
#include "obs/probe.hpp"

namespace nucalock::locks {

template <LockContext Ctx>
class HboGtSdLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "HBO_GT_SD";
    static constexpr int kMaxNodes = 64;

    explicit HboGtSdLock(Machine& machine, const LockParams& params = LockParams{},
                         int home_node = 0)
        : word_(machine.alloc(kHboFree, home_node)), params_(params)
    {
        const int nodes = machine.topology().num_nodes();
        NUCA_ASSERT(nodes <= kMaxNodes);
        gates_.reserve(static_cast<std::size_t>(nodes));
        for (int n = 0; n < nodes; ++n)
            gates_.push_back(machine.node_gate(n));
        gate_token_ = word_.token();
    }

    void
    acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token());
        obs::probe_gate(ctx, my_gate(ctx), gate_token_, word_.token());
        ctx.spin_while_equal(gates_[static_cast<std::size_t>(ctx.node())],
                             gate_token_);
        const std::uint64_t tmp =
            ctx.cas(word_, kHboFree, hbo_node_token(ctx.node()));
        if (tmp != kHboFree)
            acquire_slowpath(ctx, tmp);
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token());
    }

    bool
    try_acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token(), 1);
        if (ctx.load(gates_[static_cast<std::size_t>(ctx.node())]) == gate_token_) {
            obs::probe(ctx, obs::LockEvent::GateBlocked, word_.token());
            return false;
        }
        if (ctx.cas(word_, kHboFree, hbo_node_token(ctx.node())) != kHboFree)
            return false;
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token(), 1);
        return true;
    }

    void
    release(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::Released, word_.token());
        ctx.store(word_, kHboFree);
    }

  private:
    Ref
    my_gate(Ctx& ctx) const
    {
        return gates_[static_cast<std::size_t>(ctx.node())];
    }

    void
    acquire_slowpath(Ctx& ctx, std::uint64_t tmp)
    {
        const std::uint64_t mine = hbo_node_token(ctx.node());
        while (true) {
            if (tmp == mine) {
                std::uint32_t b = params_.hbo_local.base;
                bool migrated = false;
                while (!migrated) {
                    backoff(ctx, &b, params_.hbo_local.factor,
                            params_.hbo_local.cap, params_.jitter,
                            obs::BackoffClass::Local);
                    tmp = hbo_poll(ctx, word_, mine);
                    if (tmp == kHboFree)
                        return;
                    if (tmp != mine) {
                        backoff(ctx, &b, params_.hbo_local.factor,
                                params_.hbo_local.cap, params_.jitter,
                                obs::BackoffClass::Local);
                        migrated = true;
                    }
                }
            } else {
                if (remote_spin(ctx, mine))
                    return;
            }
            obs::probe_gate(ctx, my_gate(ctx), gate_token_, word_.token());
            ctx.spin_while_equal(my_gate(ctx), gate_token_);
            tmp = hbo_poll(ctx, word_, mine);
            if (tmp == kHboFree)
                return;
        }
    }

    /**
     * Remote spinning with starvation detection (Figure 2).
     * @return true when the lock was acquired; false when it migrated to
     *         our node (caller re-dispatches through "restart").
     */
    bool
    remote_spin(Ctx& ctx, std::uint64_t mine)
    {
        std::uint32_t b = params_.hbo_remote_base;
        std::uint32_t get_angry = 0;
        bool angry = false;
        std::array<bool, kMaxNodes> stopped{};
        int stopped_count = 0;

        obs::probe(ctx, obs::LockEvent::GatePublish, word_.token(),
                   static_cast<std::uint64_t>(ctx.node()));
        ctx.store(my_gate(ctx), gate_token_);
        while (true) {
            if (angry) {
                // Measure (1): spin more frequently.
                std::uint32_t fast = params_.hbo_local.base;
                backoff(ctx, &fast, params_.hbo_local.factor,
                        params_.hbo_local.cap, params_.jitter,
                        obs::BackoffClass::Local);
            } else {
                backoff(ctx, &b, 2, params_.hbo_remote_cap, params_.jitter,
                        obs::BackoffClass::Remote);
            }

            const std::uint64_t tmp = hbo_poll(ctx, word_, mine);
            if (tmp == kHboFree) {
                if (angry)
                    obs::probe(ctx, obs::LockEvent::AngryExit, word_.token());
                open_gates(ctx, stopped, stopped_count);
                return true;
            }
            if (tmp == mine) {
                if (angry)
                    obs::probe(ctx, obs::LockEvent::AngryExit, word_.token());
                open_gates(ctx, stopped, stopped_count);
                return false;
            }

            // The lock is still in some remote node.
            ++get_angry;
            if (get_angry >= params_.get_angry_limit) {
                if (!angry)
                    obs::probe(ctx, obs::LockEvent::AngryEnter, word_.token(),
                               tmp - 1);
                angry = true;
                // Measure (2): stop the holding node's threads.
                const int holder = static_cast<int>(tmp) - 1;
                if (holder >= 0 && holder < static_cast<int>(gates_.size()) &&
                    !stopped[static_cast<std::size_t>(holder)]) {
                    stopped[static_cast<std::size_t>(holder)] = true;
                    ++stopped_count;
                    obs::probe(ctx, obs::LockEvent::GatePublish, word_.token(),
                               static_cast<std::uint64_t>(holder), 1);
                    ctx.store(gates_[static_cast<std::size_t>(holder)],
                              gate_token_);
                }
            }
        }
    }

    /** Release our own node's gate and every gate we closed in anger. */
    void
    open_gates(Ctx& ctx, const std::array<bool, kMaxNodes>& stopped,
               int stopped_count)
    {
        obs::probe(ctx, obs::LockEvent::GateOpen, word_.token(),
                   static_cast<std::uint64_t>(stopped_count) + 1);
        ctx.store(my_gate(ctx), HboGtLock<Ctx>::kGateDummyValue);
        if (stopped_count == 0)
            return;
        for (std::size_t n = 0; n < gates_.size(); ++n)
            if (stopped[n])
                ctx.store(gates_[n], HboGtLock<Ctx>::kGateDummyValue);
    }

    Ref word_;
    std::vector<Ref> gates_;
    std::uint64_t gate_token_ = 0;
    LockParams params_;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_HBO_GT_SD_HPP
