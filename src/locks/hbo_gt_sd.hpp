/**
 * @file
 * HBO_GT_SD: HBO_GT with node-centric starvation detection (paper section
 * 4.3, Figure 2).
 *
 * A node winner that keeps losing remote handovers "gets angry" after
 * GET_ANGRY_LIMIT failures: it (1) spins more frequently (drops back to the
 * local backoff constants) and (2) writes the lock's identity into the
 * *winning* nodes' is_spinning gates, stopping new threads there from even
 * attempting the lock. Once the angry winner finally acquires (or the lock
 * migrates home), it re-opens every gate it closed.
 *
 * Figure 2 stops the single node observed at the limit; we generalize
 * slightly: past the limit, any newly observed holding node is stopped too
 * (the lock may migrate between third-party nodes on >2-node machines).
 */
#ifndef NUCALOCK_LOCKS_HBO_GT_SD_HPP
#define NUCALOCK_LOCKS_HBO_GT_SD_HPP

#include <array>
#include <vector>

#include "common/logging.hpp"
#include "locks/backoff.hpp"
#include "locks/context.hpp"
#include "locks/hbo.hpp"
#include "locks/hbo_gt.hpp"
#include "locks/params.hpp"
#include "locks/timed.hpp"
#include "obs/probe.hpp"

namespace nucalock::locks {

template <LockContext Ctx>
class HboGtSdLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "HBO_GT_SD";
    static constexpr int kMaxNodes = 64;

    explicit HboGtSdLock(Machine& machine, const LockParams& params = LockParams{},
                         int home_node = 0)
        : word_(machine.alloc(kHboFree, home_node)), params_(params)
    {
        const int nodes = machine.topology().num_nodes();
        NUCA_ASSERT(nodes <= kMaxNodes);
        gates_.reserve(static_cast<std::size_t>(nodes));
        for (int n = 0; n < nodes; ++n)
            gates_.push_back(machine.node_gate(n));
        gate_token_ = word_.token();
    }

    void
    acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token());
        obs::probe_gate(ctx, my_gate(ctx), gate_token_, word_.token());
        ctx.spin_while_equal(gates_[static_cast<std::size_t>(ctx.node())],
                             gate_token_);
        const std::uint64_t tmp =
            ctx.cas(word_, kHboFree, hbo_node_token(ctx.node()));
        if (tmp != kHboFree)
            acquire_slowpath(ctx, tmp);
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token());
    }

    bool
    try_acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token(), 1);
        if (ctx.load(gates_[static_cast<std::size_t>(ctx.node())]) == gate_token_) {
            obs::probe(ctx, obs::LockEvent::GateBlocked, word_.token());
            return false;
        }
        if (ctx.cas(word_, kHboFree, hbo_node_token(ctx.node())) != kHboFree)
            return false;
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token(), 1);
        return true;
    }

    /**
     * Timed acquisition. Same gate obligations as HboGtLock plus the
     * anger set: a timed-out angry waiter has closed up to kMaxNodes
     * *other* nodes' gates and must re-open every one of them (via the
     * same open_gates path the success exits use) or those nodes wedge.
     * Overshoot is bounded by one backoff period plus one poll.
     */
    bool
    try_acquire_for(Ctx& ctx, std::uint64_t timeout_ns)
    {
        const std::uint64_t deadline = detail::deadline_after(ctx, timeout_ns);
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token(), 1);
        const std::uint64_t mine = hbo_node_token(ctx.node());
        if (!gate_wait_until(ctx, deadline))
            return abandon_clean(ctx);
        std::uint64_t tmp = ctx.cas(word_, kHboFree, mine);
        while (tmp != kHboFree) {
            if (tmp == mine) {
                std::uint32_t b = params_.hbo_local.base;
                bool migrated = false;
                while (!migrated && tmp != kHboFree) {
                    if (detail::lock_clock_ns(ctx) >= deadline)
                        return abandon_clean(ctx);
                    backoff(ctx, &b, params_.hbo_local.factor,
                            params_.hbo_local.cap, params_.jitter,
                            obs::BackoffClass::Local);
                    tmp = hbo_poll(ctx, word_, mine);
                    if (tmp != kHboFree && tmp != mine)
                        migrated = true;
                }
            } else {
                const RemoteSpinOutcome outcome =
                    remote_spin_until(ctx, mine, deadline);
                if (outcome == RemoteSpinOutcome::TimedOut) {
                    counters_.on_abandon();
                    obs::probe(ctx, obs::LockEvent::AbandonDone, word_.token(),
                               static_cast<std::uint64_t>(
                                   obs::AbandonOutcome::Clean));
                    return false;
                }
                tmp = outcome == RemoteSpinOutcome::Acquired ? kHboFree
                                                             : mine;
            }
            if (tmp == kHboFree)
                break;
            if (!gate_wait_until(ctx, deadline))
                return abandon_clean(ctx);
            tmp = hbo_poll(ctx, word_, mine);
        }
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token(), 1);
        return true;
    }

    /** Host-side abandonment accounting (see locks/timed.hpp). */
    AbandonStats abandon_stats() const { return counters_.snapshot(); }

    void
    release(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::Released, word_.token());
        ctx.store(word_, kHboFree);
    }

    /** Identity for probes and traffic attribution: the primary word's
     *  token, the id sim/traffic.hpp keys this lock's transactions by. */
    std::uint64_t lock_id() const { return word_.token(); }

  private:
    enum class RemoteSpinOutcome
    {
        Acquired,
        MigratedHome,
        TimedOut,
    };

    Ref
    my_gate(Ctx& ctx) const
    {
        return gates_[static_cast<std::size_t>(ctx.node())];
    }

    /** Deadline-bounded version of the entry/restart gate wait. */
    bool
    gate_wait_until(Ctx& ctx, std::uint64_t deadline)
    {
        obs::probe_gate(ctx, my_gate(ctx), gate_token_, word_.token());
        while (ctx.load(my_gate(ctx)) == gate_token_) {
            if (detail::lock_clock_ns(ctx) >= deadline)
                return false;
            ctx.delay(kTimedPollQuantum);
        }
        return true;
    }

    /** Timed-out with no gate closed by us: nothing to undo. */
    bool
    abandon_clean(Ctx& ctx)
    {
        counters_.on_abandon();
        obs::probe(ctx, obs::LockEvent::AbandonStart, word_.token());
        obs::probe(ctx, obs::LockEvent::AbandonDone, word_.token(),
                   static_cast<std::uint64_t>(obs::AbandonOutcome::Clean));
        return false;
    }

    void
    acquire_slowpath(Ctx& ctx, std::uint64_t tmp)
    {
        const std::uint64_t mine = hbo_node_token(ctx.node());
        while (true) {
            if (tmp == mine) {
                std::uint32_t b = params_.hbo_local.base;
                bool migrated = false;
                while (!migrated) {
                    backoff(ctx, &b, params_.hbo_local.factor,
                            params_.hbo_local.cap, params_.jitter,
                            obs::BackoffClass::Local);
                    tmp = hbo_poll(ctx, word_, mine);
                    if (tmp == kHboFree)
                        return;
                    if (tmp != mine) {
                        backoff(ctx, &b, params_.hbo_local.factor,
                                params_.hbo_local.cap, params_.jitter,
                                obs::BackoffClass::Local);
                        migrated = true;
                    }
                }
            } else {
                if (remote_spin(ctx, mine))
                    return;
            }
            obs::probe_gate(ctx, my_gate(ctx), gate_token_, word_.token());
            ctx.spin_while_equal(my_gate(ctx), gate_token_);
            tmp = hbo_poll(ctx, word_, mine);
            if (tmp == kHboFree)
                return;
        }
    }

    /**
     * Remote spinning with starvation detection (Figure 2).
     * @return true when the lock was acquired; false when it migrated to
     *         our node (caller re-dispatches through "restart").
     */
    bool
    remote_spin(Ctx& ctx, std::uint64_t mine)
    {
        std::uint32_t b = params_.hbo_remote_base;
        std::uint32_t get_angry = 0;
        bool angry = false;
        std::array<bool, kMaxNodes> stopped{};
        int stopped_count = 0;

        obs::probe(ctx, obs::LockEvent::GatePublish, word_.token(),
                   static_cast<std::uint64_t>(ctx.node()));
        ctx.store(my_gate(ctx), gate_token_);
        while (true) {
            if (angry) {
                // Measure (1): spin more frequently.
                std::uint32_t fast = params_.hbo_local.base;
                backoff(ctx, &fast, params_.hbo_local.factor,
                        params_.hbo_local.cap, params_.jitter,
                        obs::BackoffClass::Local);
            } else {
                backoff(ctx, &b, 2, params_.hbo_remote_cap, params_.jitter,
                        obs::BackoffClass::Remote);
            }

            const std::uint64_t tmp = hbo_poll(ctx, word_, mine);
            if (tmp == kHboFree) {
                if (angry)
                    obs::probe(ctx, obs::LockEvent::AngryExit, word_.token());
                open_gates(ctx, stopped, stopped_count);
                return true;
            }
            if (tmp == mine) {
                if (angry)
                    obs::probe(ctx, obs::LockEvent::AngryExit, word_.token());
                open_gates(ctx, stopped, stopped_count);
                return false;
            }

            // The lock is still in some remote node.
            ++get_angry;
            if (get_angry >= params_.get_angry_limit) {
                if (!angry)
                    obs::probe(ctx, obs::LockEvent::AngryEnter, word_.token(),
                               tmp - 1);
                angry = true;
                // Measure (2): stop the holding node's threads.
                const int holder = static_cast<int>(tmp) - 1;
                if (holder >= 0 && holder < static_cast<int>(gates_.size()) &&
                    !stopped[static_cast<std::size_t>(holder)]) {
                    stopped[static_cast<std::size_t>(holder)] = true;
                    ++stopped_count;
                    obs::probe(ctx, obs::LockEvent::GatePublish, word_.token(),
                               static_cast<std::uint64_t>(holder), 1);
                    ctx.store(gates_[static_cast<std::size_t>(holder)],
                              gate_token_);
                }
            }
        }
    }

    /**
     * Deadline-bounded remote_spin. Anger works exactly as in the
     * untimed path; every exit — acquired, migrated home, or timed out —
     * re-opens our gate and the whole anger set. The timeout exit emits
     * AbandonStart before the gate stores so the abandon-latency metric
     * covers the re-open work.
     */
    RemoteSpinOutcome
    remote_spin_until(Ctx& ctx, std::uint64_t mine, std::uint64_t deadline)
    {
        std::uint32_t b = params_.hbo_remote_base;
        std::uint32_t get_angry = 0;
        bool angry = false;
        std::array<bool, kMaxNodes> stopped{};
        int stopped_count = 0;

        obs::probe(ctx, obs::LockEvent::GatePublish, word_.token(),
                   static_cast<std::uint64_t>(ctx.node()));
        ctx.store(my_gate(ctx), gate_token_);
        while (true) {
            if (detail::lock_clock_ns(ctx) >= deadline) {
                obs::probe(ctx, obs::LockEvent::AbandonStart, word_.token());
                if (angry)
                    obs::probe(ctx, obs::LockEvent::AngryExit, word_.token());
                open_gates(ctx, stopped, stopped_count);
                return RemoteSpinOutcome::TimedOut;
            }
            if (angry) {
                // Measure (1): spin more frequently.
                std::uint32_t fast = params_.hbo_local.base;
                backoff(ctx, &fast, params_.hbo_local.factor,
                        params_.hbo_local.cap, params_.jitter,
                        obs::BackoffClass::Local);
            } else {
                backoff(ctx, &b, 2, params_.hbo_remote_cap, params_.jitter,
                        obs::BackoffClass::Remote);
            }

            const std::uint64_t tmp = hbo_poll(ctx, word_, mine);
            if (tmp == kHboFree || tmp == mine) {
                if (angry)
                    obs::probe(ctx, obs::LockEvent::AngryExit, word_.token());
                open_gates(ctx, stopped, stopped_count);
                return tmp == kHboFree ? RemoteSpinOutcome::Acquired
                                       : RemoteSpinOutcome::MigratedHome;
            }

            // The lock is still in some remote node.
            ++get_angry;
            if (get_angry >= params_.get_angry_limit) {
                if (!angry)
                    obs::probe(ctx, obs::LockEvent::AngryEnter, word_.token(),
                               tmp - 1);
                angry = true;
                // Measure (2): stop the holding node's threads.
                const int holder = static_cast<int>(tmp) - 1;
                if (holder >= 0 && holder < static_cast<int>(gates_.size()) &&
                    !stopped[static_cast<std::size_t>(holder)]) {
                    stopped[static_cast<std::size_t>(holder)] = true;
                    ++stopped_count;
                    obs::probe(ctx, obs::LockEvent::GatePublish, word_.token(),
                               static_cast<std::uint64_t>(holder), 1);
                    ctx.store(gates_[static_cast<std::size_t>(holder)],
                              gate_token_);
                }
            }
        }
    }

    /** Release our own node's gate and every gate we closed in anger. */
    void
    open_gates(Ctx& ctx, const std::array<bool, kMaxNodes>& stopped,
               int stopped_count)
    {
        obs::probe(ctx, obs::LockEvent::GateOpen, word_.token(),
                   static_cast<std::uint64_t>(stopped_count) + 1);
        ctx.store(my_gate(ctx), HboGtLock<Ctx>::kGateDummyValue);
        if (stopped_count == 0)
            return;
        for (std::size_t n = 0; n < gates_.size(); ++n)
            if (stopped[n])
                ctx.store(gates_[n], HboGtLock<Ctx>::kGateDummyValue);
    }

    Ref word_;
    std::vector<Ref> gates_;
    std::uint64_t gate_token_ = 0;
    LockParams params_;
    AbandonCounters counters_;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_HBO_GT_SD_HPP
