/**
 * @file
 * COHORT: a cohort lock in the taxonomy of Dice, Marathe & Shavit (PPoPP
 * 2012) — the mainstream descendant of this paper's idea, included as a
 * forward-looking comparison point. This is the C-TKT-BO flavour: a FIFO
 * ticket lock globally, backoff locks per node.
 *
 * Structure: one global ticket lock plus one local TATAS word per node. A
 * thread first acquires its node's local lock, then (if the node does not
 * already own it) the global lock. Release prefers a *cohort detour*:
 * while node-local waiters exist and the handoff budget is not exhausted,
 * only the local lock is released and the global lock stays owned by the
 * node — a *deterministic* version of the node affinity HBO gets
 * probabilistically from asymmetric backoff. The FIFO global tier makes
 * the budget a hard bound on node capture whenever another node waits
 * (its ticket is already in line), the property HBO_GT_SD only
 * approximates with anger.
 */
#ifndef NUCALOCK_LOCKS_COHORT_HPP
#define NUCALOCK_LOCKS_COHORT_HPP

#include <vector>

#include "common/logging.hpp"
#include "locks/backoff.hpp"
#include "locks/context.hpp"
#include "locks/params.hpp"
#include "locks/ticket.hpp"
#include "locks/timed.hpp"
#include "obs/probe.hpp"

namespace nucalock::locks {

template <LockContext Ctx>
class CohortLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "COHORT";

    /** Consecutive in-node handoffs before the node must go global. */
    static constexpr std::uint64_t kDefaultBudget = 32;

    explicit CohortLock(Machine& machine,
                        const LockParams& params = LockParams{},
                        int home_node = 0)
        : params_(params), global_(machine, params, home_node)
    {
        const int nodes = machine.topology().num_nodes();
        local_.reserve(static_cast<std::size_t>(nodes));
        // One local lock word per node, homed in that node.
        for (int n = 0; n < nodes; ++n)
            local_.push_back(NodeState{machine.alloc(kFree, n), 0});
    }

    void
    acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, lock_id());
        NodeState& node = local_[static_cast<std::size_t>(ctx.node())];

        // 1. Local lock (TATAS_EXP on the node's word): cheap, node-local.
        spin_lock(ctx, node.word, params_.hbo_local);

        // 2. Global lock, unless our cohort predecessor passed it to us.
        if (node.global_owned) {
            ++node.streak;
            obs::probe(ctx, obs::LockEvent::Acquired, lock_id());
            return;
        }
        global_.acquire(ctx);
        node.global_owned = true;
        node.streak = 0;
        obs::probe(ctx, obs::LockEvent::Acquired, lock_id());
    }

    /**
     * Non-blocking try: take the local word only if free, then either
     * inherit a node-owned global lock (counting against the detour
     * budget, same as acquire) or try the global ticket tier; on a global
     * miss the local word is released again and the call fails.
     */
    bool
    try_acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, lock_id(), 1);
        NodeState& node = local_[static_cast<std::size_t>(ctx.node())];
        if (ctx.cas(node.word, kFree, kLocked) != kFree)
            return false;
        if (node.global_owned) {
            ++node.streak;
            obs::probe(ctx, obs::LockEvent::Acquired, lock_id(), 1);
            return true;
        }
        if (global_.try_acquire(ctx)) {
            node.global_owned = true;
            node.streak = 0;
            obs::probe(ctx, obs::LockEvent::Acquired, lock_id(), 1);
            return true;
        }
        ctx.store(node.word, kFree); // undo the local tier
        return false;
    }

    /**
     * Timed acquisition. A timed waiter must be able to walk away without
     * wedging the node, so it differs from acquire() in two deliberate
     * ways: the local spin never marks the word "contended" (a departed
     * timed waiter's marker could make release() detour the global lock
     * to an empty node and strand every other node), and the global tier
     * is entered by polling try_acquire rather than taking a FIFO ticket
     * (a taken ticket cannot be abandoned). On timeout the local word is
     * re-opened — the abandonment obligation — and false is returned.
     * Overshoot is bounded by one local backoff period plus one global
     * attempt. A timed waiter that wins the local word on a node that
     * already owns the global lock takes the lock even at the deadline
     * edge (inheritance is instantaneous, like MCS's grant race).
     */
    bool
    try_acquire_for(Ctx& ctx, std::uint64_t timeout_ns)
    {
        const std::uint64_t deadline = detail::deadline_after(ctx, timeout_ns);
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, lock_id(), 1);
        NodeState& node = local_[static_cast<std::size_t>(ctx.node())];

        // 1. Local word, deadline-bounded, never marking contended.
        if (!spin_lock_until(ctx, node.word, params_.hbo_local, deadline)) {
            counters_.on_abandon();
            obs::probe(ctx, obs::LockEvent::AbandonStart, lock_id());
            obs::probe(
                ctx, obs::LockEvent::AbandonDone, lock_id(),
                static_cast<std::uint64_t>(obs::AbandonOutcome::Clean));
            return false;
        }

        // 2. Global tier: inherit, or poll the ticket tier's try path.
        if (node.global_owned) {
            ++node.streak;
            obs::probe(ctx, obs::LockEvent::Acquired, lock_id(), 1);
            return true;
        }
        std::uint32_t b = params_.hbo_remote_base;
        while (true) {
            if (global_.try_acquire(ctx)) {
                node.global_owned = true;
                node.streak = 0;
                obs::probe(ctx, obs::LockEvent::Acquired, lock_id(), 1);
                return true;
            }
            if (detail::lock_clock_ns(ctx) >= deadline) {
                // Abandon: re-open the local word we hold, or the node
                // wedges. Nothing else to undo — no ticket was taken.
                counters_.on_abandon();
                obs::probe(ctx, obs::LockEvent::AbandonStart, lock_id());
                ctx.store(node.word, kFree);
                obs::probe(
                    ctx, obs::LockEvent::AbandonDone, lock_id(),
                    static_cast<std::uint64_t>(obs::AbandonOutcome::Clean));
                return false;
            }
            backoff(ctx, &b, 2, params_.hbo_remote_cap, params_.jitter,
                    obs::BackoffClass::Remote);
        }
    }

    /** Host-side abandonment accounting (see locks/timed.hpp). */
    AbandonStats abandon_stats() const { return counters_.snapshot(); }

    void
    release(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::Released, lock_id());
        NodeState& node = local_[static_cast<std::size_t>(ctx.node())];
        NUCA_ASSERT(node.global_owned, "release without acquire");

        // Cohort detour: hand over inside the node while someone is
        // waiting locally and the fairness budget allows it.
        const bool waiters = ctx.load(node.word) == kLockedContended;
        if (waiters && node.streak < kDefaultBudget) {
            ctx.store(node.word, kFree); // local handoff, global stays ours
            return;
        }
        node.global_owned = false;
        node.streak = 0;
        global_.release(ctx);
        ctx.store(node.word, kFree);
    }

    /** Identity for probes and traffic attribution: node 0's local word
     *  (stable for the lock's life). */
    std::uint64_t lock_id() const { return local_[0].word.token(); }

  private:
    static constexpr std::uint64_t kFree = 0;
    static constexpr std::uint64_t kLocked = 1;
    static constexpr std::uint64_t kLockedContended = 2;

    struct NodeState
    {
        Ref word;
        std::uint64_t streak = 0;
        // Written only by the node's current holder (serialized by the
        // local lock), so plain storage is safe.
        bool global_owned = false;

        NodeState(Ref w, std::uint64_t s) : word(w), streak(s) {}
    };

    /**
     * TATAS with exponential backoff on @p word, marking the word
     * "contended" while waiting so the releaser can detect local waiters
     * (the detour condition).
     */
    void
    spin_lock(Ctx& ctx, Ref word, const BackoffParams& bp)
    {
        if (ctx.cas(word, kFree, kLocked) == kFree)
            return;
        std::uint32_t b = bp.base;
        while (true) {
            // Advertise our presence: FREE->locked wins; locked->contended
            // keeps the waiter count visible at release time.
            const std::uint64_t v = ctx.load(word);
            if (v == kFree) {
                if (ctx.cas(word, kFree, kLocked) == kFree) {
                    // Normalize: the contended marker we (or others who
                    // since acquired elsewhere) left must not linger, or a
                    // release with no real waiters would detour the global
                    // lock to nobody and strand the other nodes. A racing
                    // waiter's fresh marker may be overwritten — that only
                    // costs one detour opportunity, never correctness.
                    return;
                }
                continue;
            }
            if (v == kLocked)
                ctx.cas(word, kLocked, kLockedContended);
            backoff(ctx, &b, bp.factor, bp.cap, params_.jitter,
                    obs::BackoffClass::Local);
        }
    }

    /**
     * Deadline-bounded TATAS on @p word for the timed path. Unlike
     * spin_lock it never publishes the contended marker: a marker left by
     * a waiter who then abandons would turn the release-time detour into
     * a handoff to nobody. The cost is that timed waiting is invisible to
     * the detour heuristic; the win is that abandonment needs no undo
     * here at all.
     */
    bool
    spin_lock_until(Ctx& ctx, Ref word, const BackoffParams& bp,
                    std::uint64_t deadline)
    {
        std::uint32_t b = bp.base;
        while (true) {
            if (ctx.cas(word, kFree, kLocked) == kFree)
                return true;
            if (detail::lock_clock_ns(ctx) >= deadline)
                return false;
            backoff(ctx, &b, bp.factor, bp.cap, params_.jitter,
                    obs::BackoffClass::Local);
        }
    }

    LockParams params_;
    TicketLock<Ctx> global_; // FIFO between node winners
    std::vector<NodeState> local_;
    AbandonCounters counters_;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_COHORT_HPP
