/**
 * @file
 * RH lock: the authors' earlier proof-of-concept NUCA-aware lock for two
 * nodes (Radović & Hagersten, SC 2002), reconstructed from this paper's
 * section 3 description — see DESIGN.md section 4 for the reconstruction
 * notes and the invariant it maintains.
 *
 * Each node holds one copy of the lock word (homed in that node). Word
 * values: FREE (globally free), L_FREE (freed with local preference),
 * REMOTE (the lock currently lives in the other node), or a thread id.
 * Invariant: exactly one of the two words differs from REMOTE.
 *
 * The lock is deliberately starvation-vulnerable (as the paper notes);
 * a periodic global release (FREE every Nth) is the only relief valve.
 */
#ifndef NUCALOCK_LOCKS_RH_HPP
#define NUCALOCK_LOCKS_RH_HPP

#include <array>

#include "common/logging.hpp"
#include "locks/backoff.hpp"
#include "locks/context.hpp"
#include "locks/params.hpp"
#include "obs/probe.hpp"

namespace nucalock::locks {

template <LockContext Ctx>
class RhLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "RH";

    explicit RhLock(Machine& machine, const LockParams& params = LockParams{},
                    int home_node = 0)
        : params_(params)
    {
        const int nodes = machine.topology().num_nodes();
        NUCA_ASSERT(nodes <= 2, "the RH lock supports at most two nodes, got ",
                    nodes);
        two_nodes_ = nodes == 2;
        flag_[0] = machine.alloc(kFreeValue, home_node);
        if (two_nodes_)
            flag_[1] = machine.alloc(kRemote, 1);
    }

    void
    acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, flag_[0].token());
        const int n = my_word(ctx);
        const std::uint64_t me = tid_value(ctx);
        std::uint32_t b = params_.hbo_local.base;

        while (true) {
            const std::uint64_t v = ctx.load(flag_[static_cast<std::size_t>(n)]);
            if (v == kFreeValue || v == kLocalFree) {
                if (ctx.cas(flag_[static_cast<std::size_t>(n)], v, me) == v) {
                    obs::probe(ctx, obs::LockEvent::Acquired, flag_[0].token());
                    return; // lock obtained through the local word
                }
                continue;   // raced; re-read immediately
            }
            if (v == kRemote && two_nodes_) {
                if (ctx.cas(flag_[static_cast<std::size_t>(n)], kRemote, me) ==
                    kRemote) {
                    remote_spin(ctx, 1 - n); // we are the node winner
                    obs::probe(ctx, obs::LockEvent::Acquired, flag_[0].token());
                    return;
                }
                continue;
            }
            // Held by (or promised to) a local thread: poll with backoff.
            backoff(ctx, &b, params_.hbo_local.factor, params_.hbo_local.cap,
                    params_.jitter, obs::BackoffClass::Local);
        }
    }

    /**
     * Non-blocking try through the local word only: succeed when it reads
     * FREE or L_FREE and the cas wins. A REMOTE word means the lock lives
     * in the other node; claiming it requires the blocking node-winner
     * migration (remote_spin), so the try fails instead — the try path is
     * deliberately asymmetric, it never starts a cross-node migration.
     */
    bool
    try_acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, flag_[0].token(), 1);
        const int n = my_word(ctx);
        const std::uint64_t v = ctx.load(flag_[static_cast<std::size_t>(n)]);
        if (v != kFreeValue && v != kLocalFree)
            return false;
        if (ctx.cas(flag_[static_cast<std::size_t>(n)], v, tid_value(ctx)) != v)
            return false;
        obs::probe(ctx, obs::LockEvent::Acquired, flag_[0].token(), 1);
        return true;
    }

    void
    release(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::Released, flag_[0].token());
        const int n = my_word(ctx);
        ++release_count_;
        const bool global =
            !two_nodes_ ||
            (params_.rh_global_release_period != 0 &&
             release_count_ % params_.rh_global_release_period == 0);
        ctx.store(flag_[static_cast<std::size_t>(n)],
                  global ? kFreeValue : kLocalFree);
    }

    /** Identity for probes and traffic attribution: the primary word's
     *  token, the id sim/traffic.hpp keys this lock's transactions by. */
    std::uint64_t lock_id() const { return flag_[0].token(); }

  private:
    static constexpr std::uint64_t kFreeValue = 0;
    static constexpr std::uint64_t kLocalFree = 1;
    static constexpr std::uint64_t kRemote = 2;

    static std::uint64_t
    tid_value(Ctx& ctx)
    {
        return static_cast<std::uint64_t>(ctx.thread_id()) + 3;
    }

    int
    my_word(Ctx& ctx) const
    {
        return two_nodes_ ? ctx.node() : 0;
    }

    /**
     * Node-winner loop: our own word already carries our id; spin on the
     * other node's word with a large backoff until we can move the lock
     * over (marking the other word REMOTE).
     */
    void
    remote_spin(Ctx& ctx, int other)
    {
        const Ref word = flag_[static_cast<std::size_t>(other)];
        std::uint32_t b = params_.rh_remote_base;
        std::uint32_t lfree_seen = 0;
        while (true) {
            // Read first so a hopeless cas does not bounce the line.
            const std::uint64_t w = ctx.load(word);
            if (w == kFreeValue) {
                if (ctx.cas(word, kFreeValue, kRemote) == kFreeValue)
                    return; // global release claimed
                continue;
            }
            if (w == kLocalFree) {
                // The other node prefers a neighbor; steal only after
                // showing some patience (this is where RH trades fairness
                // for locality).
                if (++lfree_seen > params_.rh_patience &&
                    ctx.cas(word, kLocalFree, kRemote) == kLocalFree)
                    return;
            } else {
                lfree_seen = 0;
            }
            backoff(ctx, &b, 2, params_.rh_remote_cap, params_.jitter,
                    obs::BackoffClass::Remote);
        }
    }

    std::array<Ref, 2> flag_{};
    LockParams params_;
    bool two_nodes_ = false;
    // Guarded by the lock itself (only the holder releases).
    std::uint64_t release_count_ = 0;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_RH_HPP
