/**
 * @file
 * HBO_GT: HBO with global traffic throttling (paper section 4.2, the
 * emphasized lines of Figure 1).
 *
 * Each node has one `is_spinning` gate word. A thread that must spin on a
 * lock held in a *remote* node first publishes the lock's identity in its
 * own node's gate; other threads in that node poll the gate before even
 * attempting a cas, so normally only one thread per node generates
 * cross-node lock traffic. The winner clears the gate (the paper's "dummy
 * value") as soon as the lock arrives.
 */
#ifndef NUCALOCK_LOCKS_HBO_GT_HPP
#define NUCALOCK_LOCKS_HBO_GT_HPP

#include <vector>

#include "locks/backoff.hpp"
#include "locks/context.hpp"
#include "locks/hbo.hpp"
#include "locks/params.hpp"
#include "obs/probe.hpp"

namespace nucalock::locks {

template <LockContext Ctx>
class HboGtLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "HBO_GT";

    explicit HboGtLock(Machine& machine, const LockParams& params = LockParams{},
                       int home_node = 0)
        : word_(machine.alloc(kHboFree, home_node)), params_(params)
    {
        const int nodes = machine.topology().num_nodes();
        gates_.reserve(static_cast<std::size_t>(nodes));
        for (int n = 0; n < nodes; ++n)
            gates_.push_back(machine.node_gate(n));
        gate_token_ = word_.token();
    }

    void
    acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token());
        // Figure 1 line 5: wait while our node's gate names this lock.
        obs::probe_gate(ctx, my_gate(ctx), gate_token_, word_.token());
        ctx.spin_while_equal(my_gate(ctx), gate_token_);
        const std::uint64_t tmp =
            ctx.cas(word_, kHboFree, hbo_node_token(ctx.node()));
        if (tmp != kHboFree)
            acquire_slowpath(ctx, tmp);
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token());
    }

    bool
    try_acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token(), 1);
        if (ctx.load(my_gate(ctx)) == gate_token_) {
            obs::probe(ctx, obs::LockEvent::GateBlocked, word_.token());
            return false;
        }
        if (ctx.cas(word_, kHboFree, hbo_node_token(ctx.node())) != kHboFree)
            return false;
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token(), 1);
        return true;
    }

    void
    release(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::Released, word_.token());
        ctx.store(word_, kHboFree);
    }

  private:
    Ref
    my_gate(Ctx& ctx) const
    {
        return gates_[static_cast<std::size_t>(ctx.node())];
    }

    void
    acquire_slowpath(Ctx& ctx, std::uint64_t tmp)
    {
        const std::uint64_t mine = hbo_node_token(ctx.node());
        while (true) {
            if (tmp == mine) {
                // Local holder: small backoff (Figure 1 lines 23-35).
                std::uint32_t b = params_.hbo_local.base;
                bool migrated = false;
                while (!migrated) {
                    backoff(ctx, &b, params_.hbo_local.factor,
                            params_.hbo_local.cap, params_.jitter,
                            obs::BackoffClass::Local);
                    tmp = hbo_poll(ctx, word_, mine);
                    if (tmp == kHboFree)
                        return;
                    if (tmp != mine) {
                        backoff(ctx, &b, params_.hbo_local.factor,
                                params_.hbo_local.cap, params_.jitter,
                                obs::BackoffClass::Local);
                        migrated = true;
                    }
                }
            } else {
                // Remote holder: publish the gate and back off hard
                // (Figure 1 lines 37-52).
                std::uint32_t b = params_.hbo_remote_base;
                obs::probe(ctx, obs::LockEvent::GatePublish, word_.token(),
                           static_cast<std::uint64_t>(ctx.node()));
                ctx.store(my_gate(ctx), gate_token_);
                while (true) {
                    backoff(ctx, &b, 2, params_.hbo_remote_cap, params_.jitter,
                            obs::BackoffClass::Remote);
                    tmp = hbo_poll(ctx, word_, mine);
                    if (tmp == kHboFree) {
                        obs::probe(ctx, obs::LockEvent::GateOpen, word_.token(), 1);
                        ctx.store(my_gate(ctx), kGateDummyValue);
                        return;
                    }
                    if (tmp == mine) {
                        obs::probe(ctx, obs::LockEvent::GateOpen, word_.token(), 1);
                        ctx.store(my_gate(ctx), kGateDummyValue);
                        break;
                    }
                }
            }
            // Figure 1 lines 55-60 ("restart"): re-gate, retry, re-dispatch.
            obs::probe_gate(ctx, my_gate(ctx), gate_token_, word_.token());
            ctx.spin_while_equal(my_gate(ctx), gate_token_);
            tmp = hbo_poll(ctx, word_, mine);
            if (tmp == kHboFree)
                return;
        }
    }

    Ref word_;
    std::vector<Ref> gates_;
    std::uint64_t gate_token_ = 0;
    LockParams params_;

  public:
    /** The paper's "dummy value": the gate is open. */
    static constexpr std::uint64_t kGateDummyValue = 0;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_HBO_GT_HPP
