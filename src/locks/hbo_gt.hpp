/**
 * @file
 * HBO_GT: HBO with global traffic throttling (paper section 4.2, the
 * emphasized lines of Figure 1).
 *
 * Each node has one `is_spinning` gate word. A thread that must spin on a
 * lock held in a *remote* node first publishes the lock's identity in its
 * own node's gate; other threads in that node poll the gate before even
 * attempting a cas, so normally only one thread per node generates
 * cross-node lock traffic. The winner clears the gate (the paper's "dummy
 * value") as soon as the lock arrives.
 */
#ifndef NUCALOCK_LOCKS_HBO_GT_HPP
#define NUCALOCK_LOCKS_HBO_GT_HPP

#include <vector>

#include "locks/backoff.hpp"
#include "locks/context.hpp"
#include "locks/hbo.hpp"
#include "locks/params.hpp"
#include "locks/timed.hpp"
#include "obs/probe.hpp"

namespace nucalock::locks {

template <LockContext Ctx>
class HboGtLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "HBO_GT";

    explicit HboGtLock(Machine& machine, const LockParams& params = LockParams{},
                       int home_node = 0)
        : word_(machine.alloc(kHboFree, home_node)), params_(params)
    {
        const int nodes = machine.topology().num_nodes();
        gates_.reserve(static_cast<std::size_t>(nodes));
        for (int n = 0; n < nodes; ++n)
            gates_.push_back(machine.node_gate(n));
        gate_token_ = word_.token();
    }

    void
    acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token());
        // Figure 1 line 5: wait while our node's gate names this lock.
        obs::probe_gate(ctx, my_gate(ctx), gate_token_, word_.token());
        ctx.spin_while_equal(my_gate(ctx), gate_token_);
        const std::uint64_t tmp =
            ctx.cas(word_, kHboFree, hbo_node_token(ctx.node()));
        if (tmp != kHboFree)
            acquire_slowpath(ctx, tmp);
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token());
    }

    bool
    try_acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token(), 1);
        if (ctx.load(my_gate(ctx)) == gate_token_) {
            obs::probe(ctx, obs::LockEvent::GateBlocked, word_.token());
            return false;
        }
        if (ctx.cas(word_, kHboFree, hbo_node_token(ctx.node())) != kHboFree)
            return false;
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token(), 1);
        return true;
    }

    /**
     * Timed acquisition (the HMCS-T discipline applied to gates): every
     * wait — the entry gate, both slowpath backoff loops, the restart
     * gate — is deadline-bounded, and a thread that times out after
     * *closing* its node's gate must re-open it before leaving or the
     * node wedges behind a gate nobody will clear (exactly the window
     * the `spinner` fault preset targets). Timeouts in the local branch
     * or while gate-blocked have nothing to undo: a blocked gate was
     * closed by some other, still-active waiter of this node.
     * Overshoot is bounded by one backoff period (remote cap at worst)
     * plus one poll.
     */
    bool
    try_acquire_for(Ctx& ctx, std::uint64_t timeout_ns)
    {
        const std::uint64_t deadline = detail::deadline_after(ctx, timeout_ns);
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token(), 1);
        const std::uint64_t mine = hbo_node_token(ctx.node());
        if (!gate_wait_until(ctx, deadline))
            return abandon_clean(ctx);
        std::uint64_t tmp = ctx.cas(word_, kHboFree, mine);
        while (tmp != kHboFree) {
            if (tmp == mine) {
                // Local holder: small backoff, gate untouched.
                std::uint32_t b = params_.hbo_local.base;
                bool migrated = false;
                while (!migrated && tmp != kHboFree) {
                    if (detail::lock_clock_ns(ctx) >= deadline)
                        return abandon_clean(ctx);
                    backoff(ctx, &b, params_.hbo_local.factor,
                            params_.hbo_local.cap, params_.jitter,
                            obs::BackoffClass::Local);
                    tmp = hbo_poll(ctx, word_, mine);
                    if (tmp != kHboFree && tmp != mine)
                        migrated = true;
                }
            } else {
                // Remote holder: close the gate — and own the obligation
                // to re-open it on every exit from this loop.
                std::uint32_t b = params_.hbo_remote_base;
                obs::probe(ctx, obs::LockEvent::GatePublish, word_.token(),
                           static_cast<std::uint64_t>(ctx.node()));
                ctx.store(my_gate(ctx), gate_token_);
                while (true) {
                    if (detail::lock_clock_ns(ctx) >= deadline)
                        return abandon_reopening_gate(ctx);
                    backoff(ctx, &b, 2, params_.hbo_remote_cap, params_.jitter,
                            obs::BackoffClass::Remote);
                    tmp = hbo_poll(ctx, word_, mine);
                    if (tmp == kHboFree || tmp == mine) {
                        obs::probe(ctx, obs::LockEvent::GateOpen,
                                   word_.token(), 1);
                        ctx.store(my_gate(ctx), kGateDummyValue);
                        break;
                    }
                }
            }
            if (tmp == kHboFree)
                break;
            // Restart: re-gate (bounded), retry, re-dispatch.
            if (!gate_wait_until(ctx, deadline))
                return abandon_clean(ctx);
            tmp = hbo_poll(ctx, word_, mine);
        }
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token(), 1);
        return true;
    }

    /** Host-side abandonment accounting (see locks/timed.hpp). */
    AbandonStats abandon_stats() const { return counters_.snapshot(); }

    void
    release(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::Released, word_.token());
        ctx.store(word_, kHboFree);
    }

    /** Identity for probes and traffic attribution: the primary word's
     *  token, the id sim/traffic.hpp keys this lock's transactions by. */
    std::uint64_t lock_id() const { return word_.token(); }

  private:
    Ref
    my_gate(Ctx& ctx) const
    {
        return gates_[static_cast<std::size_t>(ctx.node())];
    }

    /** Deadline-bounded version of the entry/restart gate wait. */
    bool
    gate_wait_until(Ctx& ctx, std::uint64_t deadline)
    {
        obs::probe_gate(ctx, my_gate(ctx), gate_token_, word_.token());
        while (ctx.load(my_gate(ctx)) == gate_token_) {
            if (detail::lock_clock_ns(ctx) >= deadline)
                return false;
            ctx.delay(kTimedPollQuantum);
        }
        return true;
    }

    /** Timed-out with no gate closed by us: nothing to undo. */
    bool
    abandon_clean(Ctx& ctx)
    {
        counters_.on_abandon();
        obs::probe(ctx, obs::LockEvent::AbandonStart, word_.token());
        obs::probe(ctx, obs::LockEvent::AbandonDone, word_.token(),
                   static_cast<std::uint64_t>(obs::AbandonOutcome::Clean));
        return false;
    }

    /** Timed-out while our gate closure is published: re-open it. */
    bool
    abandon_reopening_gate(Ctx& ctx)
    {
        counters_.on_abandon();
        obs::probe(ctx, obs::LockEvent::AbandonStart, word_.token());
        obs::probe(ctx, obs::LockEvent::GateOpen, word_.token(), 1);
        ctx.store(my_gate(ctx), kGateDummyValue);
        obs::probe(ctx, obs::LockEvent::AbandonDone, word_.token(),
                   static_cast<std::uint64_t>(obs::AbandonOutcome::Clean));
        return false;
    }

    void
    acquire_slowpath(Ctx& ctx, std::uint64_t tmp)
    {
        const std::uint64_t mine = hbo_node_token(ctx.node());
        while (true) {
            if (tmp == mine) {
                // Local holder: small backoff (Figure 1 lines 23-35).
                std::uint32_t b = params_.hbo_local.base;
                bool migrated = false;
                while (!migrated) {
                    backoff(ctx, &b, params_.hbo_local.factor,
                            params_.hbo_local.cap, params_.jitter,
                            obs::BackoffClass::Local);
                    tmp = hbo_poll(ctx, word_, mine);
                    if (tmp == kHboFree)
                        return;
                    if (tmp != mine) {
                        backoff(ctx, &b, params_.hbo_local.factor,
                                params_.hbo_local.cap, params_.jitter,
                                obs::BackoffClass::Local);
                        migrated = true;
                    }
                }
            } else {
                // Remote holder: publish the gate and back off hard
                // (Figure 1 lines 37-52).
                std::uint32_t b = params_.hbo_remote_base;
                obs::probe(ctx, obs::LockEvent::GatePublish, word_.token(),
                           static_cast<std::uint64_t>(ctx.node()));
                ctx.store(my_gate(ctx), gate_token_);
                while (true) {
                    backoff(ctx, &b, 2, params_.hbo_remote_cap, params_.jitter,
                            obs::BackoffClass::Remote);
                    tmp = hbo_poll(ctx, word_, mine);
                    if (tmp == kHboFree) {
                        obs::probe(ctx, obs::LockEvent::GateOpen, word_.token(), 1);
                        ctx.store(my_gate(ctx), kGateDummyValue);
                        return;
                    }
                    if (tmp == mine) {
                        obs::probe(ctx, obs::LockEvent::GateOpen, word_.token(), 1);
                        ctx.store(my_gate(ctx), kGateDummyValue);
                        break;
                    }
                }
            }
            // Figure 1 lines 55-60 ("restart"): re-gate, retry, re-dispatch.
            obs::probe_gate(ctx, my_gate(ctx), gate_token_, word_.token());
            ctx.spin_while_equal(my_gate(ctx), gate_token_);
            tmp = hbo_poll(ctx, word_, mine);
            if (tmp == kHboFree)
                return;
        }
    }

    Ref word_;
    std::vector<Ref> gates_;
    std::uint64_t gate_token_ = 0;
    LockParams params_;
    AbandonCounters counters_;

  public:
    /** The paper's "dummy value": the gate is open. */
    static constexpr std::uint64_t kGateDummyValue = 0;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_HBO_GT_HPP
