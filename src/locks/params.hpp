/**
 * @file
 * Tunable parameters for all lock algorithms.
 *
 * The paper tunes backoff constants "by trial and error for each individual
 * architecture"; the defaults here are tuned for the simulated WildFire
 * latency model (4 ns per delay iteration). All values are in empty
 * delay-loop iterations, exactly as in the paper's pseudo-code.
 */
#ifndef NUCALOCK_LOCKS_PARAMS_HPP
#define NUCALOCK_LOCKS_PARAMS_HPP

#include <cstdint>

namespace nucalock::locks {

/** Exponential backoff constants (base/factor/cap of Fig. 1's backoff()). */
struct BackoffParams
{
    std::uint32_t base = 64;
    std::uint32_t factor = 2;
    std::uint32_t cap = 4096;
};

/** All knobs in one place so benches can sweep them. */
struct LockParams
{
    /** TATAS_EXP backoff (Ethernet-style). */
    BackoffParams tatas{64, 2, 8192};

    /** HBO backoff when the lock is held in the local node. */
    BackoffParams hbo_local{64, 2, 1024};
    /** HBO backoff when the lock is held in a remote node. */
    std::uint32_t hbo_remote_base = 768;
    std::uint32_t hbo_remote_cap = 8192;
    /** HBO_HIER backoff when the holder shares the requester's chip. */
    BackoffParams hier_chip{32, 2, 512};

    /** HBO_GT_SD: remote failures before a node winner gets angry. */
    std::uint32_t get_angry_limit = 16;

    /** RH: remote (node-winner) backoff. */
    std::uint32_t rh_remote_base = 256;
    std::uint32_t rh_remote_cap = 8192;
    /** RH: consecutive L_FREE sightings tolerated before stealing a local
     *  release (local waiters get a head start on locally-freed locks). */
    std::uint32_t rh_patience = 1;
    /** RH: every Nth release is global (FREE) instead of local (L_FREE). */
    std::uint32_t rh_global_release_period = 8;

    /** Ticket lock: delay per waiter ahead (proportional backoff). */
    std::uint32_t ticket_delay_per_waiter = 96;

    /**
     * Add +/-25% deterministic jitter to backoff delays. On by default:
     * real machines dephase spinners naturally; a deterministic simulator
     * needs explicit jitter to avoid artificial phase lock.
     */
    bool jitter = true;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_PARAMS_HPP
