/**
 * @file
 * Tunable parameters for all lock algorithms.
 *
 * The paper tunes backoff constants "by trial and error for each individual
 * architecture"; the defaults here are tuned for the simulated WildFire
 * latency model (4 ns per delay iteration). All values are in empty
 * delay-loop iterations, exactly as in the paper's pseudo-code.
 */
#ifndef NUCALOCK_LOCKS_PARAMS_HPP
#define NUCALOCK_LOCKS_PARAMS_HPP

#include <cstdint>

namespace nucalock::locks {

/** Exponential backoff constants (base/factor/cap of Fig. 1's backoff()). */
struct BackoffParams
{
    std::uint32_t base = 64;
    std::uint32_t factor = 2;
    std::uint32_t cap = 4096;
};

/**
 * AdaptiveLock policy knobs (locks/adaptive_policy.hpp). The policy samples
 * epoch-bucketed counters on the holder's side and switches gears with
 * hysteresis (distinct up/down thresholds) plus a post-switch cooldown, so
 * a borderline workload does not oscillate.
 */
struct AdaptiveParams
{
    /** Acquisitions per policy epoch (the holder-side sampling window). */
    std::uint32_t epoch = 16;
    /** Contended acquisitions in an epoch at/above which the TATAS gear
     *  escalates (to HBO_GT or the queue, depending on traffic shape). */
    std::uint32_t spin_up = 12;
    /** Contended acquisitions in an epoch at/below which a higher gear
     *  counts the epoch as quiet and may relax back toward TATAS. */
    std::uint32_t spin_down = 4;
    /** Remote-handover percentage at/above which epoch contention is
     *  classified as cross-node (prefer the HBO_GT gear). Deliberately
     *  low: NUCA's natural local bias suppresses remote handovers even
     *  under heavy cross-node contention (the paper's own observation),
     *  so single-node contention reads ~0% while 2-node TATAS contention
     *  reads ~15%. */
    std::uint32_t remote_frac_pct = 10;
    /** Global-link utilisation percentage at/above which the interconnect
     *  counts as saturated (simulator backend only; prefer HBO_GT). */
    std::uint32_t link_util_pct = 40;
    /** Abandonments since the last degradation-relevant switch that count
     *  as a timeout storm and demote to the queue gear immediately. */
    std::uint32_t storm_abandons = 3;
    /** Consecutive quiet epochs a degraded lock must see before it
     *  promotes back out of the queue gear. */
    std::uint32_t quiet_epochs = 2;
    /** Acquisitions after a voluntary switch during which further
     *  voluntary switches are suppressed (degradation bypasses this). */
    std::uint32_t cooldown_acquires = 32;
};

/** All knobs in one place so benches can sweep them. */
struct LockParams
{
    /** TATAS_EXP backoff (Ethernet-style). */
    BackoffParams tatas{64, 2, 8192};

    /** HBO backoff when the lock is held in the local node. */
    BackoffParams hbo_local{64, 2, 1024};
    /** HBO backoff when the lock is held in a remote node. */
    std::uint32_t hbo_remote_base = 768;
    std::uint32_t hbo_remote_cap = 8192;
    /** HBO_HIER backoff when the holder shares the requester's chip. */
    BackoffParams hier_chip{32, 2, 512};

    /** HBO_GT_SD: remote failures before a node winner gets angry. */
    std::uint32_t get_angry_limit = 16;

    /** RH: remote (node-winner) backoff. */
    std::uint32_t rh_remote_base = 256;
    std::uint32_t rh_remote_cap = 8192;
    /** RH: consecutive L_FREE sightings tolerated before stealing a local
     *  release (local waiters get a head start on locally-freed locks). */
    std::uint32_t rh_patience = 1;
    /** RH: every Nth release is global (FREE) instead of local (L_FREE). */
    std::uint32_t rh_global_release_period = 8;

    /** Ticket lock: delay per waiter ahead (proportional backoff). */
    std::uint32_t ticket_delay_per_waiter = 96;

    /** REACTIVE: consecutive slow (contended) acquires before switching to
     *  queue mode (reactive.hpp). */
    std::uint64_t reactive_slow_threshold = 4;
    /** REACTIVE: consecutive fast acquires in queue mode before switching
     *  back to spin mode. */
    std::uint64_t reactive_fast_threshold = 16;

    /** ADAPTIVE gear-switch policy (locks/adaptive_policy.hpp). */
    AdaptiveParams adaptive;

    /**
     * Add +/-25% deterministic jitter to backoff delays. On by default:
     * real machines dephase spinners naturally; a deterministic simulator
     * needs explicit jitter to avoid artificial phase lock.
     */
    bool jitter = true;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_PARAMS_HPP
