/**
 * @file
 * CLH_TRY: a CLH queue lock with timeout (in the spirit of Scott &
 * Scherer, PPoPP 2001, and Scott, PODC 2002 — the paper's references
 * [22, 23], its own pointer for fixing queue locks' multiprogramming
 * fragility).
 *
 * A waiter that gives up marks its own node with a *redirect* to its
 * predecessor; its successor follows the redirect chain and inherits the
 * predecessor, so departures never break the queue. The published
 * protocols need several handshake states because nodes are recycled; we
 * allocate a fresh node per acquisition from the machine's arena (nothing
 * is ever freed), which removes reclamation races entirely at the cost of
 * one word per acquisition — a deliberate simplification, documented in
 * docs/locks.md.
 *
 * Node word values: kAvailable (grant), kWaiting, or kPtrBase + token
 * (redirect to the node with that token).
 *
 * Checker view (sim/scheduler.hpp): the timeout path makes this the most
 * schedule-sensitive lock in the suite — a waiter's redirect store races
 * with its successor's chain-following loads, and the bounded checker
 * (check/) explores both orders. The bounded-abort caveat: try_acquire
 * still executes the enqueue swap (a visible decision point) before
 * giving up, so a "failed" try is not a no-op in the schedule — replayed
 * traces include those aborted enqueues.
 */
#ifndef NUCALOCK_LOCKS_CLH_TRY_HPP
#define NUCALOCK_LOCKS_CLH_TRY_HPP

#include <vector>

#include "common/logging.hpp"
#include "locks/context.hpp"
#include "locks/instrumented.hpp" // detail::lock_clock_ns
#include "locks/params.hpp"
#include "locks/timed.hpp"
#include "obs/probe.hpp"

namespace nucalock::locks {

template <LockContext Ctx>
class ClhTryLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "CLH_TRY";

    explicit ClhTryLock(Machine& machine, const LockParams& = LockParams{},
                        int home_node = 0)
        : machine_(&machine),
          held_(static_cast<std::size_t>(machine.max_threads()))
    {
        const Ref dummy = machine.alloc(kAvailable, home_node);
        tail_ = machine.alloc(dummy.token(), home_node);
    }

    void
    acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, tail_.token());
        const bool ok =
            acquire_deadline(ctx, /*has_deadline=*/false, 0, /*timed=*/false);
        NUCA_ASSERT(ok, "untimed acquire cannot fail");
        obs::probe(ctx, obs::LockEvent::Acquired, tail_.token());
    }

    /**
     * Acquire with a bounded wait.
     * @return true when the lock is held (release() required), false when
     *         the wait timed out (the queue slot was abandoned safely).
     */
    bool
    try_acquire_for(Ctx& ctx, std::uint64_t timeout_ns)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, tail_.token(), 1);
        if (!acquire_deadline(ctx, /*has_deadline=*/true,
                              detail::deadline_after(ctx, timeout_ns),
                              /*timed=*/true))
            return false;
        obs::probe(ctx, obs::LockEvent::Acquired, tail_.token(), 1);
        return true;
    }

    /**
     * Bounded-abort try: enqueue, poll the predecessor once (following any
     * redirect chain), and abandon the slot via a redirect on a miss. Not
     * wait-free — enqueueing is mandatory in CLH — but the abort path is a
     * constant number of memory operations.
     */
    bool
    try_acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, tail_.token(), 1);
        if (!acquire_deadline(ctx, /*has_deadline=*/true,
                              detail::lock_clock_ns(ctx), /*timed=*/false))
            return false;
        obs::probe(ctx, obs::LockEvent::Acquired, tail_.token(), 1);
        return true;
    }

    void
    release(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::Released, tail_.token());
        const Ref mine = held_[static_cast<std::size_t>(ctx.thread_id())];
        NUCA_ASSERT(mine.valid(), "release without acquire");
        held_[static_cast<std::size_t>(ctx.thread_id())] = Ref{};
        ctx.store(mine, kAvailable);
    }

    /** Host-side abandonment accounting (see locks/timed.hpp). "Parked"
     *  counts redirect markers left behind (timed and bounded-abort
     *  departures); "reclaims" counts redirects consumed by a successor's
     *  chain walk. */
    AbandonStats abandon_stats() const { return counters_.snapshot(); }

    /** Identity for probes and traffic attribution: the primary word's
     *  token, the id sim/traffic.hpp keys this lock's transactions by. */
    std::uint64_t lock_id() const { return tail_.token(); }

  private:
    static constexpr std::uint64_t kAvailable = 1;
    static constexpr std::uint64_t kWaiting = 2;
    /** Values >= kPtrBase encode a redirect to node (value - kPtrBase). */
    static constexpr std::uint64_t kPtrBase = 16;

    bool
    acquire_deadline(Ctx& ctx, bool has_deadline, std::uint64_t deadline,
                     bool timed)
    {
        // Fresh node every time: no recycling, no reclamation races.
        const Ref mine = machine_->alloc(kWaiting, ctx.node());
        Ref pred = Machine::ref_from_token(ctx.swap(tail_, mine.token()));

        while (true) {
            const std::uint64_t v = ctx.load(pred);
            if (v == kAvailable) {
                held_[static_cast<std::size_t>(ctx.thread_id())] = mine;
                return true;
            }
            if (v >= kPtrBase) {
                // Predecessor abandoned its slot; inherit its predecessor.
                counters_.on_reclaim();
                obs::probe(ctx, obs::LockEvent::QueueReclaim, tail_.token(),
                           static_cast<std::uint64_t>(
                               obs::ReclaimKind::Unlinked));
                pred = Machine::ref_from_token(v - kPtrBase);
                continue;
            }
            if (has_deadline && detail::lock_clock_ns(ctx) >= deadline) {
                // Leave: redirect our successor (present or future) past
                // us. A grant that lands in pred afterwards is picked up
                // by whoever inherits pred through this redirect.
                if (timed) {
                    counters_.on_abandon();
                    obs::probe(ctx, obs::LockEvent::AbandonStart,
                               tail_.token());
                }
                counters_.on_park();
                ctx.store(mine, kPtrBase + pred.token());
                if (timed)
                    obs::probe(ctx, obs::LockEvent::AbandonDone, tail_.token(),
                               static_cast<std::uint64_t>(
                                   obs::AbandonOutcome::Parked));
                return false;
            }
            if (has_deadline)
                ctx.delay(kTimedPollQuantum); // bounded poll for the deadline
            else
                ctx.spin_while_equal(pred, kWaiting);
        }
    }

    Machine* machine_;
    Ref tail_;
    std::vector<Ref> held_; // node to mark available at release, per thread
    AbandonCounters counters_;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_CLH_TRY_HPP
