/**
 * @file
 * REACTIVE: a simplified reactive lock in the spirit of Lim & Agarwal
 * (ASPLOS-VI), which the paper's related-work section positions against
 * HBO: spin with TATAS_EXP at low contention, fall back to an MCS queue at
 * high contention.
 *
 * Mode-switch protocols in the original require consensus objects; this
 * implementation uses a simpler always-safe composition: mutual exclusion
 * is *always* provided by the TATAS word, and "queue mode" merely routes
 * arrivals through an MCS queue in front of it, so at most one queued
 * thread (plus any latecomer that sampled the mode just before a switch)
 * contends for the word at a time. Mode decisions are heuristic and can be
 * stale without affecting correctness.
 */
#ifndef NUCALOCK_LOCKS_REACTIVE_HPP
#define NUCALOCK_LOCKS_REACTIVE_HPP

#include "locks/backoff.hpp"
#include "locks/context.hpp"
#include "locks/mcs.hpp"
#include "locks/params.hpp"
#include "locks/timed.hpp"
#include "obs/probe.hpp"

namespace nucalock::locks {

template <LockContext Ctx>
class ReactiveLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "REACTIVE";

    // Mode-switch thresholds live in LockParams (reactive_slow_threshold /
    // reactive_fast_threshold) so sensitivity sweeps can tune them from
    // the CLI alongside the backoff constants.

    explicit ReactiveLock(Machine& machine,
                          const LockParams& params = LockParams{},
                          int home_node = 0)
        : word_(machine.alloc(0, home_node)),
          mode_(machine.alloc(kSpinMode, home_node)),
          queue_(machine, params, home_node), params_(params)
    {
    }

    void
    acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token());
        acquire_impl(ctx);
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token());
    }

    bool
    try_acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token(), 1);
        if (ctx.tas(word_) != 0)
            return false;
        queued_ = false;
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token(), 1);
        return true;
    }

    /**
     * Timed acquisition. Spin mode is a deadline-bounded TATAS_EXP on the
     * word; queue mode bounds the MCS wait (the queue's own abandonment
     * protocol) and then the word take — a timeout after winning queue
     * headship hands the grant to the successor before abandoning, so the
     * queue keeps draining behind a wedged (or dead) word holder. Timed
     * acquires do not participate in mode adaptation: the streak counter
     * is driven by the plain acquire path's cost signal only.
     */
    bool
    try_acquire_for(Ctx& ctx, std::uint64_t timeout_ns)
    {
        const std::uint64_t deadline = detail::deadline_after(ctx, timeout_ns);
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token(), 1);
        if (ctx.load(mode_) == kSpinMode) {
            if (!spin_acquire_until(ctx, deadline))
                return abandon(ctx);
            queued_ = false;
            obs::probe(ctx, obs::LockEvent::Acquired, word_.token(), 1);
            return true;
        }
        const std::uint64_t now = detail::lock_clock_ns(ctx);
        if (!queue_.try_acquire_for(ctx, deadline > now ? deadline - now : 0)) {
            // The queue accounted its own abandonment (its counters, its
            // lock id); close this lock's attempt without double-counting.
            obs::probe(ctx, obs::LockEvent::AbandonStart, word_.token());
            obs::probe(ctx, obs::LockEvent::AbandonDone, word_.token(),
                       static_cast<std::uint64_t>(obs::AbandonOutcome::Clean));
            return false;
        }
        if (!spin_acquire_until(ctx, deadline)) {
            queue_.release(ctx);
            return abandon(ctx);
        }
        queued_ = true;
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token(), 1);
        return true;
    }

    /** Host-side abandonment accounting: this lock's own word-take
     *  timeouts plus the embedded queue's (see locks/timed.hpp). */
    AbandonStats
    abandon_stats() const
    {
        AbandonStats s = counters_.snapshot();
        const AbandonStats q = queue_.abandon_stats();
        s.abandons += q.abandons;
        s.parked += q.parked;
        s.grant_races += q.grant_races;
        s.reclaims += q.reclaims;
        s.rejoins += q.rejoins;
        s.unparks += q.unparks;
        return s;
    }

    void
    release(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::Released, word_.token());
        const bool was_queued = queued_;
        ctx.store(word_, 0);
        if (was_queued)
            queue_.release(ctx);
    }

    /** Identity for probes and traffic attribution: the primary word's
     *  token, the id sim/traffic.hpp keys this lock's transactions by. */
    std::uint64_t lock_id() const { return word_.token(); }

  private:
    void
    acquire_impl(Ctx& ctx)
    {
        if (ctx.load(mode_) == kSpinMode) {
            const std::uint64_t attempts = spin_acquire(ctx);
            // Holder-side adaptation: repeated contended acquires flip the
            // lock into queue mode (we hold the lock, so the write is safe).
            streak_ = attempts > 1 ? streak_ + 1 : 0;
            if (streak_ >= params_.reactive_slow_threshold) {
                ctx.store(mode_, kQueueMode);
                streak_ = 0;
            }
            queued_ = false;
            return;
        }

        // Queue mode: wait in the MCS queue, then take the word with an
        // eager spin (only the queue head and stale spin-mode stragglers
        // compete for it).
        const bool waited = queue_.acquire_reporting(ctx);
        (void)spin_acquire(ctx);
        // Flip back once arrivals repeatedly find the queue empty — the
        // contention that justified queueing is gone.
        streak_ = waited ? 0 : streak_ + 1;
        if (streak_ >= params_.reactive_fast_threshold) {
            ctx.store(mode_, kSpinMode);
            streak_ = 0;
        }
        queued_ = true;
    }

    static constexpr std::uint64_t kSpinMode = 0;
    static constexpr std::uint64_t kQueueMode = 1;

    /** TATAS_EXP on the word; returns the number of tas attempts. */
    std::uint64_t
    spin_acquire(Ctx& ctx)
    {
        std::uint64_t attempts = 1;
        if (ctx.tas(word_) == 0)
            return attempts;
        std::uint32_t b = params_.tatas.base;
        while (true) {
            backoff(ctx, &b, params_.tatas.factor, params_.tatas.cap,
                    params_.jitter, obs::BackoffClass::Generic);
            if (ctx.load(word_) != 0)
                continue;
            ++attempts;
            if (ctx.tas(word_) == 0)
                return attempts;
        }
    }

    /** Deadline-bounded TATAS_EXP on the word. Overshoot is bounded by
     *  one capped backoff plus one poll. */
    bool
    spin_acquire_until(Ctx& ctx, std::uint64_t deadline)
    {
        if (ctx.tas(word_) == 0)
            return true;
        std::uint32_t b = params_.tatas.base;
        while (true) {
            if (detail::lock_clock_ns(ctx) >= deadline)
                return false;
            backoff(ctx, &b, params_.tatas.factor, params_.tatas.cap,
                    params_.jitter, obs::BackoffClass::Generic);
            if (ctx.load(word_) != 0)
                continue;
            if (ctx.tas(word_) == 0)
                return true;
        }
    }

    /** Timed out with nothing left behind: account and probe. */
    bool
    abandon(Ctx& ctx)
    {
        counters_.on_abandon();
        obs::probe(ctx, obs::LockEvent::AbandonStart, word_.token());
        obs::probe(ctx, obs::LockEvent::AbandonDone, word_.token(),
                   static_cast<std::uint64_t>(obs::AbandonOutcome::Clean));
        return false;
    }

    Ref word_;
    Ref mode_;
    McsLock<Ctx> queue_;
    LockParams params_;
    AbandonCounters counters_;
    // Holder-only adaptation state, protected by the lock itself.
    std::uint64_t streak_ = 0;
    bool queued_ = false;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_REACTIVE_HPP
