/**
 * @file
 * REACTIVE: a simplified reactive lock in the spirit of Lim & Agarwal
 * (ASPLOS-VI), which the paper's related-work section positions against
 * HBO: spin with TATAS_EXP at low contention, fall back to an MCS queue at
 * high contention.
 *
 * Mode-switch protocols in the original require consensus objects; this
 * implementation uses a simpler always-safe composition: mutual exclusion
 * is *always* provided by the TATAS word, and "queue mode" merely routes
 * arrivals through an MCS queue in front of it, so at most one queued
 * thread (plus any latecomer that sampled the mode just before a switch)
 * contends for the word at a time. Mode decisions are heuristic and can be
 * stale without affecting correctness.
 */
#ifndef NUCALOCK_LOCKS_REACTIVE_HPP
#define NUCALOCK_LOCKS_REACTIVE_HPP

#include "locks/backoff.hpp"
#include "locks/context.hpp"
#include "locks/mcs.hpp"
#include "locks/params.hpp"
#include "obs/probe.hpp"

namespace nucalock::locks {

template <LockContext Ctx>
class ReactiveLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "REACTIVE";

    /** Consecutive slow (contended) acquires before switching to queueing. */
    static constexpr std::uint64_t kSlowThreshold = 4;
    /** Consecutive fast acquires in queue mode before switching back. */
    static constexpr std::uint64_t kFastThreshold = 16;

    explicit ReactiveLock(Machine& machine,
                          const LockParams& params = LockParams{},
                          int home_node = 0)
        : word_(machine.alloc(0, home_node)),
          mode_(machine.alloc(kSpinMode, home_node)),
          queue_(machine, params, home_node), params_(params)
    {
    }

    void
    acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token());
        acquire_impl(ctx);
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token());
    }

    bool
    try_acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, word_.token(), 1);
        if (ctx.tas(word_) != 0)
            return false;
        queued_ = false;
        obs::probe(ctx, obs::LockEvent::Acquired, word_.token(), 1);
        return true;
    }

    void
    release(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::Released, word_.token());
        const bool was_queued = queued_;
        ctx.store(word_, 0);
        if (was_queued)
            queue_.release(ctx);
    }

  private:
    void
    acquire_impl(Ctx& ctx)
    {
        if (ctx.load(mode_) == kSpinMode) {
            const std::uint64_t attempts = spin_acquire(ctx);
            // Holder-side adaptation: repeated contended acquires flip the
            // lock into queue mode (we hold the lock, so the write is safe).
            streak_ = attempts > 1 ? streak_ + 1 : 0;
            if (streak_ >= kSlowThreshold) {
                ctx.store(mode_, kQueueMode);
                streak_ = 0;
            }
            queued_ = false;
            return;
        }

        // Queue mode: wait in the MCS queue, then take the word with an
        // eager spin (only the queue head and stale spin-mode stragglers
        // compete for it).
        const bool waited = queue_.acquire_reporting(ctx);
        (void)spin_acquire(ctx);
        // Flip back once arrivals repeatedly find the queue empty — the
        // contention that justified queueing is gone.
        streak_ = waited ? 0 : streak_ + 1;
        if (streak_ >= kFastThreshold) {
            ctx.store(mode_, kSpinMode);
            streak_ = 0;
        }
        queued_ = true;
    }

    static constexpr std::uint64_t kSpinMode = 0;
    static constexpr std::uint64_t kQueueMode = 1;

    /** TATAS_EXP on the word; returns the number of tas attempts. */
    std::uint64_t
    spin_acquire(Ctx& ctx)
    {
        std::uint64_t attempts = 1;
        if (ctx.tas(word_) == 0)
            return attempts;
        std::uint32_t b = params_.tatas.base;
        while (true) {
            backoff(ctx, &b, params_.tatas.factor, params_.tatas.cap,
                    params_.jitter, obs::BackoffClass::Generic);
            if (ctx.load(word_) != 0)
                continue;
            ++attempts;
            if (ctx.tas(word_) == 0)
                return attempts;
        }
    }

    Ref word_;
    Ref mode_;
    McsLock<Ctx> queue_;
    LockParams params_;
    // Holder-only adaptation state, protected by the lock itself.
    std::uint64_t streak_ = 0;
    bool queued_ = false;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_REACTIVE_HPP
