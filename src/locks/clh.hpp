/**
 * @file
 * CLH queue lock (Craig; Landin and Hagersten).
 *
 * A waiter enqueues its own node (value BUSY) with a swap on the tail and
 * spins on its *predecessor's* node until that goes FREE; releasing sets
 * the own node FREE and recycles the predecessor's node for the next
 * acquire. One word per waiter, implicit queue, FIFO order.
 */
#ifndef NUCALOCK_LOCKS_CLH_HPP
#define NUCALOCK_LOCKS_CLH_HPP

#include <vector>

#include "common/logging.hpp"
#include "locks/context.hpp"
#include "locks/params.hpp"
#include "obs/probe.hpp"

namespace nucalock::locks {

template <LockContext Ctx>
class ClhLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "CLH";

    explicit ClhLock(Machine& machine, const LockParams& = LockParams{},
                     int home_node = 0)
        : machine_(&machine),
          slots_(static_cast<std::size_t>(machine.max_threads()))
    {
        const Ref dummy = machine.alloc(kFree, home_node);
        tail_ = machine.alloc(dummy.token(), home_node);
    }

    void
    acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, tail_.token());
        Slot& slot = my_slot(ctx);
        ctx.store(slot.mine, kBusy);
        const std::uint64_t pred_token = ctx.swap(tail_, slot.mine.token());
        slot.pred = Machine::ref_from_token(pred_token);
        ctx.spin_while_equal(slot.pred, kBusy);
        obs::probe(ctx, obs::LockEvent::Acquired, tail_.token());
    }

    /**
     * Opportunistic try: succeed only when the queue looks empty (the tail
     * node is FREE). Winning the tail cas commits us to the queue, and
     * between the FREE check and the cas the tail node can be recycled and
     * re-enqueued BUSY by another thread (ABA on the tail token); in that
     * rare window this degrades to a bounded wait on the predecessor — the
     * successor already spins on our node, so aborting is impossible. CLH
     * therefore offers bounded-abort try semantics, not a wait-free try.
     */
    bool
    try_acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, tail_.token(), 1);
        Slot& slot = my_slot(ctx);
        const std::uint64_t tail_token = ctx.load(tail_);
        const Ref pred = Machine::ref_from_token(tail_token);
        if (ctx.load(pred) != kFree)
            return false; // queue non-empty or handover in flight
        ctx.store(slot.mine, kBusy);
        if (ctx.cas(tail_, tail_token, slot.mine.token()) != tail_token)
            return false; // someone enqueued first; we never joined
        slot.pred = pred;
        ctx.spin_while_equal(slot.pred, kBusy); // almost always immediate
        obs::probe(ctx, obs::LockEvent::Acquired, tail_.token(), 1);
        return true;
    }

    void
    release(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::Released, tail_.token());
        Slot& slot = slots_[static_cast<std::size_t>(ctx.thread_id())];
        ctx.store(slot.mine, kFree);
        // Standard CLH recycling: the predecessor's node is now ours.
        slot.mine = slot.pred;
    }

    /** Identity for probes and traffic attribution: the primary word's
     *  token, the id sim/traffic.hpp keys this lock's transactions by. */
    std::uint64_t lock_id() const { return tail_.token(); }

  private:
    static constexpr std::uint64_t kFree = 0;
    static constexpr std::uint64_t kBusy = 1;

    struct Slot
    {
        Ref mine; // node we will enqueue next
        Ref pred; // node we acquired through (becomes `mine` on release)
    };

    Slot&
    my_slot(Ctx& ctx)
    {
        Slot& slot = slots_[static_cast<std::size_t>(ctx.thread_id())];
        if (!slot.mine.valid())
            slot.mine = machine_->alloc(kFree, ctx.node());
        return slot;
    }

    Machine* machine_;
    Ref tail_; // token of the most recently enqueued node
    std::vector<Slot> slots_;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_CLH_HPP
