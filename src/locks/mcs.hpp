/**
 * @file
 * MCS queue lock (Mellor-Crummey and Scott, 1991) with MCS-TP-style
 * timed abandonment.
 *
 * Each waiter spins on its own flag, allocated in its node (local-memory
 * spinning), and the releaser hands the lock to its queue successor: FIFO
 * order, one transaction per handover, but no node affinity — the successor
 * is whoever arrived next, wherever it lives.
 *
 * Queue nodes are kept per (lock, thread) and allocated lazily in the
 * thread's node, which is the standard implementation strategy and matches
 * what the machine-level concept can portably promise.
 *
 * Timeout protocol (try_acquire_for): a timed waiter never spins past its
 * deadline. The per-node flag word becomes a five-state machine:
 *
 *     kGranted(0)    the handover flag — owner may enter the CS
 *     kWaiting(1)    in queue, owner polling
 *     kAbandoned(2)  owner left at its deadline; node parked in queue
 *     kReclaiming(3) a releaser claimed the node and is unlinking it
 *     kReclaimed(4)  unlink complete; owner may reuse the node
 *
 * Abandonment is a CAS(kWaiting -> kAbandoned): if it fails the handover
 * won the race and the lock is accepted past the deadline (a bounded
 * overshoot the caller observes as success). The *releaser* reclaims:
 * its handover walk CASes each abandoned successor kAbandoned ->
 * kReclaiming, unlinks it (re-pointing the walk, or closing the queue via
 * the tail CAS), and only then publishes kReclaimed — so an owner can
 * never re-enqueue a node that a releaser still references. An owner
 * returning to a parked node either rejoins its old queue position
 * (CAS kAbandoned -> kWaiting, resolving atomically against the
 * releaser's claim), waits out a reclaim in flight, or reuses a
 * kReclaimed node as fresh. Nodes are static per (lock, thread): no
 * allocation on any path, timed or not.
 *
 * Checker view (sim/scheduler.hpp): the enqueue swap and the
 * successor-link store are separate decision points, so a schedule *can*
 * run the releaser between them — the releaser then spins on the
 * successor link, and the checker relies on the waiter's pending store
 * being dependent on that spin to wake it (the classic MCS handover
 * window; see sched_ops_dependent). Waiters spinning on their own flag
 * are parked, not busy — deadlock in an explored schedule is reported as
 * a StopReason verdict, not a hang. Timed waiters poll (load + delay)
 * instead, so they stay live and can abandon under any schedule.
 */
#ifndef NUCALOCK_LOCKS_MCS_HPP
#define NUCALOCK_LOCKS_MCS_HPP

#include <vector>

#include "common/logging.hpp"
#include "locks/context.hpp"
#include "locks/params.hpp"
#include "locks/timed.hpp"
#include "obs/probe.hpp"

namespace nucalock::locks {

template <LockContext Ctx>
class McsLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "MCS";

    explicit McsLock(Machine& machine, const LockParams& = LockParams{},
                     int home_node = 0)
        : machine_(&machine),
          tail_(machine.alloc(kEmpty, home_node)),
          qnodes_(static_cast<std::size_t>(machine.max_threads()))
    {
    }

    void
    acquire(Ctx& ctx)
    {
        (void)acquire_reporting(ctx);
    }

    /**
     * Acquire and report whether we had to queue behind a predecessor
     * (used by ReactiveLock's contention estimator).
     */
    bool
    acquire_reporting(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, tail_.token());
        QNode& q = qnode(ctx);
        if (q.parked) {
            // Our node is still in the queue from a past abandonment.
            if (resume_parked(ctx, q)) {
                // Rejoined the old position; wait out the handover.
                ctx.spin_while_equal(q.locked, kWaiting);
                obs::probe(ctx, obs::LockEvent::Acquired, tail_.token());
                return true;
            }
            // Node reclaimed and unparked — fall through to a fresh enqueue.
        }
        ctx.store(q.next, kEmpty);
        const std::uint64_t pred = ctx.swap(tail_, id_of(ctx));
        if (pred == kEmpty) {
            obs::probe(ctx, obs::LockEvent::Acquired, tail_.token());
            return false; // lock was free
        }
        // Prepare our flag before making ourselves visible to the
        // predecessor, then link in and spin locally.
        ctx.store(q.locked, kWaiting);
        QNode& pq = qnode_of(pred);
        ctx.store(pq.next, id_of(ctx));
        ctx.spin_while_equal(q.locked, kWaiting);
        obs::probe(ctx, obs::LockEvent::Acquired, tail_.token());
        return true;
    }

    bool
    try_acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, tail_.token(), 1);
        QNode& q = qnode(ctx);
        if (q.parked) {
            // Instant-attempt semantics: only an already-reclaimed node
            // can be reused without waiting.
            if (ctx.load(q.locked) != kReclaimed)
                return false;
            unpark(ctx, q);
        }
        ctx.store(q.next, kEmpty);
        if (ctx.cas(tail_, kEmpty, id_of(ctx)) != kEmpty)
            return false;
        obs::probe(ctx, obs::LockEvent::Acquired, tail_.token(), 1);
        return true;
    }

    /**
     * Timed acquisition with in-queue abandonment. Returns false when the
     * deadline passes first; the waiter is then *out* — it never spins on
     * the lock again until the next call — though its node may stay
     * parked in the queue until a releaser reclaims it. Overshoot on the
     * success path is bounded by one poll quantum plus one handover (the
     * grant-race accept); there is no unbounded in-queue spin.
     */
    bool
    try_acquire_for(Ctx& ctx, std::uint64_t timeout_ns)
    {
        const std::uint64_t deadline = detail::deadline_after(ctx, timeout_ns);
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, tail_.token(), 1);
        QNode& q = qnode(ctx);
        if (q.parked && !resume_parked_timed(ctx, q, deadline))
            return false; // still parked (reclaim pending or deadline hit)
        if (!q.parked) {
            // Fresh enqueue (also the post-unpark path).
            ctx.store(q.next, kEmpty);
            const std::uint64_t pred = ctx.swap(tail_, id_of(ctx));
            if (pred == kEmpty) {
                obs::probe(ctx, obs::LockEvent::Acquired, tail_.token(), 1);
                return true;
            }
            ctx.store(q.locked, kWaiting);
            QNode& pq = qnode_of(pred);
            ctx.store(pq.next, id_of(ctx));
        }
        q.parked = false;
        return timed_wait(ctx, q, deadline);
    }

    void
    release(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::Released, tail_.token());
        QNode* cur = &qnode(ctx);
        std::uint64_t cur_id = id_of(ctx);
        // Handover walk. `cur` is a node the walk owns: the releaser's
        // own, or an abandoned node claimed kReclaiming. A claimed node
        // is published kReclaimed only after the walk has read past it
        // (or closed the queue), so its owner cannot re-enqueue it while
        // it is still referenced here.
        while (true) {
            std::uint64_t next_id = ctx.load(cur->next);
            if (next_id == kEmpty) {
                // No visible successor: try to close the queue.
                if (ctx.cas(tail_, cur_id, kEmpty) == cur_id) {
                    if (cur_id != id_of(ctx))
                        retire(ctx, *cur, cur_id);
                    return;
                }
                // Someone is between swap and link; wait for the link.
                ctx.spin_while_equal(cur->next, kEmpty);
                next_id = ctx.load(cur->next);
            }
            if (cur_id != id_of(ctx))
                retire(ctx, *cur, cur_id);
            QNode& s = qnode_of(next_id);
            while (true) {
                if (ctx.cas(s.locked, kWaiting, kGranted) == kWaiting)
                    return; // handed over
                // Successor abandoned. Claim the reclaim; a failed claim
                // means the owner rejoined concurrently — grant instead.
                if (ctx.cas(s.locked, kAbandoned, kReclaiming) == kAbandoned)
                    break;
            }
            cur = &s;
            cur_id = next_id;
        }
    }

    /** Host-side abandonment accounting (see locks/timed.hpp). */
    AbandonStats abandon_stats() const { return counters_.snapshot(); }

    /** Identity for probes and traffic attribution: the primary word's
     *  token, the id sim/traffic.hpp keys this lock's transactions by. */
    std::uint64_t lock_id() const { return tail_.token(); }

  private:
    static constexpr std::uint64_t kEmpty = 0;

    // States of a QNode's flag word (see file comment).
    static constexpr std::uint64_t kGranted = 0;
    static constexpr std::uint64_t kWaiting = 1;
    static constexpr std::uint64_t kAbandoned = 2;
    static constexpr std::uint64_t kReclaiming = 3;
    static constexpr std::uint64_t kReclaimed = 4;

    struct QNode
    {
        Ref next;   // successor thread id (+1), or kEmpty
        Ref locked; // flag word: kGranted..kReclaimed
        bool valid = false;
        /** Host-side, owner-only: node abandoned in queue by a past
         *  try_acquire_for. */
        bool parked = false;
    };

    static std::uint64_t
    id_of(Ctx& ctx)
    {
        return static_cast<std::uint64_t>(ctx.thread_id()) + 1;
    }

    /** Poll our flag until granted or the deadline; abandon at deadline. */
    bool
    timed_wait(Ctx& ctx, QNode& q, std::uint64_t deadline)
    {
        while (true) {
            if (ctx.load(q.locked) == kGranted) {
                obs::probe(ctx, obs::LockEvent::Acquired, tail_.token(), 1);
                return true;
            }
            if (detail::lock_clock_ns(ctx) >= deadline) {
                obs::probe(ctx, obs::LockEvent::AbandonStart, tail_.token());
                if (ctx.cas(q.locked, kWaiting, kAbandoned) == kWaiting) {
                    q.parked = true;
                    counters_.on_abandon();
                    counters_.on_park();
                    obs::probe(
                        ctx, obs::LockEvent::AbandonDone, tail_.token(),
                        static_cast<std::uint64_t>(
                            obs::AbandonOutcome::Parked));
                    return false;
                }
                // The handover won the race: accept the lock past the
                // deadline (bounded overshoot — one poll + one handover).
                counters_.on_grant_race();
                obs::probe(ctx, obs::LockEvent::AbandonDone, tail_.token(),
                           static_cast<std::uint64_t>(
                               obs::AbandonOutcome::GrantRaced));
                obs::probe(ctx, obs::LockEvent::Acquired, tail_.token(), 1);
                return true;
            }
            ctx.delay(kTimedPollQuantum);
        }
    }

    /**
     * Untimed re-entry with a parked node. Returns true when we rejoined
     * the old queue position (caller waits for the handover); false when
     * the node was reclaimed and unparked (caller enqueues fresh).
     */
    bool
    resume_parked(Ctx& ctx, QNode& q)
    {
        while (true) {
            if (ctx.cas(q.locked, kAbandoned, kWaiting) == kAbandoned) {
                q.parked = false;
                counters_.on_rejoin();
                obs::probe(ctx, obs::LockEvent::QueueReclaim, tail_.token(),
                           static_cast<std::uint64_t>(
                               obs::ReclaimKind::Rejoined),
                           static_cast<std::uint64_t>(ctx.thread_id()));
                return true;
            }
            const std::uint64_t v = ctx.load(q.locked);
            if (v == kReclaimed) {
                unpark(ctx, q);
                return false;
            }
            // kReclaiming: a releaser is unlinking us right now; the
            // kReclaimed publish is a bounded number of its steps away.
            ctx.delay(kTimedPollQuantum);
        }
    }

    /**
     * Timed re-entry with a parked node. Returns true when the node is
     * ready (rejoined and waiting, or unparked for a fresh enqueue —
     * distinguished by q.parked); false when the deadline passed first.
     */
    bool
    resume_parked_timed(Ctx& ctx, QNode& q, std::uint64_t deadline)
    {
        while (true) {
            if (ctx.cas(q.locked, kAbandoned, kWaiting) == kAbandoned) {
                counters_.on_rejoin();
                obs::probe(ctx, obs::LockEvent::QueueReclaim, tail_.token(),
                           static_cast<std::uint64_t>(
                               obs::ReclaimKind::Rejoined),
                           static_cast<std::uint64_t>(ctx.thread_id()));
                return true; // q.parked stays set; caller skips enqueue
            }
            const std::uint64_t v = ctx.load(q.locked);
            if (v == kReclaimed) {
                unpark(ctx, q);
                return true;
            }
            if (detail::lock_clock_ns(ctx) >= deadline) {
                // Reclaim still in flight (e.g. the reclaiming releaser
                // was preempted or died). Leave the node parked.
                counters_.on_abandon();
                obs::probe(ctx, obs::LockEvent::AbandonStart, tail_.token());
                obs::probe(ctx, obs::LockEvent::AbandonDone, tail_.token(),
                           static_cast<std::uint64_t>(
                               obs::AbandonOutcome::Parked));
                return false;
            }
            ctx.delay(kTimedPollQuantum);
        }
    }

    /** Owner-side reuse of a node a releaser finished reclaiming. */
    void
    unpark(Ctx& ctx, QNode& q)
    {
        q.parked = false;
        counters_.on_unpark();
        obs::probe(ctx, obs::LockEvent::QueueReclaim, tail_.token(),
                   static_cast<std::uint64_t>(obs::ReclaimKind::Unparked),
                   static_cast<std::uint64_t>(ctx.thread_id()));
    }

    /** Releaser-side: publish a claimed node as reclaimed once the walk
     *  no longer references it. */
    void
    retire(Ctx& ctx, QNode& node, std::uint64_t node_id)
    {
        ctx.store(node.locked, kReclaimed);
        counters_.on_reclaim();
        obs::probe(ctx, obs::LockEvent::QueueReclaim, tail_.token(),
                   static_cast<std::uint64_t>(obs::ReclaimKind::Unlinked),
                   node_id - 1);
    }

    QNode&
    qnode(Ctx& ctx)
    {
        auto& q = qnodes_[static_cast<std::size_t>(ctx.thread_id())];
        if (!q.valid) {
            q.next = machine_->alloc(kEmpty, ctx.node());
            q.locked = machine_->alloc(0, ctx.node());
            q.valid = true;
        }
        return q;
    }

    QNode&
    qnode_of(std::uint64_t id)
    {
        NUCA_ASSERT(id != kEmpty && id <= qnodes_.size(), "bad queue id ", id);
        QNode& q = qnodes_[static_cast<std::size_t>(id - 1)];
        NUCA_ASSERT(q.valid, "queue id ", id, " has no node");
        return q;
    }

    Machine* machine_;
    Ref tail_; // thread id (+1) of the last queued thread, or kEmpty
    std::vector<QNode> qnodes_;
    AbandonCounters counters_;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_MCS_HPP
