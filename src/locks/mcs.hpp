/**
 * @file
 * MCS queue lock (Mellor-Crummey and Scott, 1991).
 *
 * Each waiter spins on its own flag, allocated in its node (local-memory
 * spinning), and the releaser hands the lock to its queue successor: FIFO
 * order, one transaction per handover, but no node affinity — the successor
 * is whoever arrived next, wherever it lives.
 *
 * Queue nodes are kept per (lock, thread) and allocated lazily in the
 * thread's node, which is the standard implementation strategy and matches
 * what the machine-level concept can portably promise.
 *
 * Checker view (sim/scheduler.hpp): the enqueue swap and the
 * successor-link store are separate decision points, so a schedule *can*
 * run the releaser between them — the releaser then spins on the
 * successor link, and the checker relies on the waiter's pending store
 * being dependent on that spin to wake it (the classic MCS handover
 * window; see sched_ops_dependent). Waiters spinning on their own flag
 * are parked, not busy — deadlock in an explored schedule is reported as
 * a StopReason verdict, not a hang.
 */
#ifndef NUCALOCK_LOCKS_MCS_HPP
#define NUCALOCK_LOCKS_MCS_HPP

#include <vector>

#include "common/logging.hpp"
#include "locks/context.hpp"
#include "locks/params.hpp"
#include "obs/probe.hpp"

namespace nucalock::locks {

template <LockContext Ctx>
class McsLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "MCS";

    explicit McsLock(Machine& machine, const LockParams& = LockParams{},
                     int home_node = 0)
        : machine_(&machine),
          tail_(machine.alloc(kEmpty, home_node)),
          qnodes_(static_cast<std::size_t>(machine.max_threads()))
    {
    }

    void
    acquire(Ctx& ctx)
    {
        (void)acquire_reporting(ctx);
    }

    /**
     * Acquire and report whether we had to queue behind a predecessor
     * (used by ReactiveLock's contention estimator).
     */
    bool
    acquire_reporting(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, tail_.token());
        QNode& q = qnode(ctx);
        ctx.store(q.next, kEmpty);
        const std::uint64_t pred = ctx.swap(tail_, id_of(ctx));
        if (pred == kEmpty) {
            obs::probe(ctx, obs::LockEvent::Acquired, tail_.token());
            return false; // lock was free
        }
        // Prepare our flag before making ourselves visible to the
        // predecessor, then link in and spin locally.
        ctx.store(q.locked, 1);
        QNode& pq = qnode_of(pred);
        ctx.store(pq.next, id_of(ctx));
        ctx.spin_while_equal(q.locked, 1);
        obs::probe(ctx, obs::LockEvent::Acquired, tail_.token());
        return true;
    }

    bool
    try_acquire(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::AcquireAttempt, tail_.token(), 1);
        QNode& q = qnode(ctx);
        ctx.store(q.next, kEmpty);
        if (ctx.cas(tail_, kEmpty, id_of(ctx)) != kEmpty)
            return false;
        obs::probe(ctx, obs::LockEvent::Acquired, tail_.token(), 1);
        return true;
    }

    void
    release(Ctx& ctx)
    {
        obs::probe(ctx, obs::LockEvent::Released, tail_.token());
        QNode& q = qnode(ctx);
        if (ctx.load(q.next) == kEmpty) {
            // No visible successor: try to close the queue.
            if (ctx.cas(tail_, id_of(ctx), kEmpty) == id_of(ctx))
                return;
            // Someone is between swap and link; wait for the link.
            ctx.spin_while_equal(q.next, kEmpty);
        }
        const std::uint64_t succ = ctx.load(q.next);
        ctx.store(qnode_of(succ).locked, 0);
    }

  private:
    static constexpr std::uint64_t kEmpty = 0;

    struct QNode
    {
        Ref next;   // successor thread id (+1), or kEmpty
        Ref locked; // 1 while the owner must keep waiting
        bool valid = false;
    };

    static std::uint64_t
    id_of(Ctx& ctx)
    {
        return static_cast<std::uint64_t>(ctx.thread_id()) + 1;
    }

    QNode&
    qnode(Ctx& ctx)
    {
        auto& q = qnodes_[static_cast<std::size_t>(ctx.thread_id())];
        if (!q.valid) {
            q.next = machine_->alloc(kEmpty, ctx.node());
            q.locked = machine_->alloc(0, ctx.node());
            q.valid = true;
        }
        return q;
    }

    QNode&
    qnode_of(std::uint64_t id)
    {
        NUCA_ASSERT(id != kEmpty && id <= qnodes_.size(), "bad queue id ", id);
        QNode& q = qnodes_[static_cast<std::size_t>(id - 1)];
        NUCA_ASSERT(q.valid, "queue id ", id, " has no node");
        return q;
    }

    Machine* machine_;
    Ref tail_; // thread id (+1) of the last queued thread, or kEmpty
    std::vector<QNode> qnodes_;
};

} // namespace nucalock::locks

#endif // NUCALOCK_LOCKS_MCS_HPP
