/**
 * @file
 * KV lock-service workload: the app-model tier over src/structs/. A sharded
 * key-value store (structs::StripedMap) is driven by service threads
 * issuing a Zipf-skewed read/write/scan mix — the ROADMAP's "millions of
 * users" workload, reduced to the parameters that drive lock behaviour:
 * key-popularity skew (hot keys concentrate stripes), the op mix (reads
 * and writes are short critical sections, scans are long ones), and
 * resize storms (bursts of fresh-key inserts that trigger the map's
 * cooperative epoch migration — a fault-adjacent phase, since every op
 * after a storm may stall to migrate its stripe).
 *
 * Runs on the simulator backend and fills a harness::BenchResult, so the
 * whole report pipeline (traffic attribution, contention, order hash,
 * schema v5) applies unchanged; the structs-level telemetry rides along in
 * KvOutcome::structs and lands in the v5 per-run "structs" object.
 * Deterministic per seed: the op stream derives from each simulated
 * thread's engine-seeded rng, never from host state.
 */
#ifndef NUCALOCK_APPS_KV_SERVICE_HPP
#define NUCALOCK_APPS_KV_SERVICE_HPP

#include <cstdint>

#include "harness/results.hpp"
#include "locks/any_lock.hpp"
#include "obs/probe.hpp"
#include "sim/engine.hpp"
#include "structs/stats.hpp"
#include "topology/mapping.hpp"

namespace nucalock::apps {

struct KvServiceConfig
{
    Topology topology = Topology::wildfire();
    sim::LatencyModel latency = sim::LatencyModel::wildfire();
    locks::LockParams params;
    int threads = 28;
    Placement placement = Placement::RoundRobinNodes;

    /** Preloaded key population; Zipf rank r is key id r. */
    std::uint64_t keys = 4096;
    /** Map shards, each with its own lock (homed round-robin). */
    std::uint64_t stripes = 16;
    /** Initial buckets per stripe (doubles per resize epoch). */
    std::uint64_t buckets_per_stripe = 64;
    /** Zipf exponent for key popularity (0 = uniform, >1 = few hot keys). */
    double zipf_skew = 0.9;
    /** Op mix in percent; scans take the remainder. */
    int read_pct = 80;
    int write_pct = 15;
    /** Items visited per scan (one stripe lock held throughout). */
    std::uint32_t scan_len = 16;
    /** Value payload lines touched per op. */
    std::uint32_t value_lines = 2;
    /** Measured service ops per thread (excludes preload and storms). */
    std::uint64_t ops_per_thread = 1000;
    /** Mean think-time delay iterations between ops (+/-50%). */
    std::uint32_t think_iters = 400;
    /** Fresh-key insert bursts splitting the run into storm+mix phases. */
    int resize_storms = 1;
    /** Fresh keys each thread inserts per storm burst. */
    std::uint64_t storm_inserts_per_thread = 64;

    std::uint64_t seed = 1;
    obs::ProbeSink* probe = nullptr;
    /** Nonzero: record time-binned contention series (sim/resource.hpp). */
    sim::SimTime contention_bin_ns = 0;
};

/** One KV-service run: the harness-shaped result plus structs telemetry. */
struct KvOutcome
{
    harness::BenchResult bench;
    structs::KvStructsStats structs;
};

/**
 * Run the KV service under @p kind. total_acquires counts *service ops*
 * (preload inserts + reads + writes + scans + storm inserts), and
 * avg_iteration_ns is simulated ns per service op — the "which lock should
 * a sharded KV store use" headline bench_table_kv tabulates.
 */
KvOutcome run_kv_service(locks::LockKind kind, const KvServiceConfig& config);

} // namespace nucalock::apps

#endif // NUCALOCK_APPS_KV_SERVICE_HPP
