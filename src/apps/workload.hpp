/**
 * @file
 * Synthetic application workload models (substitution for SPLASH-2; see
 * DESIGN.md section 2).
 *
 * Each paper application is reduced to the parameters that drive its lock
 * behaviour: the lock population and call volume of the paper's Table 3, a
 * Zipf skew describing how concentrated the calls are on hot locks, the
 * critical-section size, the noncritical compute between calls, and the
 * number of barrier-delimited phases (which synchronize arrivals and create
 * contention bursts).
 */
#ifndef NUCALOCK_APPS_WORKLOAD_HPP
#define NUCALOCK_APPS_WORKLOAD_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace nucalock::apps {

/** One application of the paper's Table 3. */
struct AppWorkload
{
    std::string name;
    std::string problem_size;
    /** Table 3 "Total Locks": allocated lock objects. */
    int total_locks = 1;
    /** Table 3 "Lock Calls": acquire-release pairs (32-processor run). */
    std::uint64_t lock_calls = 0;
    /** Marked with a black triangle in Table 3 (> 10,000 lock calls). */
    bool studied = false;

    // --- behavioural model parameters (our synthesis) ---
    /** Zipf exponent for lock selection (0 = uniform; ~1 = few hot locks). */
    double zipf_skew = 0.6;
    /** Ints modified per critical section (shared data walked). */
    std::uint32_t cs_ints = 48;
    /** Mean noncritical delay iterations between lock calls (+/-50%). */
    std::uint32_t noncs_iters = 3000;
    /** Barrier-delimited phases (bursty arrivals at phase starts). */
    int phases = 4;
    /** Modelled structurally as task queues + stats locks (Raytrace). */
    bool task_queue_model = false;
};

/** All fourteen Table 3 rows, in the paper's order. */
std::vector<AppWorkload> splash2_suite();

/** The seven studied applications (Table 3's emphasized rows). */
std::vector<AppWorkload> studied_apps();

/** Look up one application by (case-sensitive) name; fatal if unknown. */
const AppWorkload& app_by_name(const std::string& name);

/**
 * Zipf-distributed sampler over {0, ..., n-1} with exponent @p s
 * (probability of rank r proportional to 1/(r+1)^s). Precomputes the CDF.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::size_t n, double s);

    /** Draw one index using @p rng. */
    std::size_t sample(Xoshiro256& rng) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

} // namespace nucalock::apps

#endif // NUCALOCK_APPS_WORKLOAD_HPP
