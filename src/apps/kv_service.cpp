#include "apps/kv_service.hpp"

#include <algorithm>

#include "apps/workload.hpp"
#include "common/logging.hpp"
#include "harness/barrier.hpp"
#include "structs/striped_map.hpp"

namespace nucalock::apps {

using locks::LockKind;
using sim::SimContext;
using sim::SimMachine;

KvOutcome
run_kv_service(LockKind kind, const KvServiceConfig& config)
{
    NUCA_ASSERT(config.threads > 0);
    NUCA_ASSERT(config.keys > 0 && config.stripes > 0);
    NUCA_ASSERT(config.read_pct >= 0 && config.write_pct >= 0 &&
                config.read_pct + config.write_pct <= 100);

    sim::SimConfig sim_cfg;
    sim_cfg.seed = config.seed;
    SimMachine machine(config.topology, config.latency, sim_cfg);
    machine.install_probe(config.probe);
    if (config.contention_bin_ns != 0)
        machine.memory().enable_contention_series(config.contention_bin_ns);

    typename structs::StripedMap<SimContext>::Config map_cfg;
    map_cfg.stripes = static_cast<std::size_t>(config.stripes);
    map_cfg.initial_buckets = static_cast<std::size_t>(
        std::max<std::uint64_t>(1, config.buckets_per_stripe));
    map_cfg.value_lines = config.value_lines;
    map_cfg.params = config.params;
    structs::StripedMap<SimContext> map(machine, kind, map_cfg);

    const ZipfSampler zipf(static_cast<std::size_t>(config.keys),
                           config.zipf_skew);
    const int threads = config.threads;
    harness::SenseBarrier<SimContext> barrier(machine, threads);

    // Host-side service bookkeeping. Mutated only inside simulated-thread
    // host code, which the engine serializes deterministically.
    structs::KvStructsStats kv;
    std::uint64_t ops_total = 0;
    // FNV-1a over the sequence of (thread id, op class) completions: the
    // probe-independent fingerprint of the service schedule (BenchResult).
    std::uint64_t order_hash = 0xcbf29ce484222325ULL;
    const auto note_op = [&](SimContext& ctx, std::uint64_t op_class) {
        ++ops_total;
        order_hash ^=
            static_cast<std::uint64_t>(ctx.thread_id()) * 8 + op_class;
        order_hash *= 0x100000001b3ULL;
    };

    const int storms = std::max(0, config.resize_storms);
    const std::uint64_t ops_per_phase = std::max<std::uint64_t>(
        1, config.ops_per_thread / static_cast<std::uint64_t>(storms + 1));
    const std::uint64_t threads_u = static_cast<std::uint64_t>(threads);

    machine.add_threads(threads, config.placement, [&](SimContext& ctx, int) {
        const auto tid = static_cast<std::uint64_t>(ctx.thread_id());
        bool sense = false;

        // Preload: thread t inserts keys t, t+T, t+2T, ... so the whole
        // population exists before the measured mix, in parallel.
        for (std::uint64_t key = tid; key < config.keys; key += threads_u) {
            const std::uint64_t t0 = ctx.now();
            map.put(ctx, key, key * 2 + 1);
            kv.write_ns.add(ctx.now() - t0);
            ++kv.inserts;
            note_op(ctx, 3);
        }
        barrier.wait(ctx, &sense);

        std::uint64_t storm_next = config.keys + tid * 1'000'000;
        for (int phase = 0; phase <= storms; ++phase) {
            if (phase > 0) {
                // Resize storm: a burst of fresh keys (ids disjoint from
                // the Zipf population) that pushes stripes past their load
                // factor and bumps the cooperative-resize epoch.
                for (std::uint64_t j = 0; j < config.storm_inserts_per_thread;
                     ++j) {
                    const std::uint64_t t0 = ctx.now();
                    map.put(ctx, storm_next, storm_next);
                    kv.write_ns.add(ctx.now() - t0);
                    ++storm_next;
                    ++kv.inserts;
                    note_op(ctx, 3);
                }
                barrier.wait(ctx, &sense);
            }
            for (std::uint64_t i = 0; i < ops_per_phase; ++i) {
                const std::uint64_t w = config.think_iters;
                ctx.delay(w / 2 + ctx.rng().next_below(w + 1));
                const std::uint64_t key = zipf.sample(ctx.rng());
                const auto draw =
                    static_cast<int>(ctx.rng().next_below(100));
                const std::uint64_t t0 = ctx.now();
                if (draw < config.read_pct) {
                    const auto found = map.get(ctx, key);
                    kv.read_ns.add(ctx.now() - t0);
                    found ? ++kv.hits : ++kv.misses;
                    ++kv.reads;
                    note_op(ctx, 0);
                } else if (draw < config.read_pct + config.write_pct) {
                    map.put(ctx, key, key ^ (i + 1));
                    kv.write_ns.add(ctx.now() - t0);
                    ++kv.writes;
                    note_op(ctx, 1);
                } else {
                    const std::size_t seen =
                        map.scan(ctx, key, config.scan_len);
                    kv.scan_ns.add(ctx.now() - t0);
                    seen != 0 ? ++kv.hits : ++kv.misses;
                    ++kv.scans;
                    note_op(ctx, 2);
                }
            }
            barrier.wait(ctx, &sense);
        }
    });
    machine.run();

    map.collect(kv);

    KvOutcome outcome;
    outcome.structs = kv;
    harness::BenchResult& result = outcome.bench;
    result.total_time = machine.now();
    result.total_acquires = ops_total;
    if (ops_total != 0)
        result.avg_iteration_ns = static_cast<double>(machine.now()) /
                                  static_cast<double>(ops_total);
    // Custody-level handoff ratio over every stripe lock acquisition.
    std::uint64_t remote = 0;
    std::uint64_t stripe_acquires = 0;
    for (const structs::StripeStats& s : kv.per_stripe) {
        remote += s.handovers_remote;
        stripe_acquires += s.acquisitions;
    }
    if (stripe_acquires != 0)
        result.node_handoff_ratio = static_cast<double>(remote) /
                                    static_cast<double>(stripe_acquires);
    result.traffic = machine.traffic();
    result.traffic_attribution = machine.traffic_attribution();
    result.contention = machine.contention();
    result.finish_times.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t)
        result.finish_times.push_back(machine.finish_time(t));
    result.fairness_spread_pct = harness::fairness_spread_pct(result.finish_times);
    result.acquisition_order_hash = order_hash;
    result.sim_memory_accesses = machine.memory().num_accesses();
    result.sim_fiber_switches = machine.fiber_switches();
    return outcome;
}

} // namespace nucalock::apps
