#include "apps/raytrace.hpp"

#include <memory>
#include <vector>

#include "common/logging.hpp"

namespace nucalock::apps {

using locks::AnyLock;
using locks::LockKind;
using sim::MemRef;
using sim::SimContext;
using sim::SimMachine;

AppOutcome
run_raytrace_once(LockKind kind, const RaytraceConfig& config)
{
    NUCA_ASSERT(config.threads > 0 && config.stats_locks > 0);

    sim::SimConfig sim_cfg;
    sim_cfg.seed = config.seed;
    sim_cfg.preemption = config.preemption;
    sim_cfg.preempt_mean_interval = config.preempt_mean_interval;
    sim_cfg.preempt_duration = config.preempt_duration;
    SimMachine machine(config.topology, config.latency, sim_cfg);

    const int nodes = config.topology.num_nodes();
    const int threads = config.threads;

    // One task queue per thread (lock + host-side task count guarded by
    // it), plus the hot statistics locks and their shared counters.
    std::vector<std::unique_ptr<AnyLock<SimContext>>> queue_locks;
    std::vector<std::uint32_t> queue_tasks(static_cast<std::size_t>(threads), 0);
    const std::vector<int> cpus = map_threads(config.topology, threads,
                                              config.placement);
    for (int t = 0; t < threads; ++t) {
        const int home = config.topology.node_of_cpu(cpus[static_cast<std::size_t>(t)]);
        queue_locks.push_back(std::make_unique<AnyLock<SimContext>>(
            machine, kind, config.params, home));
    }
    for (std::uint32_t task = 0; task < config.total_tasks; ++task)
        ++queue_tasks[task % static_cast<std::uint32_t>(threads)];

    std::vector<std::unique_ptr<AnyLock<SimContext>>> stats_locks;
    std::vector<MemRef> stats_data;
    const std::uint32_t stats_lines = config.stats_ints / 16 + 1;
    for (int s = 0; s < config.stats_locks; ++s) {
        stats_locks.push_back(std::make_unique<AnyLock<SimContext>>(
            machine, kind, config.params, s % nodes));
        stats_data.push_back(machine.alloc_array(stats_lines, 0, s % nodes));
    }

    std::uint64_t lock_calls = 0; // guarded by whichever lock is held

    for (int t = 0; t < threads; ++t) {
        machine.add_thread(cpus[static_cast<std::size_t>(t)], [&, t,
                                                               threads](
                                                                  SimContext&
                                                                      ctx) {
            std::uint64_t executed = 0;
            while (true) {
                // Pop from our own queue, else steal one task.
                bool got = false;
                for (int probe = 0; probe < threads && !got; ++probe) {
                    const auto victim =
                        static_cast<std::size_t>((t + probe) % threads);
                    // Cheap host-side peek avoids hammering empty queues;
                    // the check is re-done under the lock.
                    if (queue_tasks[victim] == 0)
                        continue;
                    queue_locks[victim]->acquire(ctx);
                    ++lock_calls;
                    if (queue_tasks[victim] > 0) {
                        --queue_tasks[victim];
                        got = true;
                    }
                    queue_locks[victim]->release(ctx);
                }
                if (!got)
                    return; // no work anywhere: ray tracing finished

                // Trace rays: the big compute chunk.
                const std::uint64_t w = config.task_work_iters;
                ctx.delay(w / 2 + ctx.rng().next_below(w));

                // Update the global statistics counters (the hot locks).
                const auto s = static_cast<std::size_t>(
                    executed++ % static_cast<std::uint64_t>(config.stats_locks));
                stats_locks[s]->acquire(ctx);
                ++lock_calls;
                ctx.touch_array(stats_data[s], stats_lines, /*write=*/true);
                stats_locks[s]->release(ctx);
            }
        });
    }
    machine.run();

    AppOutcome outcome;
    outcome.time = machine.now();
    outcome.traffic = machine.traffic();
    outcome.lock_calls = lock_calls;
    return outcome;
}

} // namespace nucalock::apps
