#include "apps/app_runner.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/logging.hpp"
#include "harness/barrier.hpp"
#include "stats/summary.hpp"

namespace nucalock::apps {

using locks::AnyLock;
using locks::LockKind;
using sim::MemRef;
using sim::SimContext;
using sim::SimMachine;

namespace {

AppOutcome
run_generic_once(const AppWorkload& app, LockKind kind, const AppRunConfig& config)
{
    sim::SimConfig sim_cfg;
    sim_cfg.seed = config.seed;
    sim_cfg.preemption = config.preemption;
    sim_cfg.preempt_mean_interval = config.preempt_mean_interval;
    sim_cfg.preempt_duration = config.preempt_duration;
    SimMachine machine(config.topology, config.latency, sim_cfg);

    const int nodes = config.topology.num_nodes();
    const int threads = config.threads;

    // The application's lock population, each guarding its own shared data,
    // homes distributed round-robin across nodes.
    const auto total_locks = static_cast<std::size_t>(app.total_locks);
    const std::uint32_t cs_lines = app.cs_ints / 16 + 1;
    std::vector<std::unique_ptr<AnyLock<SimContext>>> app_locks;
    std::vector<MemRef> lock_data;
    app_locks.reserve(total_locks);
    lock_data.reserve(total_locks);
    for (std::size_t l = 0; l < total_locks; ++l) {
        const int home = static_cast<int>(l) % nodes;
        app_locks.push_back(std::make_unique<AnyLock<SimContext>>(
            machine, kind, config.params, home));
        lock_data.push_back(machine.alloc_array(cs_lines, 0, home));
    }

    const ZipfSampler zipf(total_locks, app.zipf_skew);
    harness::SenseBarrier<SimContext> barrier(machine, threads);

    const auto scaled_calls = static_cast<std::uint64_t>(
        static_cast<double>(app.lock_calls) * config.call_scale);
    const std::uint64_t calls_per_thread =
        std::max<std::uint64_t>(1, scaled_calls / static_cast<std::uint64_t>(threads));
    const int phases = std::max(1, app.phases);
    const std::uint64_t calls_per_phase =
        std::max<std::uint64_t>(1, calls_per_thread / static_cast<std::uint64_t>(phases));

    std::uint64_t lock_calls = 0; // guarded by whichever lock is held

    machine.add_threads(threads, config.placement, [&](SimContext& ctx, int) {
        bool sense = false;
        for (int phase = 0; phase < phases; ++phase) {
            for (std::uint64_t c = 0; c < calls_per_phase; ++c) {
                // Noncritical compute: static plus random part.
                const std::uint64_t w = app.noncs_iters;
                ctx.delay(w / 2 + ctx.rng().next_below(w + 1));

                const std::size_t l = zipf.sample(ctx.rng());
                app_locks[l]->acquire(ctx);
                ++lock_calls;
                ctx.touch_array(lock_data[l], cs_lines, /*write=*/true);
                app_locks[l]->release(ctx);
            }
            barrier.wait(ctx, &sense);
        }
    });
    machine.run();

    AppOutcome outcome;
    outcome.time = machine.now();
    outcome.traffic = machine.traffic();
    outcome.lock_calls = lock_calls;
    return outcome;
}

} // namespace

AppOutcome
run_app_once(const AppWorkload& app, LockKind kind, const AppRunConfig& config)
{
    if (!app.task_queue_model)
        return run_generic_once(app, kind, config);

    RaytraceConfig rt;
    rt.topology = config.topology;
    rt.latency = config.latency;
    rt.params = config.params;
    rt.threads = config.threads;
    rt.placement = config.placement;
    // Two lock calls per task (queue pop + statistics update).
    rt.total_tasks = static_cast<std::uint32_t>(
        static_cast<double>(app.lock_calls) * config.call_scale / 2.0);
    rt.task_work_iters = config.raytrace_task_work;
    rt.seed = config.seed;
    rt.preemption = config.preemption;
    rt.preempt_mean_interval = config.preempt_mean_interval;
    rt.preempt_duration = config.preempt_duration;
    return run_raytrace_once(kind, rt);
}

AppAggregate
run_app(const AppWorkload& app, LockKind kind, const AppRunConfig& config,
        int runs)
{
    NUCA_ASSERT(runs > 0);
    stats::Summary times;
    stats::Summary local_tx;
    stats::Summary global_tx;
    std::uint64_t calls = 0;
    for (int r = 0; r < runs; ++r) {
        AppRunConfig seeded = config;
        seeded.seed = config.seed + static_cast<std::uint64_t>(r) * 7919;
        const AppOutcome outcome = run_app_once(app, kind, seeded);
        times.add(static_cast<double>(outcome.time) / 1e9);
        local_tx.add(static_cast<double>(outcome.traffic.local_tx));
        global_tx.add(static_cast<double>(outcome.traffic.global_tx));
        calls = outcome.lock_calls;
    }
    AppAggregate agg;
    agg.mean_time_s = times.mean();
    agg.time_variance = times.sample_variance();
    agg.mean_local_tx = local_tx.mean();
    agg.mean_global_tx = global_tx.mean();
    agg.lock_calls = calls;
    return agg;
}

} // namespace nucalock::apps
