#include "apps/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace nucalock::apps {

ZipfSampler::ZipfSampler(std::size_t n, double s)
{
    NUCA_ASSERT(n > 0);
    NUCA_ASSERT(s >= 0.0);
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
        acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
        cdf_[r] = acc;
    }
    for (double& c : cdf_)
        c /= acc;
    cdf_.back() = 1.0; // guard against rounding
}

std::size_t
ZipfSampler::sample(Xoshiro256& rng) const
{
    const double u = rng.next_double();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

std::vector<AppWorkload>
splash2_suite()
{
    // Lock populations and call counts are the paper's Table 3 (32-cpu
    // runs); the behavioural parameters are our calibration of each
    // application's known synchronization character (see the SPLASH-2
    // characterization literature cited by the paper):
    //  - Barnes: tree-node locks, moderately skewed, small critical
    //    sections, heavy compute between calls.
    //  - Cholesky/FMM: task/column locks, mild skew.
    //  - Radiosity: many task-queue locks, high call volume.
    //  - Raytrace: few hot task-queue + statistics locks => the only
    //    heavily contended program (modelled structurally, see raytrace.*).
    //  - Volrend: work-queue counters, skewed.
    //  - Water-Nsq: per-molecule accumulator locks, near-uniform.
    std::vector<AppWorkload> suite;

    suite.push_back({"Barnes", "29k particles", 130, 69'193, true,
                     0.7, 32, 42000, 6, false});
    suite.push_back({"Cholesky", "tk29.O", 67, 74'284, true,
                     0.5, 48, 37000, 4, false});
    suite.push_back({"FFT", "1M points", 1, 32, false,
                     0.0, 16, 4000, 2, false});
    suite.push_back({"FMM", "32k particles", 2'052, 80'528, true,
                     0.4, 48, 88000, 5, false});
    suite.push_back({"LU-c", "1024x1024 matrices, 16x16 blocks", 1, 32, false,
                     0.0, 16, 4000, 2, false});
    suite.push_back({"LU-nc", "1024x1024 matrices, 16x16 blocks", 1, 32, false,
                     0.0, 16, 4000, 2, false});
    suite.push_back({"Ocean-c", "514x514", 6, 6'304, false,
                     0.3, 24, 6000, 4, false});
    suite.push_back({"Ocean-nc", "258x258", 6, 6'656, false,
                     0.3, 24, 6000, 4, false});
    suite.push_back({"Radiosity", "room, -ae 5000.0 -en 0.050 -bf 0.10",
                     3'975, 295'627, true, 0.8, 24, 10500, 5, false});
    suite.push_back({"Radix", "4M integers, radix 1024", 1, 32, false,
                     0.0, 16, 4000, 2, false});
    suite.push_back({"Raytrace", "car", 35, 366'450, true,
                     1.1, 16, 3400, 1, true});
    suite.push_back({"Volrend", "head", 67, 38'456, true,
                     0.9, 16, 72000, 6, false});
    suite.push_back({"Water-Nsq", "2197 molecules", 2'206, 112'415, true,
                     0.2, 24, 38000, 6, false});
    suite.push_back({"Water-Sp", "2197 molecules", 222, 510, false,
                     0.2, 24, 38000, 6, false});
    return suite;
}

std::vector<AppWorkload>
studied_apps()
{
    std::vector<AppWorkload> studied;
    for (const AppWorkload& app : splash2_suite())
        if (app.studied)
            studied.push_back(app);
    NUCA_ASSERT(studied.size() == 7, "expected the paper's seven studied apps");
    return studied;
}

const AppWorkload&
app_by_name(const std::string& name)
{
    static const std::vector<AppWorkload> suite = splash2_suite();
    for (const AppWorkload& app : suite)
        if (app.name == name)
            return app;
    NUCA_FATAL("unknown application '", name, "'");
}

} // namespace nucalock::apps
