/**
 * @file
 * Generic application-model runner (paper section 5.4, Tables 3-6 and
 * Figs 6-7): executes an AppWorkload descriptor on the simulated machine
 * with a chosen lock algorithm, and aggregates repeated runs into the
 * mean/variance form the paper reports.
 */
#ifndef NUCALOCK_APPS_APP_RUNNER_HPP
#define NUCALOCK_APPS_APP_RUNNER_HPP

#include <cstdint>

#include "apps/raytrace.hpp"
#include "apps/workload.hpp"
#include "locks/any_lock.hpp"
#include "sim/engine.hpp"
#include "topology/mapping.hpp"

namespace nucalock::apps {

struct AppRunConfig
{
    Topology topology = Topology::wildfire();
    sim::LatencyModel latency = sim::LatencyModel::wildfire();
    locks::LockParams params;
    int threads = 28;
    Placement placement = Placement::RoundRobinNodes;
    /** Fraction of the paper's Table 3 lock-call volume to execute. */
    double call_scale = 0.05;
    std::uint64_t seed = 1;
    bool preemption = false;
    sim::SimTime preempt_mean_interval = 40'000'000;
    sim::SimTime preempt_duration = 10'000'000;
    /** Raytrace model: compute per ray task (delay iterations). */
    std::uint32_t raytrace_task_work = 12'000;
};

/** Mean/variance aggregate over repeated seeded runs (paper table format). */
struct AppAggregate
{
    double mean_time_s = 0.0;
    double time_variance = 0.0;
    double mean_local_tx = 0.0;
    double mean_global_tx = 0.0;
    std::uint64_t lock_calls = 0;
};

/** One run of @p app under @p kind. */
AppOutcome run_app_once(const AppWorkload& app, locks::LockKind kind,
                        const AppRunConfig& config);

/** @p runs seeded runs aggregated into mean and variance. */
AppAggregate run_app(const AppWorkload& app, locks::LockKind kind,
                     const AppRunConfig& config, int runs);

} // namespace nucalock::apps

#endif // NUCALOCK_APPS_APP_RUNNER_HPP
