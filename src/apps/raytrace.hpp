/**
 * @file
 * Structural model of SPLASH-2 Raytrace (the paper's section 5.4 deep
 * dive): per-thread task queues with work stealing, each task doing a large
 * chunk of compute and then updating global statistics counters behind a
 * small set of hot locks. This is what makes Raytrace the one application
 * whose lock behaviour dominates runtime — and what the NUCA-aware locks
 * fix (paper Table 4, Fig 7).
 */
#ifndef NUCALOCK_APPS_RAYTRACE_HPP
#define NUCALOCK_APPS_RAYTRACE_HPP

#include <cstdint>

#include "locks/any_lock.hpp"
#include "locks/params.hpp"
#include "sim/engine.hpp"
#include "sim/traffic.hpp"
#include "topology/mapping.hpp"

namespace nucalock::apps {

/** Result of one simulated application run. */
struct AppOutcome
{
    sim::SimTime time = 0;
    sim::TrafficStats traffic;
    std::uint64_t lock_calls = 0;
};

struct RaytraceConfig
{
    Topology topology = Topology::wildfire();
    sim::LatencyModel latency = sim::LatencyModel::wildfire();
    locks::LockParams params;
    int threads = 28;
    Placement placement = Placement::RoundRobinNodes;
    /** Total ray tasks across all threads. */
    std::uint32_t total_tasks = 9000;
    /** Compute per task, in delay iterations (+/-50% jitter). */
    std::uint32_t task_work_iters = 12'000;
    /** Hot statistics locks (paper: "some global variables"). */
    int stats_locks = 2;
    /** Ints modified per statistics update. */
    std::uint32_t stats_ints = 64;
    std::uint64_t seed = 1;
    /** OS-preemption injection (the 30-cpu multiprogrammed runs). */
    bool preemption = false;
    sim::SimTime preempt_mean_interval = 40'000'000;
    sim::SimTime preempt_duration = 10'000'000;
};

/** Run the Raytrace model once with @p kind for every lock in the app. */
AppOutcome run_raytrace_once(locks::LockKind kind, const RaytraceConfig& config);

} // namespace nucalock::apps

#endif // NUCALOCK_APPS_RAYTRACE_HPP
