#include "harness/sensitivity.hpp"

#include "common/logging.hpp"
#include "exec/executor.hpp"

namespace nucalock::harness {

using locks::LockKind;

namespace {

/**
 * Shared sweep shape: slot 0 runs the reference lock, slot i+1 runs
 * HBO_GT_SD with values[i] applied by @p apply. One flat batch so the
 * reference run shares the worker pool with the sweep points.
 */
template <typename Apply>
std::vector<SensitivityPoint>
sweep_normalized(const NewBenchConfig& config, LockKind reference_kind,
                 const std::vector<std::uint32_t>& values, int jobs,
                 Apply apply)
{
    exec::Executor executor(jobs);
    const std::vector<BenchResult> results =
        executor.map<BenchResult>(values.size() + 1, [&](std::size_t i) {
            if (i == 0)
                return run_newbench(reference_kind, config);
            NewBenchConfig swept = config;
            apply(&swept, values[i - 1]);
            return run_newbench(LockKind::HboGtSd, swept);
        });
    const BenchResult& reference = results[0];
    NUCA_ASSERT(reference.total_time > 0);

    std::vector<SensitivityPoint> points;
    points.reserve(values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        points.push_back(
            {values[i], static_cast<double>(results[i + 1].total_time) /
                            static_cast<double>(reference.total_time)});
    return points;
}

} // namespace

std::vector<SensitivityPoint>
sweep_remote_backoff_cap(const NewBenchConfig& config,
                         const std::vector<std::uint32_t>& caps, int jobs)
{
    return sweep_normalized(config, LockKind::Mcs, caps, jobs,
                            [](NewBenchConfig* swept, std::uint32_t cap) {
                                swept->params.hbo_remote_cap = cap;
                            });
}

std::vector<SensitivityPoint>
sweep_get_angry_limit(const NewBenchConfig& config,
                      const std::vector<std::uint32_t>& limits, int jobs)
{
    return sweep_normalized(config, LockKind::HboGt, limits, jobs,
                            [](NewBenchConfig* swept, std::uint32_t limit) {
                                swept->params.get_angry_limit = limit;
                            });
}

} // namespace nucalock::harness
