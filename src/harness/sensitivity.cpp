#include "harness/sensitivity.hpp"

#include "common/logging.hpp"

namespace nucalock::harness {

using locks::LockKind;

std::vector<SensitivityPoint>
sweep_remote_backoff_cap(const NewBenchConfig& config,
                         const std::vector<std::uint32_t>& caps)
{
    const BenchResult reference = run_newbench(LockKind::Mcs, config);
    NUCA_ASSERT(reference.total_time > 0);

    std::vector<SensitivityPoint> points;
    points.reserve(caps.size());
    for (std::uint32_t cap : caps) {
        NewBenchConfig swept = config;
        swept.params.hbo_remote_cap = cap;
        const BenchResult run = run_newbench(LockKind::HboGtSd, swept);
        points.push_back(
            {cap, static_cast<double>(run.total_time) /
                      static_cast<double>(reference.total_time)});
    }
    return points;
}

std::vector<SensitivityPoint>
sweep_get_angry_limit(const NewBenchConfig& config,
                      const std::vector<std::uint32_t>& limits)
{
    const BenchResult reference = run_newbench(LockKind::HboGt, config);
    NUCA_ASSERT(reference.total_time > 0);

    std::vector<SensitivityPoint> points;
    points.reserve(limits.size());
    for (std::uint32_t limit : limits) {
        NewBenchConfig swept = config;
        swept.params.get_angry_limit = limit;
        const BenchResult run = run_newbench(LockKind::HboGtSd, swept);
        points.push_back(
            {limit, static_cast<double>(run.total_time) /
                        static_cast<double>(reference.total_time)});
    }
    return points;
}

} // namespace nucalock::harness
