#include "harness/uncontested.hpp"

#include "common/logging.hpp"

namespace nucalock::harness {

using locks::AnyLock;
using locks::LockKind;
using sim::MemRef;
using sim::SimContext;
using sim::SimMachine;
using sim::SimTime;

double
measure_handover_ns(LockKind kind, const UncontestedConfig& config, int cpu_a,
                    int cpu_b)
{
    SimMachine machine(config.topology, config.latency,
                       sim::SimConfig{.seed = config.seed});
    AnyLock<SimContext> lock(machine, kind, config.params);

    SimTime measured = 0;
    std::uint64_t counted = 0;
    const std::uint32_t warmup = config.warmup;
    const std::uint32_t iterations = config.iterations + warmup;

    if (cpu_a == cpu_b) {
        machine.add_thread(cpu_a, [&](SimContext& ctx) {
            for (std::uint32_t k = 0; k < iterations; ++k) {
                const SimTime t0 = ctx.now();
                lock.acquire(ctx);
                lock.release(ctx);
                if (k >= warmup) {
                    measured += ctx.now() - t0;
                    ++counted;
                }
            }
        });
        machine.run();
        return static_cast<double>(measured) / static_cast<double>(counted);
    }

    // Two threads alternating through a turn word; only the acquire-release
    // interval is measured, not the turn handshake.
    const MemRef turn = machine.alloc(0, 0);
    auto worker = [&, iterations, warmup](SimContext& ctx, std::uint64_t other) {
        for (std::uint32_t k = 0; k < iterations; ++k) {
            ctx.spin_while_equal(turn, other); // wait for our turn
            const SimTime t0 = ctx.now();
            lock.acquire(ctx);
            lock.release(ctx);
            if (k >= warmup) {
                measured += ctx.now() - t0;
                ++counted;
            }
            ctx.store(turn, other);
        }
    };
    machine.add_thread(cpu_a, [&worker](SimContext& ctx) { worker(ctx, 1); });
    machine.add_thread(cpu_b, [&worker](SimContext& ctx) { worker(ctx, 0); });
    machine.run();
    NUCA_ASSERT(counted > 0);
    return static_cast<double>(measured) / static_cast<double>(counted);
}

UncontestedResult
run_uncontested(LockKind kind, const UncontestedConfig& config)
{
    const Topology& topo = config.topology;
    UncontestedResult result;

    const int cpu0 = topo.first_cpu_of_node(0);
    result.same_processor_ns = measure_handover_ns(kind, config, cpu0, cpu0);

    NUCA_ASSERT(topo.cpus_in_node(0) >= 2,
                "same-node scenario needs two cpus in node 0");
    result.same_node_ns = measure_handover_ns(kind, config, cpu0, cpu0 + 1);

    if (topo.num_nodes() >= 2) {
        const int remote = topo.first_cpu_of_node(1);
        result.remote_node_ns = measure_handover_ns(kind, config, cpu0, remote);
    }
    return result;
}

} // namespace nucalock::harness
