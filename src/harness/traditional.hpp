/**
 * @file
 * The traditional contended-lock microbenchmark (paper section 5.2, Fig 3):
 * a tight acquire-release loop where each thread must observe a new owner
 * before contending again (the last remaining thread is exempt so the run
 * terminates).
 */
#ifndef NUCALOCK_HARNESS_TRADITIONAL_HPP
#define NUCALOCK_HARNESS_TRADITIONAL_HPP

#include <cstdint>

#include "harness/results.hpp"
#include "locks/any_lock.hpp"
#include "locks/params.hpp"
#include "obs/probe.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "topology/mapping.hpp"

namespace nucalock::harness {

struct TraditionalConfig
{
    Topology topology = Topology::wildfire();
    sim::LatencyModel latency = sim::LatencyModel::wildfire();
    locks::LockParams params;
    int threads = 28;
    Placement placement = Placement::RoundRobinNodes;
    std::uint32_t iterations_per_thread = 200;
    std::uint64_t seed = 1;
    /** Lock-event probe sink (src/obs/); non-owning, nullptr = off. */
    obs::ProbeSink* probe = nullptr;
    /** Bin width for the contention utilisation series; 0 = totals only. */
    sim::SimTime contention_bin_ns = 0;
    /** Memory-access recorder (sim/trace.hpp); non-owning, nullptr = off. */
    sim::TraceRecorder* memory_trace = nullptr;
};

/** Run the traditional microbenchmark for @p kind. */
BenchResult run_traditional(locks::LockKind kind, const TraditionalConfig& config);

} // namespace nucalock::harness

#endif // NUCALOCK_HARNESS_TRADITIONAL_HPP
