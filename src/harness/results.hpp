/**
 * @file
 * Result records shared by the microbenchmark harness.
 */
#ifndef NUCALOCK_HARNESS_RESULTS_HPP
#define NUCALOCK_HARNESS_RESULTS_HPP

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/resource.hpp"
#include "sim/time.hpp"
#include "sim/traffic.hpp"

namespace nucalock::harness {

/** Outcome of one contended-lock benchmark run. */
struct BenchResult
{
    /** Simulated wall time of the whole run. */
    sim::SimTime total_time = 0;
    /** Total critical-section entries across all threads. */
    std::uint64_t total_acquires = 0;
    /** total_time / total_acquires. */
    double avg_iteration_ns = 0.0;
    /** Fraction of acquisitions whose previous holder was in another node. */
    double node_handoff_ratio = 0.0;
    /** Coherence traffic generated during the run. */
    sim::TrafficStats traffic;
    /**
     * Who generated the traffic: per-lock/per-phase and per-node tables
     * (sim/traffic.hpp). The per-lock rows come from probe-set op-contexts,
     * so they are empty under -DNUCALOCK_NO_PROBES; the per-node rows and
     * the totals above never vanish.
     */
    sim::TrafficAttribution traffic_attribution;
    /**
     * Where the traffic queued: per-resource occupancy, queue-delay
     * histograms and (when NewBenchConfig/TraditionalConfig::
     * contention_bin_ns is set) time-binned utilisation series.
     */
    sim::ContentionStats contention;
    /** Per-thread completion times (fairness study). */
    std::vector<sim::SimTime> finish_times;
    /** (last - first finisher) / last, in percent (paper's Fig. 8 metric). */
    double fairness_spread_pct = 0.0;
    /**
     * FNV-1a hash of the global acquisition order (the sequence of thread
     * ids entering the critical section). Computed by the harness itself —
     * never by probes — so it is a probe-independent fingerprint: for a
     * given seed it must be bit-identical with observability on or off
     * (pinned by tests/obs_test.cpp).
     */
    std::uint64_t acquisition_order_hash = 0;

    // ----- engine-side run cost (host-independent simulator counters) -----

    /** Simulated memory operations the engine executed for this run. */
    std::uint64_t sim_memory_accesses = 0;
    /** Fiber context switches the engine performed for this run. */
    std::uint64_t sim_fiber_switches = 0;
    /**
     * Host wall-clock nanoseconds spent inside SimMachine::run() alone —
     * the event-processing loop, excluding machine construction, fiber
     * and stack allocation, and result extraction. The only host-varying
     * field in this struct; the throughput bench reads it so its
     * events/sec compares per-event cost across shapes rather than how
     * long it takes to allocate a 1024-thread machine. Never serialized
     * into deterministic reports.
     */
    double host_run_ns = 0.0;

    // ----- robustness subsystem (zero unless a fault plan ran) ------------

    /** Faults actually applied by the injector. */
    std::uint64_t faults_injected = 0;
    /** One line per applied fault (byte-identical across same-seed runs). */
    std::string fault_log;
    /** Mutual-exclusion violations observed by the invariant checker. */
    std::uint64_t mutex_violations = 0;
    /** Worst "other threads entered while I waited" count over the run. */
    std::uint64_t max_bypasses = 0;
    /** Longest same-node handover streak while a remote thread waited. */
    std::uint64_t max_node_streak = 0;
    /** Bounded-wait acquisitions that timed out (lock abandonment). */
    std::uint64_t lock_timeouts = 0;

    // ----- memory trace (zero unless a TraceRecorder was attached) --------

    /** Trace events actually recorded (TraceRecorder::events().size()). */
    std::uint64_t memtrace_events = 0;
    /** Trace events dropped by the recorder's set_max_events cap. */
    std::uint64_t memtrace_dropped = 0;
};

/** The paper's fairness metric over a set of finish times. */
inline double
fairness_spread_pct(const std::vector<sim::SimTime>& finish_times)
{
    if (finish_times.size() < 2)
        return 0.0;
    const auto [lo, hi] =
        std::minmax_element(finish_times.begin(), finish_times.end());
    if (*hi == 0)
        return 0.0;
    return 100.0 * static_cast<double>(*hi - *lo) / static_cast<double>(*hi);
}

} // namespace nucalock::harness

#endif // NUCALOCK_HARNESS_RESULTS_HPP
