/**
 * @file
 * Sense-reversing centralized barrier over the lock-context API (runs on
 * both the simulator and real threads).
 */
#ifndef NUCALOCK_HARNESS_BARRIER_HPP
#define NUCALOCK_HARNESS_BARRIER_HPP

#include <cstdint>

#include "locks/context.hpp"

namespace nucalock::harness {

/**
 * Classic sense-reversing barrier. Each participating thread keeps its own
 * sense flag (initially false) and passes it to every wait() call.
 */
template <locks::LockContext Ctx>
class SenseBarrier
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    SenseBarrier(Machine& machine, int participants, int home_node = 0)
        : count_(machine.alloc(static_cast<std::uint64_t>(participants), home_node)),
          sense_(machine.alloc(0, home_node)),
          participants_(static_cast<std::uint64_t>(participants))
    {
    }

    /** Block until all participants arrive. Flips *@p sense on exit. */
    void
    wait(Ctx& ctx, bool* sense)
    {
        const std::uint64_t old = *sense ? 1 : 0;
        std::uint64_t c;
        while (true) {
            c = ctx.load(count_);
            if (ctx.cas(count_, c, c - 1) == c)
                break;
        }
        if (c == 1) {
            // Last arriver: reset and release everyone.
            ctx.store(count_, participants_);
            ctx.store(sense_, old ^ 1);
        } else {
            ctx.spin_while_equal(sense_, old);
        }
        *sense = !*sense;
    }

  private:
    Ref count_;
    Ref sense_;
    std::uint64_t participants_;
};

} // namespace nucalock::harness

#endif // NUCALOCK_HARNESS_BARRIER_HPP
