#include "harness/options.hpp"

#include <charconv>

#include "locks/any_lock.hpp"
#include "sim/faults.hpp"

namespace nucalock::harness {
namespace {

bool
split_arg(const std::string& arg, std::string* key, std::string* value)
{
    if (arg.rfind("--", 0) != 0)
        return false;
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos) {
        *key = arg.substr(2);
        value->clear();
        return true;
    }
    *key = arg.substr(2, eq - 2);
    *value = arg.substr(eq + 1);
    return true;
}

template <typename T>
bool
parse_number(const std::string& text, T* out)
{
    const char* first = text.data();
    const char* last = text.data() + text.size();
    auto [ptr, ec] = std::from_chars(first, last, *out);
    return ec == std::errc() && ptr == last;
}

bool
parse_double(const std::string& text, double* out)
{
    try {
        std::size_t used = 0;
        *out = std::stod(text, &used);
        return used == text.size();
    } catch (...) {
        return false;
    }
}

CliParse
fail(const std::string& message)
{
    return CliParse{std::nullopt, message};
}

} // namespace

std::optional<ShapeSpec>
parse_shape(const std::string& text)
{
    const std::size_t x = text.find('x');
    if (x == std::string::npos || x == 0 || x + 1 == text.size())
        return std::nullopt;
    ShapeSpec shape;
    if (!parse_number(text.substr(0, x), &shape.nodes) ||
        !parse_number(text.substr(x + 1), &shape.cpus_per_node) ||
        shape.nodes < 1 || shape.cpus_per_node < 1)
        return std::nullopt;
    return shape;
}

std::optional<std::vector<ShapeSpec>>
parse_shape_list(const std::string& text)
{
    std::vector<ShapeSpec> shapes;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t comma = text.find(',', start);
        if (comma == std::string::npos)
            comma = text.size();
        const auto shape = parse_shape(text.substr(start, comma - start));
        if (!shape)
            return std::nullopt;
        shapes.push_back(*shape);
        start = comma + 1;
    }
    if (shapes.empty())
        return std::nullopt;
    return shapes;
}

std::string
cli_usage()
{
    return "nucabench — run the paper's lock microbenchmarks on the NUCA "
           "simulator\n"
           "\n"
           "usage: nucabench [--bench=new|traditional|uncontested|app]\n"
           "                 [--lock=NAME|ALL] [--nodes=N] [--cpus-per-node=N]\n"
           "                 [--shape=NxC] [--threads=N] [--critical-work=INTS]\n"
           "                 [--private-work=ITERS] [--iterations=N]\n"
           "                 [--nuca-ratio=R] [--seed=S] [--preemption]\n"
           "                 [--faults=SPEC] [--csv] [--json=PATH]\n"
           "                 [--app=kv|SPLASH2_NAME] [--kv-keys=N]\n"
           "                 [--kv-stripes=N] [--kv-read-pct=P]\n"
           "                 [--kv-write-pct=P] [--kv-scan-len=N]\n"
           "                 [--kv-skew=S] [--kv-ops=N] [--kv-storms=N]\n"
           "                 [--jobs=N] [--reactive-slow=N] [--reactive-fast=N]\n"
           "                 [--adaptive-epoch=N] [--adaptive-spin-up=N]\n"
           "                 [--adaptive-spin-down=N] [--adaptive-remote-frac=P]\n"
           "                 [--adaptive-link-util=P] [--adaptive-storm=N]\n"
           "                 [--adaptive-quiet=N] [--adaptive-cooldown=N]\n"
           "                 [--help]\n"
           "\n"
           "--jobs=N runs independent benchmark runs on N host threads\n"
           "(default: $NUCALOCK_JOBS, else hardware concurrency). Results\n"
           "and reports are bit-identical at every --jobs level.\n"
           "\n"
           "--shape=NxC is shorthand for --nodes=N --cpus-per-node=C; the\n"
           "simulator scales to 64x16 = 1024 simulated cpus.\n"
           "\n"
           "locks: TATAS TATAS_EXP TICKET ANDERSON MCS CLH RH HBO HBO_GT\n"
           "       HBO_GT_SD HBO_HIER REACTIVE COHORT CLH_TRY ADAPTIVE\n"
           "       (RH: --nodes<=2)\n"
           "\n"
           "--faults takes '+'-separated presets (new bench only): holder,\n"
           "publish, spinner, spike, stall, death, holderdeath, chaos,\n"
           "none. Victims and times derive deterministically from --seed.\n"
           "\n"
           "--bench=app drives an application model; --app=kv (default) is\n"
           "the sharded KV service over the striped hash map, tunable with\n"
           "the --kv-* knobs (keys, stripes, read/write mix, Zipf skew,\n"
           "ops per thread, resize storms). Any SPLASH-2 descriptor name\n"
           "(e.g. --app=Raytrace) runs that model instead.\n";
}

CliParse
parse_cli(const std::vector<std::string>& args)
{
    CliOptions opts;
    bool threads_given = false;
    for (const std::string& arg : args) {
        std::string key;
        std::string value;
        if (!split_arg(arg, &key, &value))
            return fail("arguments must look like --key=value, got '" + arg +
                        "'");

        if (key == "help") {
            opts.help = true;
        } else if (key == "bench") {
            if (value == "new")
                opts.bench = CliBench::New;
            else if (value == "traditional")
                opts.bench = CliBench::Traditional;
            else if (value == "uncontested")
                opts.bench = CliBench::Uncontested;
            else if (value == "app")
                opts.bench = CliBench::App;
            else
                return fail("unknown bench '" + value + "'");
        } else if (key == "lock") {
            if (value != "ALL" && !locks::parse_lock_name(value))
                return fail("unknown lock '" + value + "'");
            opts.lock = value;
        } else if (key == "nodes") {
            if (!parse_number(value, &opts.nodes) || opts.nodes < 1)
                return fail("bad --nodes '" + value + "'");
        } else if (key == "cpus-per-node") {
            if (!parse_number(value, &opts.cpus_per_node) ||
                opts.cpus_per_node < 1)
                return fail("bad --cpus-per-node '" + value + "'");
        } else if (key == "shape") {
            // --shape=NxC is shorthand for --nodes=N --cpus-per-node=C.
            const auto shape = parse_shape(value);
            if (!shape)
                return fail("bad --shape '" + value + "' (want NxC, e.g. 2x14)");
            opts.nodes = shape->nodes;
            opts.cpus_per_node = shape->cpus_per_node;
        } else if (key == "threads") {
            if (!parse_number(value, &opts.threads) || opts.threads < 1)
                return fail("bad --threads '" + value + "'");
            threads_given = true;
        } else if (key == "critical-work") {
            if (!parse_number(value, &opts.critical_work))
                return fail("bad --critical-work '" + value + "'");
        } else if (key == "private-work") {
            if (!parse_number(value, &opts.private_work))
                return fail("bad --private-work '" + value + "'");
        } else if (key == "iterations") {
            if (!parse_number(value, &opts.iterations) || opts.iterations == 0)
                return fail("bad --iterations '" + value + "'");
        } else if (key == "nuca-ratio") {
            if (!parse_double(value, &opts.nuca_ratio) || opts.nuca_ratio < 0.0)
                return fail("bad --nuca-ratio '" + value + "'");
            if (opts.nuca_ratio != 0.0 && opts.nuca_ratio < 1.0)
                return fail("--nuca-ratio must be >= 1 (or 0 for default)");
        } else if (key == "app") {
            if (value.empty())
                return fail("--app needs a name (kv or a SPLASH-2 app)");
            opts.app = value;
        } else if (key == "kv-keys") {
            if (!parse_number(value, &opts.kv_keys) || opts.kv_keys == 0)
                return fail("bad --kv-keys '" + value + "'");
        } else if (key == "kv-stripes") {
            if (!parse_number(value, &opts.kv_stripes) || opts.kv_stripes == 0)
                return fail("bad --kv-stripes '" + value + "'");
        } else if (key == "kv-read-pct") {
            if (!parse_number(value, &opts.kv_read_pct) ||
                opts.kv_read_pct > 100)
                return fail("bad --kv-read-pct '" + value + "' (want 0..100)");
        } else if (key == "kv-write-pct") {
            if (!parse_number(value, &opts.kv_write_pct) ||
                opts.kv_write_pct > 100)
                return fail("bad --kv-write-pct '" + value + "' (want 0..100)");
        } else if (key == "kv-scan-len") {
            if (!parse_number(value, &opts.kv_scan_len) ||
                opts.kv_scan_len == 0)
                return fail("bad --kv-scan-len '" + value + "'");
        } else if (key == "kv-skew") {
            if (!parse_double(value, &opts.kv_skew) || opts.kv_skew < 0.0)
                return fail("bad --kv-skew '" + value + "' (want >= 0)");
        } else if (key == "kv-ops") {
            if (!parse_number(value, &opts.kv_ops) || opts.kv_ops == 0)
                return fail("bad --kv-ops '" + value + "'");
        } else if (key == "kv-storms") {
            if (!parse_number(value, &opts.kv_storms))
                return fail("bad --kv-storms '" + value + "'");
        } else if (key == "seed") {
            if (!parse_number(value, &opts.seed))
                return fail("bad --seed '" + value + "'");
        } else if (key == "preemption") {
            opts.preemption = true;
        } else if (key == "faults") {
            opts.faults = value;
        } else if (key == "csv") {
            opts.csv = true;
        } else if (key == "json") {
            if (value.empty())
                return fail("--json needs a path (use - for stdout)");
            opts.json = value;
        } else if (key == "trace") {
            if (value.empty())
                return fail("--trace needs a path");
            opts.trace = value;
        } else if (key == "traffic") {
            opts.traffic = true;
        } else if (key == "memtrace") {
            if (value.empty())
                return fail("--memtrace needs a path");
            opts.memtrace = value;
        } else if (key == "check-schema") {
            if (value.empty())
                return fail("--check-schema needs a report file");
            opts.check_schema = value;
        } else if (key == "robustness") {
            if (value.empty())
                return fail("--robustness needs a report file");
            opts.robustness = value;
        } else if (key == "diff") {
            const std::size_t comma = value.find(',');
            if (comma == std::string::npos || comma == 0 ||
                comma + 1 == value.size())
                return fail("--diff needs two report files: --diff=A,B");
            opts.diff = value;
        } else if (key == "counters") {
            opts.counters = true;
        } else if (key == "jobs") {
            if (!parse_number(value, &opts.jobs) || opts.jobs < 1 ||
                opts.jobs > 1024)
                return fail("bad --jobs '" + value + "' (want 1..1024)");
        } else if (key == "reactive-slow") {
            if (!parse_number(value, &opts.params.reactive_slow_threshold) ||
                opts.params.reactive_slow_threshold == 0)
                return fail("bad --reactive-slow '" + value + "'");
        } else if (key == "reactive-fast") {
            if (!parse_number(value, &opts.params.reactive_fast_threshold) ||
                opts.params.reactive_fast_threshold == 0)
                return fail("bad --reactive-fast '" + value + "'");
        } else if (key == "adaptive-epoch") {
            if (!parse_number(value, &opts.params.adaptive.epoch) ||
                opts.params.adaptive.epoch == 0)
                return fail("bad --adaptive-epoch '" + value + "'");
        } else if (key == "adaptive-spin-up") {
            if (!parse_number(value, &opts.params.adaptive.spin_up))
                return fail("bad --adaptive-spin-up '" + value + "'");
        } else if (key == "adaptive-spin-down") {
            if (!parse_number(value, &opts.params.adaptive.spin_down))
                return fail("bad --adaptive-spin-down '" + value + "'");
        } else if (key == "adaptive-remote-frac") {
            if (!parse_number(value, &opts.params.adaptive.remote_frac_pct) ||
                opts.params.adaptive.remote_frac_pct > 100)
                return fail("bad --adaptive-remote-frac '" + value +
                            "' (want 0..100)");
        } else if (key == "adaptive-link-util") {
            if (!parse_number(value, &opts.params.adaptive.link_util_pct) ||
                opts.params.adaptive.link_util_pct > 100)
                return fail("bad --adaptive-link-util '" + value +
                            "' (want 0..100)");
        } else if (key == "adaptive-storm") {
            if (!parse_number(value, &opts.params.adaptive.storm_abandons) ||
                opts.params.adaptive.storm_abandons == 0)
                return fail("bad --adaptive-storm '" + value + "'");
        } else if (key == "adaptive-quiet") {
            if (!parse_number(value, &opts.params.adaptive.quiet_epochs) ||
                opts.params.adaptive.quiet_epochs == 0)
                return fail("bad --adaptive-quiet '" + value + "'");
        } else if (key == "adaptive-cooldown") {
            if (!parse_number(value, &opts.params.adaptive.cooldown_acquires))
                return fail("bad --adaptive-cooldown '" + value + "'");
        } else {
            return fail("unknown option '--" + key + "'");
        }
    }

    if (!opts.trace.empty() && opts.lock == "ALL")
        return fail("--trace needs a single --lock (not ALL)");
    if (!opts.memtrace.empty() && opts.lock == "ALL")
        return fail("--memtrace needs a single --lock (not ALL)");
    if (!threads_given)
        opts.threads = opts.nodes * opts.cpus_per_node; // full machine
    if (opts.threads > opts.nodes * opts.cpus_per_node)
        return fail("--threads exceeds nodes*cpus-per-node");
    if (opts.lock == "RH" && opts.nodes > 2)
        return fail("RH supports at most two nodes");
    if (opts.kv_read_pct + opts.kv_write_pct > 100)
        return fail("--kv-read-pct + --kv-write-pct must be <= 100");
    if (!opts.faults.empty()) {
        if (opts.bench != CliBench::New)
            return fail("--faults is only supported with --bench=new");
        if (!sim::FaultPlan::parse(opts.faults, opts.seed, opts.threads))
            return fail("bad --faults spec '" + opts.faults + "'");
    }
    return CliParse{opts, ""};
}

} // namespace nucalock::harness
