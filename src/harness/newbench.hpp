/**
 * @file
 * The paper's "new microbenchmark" (section 5.3, Fig 4/5, Table 2): a fixed
 * number of threads alternating between noncritical private work (a static
 * delay plus a random delay of similar size) and a critical section that
 * modifies `critical_work` elements of a shared vector. Contention is
 * raised by growing the critical work, exactly as in the paper.
 */
#ifndef NUCALOCK_HARNESS_NEWBENCH_HPP
#define NUCALOCK_HARNESS_NEWBENCH_HPP

#include <cstdint>

#include "harness/results.hpp"
#include "locks/any_lock.hpp"
#include "locks/params.hpp"
#include "obs/probe.hpp"
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "sim/invariants.hpp"
#include "sim/trace.hpp"
#include "topology/mapping.hpp"

namespace nucalock::harness {

struct NewBenchConfig
{
    Topology topology = Topology::wildfire();
    sim::LatencyModel latency = sim::LatencyModel::wildfire();
    locks::LockParams params;
    int threads = 28;
    Placement placement = Placement::RoundRobinNodes;
    std::uint32_t iterations_per_thread = 60;
    /** Shared-vector elements (4-byte ints) modified in the CS. */
    std::uint32_t critical_work = 1500;
    /** Static noncritical delay, in empty loop iterations; a random delay
     *  in [0, private_work) is added on top (Fig 4 lines 12-17). */
    std::uint32_t private_work = 4000;
    /** Ints per cache line: 64-byte lines of 4-byte ints. */
    std::uint32_t ints_per_line = 16;
    std::uint64_t seed = 1;
    /** Use preemption injection (Table 4's 30-cpu multiprogramming runs). */
    bool preemption = false;
    sim::SimTime preempt_mean_interval = 40'000'000;
    sim::SimTime preempt_duration = 10'000'000;

    /** Deterministic fault plan executed against the run (sim/faults.hpp). */
    sim::FaultPlan fault_plan;
    /** Invariant-checker progress watchdog window; 0 = disabled. */
    sim::SimTime watchdog_window_ns = 0;
    /** Fairness window for the checker's bypass accounting; 0 = record only. */
    std::uint64_t fairness_window = 0;
    /**
     * Bounded-wait timeout survivors use when the plan kills threads; a
     * thread whose acquire_for() times out stops iterating (the lock was
     * abandoned), keeping the run terminating instead of deadlocking.
     */
    sim::SimTime recovery_timeout_ns = 20'000'000;

    /**
     * Lock-event probe sink installed on the machine for the run (see
     * src/obs/). Non-owning; nullptr = observability off. Installing a
     * sink must not change the simulated run — the result's
     * acquisition_order_hash is bit-identical either way.
     */
    obs::ProbeSink* probe = nullptr;

    /**
     * Bin width for the time-binned bus/link utilisation series
     * (SimMemory::enable_contention_series), landing in
     * BenchResult::contention; 0 = occupancy totals and queue-delay
     * histograms only (always collected).
     */
    sim::SimTime contention_bin_ns = 0;

    /**
     * Memory-access recorder attached for the run (sim/trace.hpp).
     * Non-owning; nullptr = off. Event/drop counts land in
     * BenchResult::memtrace_events / memtrace_dropped.
     */
    sim::TraceRecorder* memory_trace = nullptr;
};

/** Run the new microbenchmark for @p kind. */
BenchResult run_newbench(locks::LockKind kind, const NewBenchConfig& config);

} // namespace nucalock::harness

#endif // NUCALOCK_HARNESS_NEWBENCH_HPP
