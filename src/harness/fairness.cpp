#include "harness/fairness.hpp"

namespace nucalock::harness {

FairnessResult
run_fairness(locks::LockKind kind, const NewBenchConfig& config)
{
    const BenchResult bench = run_newbench(kind, config);
    FairnessResult result;
    result.finish_times = bench.finish_times;
    result.spread_pct = bench.fairness_spread_pct;
    return result;
}

} // namespace nucalock::harness
