/**
 * @file
 * Uncontested-latency microbenchmark (paper section 5.1, Table 1).
 *
 * Measures one acquire-release pair when the previous owner is (a) the same
 * processor, (b) another processor in the same node, (c) a processor in a
 * remote node — with no concurrent contention (ownership alternates through
 * an out-of-band turn variable that is not part of the measured interval).
 */
#ifndef NUCALOCK_HARNESS_UNCONTESTED_HPP
#define NUCALOCK_HARNESS_UNCONTESTED_HPP

#include <cstdint>

#include "locks/any_lock.hpp"
#include "locks/params.hpp"
#include "sim/engine.hpp"

namespace nucalock::harness {

/** Average acquire+release latency (ns) for the three Table 1 scenarios. */
struct UncontestedResult
{
    double same_processor_ns = 0.0;
    double same_node_ns = 0.0;
    double remote_node_ns = 0.0;
};

struct UncontestedConfig
{
    Topology topology = Topology::wildfire();
    sim::LatencyModel latency = sim::LatencyModel::wildfire();
    locks::LockParams params;
    std::uint32_t iterations = 1000;
    std::uint32_t warmup = 10;
    std::uint64_t seed = 1;
};

/** Run all three scenarios for @p kind. */
UncontestedResult run_uncontested(locks::LockKind kind,
                                  const UncontestedConfig& config);

/**
 * Measure the average acquire+release pair latency when ownership
 * alternates between @p cpu_a and @p cpu_b (equal cpus = same-processor
 * scenario).
 */
double measure_handover_ns(locks::LockKind kind, const UncontestedConfig& config,
                           int cpu_a, int cpu_b);

} // namespace nucalock::harness

#endif // NUCALOCK_HARNESS_UNCONTESTED_HPP
