/**
 * @file
 * Command-line options for the nucabench tool (tools/nucabench.cpp):
 * parsing is kept in the library so it is unit-testable.
 */
#ifndef NUCALOCK_HARNESS_OPTIONS_HPP
#define NUCALOCK_HARNESS_OPTIONS_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "locks/params.hpp"

namespace nucalock::harness {

/** Which benchmark nucabench runs. */
enum class CliBench
{
    New,         // the paper's new microbenchmark (default)
    Traditional, // the traditional microbenchmark
    Uncontested, // Table 1 style latency probes
    App,         // application models (kv_service / SPLASH-2 descriptors)
};

/** Parsed command line. */
struct CliOptions
{
    CliBench bench = CliBench::New;
    /** Lock name as in locks::lock_name(), or "ALL". */
    std::string lock = "ALL";
    int nodes = 2;
    int cpus_per_node = 14;
    /** Defaults to the full machine (nodes * cpus_per_node) when not
     *  given on the command line. */
    int threads = 28;
    std::uint32_t critical_work = 1500;
    std::uint32_t private_work = 4000;
    std::uint32_t iterations = 60;
    /** 0 = calibrated WildFire model; otherwise LatencyModel::scaled(). */
    double nuca_ratio = 0.0;
    std::uint64_t seed = 1;
    bool preemption = false;
    /**
     * Fault-plan spec for sim::FaultPlan::parse(): '+'-separated presets
     * out of {none, holder, publish, spinner, spike, stall, death, chaos}.
     * Empty = no fault injection. Only valid with --bench=new.
     */
    std::string faults;
    bool csv = false;
    /** Write a machine-readable report (obs/report.hpp) to this path;
     *  "-" = stdout. Empty = off. */
    std::string json;
    /** nucaprof only: write a Chrome/Perfetto trace to this path (requires
     *  a single --lock, not ALL). Empty = off. */
    std::string trace;
    /** nucaprof only: print the traffic-attribution tables (per-lock
     *  per-phase local/global transactions, link contention). */
    bool traffic = false;
    /** nucaprof only: record the memory-access trace to this CSV path
     *  (requires a single --lock, not ALL). Empty = off. */
    std::string memtrace;
    /** nucaprof only: validate an existing report file against the schema
     *  and exit; no benchmark runs. */
    std::string check_schema;
    /** nucaprof only: render the "robustness" object of an existing report
     *  (nucacheck --campaign output) and exit; no benchmark runs. */
    std::string robustness;
    /** nucaprof only: "A,B" — diff two report files over their
     *  deterministic fields (the nondeterministic "host" and
     *  "native_traffic" objects are stripped) and exit; no benchmark
     *  runs. */
    std::string diff;
    /** nucaprof only: probe hardware-counter availability (one line per
     *  perf event: available / multiplexed / denied / unsupported) and
     *  exit; no benchmark runs. */
    bool counters = false;
    /**
     * --bench=app only: which application model to drive — "kv" (the
     * sharded KV-service model, apps/kv_service.hpp) or a SPLASH-2
     * descriptor name (apps/workload.hpp). Name existence is checked by
     * the tool, which owns the app registry.
     */
    std::string app = "kv";
    /** --app=kv knobs; defaults mirror apps::KvServiceConfig. */
    std::uint64_t kv_keys = 4096;
    std::uint64_t kv_stripes = 16;
    std::uint32_t kv_read_pct = 80;
    std::uint32_t kv_write_pct = 15;
    std::uint32_t kv_scan_len = 16;
    double kv_skew = 0.9;
    std::uint32_t kv_ops = 1000;
    std::uint32_t kv_storms = 1;
    /**
     * Host worker threads for independent runs (exec::Executor). 0 = the
     * default: the NUCALOCK_JOBS environment variable when set, otherwise
     * hardware concurrency. Results are bit-identical at every level.
     */
    int jobs = 0;
    /**
     * Lock tuning knobs forwarded into every run's LockParams. The CLI
     * exposes the REACTIVE mode-switch thresholds (--reactive-slow /
     * --reactive-fast) and the ADAPTIVE policy knobs (--adaptive-*) so
     * fig9/fig10-style sensitivity sweeps can tune both from the command
     * line; everything else keeps its params.hpp default.
     */
    locks::LockParams params;
    bool help = false;
};

/** Result of parsing: options, or an error message. */
struct CliParse
{
    std::optional<CliOptions> options;
    std::string error;
};

/** One simulated machine shape: `NxC` = N nodes × C cpus per node. */
struct ShapeSpec
{
    int nodes = 0;
    int cpus_per_node = 0;

    int total_cpus() const { return nodes * cpus_per_node; }

    friend bool operator==(const ShapeSpec&, const ShapeSpec&) = default;
};

/**
 * Parse one "NxC" shape (e.g. "2x14", "64x16"); both components must be
 * positive integers. Returns nullopt on malformed input.
 */
std::optional<ShapeSpec> parse_shape(const std::string& text);

/**
 * Parse a comma-separated shape list "NxC[,NxC...]" (the throughput
 * bench's --shape flag). Returns nullopt when the list is empty or any
 * element is malformed.
 */
std::optional<std::vector<ShapeSpec>>
parse_shape_list(const std::string& text);

/**
 * Parse `--key=value` style arguments (and `--help`). Unknown keys, bad
 * values, or out-of-range combinations produce an error message.
 */
CliParse parse_cli(const std::vector<std::string>& args);

/** The --help text. */
std::string cli_usage();

} // namespace nucalock::harness

#endif // NUCALOCK_HARNESS_OPTIONS_HPP
