/**
 * @file
 * Scalable barrier algorithms beyond the centralized sense-reversing one
 * (harness/barrier.hpp): a combining-tree barrier and a dissemination
 * barrier, both from the classic Mellor-Crummey & Scott toolbox the paper
 * builds on. The SPLASH-2 application models are barrier-phased, so the
 * barrier itself must not become the bottleneck on wide machines.
 */
#ifndef NUCALOCK_HARNESS_BARRIERS_HPP
#define NUCALOCK_HARNESS_BARRIERS_HPP

#include <cstdint>
#include <vector>

#include "common/logging.hpp"
#include "locks/context.hpp"

namespace nucalock::harness {

/**
 * Combining-tree barrier: threads decrement per-group counters arranged in
 * a tree of arity @p kArity; the last arriver at each level proceeds
 * upward, and the thread that closes the root flips a global sense word
 * everyone spins on. Contention per word is bounded by the arity instead
 * of the thread count.
 */
template <locks::LockContext Ctx>
class TreeBarrier
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr std::uint64_t kArity = 4;

    TreeBarrier(Machine& machine, int participants, int home_node = 0)
        : participants_(static_cast<std::uint64_t>(participants)),
          sense_(machine.alloc(0, home_node))
    {
        NUCA_ASSERT(participants > 0);
        // Build counter levels bottom-up until one group remains.
        std::uint64_t width = participants_;
        while (width > 1) {
            const std::uint64_t groups = (width + kArity - 1) / kArity;
            Level level;
            level.width = width;
            level.first = machine.alloc_array(
                static_cast<std::uint32_t>(groups), 0, home_node);
            // Group g expects min(kArity, width - g*kArity) arrivals.
            levels_.push_back(level);
            width = groups;
        }
    }

    /** Block until all participants arrive. Flips *@p sense on exit. */
    void
    wait(Ctx& ctx, bool* sense)
    {
        const std::uint64_t old = *sense ? 1 : 0;
        std::uint64_t index = static_cast<std::uint64_t>(ctx.thread_id());
        bool winner = true;
        for (Level& level : levels_) {
            const std::uint64_t group = index / kArity;
            const std::uint64_t expected =
                std::min(kArity, level.width - group * kArity);
            // fetch-increment the group's arrival count (cas loop).
            const Ref counter = level.first.at(static_cast<std::uint32_t>(group));
            std::uint64_t seen;
            while (true) {
                seen = ctx.load(counter);
                if (ctx.cas(counter, seen, seen + 1) == seen)
                    break;
            }
            if (seen + 1 < expected) {
                winner = false; // someone else carries this group upward
                break;
            }
            // Last arriver of the group: reset for reuse and move up.
            ctx.store(counter, 0);
            index = group;
        }
        if (winner)
            ctx.store(sense_, old ^ 1); // root closed: release everyone
        else
            ctx.spin_while_equal(sense_, old);
        *sense = !*sense;
    }

  private:
    struct Level
    {
        Ref first;
        std::uint64_t width = 0;
    };

    std::uint64_t participants_;
    Ref sense_;
    std::vector<Level> levels_;
};

/**
 * Dissemination barrier: ceil(log2(P)) rounds; in round r, thread i
 * signals thread (i + 2^r) mod P and waits for the signal from
 * (i - 2^r) mod P. No single hot word at all; reuse is epoch-numbered so
 * no reinitialization is needed between phases.
 */
template <locks::LockContext Ctx>
class DisseminationBarrier
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    DisseminationBarrier(Machine& machine, int participants, int home_node = 0)
        : participants_(static_cast<std::uint64_t>(participants)),
          epochs_(static_cast<std::size_t>(participants), 0)
    {
        NUCA_ASSERT(participants > 0);
        rounds_ = 0;
        while ((std::uint64_t{1} << rounds_) < participants_)
            ++rounds_;
        if (rounds_ == 0)
            rounds_ = participants_ == 1 ? 0 : 1;
        for (std::uint64_t r = 0; r < rounds_; ++r)
            flags_.push_back(machine.alloc_array(
                static_cast<std::uint32_t>(participants_), 0, home_node));
    }

    /** Block until all participants arrive. */
    void
    wait(Ctx& ctx)
    {
        const auto me = static_cast<std::uint64_t>(ctx.thread_id());
        NUCA_ASSERT(me < participants_, "thread id outside barrier");
        const std::uint64_t epoch = ++epochs_[static_cast<std::size_t>(me)];
        for (std::uint64_t r = 0; r < rounds_; ++r) {
            const std::uint64_t stride = std::uint64_t{1} << r;
            const auto to = static_cast<std::uint32_t>((me + stride) %
                                                       participants_);
            // Signal our downstream partner's slot; our upstream partner
            // ((me - stride) mod P) signals *our* slot.
            ctx.store(flags_[static_cast<std::size_t>(r)].at(to), epoch);
            const Ref inbound =
                flags_[static_cast<std::size_t>(r)].at(static_cast<std::uint32_t>(me));
            while (ctx.load(inbound) < epoch)
                ctx.spin_while_equal(inbound, epoch - 1);
        }
    }

  private:
    std::uint64_t participants_;
    std::uint64_t rounds_ = 0;
    std::vector<Ref> flags_;        // flags_[round].at(thread)
    std::vector<std::uint64_t> epochs_; // host-side, one writer each
};

} // namespace nucalock::harness

#endif // NUCALOCK_HARNESS_BARRIERS_HPP
