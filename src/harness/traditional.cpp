#include "harness/traditional.hpp"

#include "common/logging.hpp"

namespace nucalock::harness {

using locks::AnyLock;
using locks::LockKind;
using sim::MemRef;
using sim::SimContext;
using sim::SimMachine;

namespace {
/** `owner` value before anyone has held the lock (thread ids are id+1). */
constexpr std::uint64_t kNobody = 0;
} // namespace

BenchResult
run_traditional(LockKind kind, const TraditionalConfig& config)
{
    SimMachine machine(config.topology, config.latency,
                       sim::SimConfig{.seed = config.seed});
    AnyLock<SimContext> lock(machine, kind, config.params);
    machine.install_probe(config.probe);
    if (config.contention_bin_ns != 0)
        machine.memory().enable_contention_series(config.contention_bin_ns);
    if (config.memory_trace != nullptr)
        machine.memory().set_trace_hook(config.memory_trace->hook());

    // Shared benchmark state. `owner` and `active` live in simulated memory
    // because observing them is part of the benchmark; the handoff counters
    // are host-side bookkeeping guarded by the lock (no simulated traffic).
    const MemRef owner = machine.alloc(kNobody, 0);
    const MemRef active =
        machine.alloc(static_cast<std::uint64_t>(config.threads), 0);

    std::uint64_t handoffs = 0;
    std::uint64_t acquires = 0;
    int prev_node = -1;
    // FNV-1a over the acquiring thread ids (see BenchResult).
    std::uint64_t order_hash = 0xcbf29ce484222325ULL;

    machine.add_threads(
        config.threads, config.placement, [&](SimContext& ctx, int) {
            const auto me = static_cast<std::uint64_t>(ctx.thread_id()) + 1;
            for (std::uint32_t i = 0; i < config.iterations_per_thread; ++i) {
                // Wait to observe a new owner (unless we are the last
                // thread still running).
                while (ctx.load(owner) == me && ctx.load(active) > 1)
                    ctx.delay(32);

                lock.acquire(ctx);
                ctx.store(owner, me);
                if (prev_node >= 0 && prev_node != ctx.node())
                    ++handoffs;
                prev_node = ctx.node();
                ++acquires;
                order_hash ^= static_cast<std::uint64_t>(ctx.thread_id());
                order_hash *= 0x100000001b3ULL;
                lock.release(ctx);
            }
            // Retire from the benchmark.
            while (true) {
                const std::uint64_t a = ctx.load(active);
                if (ctx.cas(active, a, a - 1) == a)
                    break;
            }
        });
    machine.run();

    BenchResult result;
    result.total_time = machine.now();
    result.total_acquires = acquires;
    result.avg_iteration_ns =
        static_cast<double>(machine.now()) / static_cast<double>(acquires);
    result.node_handoff_ratio =
        acquires > 1 ? static_cast<double>(handoffs) /
                           static_cast<double>(acquires - 1)
                     : 0.0;
    result.traffic = machine.traffic();
    result.traffic_attribution = machine.traffic_attribution();
    result.contention = machine.contention();
    result.finish_times.reserve(static_cast<std::size_t>(config.threads));
    for (int t = 0; t < config.threads; ++t)
        result.finish_times.push_back(machine.finish_time(t));
    result.fairness_spread_pct = fairness_spread_pct(result.finish_times);
    result.acquisition_order_hash = order_hash;
    result.sim_memory_accesses = machine.memory().num_accesses();
    result.sim_fiber_switches = machine.fiber_switches();
    if (config.memory_trace != nullptr) {
        result.memtrace_events = config.memory_trace->events().size();
        result.memtrace_dropped = config.memory_trace->dropped();
    }
    NUCA_ASSERT(acquires == static_cast<std::uint64_t>(config.threads) *
                                config.iterations_per_thread);
    return result;
}

} // namespace nucalock::harness
