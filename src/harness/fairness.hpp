/**
 * @file
 * Fairness study (paper section 6, Fig 8): per-thread finish-time spread of
 * the new microbenchmark.
 */
#ifndef NUCALOCK_HARNESS_FAIRNESS_HPP
#define NUCALOCK_HARNESS_FAIRNESS_HPP

#include "harness/newbench.hpp"

namespace nucalock::harness {

/** Per-thread finish times and the paper's spread metric. */
struct FairnessResult
{
    std::vector<sim::SimTime> finish_times;
    double spread_pct = 0.0;
};

/** Run the fairness study for @p kind on the new microbenchmark. */
FairnessResult run_fairness(locks::LockKind kind, const NewBenchConfig& config);

} // namespace nucalock::harness

#endif // NUCALOCK_HARNESS_FAIRNESS_HPP
