#include "harness/newbench.hpp"

#include <chrono>

#include "common/logging.hpp"

namespace nucalock::harness {

using locks::AnyLock;
using locks::LockKind;
using sim::MemRef;
using sim::SimContext;
using sim::SimMachine;

BenchResult
run_newbench(LockKind kind, const NewBenchConfig& config)
{
    NUCA_ASSERT(config.ints_per_line > 0);
    sim::SimConfig sim_cfg;
    sim_cfg.seed = config.seed;
    sim_cfg.preemption = config.preemption;
    sim_cfg.preempt_mean_interval = config.preempt_mean_interval;
    sim_cfg.preempt_duration = config.preempt_duration;
    SimMachine machine(config.topology, config.latency, sim_cfg);
    AnyLock<SimContext> lock(machine, kind, config.params);

    sim::FaultInjector injector(config.fault_plan);
    if (!config.fault_plan.empty())
        machine.install_faults(&injector);
    sim::InvariantConfig inv_cfg;
    inv_cfg.watchdog_window_ns = config.watchdog_window_ns;
    inv_cfg.fairness_window = config.fairness_window;
    sim::InvariantChecker checker(inv_cfg);
    machine.install_invariants(&checker);
    machine.install_probe(config.probe);
    if (config.contention_bin_ns != 0)
        machine.memory().enable_contention_series(config.contention_bin_ns);
    if (config.memory_trace != nullptr)
        machine.memory().set_trace_hook(config.memory_trace->hook());

    // The shared vector the critical section walks (Fig 4's cs_work[]),
    // one simulated line per `ints_per_line` ints, homed in node 0.
    const std::uint32_t cs_lines =
        config.critical_work == 0
            ? 0
            : (config.critical_work + config.ints_per_line - 1) /
                  config.ints_per_line;
    const MemRef cs_work =
        machine.alloc_array(cs_lines == 0 ? 1 : cs_lines, 0, 0);

    // Host-side bookkeeping guarded by the lock (no simulated traffic).
    std::uint64_t handoffs = 0;
    std::uint64_t acquires = 0;
    std::uint64_t timeouts = 0;
    int prev_node = -1;
    // FNV-1a over the sequence of acquiring thread ids: a probe-independent
    // fingerprint of the acquisition order (see BenchResult).
    std::uint64_t order_hash = 0xcbf29ce484222325ULL;

    // A plan with thread death can abandon a held lock; survivors then use
    // bounded waits and stop iterating on a timeout so the run terminates.
    const bool deaths = config.fault_plan.has_death();

    machine.add_threads(
        config.threads, config.placement, [&](SimContext& ctx, int) {
            // Random start stagger: real threads never arrive in lockstep.
            // Without it the FIFO queue locks inherit the round-robin
            // placement order forever and show a node-handoff ratio of 1.0
            // instead of the expected ~(N/2)/(N-1).
            ctx.delay(ctx.rng().next_below(2 * config.private_work + 1));
            for (std::uint32_t i = 0; i < config.iterations_per_thread; ++i) {
                ctx.cs_wait_begin();
                if (deaths) {
                    if (!lock.acquire_for(ctx, config.recovery_timeout_ns)) {
                        ctx.cs_wait_abort();
                        ++timeouts;
                        break;
                    }
                } else {
                    lock.acquire(ctx);
                }
                ctx.cs_enter();
                if (prev_node >= 0 && prev_node != ctx.node())
                    ++handoffs;
                prev_node = ctx.node();
                ++acquires;
                order_hash ^= static_cast<std::uint64_t>(ctx.thread_id());
                order_hash *= 0x100000001b3ULL;
                if (cs_lines > 0)
                    ctx.touch_array(cs_work, cs_lines, /*write=*/true);
                ctx.cs_exit();
                lock.release(ctx);

                // Noncritical work: one static and one random delay of
                // similar size (Fig 4 lines 9-17).
                ctx.delay(config.private_work);
                if (config.private_work > 0)
                    ctx.delay(ctx.rng().next_below(config.private_work));
            }
        });
    const auto host_t0 = std::chrono::steady_clock::now();
    machine.run();
    const auto host_t1 = std::chrono::steady_clock::now();

    BenchResult result;
    result.host_run_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(host_t1 -
                                                             host_t0)
            .count());
    result.total_time = machine.now();
    result.total_acquires = acquires;
    result.avg_iteration_ns =
        static_cast<double>(machine.now()) / static_cast<double>(acquires);
    result.node_handoff_ratio =
        acquires > 1 ? static_cast<double>(handoffs) /
                           static_cast<double>(acquires - 1)
                     : 0.0;
    result.traffic = machine.traffic();
    result.traffic_attribution = machine.traffic_attribution();
    result.contention = machine.contention();
    result.finish_times.reserve(static_cast<std::size_t>(config.threads));
    for (int t = 0; t < config.threads; ++t)
        result.finish_times.push_back(machine.finish_time(t));
    result.fairness_spread_pct = fairness_spread_pct(result.finish_times);
    result.acquisition_order_hash = order_hash;
    result.sim_memory_accesses = machine.memory().num_accesses();
    result.sim_fiber_switches = machine.fiber_switches();
    if (config.memory_trace != nullptr) {
        result.memtrace_events = config.memory_trace->events().size();
        result.memtrace_dropped = config.memory_trace->dropped();
    }
    result.faults_injected = injector.injected();
    result.fault_log = injector.log();
    result.mutex_violations = checker.mutual_exclusion_violations();
    result.max_bypasses = checker.max_bypasses();
    result.max_node_streak = checker.max_node_streak();
    result.lock_timeouts = timeouts;

    const auto expected = static_cast<std::uint64_t>(config.threads) *
                          config.iterations_per_thread;
    // Injected deaths/timeouts legitimately lose iterations; everything
    // else must still complete the exact count.
    if (config.fault_plan.has_death())
        NUCA_ASSERT(acquires <= expected);
    else
        NUCA_ASSERT(acquires == expected);
    NUCA_ASSERT(acquires == checker.acquisitions(),
                "checker disagrees with the workload count");
    return result;
}

} // namespace nucalock::harness
