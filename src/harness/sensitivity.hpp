/**
 * @file
 * Sensitivity studies (paper section 6, Figs 9 and 10): sweep
 * REMOTE_BACKOFF_CAP and GET_ANGRY_LIMIT for HBO_GT_SD on the new
 * microbenchmark and report run time normalized to a reference lock.
 */
#ifndef NUCALOCK_HARNESS_SENSITIVITY_HPP
#define NUCALOCK_HARNESS_SENSITIVITY_HPP

#include <cstdint>
#include <vector>

#include "harness/newbench.hpp"

namespace nucalock::harness {

/** One sweep point: parameter value and run time / reference run time. */
struct SensitivityPoint
{
    std::uint64_t value = 0;
    double normalized_time = 0.0;
};

/**
 * Fig 9: sweep HBO_GT_SD's REMOTE_BACKOFF_CAP over @p caps; times are
 * normalized to MCS under the same configuration. @p jobs fans the
 * independent runs out over exec::Executor host threads (1 = sequential,
 * 0 = executor default); the points are identical at every level.
 */
std::vector<SensitivityPoint>
sweep_remote_backoff_cap(const NewBenchConfig& config,
                         const std::vector<std::uint32_t>& caps,
                         int jobs = 1);

/**
 * Fig 10: sweep HBO_GT_SD's GET_ANGRY_LIMIT over @p limits; times are
 * normalized to HBO_GT under the same configuration. @p jobs as in
 * sweep_remote_backoff_cap().
 */
std::vector<SensitivityPoint>
sweep_get_angry_limit(const NewBenchConfig& config,
                      const std::vector<std::uint32_t>& limits,
                      int jobs = 1);

} // namespace nucalock::harness

#endif // NUCALOCK_HARNESS_SENSITIVITY_HPP
