#include "check/campaign.hpp"

#include <algorithm>

#include "check/explore.hpp"
#include "common/logging.hpp"
#include "exec/executor.hpp"
#include "locks/adaptive_policy.hpp"
#include "obs/probe.hpp"
#include "sim/faults.hpp"

namespace nucalock::check {

namespace {

/**
 * Witness for the ADAPTIVE demote-on-death audit: counts AdaptSwitch
 * probes whose target gear is the queue and remembers the final gear, so
 * the cell can verify that a timeout storm actually demoted the lock. A
 * failed demotion CAS means another thread already switched — then the
 * final gear is the queue and the audit is still satisfied.
 */
class AdaptSwitchCounter final : public obs::ProbeSink
{
  public:
    void
    on_event(const obs::ProbeRecord& r) override
    {
        if (r.event != obs::LockEvent::AdaptSwitch)
            return;
        final_gear_ = static_cast<int>((r.a0 >> 8) & 0xff);
        if (final_gear_ == static_cast<int>(locks::AdaptGear::Queue))
            ++demotes_;
    }

    std::uint64_t demotes() const { return demotes_; }
    int final_gear() const { return final_gear_; }

  private:
    std::uint64_t demotes_ = 0;
    int final_gear_ = -1;
};

/** The per-cell overshoot budget: base + 4x every fault suspension the
 *  preset can inflict on the departing waiter (see CampaignConfig). */
std::uint64_t
overshoot_bound(const CampaignConfig& cfg, const sim::FaultPlan& plan)
{
    std::uint64_t suspensions = 0;
    for (const sim::FaultEvent& e : plan.events)
        suspensions += e.duration;
    return cfg.overshoot_base_ns + 4 * suspensions;
}

CampaignCell
run_cell(const CampaignConfig& cfg, locks::LockKind kind,
         const std::string& preset, const CampaignShape& shape,
         std::uint64_t seed)
{
    CampaignCell cell;
    cell.lock = locks::lock_name(kind);
    cell.preset = preset;
    cell.nodes = shape.nodes;
    cell.cpus_per_node = shape.cpus_per_node;
    cell.seed = seed;

    CheckSetup setup;
    setup.kind = kind;
    setup.nodes = shape.nodes;
    setup.cpus_per_node = shape.cpus_per_node;
    setup.iterations = cfg.iterations;
    setup.seed = seed;
    setup.bounded = true;
    setup.timeout_ns = cfg.timeout_ns;
    // "none" is the baseline cell: no injector at all, so its trace is
    // byte-identical to a fault-free bounded trace.
    setup.faults = preset == "none" ? std::string{} : preset;

    const auto plan =
        sim::FaultPlan::parse(setup.faults.empty() ? "none" : setup.faults,
                              seed, threads_of(setup));
    NUCA_ASSERT(plan.has_value(), "campaign preset failed to parse: ",
                preset);
    cell.overshoot_bound_ns = overshoot_bound(cfg, *plan);

    AdaptSwitchCounter adapt_probe;
    if (kind == locks::LockKind::Adaptive)
        setup.probe = &adapt_probe;

    DefaultScheduler scheduler;
    RunReport report = run_one(setup, scheduler);

    cell.stop = sim::stop_reason_name(report.stop);
    cell.steps = report.steps;
    cell.acquisitions = report.acquisitions;
    cell.timeouts = report.timeouts;
    cell.mutex_violations = report.mutex_violations;
    cell.faults_injected = report.faults_injected;
    cell.max_overshoot_ns = report.max_overshoot_ns;
    cell.abandon = report.abandon;
    cell.leaked_nodes = report.abandon.linked_abandoned();

    // ----- recovery audit -------------------------------------------------
    // run_one's own verdict first (mutex violation / deadlock / livelock /
    // lost update beyond the death allowance), then the campaign-specific
    // invariants layered on top.
    const bool run_failed = report.failed;
    if (report.failed) {
        cell.failed = true;
        cell.what = report.what;
    } else if (report.truncated()) {
        cell.failed = true;
        cell.what = "truncated: scheduler stopped before a verdict";
    } else if (report.stop != sim::StopReason::Completed) {
        cell.failed = true;
        cell.what = std::string("survivors did not complete: ") + cell.stop;
    } else if (cell.max_overshoot_ns > cell.overshoot_bound_ns) {
        cell.failed = true;
        cell.what = "abandonment overshoot " +
                    std::to_string(cell.max_overshoot_ns) + "ns exceeds " +
                    std::to_string(cell.overshoot_bound_ns) + "ns bound";
    } else if (kind == locks::LockKind::Mcs && !plan->has_death() &&
               cell.leaked_nodes != 0) {
        // MCS is the lock whose parked nodes live in the active queue; a
        // completed fault-free-of-death run must have reclaimed or
        // rejoined every one of them. (A dead holder legitimately strands
        // the walk that would have reclaimed its successors; CLH_TRY's
        // redirect markers are arena-allocated by design, not leaks.)
        cell.failed = true;
        cell.what = "leaked queue nodes: " +
                    std::to_string(cell.leaked_nodes) +
                    " abandoned node(s) still linked at run end";
    }
#ifndef NUCALOCK_NO_PROBES
    // Graceful-degradation audit: an ADAPTIVE cell whose faults killed a
    // thread and whose abandonments reached the storm threshold must have
    // demoted to the queue gear (every abandonment path feeds the storm
    // detector, and the counter is monotonic across voluntary switches).
    // Probe-dependent, so it is compiled out with the probe sites.
    else if (kind == locks::LockKind::Adaptive && plan->has_death() &&
             report.abandon.abandons >=
                 locks::LockParams{}.adaptive.storm_abandons &&
             adapt_probe.demotes() == 0 &&
             adapt_probe.final_gear() !=
                 static_cast<int>(locks::AdaptGear::Queue)) {
        cell.failed = true;
        cell.what = "graceful degradation missed: " +
                    std::to_string(report.abandon.abandons) +
                    " abandonment(s) under a death plan with no demotion "
                    "to the queue gear";
    }
#endif

    if (!cell.failed)
        return cell;

    cell.trace = encode_trace(make_trace(setup, report.schedule));
    // Shrink only failures run_one itself can judge — the replay oracle
    // re-runs run_one and asks `failed`, which is blind to the campaign's
    // overshoot/leak audits (those are whole-run properties anyway).
    if (!run_failed || !cfg.shrink)
        return cell;

    const std::uint64_t step_cap = report.steps * 4 + 1000;
    const ScheduleOracle oracle = [&setup, step_cap](const Schedule& s) {
        ReplayScheduler candidate(s, step_cap);
        return run_one(setup, candidate).failed;
    };
    ExploreConfig short_cfg;
    short_cfg.max_steps = report.steps;
    const auto short_failure = find_short_failure(setup, short_cfg);
    const Schedule minimal = minimize_schedule(
        short_failure ? short_failure->schedule : report.schedule, oracle);
    Trace min_trace = make_trace(setup, minimal);
    cell.minimal_trace = encode_trace(min_trace);
    return cell;
}

} // namespace

void
CampaignConfig::apply_defaults()
{
    if (presets.empty())
        presets = {"none",  "holder", "publish",    "spinner",
                   "spike", "stall",  "holderdeath"};
    if (kinds.empty())
        for (locks::LockKind kind : locks::all_lock_kinds())
            if (locks::lock_supports_native_timeout(kind))
                kinds.push_back(kind);
    if (shapes.empty())
        shapes = {CampaignShape{2, 2}, CampaignShape{2, 4}};
    if (num_seeds <= 0)
        num_seeds = 1;
}

CampaignResult
run_campaign(CampaignConfig cfg)
{
    cfg.apply_defaults();

    // Flatten the sweep so cells shard across host threads; the nesting
    // (preset, lock, shape, seed) fixes the deterministic cell order.
    struct CellKey
    {
        std::string preset;
        locks::LockKind kind;
        CampaignShape shape;
        std::uint64_t seed;
    };
    std::vector<CellKey> keys;
    for (const std::string& preset : cfg.presets)
        for (locks::LockKind kind : cfg.kinds)
            for (const CampaignShape& shape : cfg.shapes)
                for (int s = 0; s < cfg.num_seeds; ++s)
                    keys.push_back(CellKey{
                        preset, kind, shape,
                        cfg.first_seed + static_cast<std::uint64_t>(s)});

    exec::Executor executor(cfg.jobs);
    CampaignResult result;
    result.cells = executor.map<CampaignCell>(
        keys.size(), [&](std::size_t i) {
            const CellKey& k = keys[i];
            return run_cell(cfg, k.kind, k.preset, k.shape, k.seed);
        });

    for (locks::LockKind kind : cfg.kinds) {
        CampaignLockSummary row;
        row.lock = locks::lock_name(kind);
        result.per_lock.push_back(row);
    }
    for (const CampaignCell& cell : result.cells) {
        if (cell.failed)
            ++result.failures;
        for (CampaignLockSummary& row : result.per_lock) {
            if (row.lock != cell.lock)
                continue;
            ++row.cells;
            if (cell.failed)
                ++row.failures;
            row.acquisitions += cell.acquisitions;
            row.timeouts += cell.timeouts;
            row.abandons += cell.abandon.abandons;
            row.parked += cell.abandon.parked;
            row.grant_races += cell.abandon.grant_races;
            row.reclaims += cell.abandon.reclaims;
            row.rejoins += cell.abandon.rejoins;
            row.unparks += cell.abandon.unparks;
            row.leaked_nodes += cell.leaked_nodes;
            row.max_overshoot_ns =
                std::max(row.max_overshoot_ns, cell.max_overshoot_ns);
        }
    }
    return result;
}

} // namespace nucalock::check
