#include "check/harness.hpp"

#include <algorithm>
#include <functional>

#include "check/broken.hpp"
#include "common/logging.hpp"
#include "locks/instrumented.hpp" // detail::lock_clock_ns
#include "sim/engine.hpp"
#include "sim/faults.hpp"
#include "sim/invariants.hpp"

namespace nucalock::check {

using locks::AnyLock;
using sim::SimContext;
using sim::SimMachine;

RunReport
run_one(const CheckSetup& setup, sim::Scheduler& scheduler)
{
    NUCA_ASSERT(setup.nodes > 0 && setup.cpus_per_node > 0);
    NUCA_ASSERT(setup.iterations > 0);

    sim::SimConfig cfg;
    cfg.seed = setup.seed;
    SimMachine machine(Topology::symmetric(setup.nodes, setup.cpus_per_node),
                       sim::LatencyModel::wildfire(), cfg);

    // Either the real algorithm or the planted-bug variant, behind the same
    // three calls the workload makes.
    std::optional<AnyLock<SimContext>> real;
    std::optional<BrokenTatasLock<SimContext>> broken;
    std::optional<BrokenAdaptiveLock<SimContext>> broken_adaptive;
    std::function<bool(SimContext&)> acquire_ok;
    std::function<void(SimContext&)> release;
    if (setup.use_broken_tatas) {
        broken.emplace(machine);
        if (setup.bounded)
            acquire_ok = [&](SimContext& ctx) {
                return locks::acquire_for(*broken, ctx, setup.timeout_ns);
            };
        else
            acquire_ok = [&](SimContext& ctx) {
                broken->acquire(ctx);
                return true;
            };
        release = [&](SimContext& ctx) { broken->release(ctx); };
    } else if (setup.use_broken_adaptive) {
        broken_adaptive.emplace(machine);
        if (setup.bounded)
            acquire_ok = [&](SimContext& ctx) {
                return locks::acquire_for(*broken_adaptive, ctx,
                                          setup.timeout_ns);
            };
        else
            acquire_ok = [&](SimContext& ctx) {
                broken_adaptive->acquire(ctx);
                return true;
            };
        release = [&](SimContext& ctx) { broken_adaptive->release(ctx); };
    } else {
        real.emplace(machine, setup.kind);
        if (setup.bounded)
            acquire_ok = [&](SimContext& ctx) {
                return real->acquire_for(ctx, setup.timeout_ns);
            };
        else
            acquire_ok = [&](SimContext& ctx) {
                real->acquire(ctx);
                return true;
            };
        release = [&](SimContext& ctx) { real->release(ctx); };
    }

    sim::InvariantChecker checker;
    machine.install_invariants(&checker);
    RecordingScheduler recorder(scheduler);
    machine.install_scheduler(&recorder);

    // Fault injection: the plan derives deterministically from the spec,
    // seed and thread count, so a trace carrying the spec replays the same
    // disturbances. Death events bound how many counter updates may be lost
    // (a thread killed between cs_enter and its store loses exactly one).
    std::optional<sim::FaultInjector> injector;
    std::uint64_t deaths = 0;
    if (!setup.faults.empty()) {
        auto plan = sim::FaultPlan::parse(setup.faults, setup.seed,
                                          threads_of(setup));
        NUCA_ASSERT(plan.has_value(),
                    "unknown fault spec (validate via setup_from_trace)");
        for (const sim::FaultEvent& e : plan->events)
            if (e.kind == sim::FaultKind::ThreadDeath ||
                e.kind == sim::FaultKind::HolderDeath)
                ++deaths;
        injector.emplace(std::move(*plan));
        machine.install_faults(&*injector);
    }
    if (setup.probe != nullptr)
        machine.install_probe(setup.probe);

    const sim::MemRef counter = machine.alloc(0, 0);
    std::uint64_t timeouts = 0;
    std::uint64_t max_overshoot = 0;

    machine.add_threads(
        threads_of(setup), Placement::RoundRobinNodes,
        [&](SimContext& ctx, int) {
            for (std::uint32_t i = 0; i < setup.iterations; ++i) {
                ctx.cs_wait_begin();
                const std::uint64_t t0 =
                    setup.bounded ? locks::detail::lock_clock_ns(ctx) : 0;
                if (!acquire_ok(ctx)) {
                    // Abandonment-latency audit: a failed acquire_for must
                    // return close to its deadline; the excess is the
                    // lock's documented recovery overshoot.
                    const std::uint64_t taken =
                        locks::detail::lock_clock_ns(ctx) - t0;
                    if (taken > setup.timeout_ns)
                        max_overshoot =
                            std::max(max_overshoot, taken - setup.timeout_ns);
                    ctx.cs_wait_abort();
                    ++timeouts;
                    continue;
                }
                ctx.cs_enter();
                const std::uint64_t v = ctx.load(counter);
                ctx.store(counter, v + 1);
                ctx.cs_exit();
                release(ctx);
            }
        });
    machine.run();

    RunReport report;
    report.stop = machine.stop_reason();
    report.steps = machine.sched_steps();
    report.schedule = recorder.taken();
    report.acquisitions = checker.acquisitions();
    report.mutex_violations = checker.mutual_exclusion_violations();
    report.max_bypasses = checker.max_bypasses();
    report.max_node_streak = checker.max_node_streak();
    report.counter = machine.memory().peek(counter);
    report.timeouts = timeouts;
    report.max_overshoot_ns = max_overshoot;
    if (injector) {
        report.faults_injected = injector->injected();
        report.fault_log = injector->log();
    }
    if (real)
        report.abandon = real->abandon_stats();

    if (report.mutex_violations != 0) {
        report.failed = true;
        report.what = "mutual exclusion violated (" +
                      std::to_string(report.mutex_violations) + "x): " +
                      (checker.violations().empty()
                           ? std::string("?")
                           : checker.violations().front());
    } else if (report.stop == sim::StopReason::Deadlock) {
        report.failed = true;
        report.what = "deadlock: every remaining thread is parked";
    } else if (report.stop == sim::StopReason::TimeLimit) {
        report.failed = true;
        report.what = "livelock: simulated time limit exceeded";
    } else if (setup.bypass_bound != 0 &&
               checker.max_bypasses() > setup.bypass_bound) {
        report.failed = true;
        report.what = "starvation bound exceeded: a wait was bypassed " +
                      std::to_string(checker.max_bypasses()) + " times (bound " +
                      std::to_string(setup.bypass_bound) + ")";
    } else if (report.stop == sim::StopReason::Completed &&
               (report.counter > report.acquisitions ||
                report.counter + deaths < report.acquisitions)) {
        // Belt and braces: the checker flags the double-entry itself, but a
        // lost update on the protected counter is the user-visible symptom.
        // Each ThreadDeath event may legitimately strand one entered-but-
        // not-stored update, so death plans get exactly that much slack.
        report.failed = true;
        report.what = "lost update: counter=" + std::to_string(report.counter) +
                      " after " + std::to_string(report.acquisitions) +
                      " acquisitions";
    }
    return report;
}

Trace
make_trace(const CheckSetup& setup, const Schedule& schedule)
{
    Trace trace;
    trace.lock = setup.use_broken_tatas      ? kBrokenTatasName
                 : setup.use_broken_adaptive ? kBrokenAdaptiveName
                                             : locks::lock_name(setup.kind);
    trace.nodes = setup.nodes;
    trace.cpus_per_node = setup.cpus_per_node;
    trace.iterations = setup.iterations;
    trace.seed = setup.seed;
    trace.bounded = setup.bounded;
    trace.timeout_ns = setup.timeout_ns;
    trace.faults = setup.faults;
    trace.schedule = schedule;
    return trace;
}

std::optional<CheckSetup>
setup_from_trace(const Trace& trace)
{
    CheckSetup setup;
    if (trace.lock == kBrokenTatasName) {
        setup.use_broken_tatas = true;
    } else if (trace.lock == kBrokenAdaptiveName) {
        setup.use_broken_adaptive = true;
    } else {
        const auto kind = locks::parse_lock_name(trace.lock);
        if (!kind)
            return std::nullopt;
        setup.kind = *kind;
    }
    setup.nodes = trace.nodes;
    setup.cpus_per_node = trace.cpus_per_node;
    setup.iterations = trace.iterations;
    setup.seed = trace.seed;
    setup.bounded = trace.bounded;
    setup.timeout_ns = trace.timeout_ns;
    if (!trace.faults.empty()) {
        // Validate the spec here (the decoder only checks syntax) so
        // run_one can assert instead of crashing on a corrupt trace.
        const int threads = trace.nodes * trace.cpus_per_node;
        if (!sim::FaultPlan::parse(trace.faults, trace.seed, threads))
            return std::nullopt;
        setup.faults = trace.faults;
    }
    return setup;
}

} // namespace nucalock::check
