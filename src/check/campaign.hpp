/**
 * @file
 * Fault-campaign soak runner: a deterministic sweep of fault presets x
 * abandonment-capable locks x machine shapes x seeds, each cell one
 * bounded (acquire_for) run of the checker workload under fault injection,
 * audited against the recovery invariants the timed-abandonment protocols
 * promise (docs/robustness.md):
 *
 *  - zero mutual-exclusion violations (a survivor must never enter a CS a
 *    dead or preempted holder still owns),
 *  - survivors complete: the run reaches StopReason::Completed even when a
 *    holder is killed (bounded waiters give up instead of wedging),
 *  - abandonment latency is bounded: a failed acquire_for returns within
 *    its deadline plus a documented overshoot (one backoff period + a
 *    constant number of operations, stretched by any fault-injected
 *    suspension of the departing thread),
 *  - no leaked queue nodes: for MCS, every node parked by a timed-out
 *    waiter is reclaimed by a releaser's handover walk or rejoined by its
 *    owner before the run ends (unless a death fault removed the releaser
 *    that would have walked past it).
 *
 * Every cell runs under the DefaultScheduler in controlled mode, so a
 * failing cell serializes to an nc1 trace (carrying the fault spec and
 * timeout) that nucacheck --replay reproduces bit-identically. Cells are
 * independent and deterministic; run_campaign shards them across host
 * threads (exec::Executor) and the result is identical at every job count.
 */
#ifndef NUCALOCK_CHECK_CAMPAIGN_HPP
#define NUCALOCK_CHECK_CAMPAIGN_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "check/harness.hpp"

namespace nucalock::check {

/** One machine shape in the sweep. */
struct CampaignShape
{
    int nodes = 2;
    int cpus_per_node = 2;
};

/** The sweep: presets x kinds x shapes x seeds (cells in that nesting). */
struct CampaignConfig
{
    /** Fault-plan specs (FaultPlan::parse), one campaign axis entry each.
     *  "none" is a real cell: the no-fault baseline must also pass. */
    std::vector<std::string> presets;

    /** Locks to sweep; default: every abandonment-capable queue/hybrid
     *  lock (lock_supports_native_timeout). */
    std::vector<locks::LockKind> kinds;

    std::vector<CampaignShape> shapes;

    /** Consecutive seeds starting here. */
    std::uint64_t first_seed = 1;
    int num_seeds = 2;

    std::uint32_t iterations = 3;

    /**
     * acquire_for bound per workload iteration. Short on purpose: the
     * preset preemptions and deaths (ms scale, sim/faults.cpp) must push
     * waiters past it so the abandonment paths actually run. Carried in
     * failing traces via the `timeout=` key.
     */
    std::uint64_t timeout_ns = 500'000;

    /**
     * Base abandonment-overshoot budget (ns) before fault suspensions are
     * added: one capped backoff period plus poll quanta and a constant
     * number of memory operations. The per-cell bound is
     * base + 4 x (sum of the preset's event durations) — a departing
     * waiter can be descheduled by structural faults a small number of
     * times between its deadline and its return.
     */
    std::uint64_t overshoot_base_ns = 100'000;

    /** Shrink scheduler-dependent failures (replay + ddmin) for the
     *  report. Audit-only failures (overshoot / leak) are properties of
     *  the whole run and are recorded unshrunk. */
    bool shrink = true;

    /** Host worker threads (exec::Executor semantics; 0 = default). */
    int jobs = 0;

    /** Fill presets/kinds/shapes with the standard sweep when empty. */
    void apply_defaults();
};

/** One audited cell of the sweep. */
struct CampaignCell
{
    std::string lock;   // lock_name(kind)
    std::string preset; // fault spec ("none" for the baseline)
    int nodes = 0;
    int cpus_per_node = 0;
    std::uint64_t seed = 0;

    bool failed = false;
    std::string what; // first failed audit (or run_one's own verdict)

    // Run observability (RunReport, minus the schedule for passing cells).
    std::string stop; // sim::stop_reason_name
    std::uint64_t steps = 0;
    std::uint64_t acquisitions = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t mutex_violations = 0;
    std::uint64_t faults_injected = 0;
    std::uint64_t max_overshoot_ns = 0;
    std::uint64_t overshoot_bound_ns = 0; // the bound this cell was held to
    locks::AbandonStats abandon;
    std::uint64_t leaked_nodes = 0; // linked_abandoned(), audited locks only

    /** Replayable trace (failed cells only; empty otherwise). */
    std::string trace;
    /** Shrunk trace (failed + shrinkable + cfg.shrink; empty otherwise). */
    std::string minimal_trace;
};

/** Per-lock aggregation across every cell of that lock. */
struct CampaignLockSummary
{
    std::string lock;
    std::uint64_t cells = 0;
    std::uint64_t failures = 0;
    std::uint64_t acquisitions = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t abandons = 0;
    std::uint64_t parked = 0;
    std::uint64_t grant_races = 0;
    std::uint64_t reclaims = 0;
    std::uint64_t rejoins = 0;
    std::uint64_t unparks = 0;
    std::uint64_t leaked_nodes = 0;
    std::uint64_t max_overshoot_ns = 0;
};

struct CampaignResult
{
    std::vector<CampaignCell> cells; // sweep order (deterministic)
    std::vector<CampaignLockSummary> per_lock; // cfg.kinds order
    std::uint64_t failures = 0;
};

/** Run the sweep. cfg is taken by value: defaults are applied first. */
CampaignResult run_campaign(CampaignConfig cfg);

} // namespace nucalock::check

#endif // NUCALOCK_CHECK_CAMPAIGN_HPP
