/**
 * @file
 * Bounded exhaustive exploration: stateless DFS over scheduling choices
 * with sleep-set pruning and a preemption bound.
 *
 * Each execution replays the current DFS prefix on a fresh SimMachine (the
 * engine is deterministic, so re-execution reaches the identical state),
 * extends it with first-unexplored choices to completion, then backtracks
 * deepest-first. Two prunes keep the tree tractable:
 *
 *  - Sleep sets (Godefroid): after a choice is fully explored at a node, it
 *    joins the node's sleep set; a sleeping thread is re-offered in child
 *    nodes only once an executed operation is *dependent* on its pending
 *    one (same line with a write, or both cs markers — see
 *    sched_ops_dependent). This removes commuting permutations without
 *    missing any distinguishable interleaving.
 *  - Preemption bound (CHESS-style): switching away from a thread whose
 *    pending operation is not a voluntary yield counts as a preemption, and
 *    schedules using more than the bound are skipped. Most realistic lock
 *    bugs need only 1-2 preemptions.
 *
 * Combining the two bounds is a deliberate heuristic: a sleep set may
 * defer an interleaving to a sibling that the preemption bound then
 * rejects, so bounded search is a bug-finder, not a proof — "exhausted"
 * means exhausted *within the bound*.
 */
#ifndef NUCALOCK_CHECK_EXPLORE_HPP
#define NUCALOCK_CHECK_EXPLORE_HPP

#include <cstdint>
#include <optional>

#include "check/harness.hpp"

namespace nucalock::check {

struct ExploreConfig
{
    /** Stop after this many executions (distinct schedules). */
    std::uint64_t max_schedules = 1000;

    /** Per-execution decision budget; longer runs are truncated (recorded
     *  as such, not as failures). */
    std::uint64_t max_steps = 5000;

    /** Maximum involuntary context switches per schedule; < 0 = unbounded. */
    int preemption_bound = 2;

    /** Return on the first failing schedule (the common CLI mode). */
    bool stop_on_failure = true;
};

struct ExploreResult
{
    std::uint64_t executions = 0; // distinct schedules run
    std::uint64_t truncated = 0;  // hit the step budget (no verdict)
    std::uint64_t pruned = 0;     // re-runs cut short by sleep/bound pruning
    std::uint64_t failures = 0;

    /** DFS ran out of unexplored choices within the bounds. */
    bool exhausted = false;

    std::uint64_t max_steps_seen = 0;
    std::uint64_t max_bypasses = 0;
    std::uint64_t max_node_streak = 0;

    /** Valid when failures != 0. */
    RunReport first_failure;
};

/** Run bounded exhaustive DFS over @p setup's schedule space. */
ExploreResult explore(const CheckSetup& setup, const ExploreConfig& cfg);

/**
 * Search for a *short* failing schedule by iterative deepening: run the
 * bounded DFS with a step cap of start_cap, then grow the cap (~1.5x per
 * round) up to cfg.max_steps until some capped execution fails. Because a
 * capped run cannot get past its cap, the first failure found needs at
 * most that many decisions — unlike plain explore(), whose deepest-first
 * backtracking tends to surface the *latest* race first. Use after
 * explore() reported a failure, to seed minimize_schedule with a repro
 * that is already near-minimal. Returns nullopt when no failure shows up
 * within cfg.max_steps (e.g. the bug needs more schedules than
 * cfg.max_schedules allows at some cap).
 */
std::optional<RunReport> find_short_failure(const CheckSetup& setup,
                                            ExploreConfig cfg,
                                            std::uint64_t start_cap = 4);

} // namespace nucalock::check

#endif // NUCALOCK_CHECK_EXPLORE_HPP
