#include "check/pct.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "exec/executor.hpp"

namespace nucalock::check {

namespace {

class PctScheduler final : public sim::Scheduler
{
  public:
    PctScheduler(int num_threads, int depth, std::uint64_t max_steps,
                 std::uint64_t est_length, Xoshiro256 rng)
        : max_steps_(max_steps)
    {
        NUCA_ASSERT(num_threads > 0 && depth >= 1);
        // Random distinct priorities depth..depth+n-1 (higher runs first);
        // change points later reassign priorities below everything, so the
        // initial band sits above 0.
        priorities_.resize(static_cast<std::size_t>(num_threads));
        for (int i = 0; i < num_threads; ++i)
            priorities_[static_cast<std::size_t>(i)] = depth + i;
        for (std::size_t i = priorities_.size(); i > 1; --i) {
            const std::size_t j =
                static_cast<std::size_t>(rng.next_below(i));
            std::swap(priorities_[i - 1], priorities_[j]);
        }
        // d-1 change points, uniform over the (estimated) run length.
        change_points_.reserve(static_cast<std::size_t>(depth - 1));
        for (int i = 0; i < depth - 1; ++i)
            change_points_.push_back(1 + rng.next_below(est_length));
        std::sort(change_points_.begin(), change_points_.end());
    }

    int
    pick(sim::SimTime, const std::vector<sim::SchedChoice>& runnable) override
    {
        if (steps_ >= max_steps_)
            return sim::kStopRun;
        ++steps_;

        const sim::SchedChoice* best = nullptr;
        for (const sim::SchedChoice& c : runnable)
            if (best == nullptr || priority(c.tid) > priority(best->tid))
                best = &c;

        while (next_change_ < change_points_.size() &&
               change_points_[next_change_] <= steps_) {
            // Priority-change point: the running thread falls below every
            // other priority, live or already lowered.
            ++next_change_;
            priority(best->tid) = --low_;
        }
        if (best->op.op == sim::SchedOp::Delay)
            // Backoff adaptation: a delaying thread hands the cpu over for
            // good until the others have had their turn, else a
            // high-priority backoff loop starves the lock holder forever.
            priority(best->tid) = --low_;
        return best->tid;
    }

  private:
    std::int64_t&
    priority(int tid)
    {
        return priorities_[static_cast<std::size_t>(tid)];
    }

    std::vector<std::int64_t> priorities_;
    std::vector<std::uint64_t> change_points_;
    std::size_t next_change_ = 0;
    std::int64_t low_ = 0;
    std::uint64_t max_steps_ = 0;
    std::uint64_t steps_ = 0;
};

/** Randomized execution i >= 1; pure in (setup, cfg, est_length, i). */
RunReport
pct_execution(const CheckSetup& setup, const PctConfig& cfg,
              std::uint64_t est_length, std::uint64_t i)
{
    Xoshiro256 rng(cfg.seed * 0x9e3779b97f4a7c15ULL + i);
    PctScheduler sched(threads_of(setup), cfg.depth, cfg.max_steps, est_length,
                       std::move(rng));
    return run_one(setup, sched);
}

/** Fold one execution's report into the aggregate, in execution order. */
void
fold_report(PctResult* res, const RunReport& rep)
{
    ++res->executions;
    if (rep.truncated())
        ++res->truncated;
    res->max_steps_seen = std::max(res->max_steps_seen, rep.steps);
    res->max_bypasses = std::max(res->max_bypasses, rep.max_bypasses);
    res->max_node_streak = std::max(res->max_node_streak, rep.max_node_streak);
    if (rep.failed) {
        ++res->failures;
        res->first_failure = rep;
    }
}

} // namespace

PctResult
pct_check(const CheckSetup& setup, const PctConfig& cfg)
{
    NUCA_ASSERT(cfg.depth >= 1);
    PctResult res;
    if (cfg.executions == 0)
        return res;

    // Execution 0 is the default-policy run: a valid schedule in its own
    // right, and it calibrates the run-length estimate the change-point
    // draws need. The estimate comes from execution 0 *alone*, so every
    // later execution is a pure function of (setup, cfg, i) — which is
    // what lets cfg.jobs shard them and still reproduce the sequential
    // verdict, statistics, and first failure bit for bit.
    DefaultScheduler calibrate(cfg.max_steps);
    const RunReport rep0 = run_one(setup, calibrate);
    const std::uint64_t est_length = std::max<std::uint64_t>(rep0.steps, 1);
    fold_report(&res, rep0);
    if (rep0.failed)
        return res;

    // Chunked fan-out: fold each chunk in execution order and stop at the
    // first failing one, so a parallel run does at most one chunk of work
    // past the failure the sequential loop would have stopped at.
    exec::Executor executor(cfg.jobs);
    const std::uint64_t chunk_size =
        static_cast<std::uint64_t>(std::max(16, executor.jobs() * 4));
    std::uint64_t next = 1;
    while (next < cfg.executions) {
        const std::size_t chunk = static_cast<std::size_t>(
            std::min<std::uint64_t>(cfg.executions - next, chunk_size));
        const std::vector<RunReport> reps =
            executor.map<RunReport>(chunk, [&](std::size_t j) {
                return pct_execution(setup, cfg, est_length,
                                     next + static_cast<std::uint64_t>(j));
            });
        for (const RunReport& rep : reps) {
            fold_report(&res, rep);
            if (rep.failed)
                return res;
        }
        next += chunk;
    }
    return res;
}

} // namespace nucalock::check
