/**
 * @file
 * Deliberately broken lock variants — seeded bugs the checker must catch.
 *
 * These exist to validate the checker, not the locks: a systematic
 * concurrency checker that has never caught a planted bug proves nothing.
 * They are kept out of LockKind so no benchmark or harness can pick one up
 * by accident; nucacheck exposes BrokenTatasLock as "TATAS_BROKEN" only
 * when built with NUCALOCK_BROKEN_LOCKS=ON (the default for developer and
 * CI builds).
 */
#ifndef NUCALOCK_CHECK_BROKEN_HPP
#define NUCALOCK_CHECK_BROKEN_HPP

#include "locks/context.hpp"
#include "locks/params.hpp"

namespace nucalock::check {

/** Trace/CLI name of BrokenTatasLock (deliberately not a LockKind). */
inline constexpr const char* kBrokenTatasName = "TATAS_BROKEN";

/**
 * TATAS with the classic test-THEN-set race: acquire checks the word with a
 * plain load and claims it with a plain store instead of an atomic tas.
 * Two threads that both observe 0 before either stores both enter the
 * critical section. The window is exactly two scheduling decisions wide
 * (interleave a load between another thread's load and store), so bounded
 * exhaustive search finds it with a preemption bound of 1 and PCT with
 * depth 2, and the minimized repro stays a handful of decisions long.
 */
template <locks::LockContext Ctx>
class BrokenTatasLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "TATAS_BROKEN";

    explicit BrokenTatasLock(Machine& machine,
                             const locks::LockParams& = locks::LockParams{},
                             int home_node = 0)
        : word_(machine.alloc(0, home_node))
    {
    }

    void
    acquire(Ctx& ctx)
    {
        while (true) {
            if (ctx.load(word_) == 0) {
                ctx.store(word_, 1); // BUG: load+store is not atomic
                return;
            }
            ctx.spin_while_equal(word_, 1);
        }
    }

    bool
    try_acquire(Ctx& ctx)
    {
        if (ctx.load(word_) != 0)
            return false;
        ctx.store(word_, 1); // BUG: same non-atomic claim
        return true;
    }

    void
    release(Ctx& ctx)
    {
        ctx.store(word_, 0);
    }

  private:
    Ref word_;
};

} // namespace nucalock::check

#endif // NUCALOCK_CHECK_BROKEN_HPP
