/**
 * @file
 * Deliberately broken lock variants — seeded bugs the checker must catch.
 *
 * These exist to validate the checker, not the locks: a systematic
 * concurrency checker that has never caught a planted bug proves nothing.
 * They are kept out of LockKind so no benchmark or harness can pick one up
 * by accident; nucacheck exposes BrokenTatasLock as "TATAS_BROKEN" only
 * when built with NUCALOCK_BROKEN_LOCKS=ON (the default for developer and
 * CI builds).
 */
#ifndef NUCALOCK_CHECK_BROKEN_HPP
#define NUCALOCK_CHECK_BROKEN_HPP

#include "locks/context.hpp"
#include "locks/params.hpp"

namespace nucalock::check {

/** Trace/CLI name of BrokenTatasLock (deliberately not a LockKind). */
inline constexpr const char* kBrokenTatasName = "TATAS_BROKEN";

/**
 * TATAS with the classic test-THEN-set race: acquire checks the word with a
 * plain load and claims it with a plain store instead of an atomic tas.
 * Two threads that both observe 0 before either stores both enter the
 * critical section. The window is exactly two scheduling decisions wide
 * (interleave a load between another thread's load and store), so bounded
 * exhaustive search finds it with a preemption bound of 1 and PCT with
 * depth 2, and the minimized repro stays a handful of decisions long.
 */
template <locks::LockContext Ctx>
class BrokenTatasLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "TATAS_BROKEN";

    explicit BrokenTatasLock(Machine& machine,
                             const locks::LockParams& = locks::LockParams{},
                             int home_node = 0)
        : word_(machine.alloc(0, home_node))
    {
    }

    void
    acquire(Ctx& ctx)
    {
        while (true) {
            if (ctx.load(word_) == 0) {
                ctx.store(word_, 1); // BUG: load+store is not atomic
                return;
            }
            ctx.spin_while_equal(word_, 1);
        }
    }

    bool
    try_acquire(Ctx& ctx)
    {
        if (ctx.load(word_) != 0)
            return false;
        ctx.store(word_, 1); // BUG: same non-atomic claim
        return true;
    }

    void
    release(Ctx& ctx)
    {
        ctx.store(word_, 0);
    }

  private:
    Ref word_;
};

/** Trace/CLI name of BrokenAdaptiveLock (deliberately not a LockKind). */
inline constexpr const char* kBrokenAdaptiveName = "ADAPTIVE_BROKEN";

/**
 * A composite lock with a seeded gear-switch bug: acquisition itself is a
 * correct CAS on the word, but every second holder "migrates" the lock
 * word mid-hold the way a naive adaptive gear switch would — store 0, then
 * re-claim with its own token — instead of keeping ownership in one atomic
 * word throughout (the always-safe rule AdaptiveLock follows). Between the
 * two stores the lock is observably free, so a waiter whose CAS lands in
 * that window enters the critical section alongside the holder. The window
 * is two scheduling decisions wide, just like BrokenTatasLock's, so the
 * same bounded search and PCT depths catch it and minimized repros stay
 * short.
 */
template <locks::LockContext Ctx>
class BrokenAdaptiveLock
{
  public:
    using Machine = typename Ctx::Machine;
    using Ref = typename Ctx::Ref;

    static constexpr const char* kName = "ADAPTIVE_BROKEN";

    explicit BrokenAdaptiveLock(Machine& machine,
                                const locks::LockParams& = locks::LockParams{},
                                int home_node = 0)
        : word_(machine.alloc(0, home_node))
    {
    }

    void
    acquire(Ctx& ctx)
    {
        const std::uint64_t mine = token_of(ctx);
        while (true) {
            const std::uint64_t seen = ctx.cas(word_, 0, mine);
            if (seen == 0)
                break;
            ctx.spin_while_equal(word_, seen);
        }
        blip_if_due(ctx, mine);
    }

    bool
    try_acquire(Ctx& ctx)
    {
        const std::uint64_t mine = token_of(ctx);
        if (ctx.cas(word_, 0, mine) != 0)
            return false;
        blip_if_due(ctx, mine);
        return true;
    }

    void
    release(Ctx& ctx)
    {
        ctx.store(word_, 0);
    }

  private:
    static std::uint64_t
    token_of(Ctx& ctx)
    {
        return static_cast<std::uint64_t>(ctx.node()) + 1;
    }

    /** The planted bug: every second acquisition drops and re-takes the
     *  word while inside the critical section. */
    void
    blip_if_due(Ctx& ctx, std::uint64_t mine)
    {
        if (++holds_ % 2 != 0)
            return;
        ctx.store(word_, 0);    // BUG: lock observably free mid-hold
        ctx.store(word_, mine); // blind re-claim; a sneaked-in CAS is lost
    }

    Ref word_;
    std::uint64_t holds_ = 0; // host-side; ordered by the lock when correct
};

} // namespace nucalock::check

#endif // NUCALOCK_CHECK_BROKEN_HPP
