/**
 * @file
 * Schedules as data: recording, replay, trace strings, and minimization.
 *
 * A controlled run (see sim/scheduler.hpp) is fully determined by the
 * sequence of tids picked at its decision points, so a failing interleaving
 * serializes to a compact run-length-encoded trace string that replays
 * bit-identically on the same CheckSetup and shrinks mechanically to a
 * minimal repro (see minimize_schedule).
 */
#ifndef NUCALOCK_CHECK_SCHEDULE_HPP
#define NUCALOCK_CHECK_SCHEDULE_HPP

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sim/scheduler.hpp"

namespace nucalock::check {

/** The sequence of tids a controlled run picked, one per decision point. */
struct Schedule
{
    std::vector<int> choices;

    bool operator==(const Schedule&) const = default;
    std::size_t size() const { return choices.size(); }
};

/** Run-length encode choices as "0x3,1x5" (tid x count). Empty -> "". */
std::string encode_choices(const std::vector<int>& choices);

/** Inverse of encode_choices; nullopt on malformed input. */
std::optional<std::vector<int>> decode_choices(std::string_view text);

/**
 * A self-contained failing-run descriptor: everything needed to rebuild the
 * machine and replay the schedule. Serialized as
 *
 *   nc1;lock=TATAS;nodes=2;cpus=2;iters=2;seed=1;bounded=0;sched=0x3,1x5
 *
 * where `cpus` is cpus per node and `sched` is the run-length-encoded tid
 * sequence ("nc1" names version 1 of the format). Runs under fault
 * injection add an optional `faults=<spec>` key (a FaultPlan::parse spec,
 * e.g. "death" or "holder+spike"); it is omitted — not emitted empty —
 * when no faults were active, so fault-free traces are byte-identical to
 * those produced before the key existed. Bounded runs with a non-default
 * timeout likewise add an optional `timeout=<ns>` key (the campaign runs
 * at a short timeout; replay must rebuild the identical machine history).
 */

/** CheckSetup's / the trace format's default acquire_for timeout. */
inline constexpr std::uint64_t kDefaultCheckTimeoutNs = 2'000'000'000;

struct Trace
{
    std::string lock;       // lock_name(), or "TATAS_BROKEN"
    int nodes = 2;
    int cpus_per_node = 2;
    std::uint32_t iterations = 2;
    std::uint64_t seed = 1;
    bool bounded = false;   // workload used acquire_for instead of acquire
    std::uint64_t timeout_ns = kDefaultCheckTimeoutNs; // acquire_for bound
    std::string faults;     // FaultPlan::parse spec; "" = no injection
    Schedule schedule;
};

std::string encode_trace(const Trace& trace);
std::optional<Trace> decode_trace(std::string_view text);

/**
 * The baseline policy every checker falls back to: keep running the current
 * thread until it voluntarily yields (delay / watcher wakeup / start), then
 * rotate round-robin to the next runnable tid. Deterministic, fair on
 * yields — so backoff loops always hand the cpu over and a correct lock
 * terminates under it.
 */
class DefaultPolicy
{
  public:
    int pick(const std::vector<sim::SchedChoice>& runnable);

    /** Seed the rotation as if @p tid had just been picked. */
    void note(int tid) { last_ = tid; }

  private:
    int last_ = -1;
};

/** DefaultPolicy as an installable Scheduler, with an optional step cap
 *  (0 = unlimited) after which it stops the run. */
class DefaultScheduler final : public sim::Scheduler
{
  public:
    explicit DefaultScheduler(std::uint64_t max_steps = 0)
        : max_steps_(max_steps)
    {
    }

    int
    pick(sim::SimTime, const std::vector<sim::SchedChoice>& runnable) override
    {
        if (max_steps_ != 0 && steps_ >= max_steps_)
            return sim::kStopRun;
        ++steps_;
        return policy_.pick(runnable);
    }

  private:
    DefaultPolicy policy_;
    std::uint64_t max_steps_ = 0;
    std::uint64_t steps_ = 0;
};

/**
 * Replays a recorded schedule choice by choice. A recorded choice naming a
 * thread that is not currently runnable marks the replay as diverged and
 * falls back to DefaultPolicy (this cannot happen when replaying on the
 * setup the schedule was recorded from — the engine is deterministic — but
 * guards against edited traces). Past the end of the schedule the run
 * continues under DefaultPolicy so partial prefixes still terminate, which
 * is what makes prefix minimization work.
 */
class ReplayScheduler final : public sim::Scheduler
{
  public:
    explicit ReplayScheduler(Schedule schedule, std::uint64_t max_steps = 0);

    int pick(sim::SimTime now,
             const std::vector<sim::SchedChoice>& runnable) override;

    bool diverged() const { return diverged_; }

  private:
    Schedule schedule_;
    DefaultPolicy fallback_;
    std::size_t next_ = 0;
    std::uint64_t max_steps_ = 0;
    std::uint64_t steps_ = 0;
    bool diverged_ = false;
};

/** Wraps any scheduler and records the choices it actually made. */
class RecordingScheduler final : public sim::Scheduler
{
  public:
    explicit RecordingScheduler(sim::Scheduler& inner) : inner_(inner) {}

    int
    pick(sim::SimTime now,
         const std::vector<sim::SchedChoice>& runnable) override
    {
        const int tid = inner_.pick(now, runnable);
        if (tid != sim::kStopRun)
            taken_.choices.push_back(tid);
        return tid;
    }

    const Schedule& taken() const { return taken_; }

  private:
    sim::Scheduler& inner_;
    Schedule taken_;
};

/** Re-runs a candidate schedule; returns true when it still fails. */
using ScheduleOracle = std::function<bool(const Schedule&)>;

/**
 * Delta-debugging style shrink of a failing schedule: first a binary search
 * for the shortest failing prefix (the suffix is replaced by DefaultPolicy
 * continuation during replay), then repeated removal and trimming of
 * run-length segments while the oracle keeps failing. The result is
 * guaranteed to satisfy oracle(result) — callers can trust it reproduces.
 */
Schedule minimize_schedule(const Schedule& failing, const ScheduleOracle& oracle);

} // namespace nucalock::check

#endif // NUCALOCK_CHECK_SCHEDULE_HPP
