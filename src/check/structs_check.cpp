#include "check/structs_check.hpp"

#include <algorithm>
#include <vector>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "exec/executor.hpp"
#include "sim/engine.hpp"
#include "structs/striped_map.hpp"

namespace nucalock::check {

namespace {

using sim::SimContext;
using sim::SimMachine;

/** Uniform random walk over schedules: every decision point picks a
 *  runnable thread uniformly. Unlike strict-priority PCT, no thread can
 *  monopolize a backoff loop, so no yield adaptation is needed. */
class RandomWalkScheduler final : public sim::Scheduler
{
  public:
    RandomWalkScheduler(std::uint64_t seed, std::uint64_t max_steps)
        : rng_(seed), max_steps_(max_steps)
    {
    }

    int
    pick(sim::SimTime, const std::vector<sim::SchedChoice>& runnable) override
    {
        if (steps_ >= max_steps_)
            return sim::kStopRun;
        ++steps_;
        const auto i = static_cast<std::size_t>(
            rng_.next_below(static_cast<std::uint64_t>(runnable.size())));
        return runnable[i].tid;
    }

  private:
    Xoshiro256 rng_;
    std::uint64_t max_steps_;
    std::uint64_t steps_ = 0;
};

} // namespace

StructsRunReport
run_structs_one(const StructsCheckSetup& setup, sim::Scheduler& scheduler)
{
    NUCA_ASSERT(setup.nodes > 0 && setup.cpus_per_node > 0);
    NUCA_ASSERT(setup.puts_per_thread > 0);

    sim::SimConfig cfg;
    cfg.seed = setup.seed;
    SimMachine machine(Topology::symmetric(setup.nodes, setup.cpus_per_node),
                       sim::LatencyModel::wildfire(), cfg);
    machine.install_scheduler(&scheduler);

    typename structs::StripedMap<SimContext>::Config map_cfg;
    map_cfg.stripes = static_cast<std::size_t>(setup.stripes);
    map_cfg.initial_buckets = static_cast<std::size_t>(setup.initial_buckets);
    // Aggressive load factor so a small run still provokes resize.
    map_cfg.max_load_factor = 1.5;
    map_cfg.plant_skip_lock = setup.unsynchronized;
    structs::StripedMap<SimContext> map(machine, setup.kind, map_cfg);

    const int threads = threads_of(setup);
    const std::uint32_t per_thread = setup.puts_per_thread;
    std::uint64_t inserts = 0;
    std::uint64_t missing = 0;

    machine.add_threads(
        threads, Placement::RoundRobinNodes, [&](SimContext& ctx, int) {
            const auto tid = static_cast<std::uint64_t>(ctx.thread_id());
            const std::uint64_t base = tid * 1'000'000;
            for (std::uint32_t j = 0; j < per_thread; ++j) {
                if (map.put(ctx, base + j, tid))
                    ++inserts;
            }
            // Read-back under whatever resize epochs other threads are
            // provoking: our own keys must all be present.
            for (std::uint32_t j = 0; j < per_thread; ++j)
                if (!map.get(ctx, base + j).has_value())
                    ++missing;
        });
    machine.run();

    StructsRunReport report;
    report.stop = machine.stop_reason();
    report.steps = machine.sched_steps();
    report.inserts = inserts;
    report.resize_epochs = map.resize_epochs();
    report.migrated_keys = map.resize_migrated_keys();
    report.missing_keys = missing;
    report.host_total = map.host_size();
    for (std::size_t s = 0; s < map.num_stripes(); ++s)
        report.meta_total += machine.memory().peek(map.stripe_meta(s));

    if (report.stop == sim::StopReason::Deadlock) {
        report.failed = true;
        report.what = "deadlock: every remaining thread is parked";
    } else if (report.stop == sim::StopReason::TimeLimit) {
        report.failed = true;
        report.what = "livelock: simulated time limit exceeded";
    } else if (report.stop == sim::StopReason::Completed) {
        const auto expected =
            static_cast<std::uint64_t>(threads) * per_thread;
        if (report.missing_keys != 0) {
            report.failed = true;
            report.what = "missing keys: " +
                          std::to_string(report.missing_keys) + " of " +
                          std::to_string(expected) +
                          " inserted keys unreadable";
        } else if (report.host_total != expected) {
            report.failed = true;
            report.what = "item count wrong: map holds " +
                          std::to_string(report.host_total) + ", expected " +
                          std::to_string(expected);
        } else if (report.meta_total != report.host_total) {
            report.failed = true;
            report.what =
                "lost update: stripe count words sum to " +
                std::to_string(report.meta_total) + " but the map holds " +
                std::to_string(report.host_total) +
                " items (a load/store pair was interleaved)";
        }
    }
    return report;
}

StructsCheckResult
structs_check(const StructsCheckSetup& setup, const StructsCheckConfig& cfg)
{
    StructsCheckResult res;
    if (cfg.executions == 0)
        return res;

    // Every execution is pure in (setup.seed, cfg.seed, i): run them in
    // any order, fold in execution order, stop at the first failure.
    const auto n = static_cast<std::size_t>(cfg.executions);
    std::vector<StructsRunReport> reports(n);
    exec::Executor executor(cfg.jobs);
    executor.run_batch(n, [&](std::size_t i) {
        RandomWalkScheduler sched(
            cfg.seed * 0x9e3779b97f4a7c15ULL + setup.seed * 0x85ebca6bULL + i,
            cfg.max_steps);
        reports[i] = run_structs_one(setup, sched);
    });

    for (const StructsRunReport& rep : reports) {
        ++res.executions;
        if (rep.stop == sim::StopReason::SchedulerStop)
            ++res.truncated;
        res.max_steps_seen = std::max(res.max_steps_seen, rep.steps);
        res.total_resize_epochs += rep.resize_epochs;
        res.total_migrated_keys += rep.migrated_keys;
        if (rep.failed) {
            ++res.failures;
            res.first_failure = rep;
            break;
        }
    }
    return res;
}

} // namespace nucalock::check
