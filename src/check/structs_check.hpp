/**
 * @file
 * Controlled-schedule checking for the lock-backed structures
 * (src/structs/): a striped-map workload — concurrent puts sized to force
 * cooperative resize — run under the simulator's controlled scheduler and
 * audited for structural integrity instead of the counter harness's
 * mutual-exclusion verdict.
 *
 * The audit leans on the map's design (structs/striped_map.hpp): each
 * stripe's authoritative item count is a *simulated* word updated by a
 * load/store pair inside the stripe's critical section. Under a correct
 * lock no schedule can interleave two of those pairs; under a broken one
 * (the `plant_skip_lock` knob, exposed to nucacheck as MAP_UNSYNC) two
 * concurrent puts both read n and both store n+1 — the classic lost
 * update — which the audit catches as meta != host size. Key presence is
 * audited independently: every key each thread inserted must be readable
 * back, across however many resize epochs the schedule provoked.
 *
 * Exploration is randomized-walk over schedules (a seeded uniform pick at
 * every decision point), which for this workload's shallow bugs finds a
 * planted violation within a handful of executions while staying fully
 * deterministic in (setup.seed, execution index) — same contract as
 * check/pct.hpp.
 */
#ifndef NUCALOCK_CHECK_STRUCTS_CHECK_HPP
#define NUCALOCK_CHECK_STRUCTS_CHECK_HPP

#include <cstdint>
#include <string>

#include "locks/any_lock.hpp"
#include "sim/scheduler.hpp"

namespace nucalock::check {

/** The machine + striped-map workload a structs checking run is built from. */
struct StructsCheckSetup
{
    locks::LockKind kind = locks::LockKind::Tatas;

    /** Planted bug: writes skip the stripe lock (nucacheck MAP_UNSYNC). */
    bool unsynchronized = false;

    int nodes = 2;
    int cpus_per_node = 2;

    /** Map shape: small enough that puts_per_thread forces >=1 resize. */
    std::uint64_t stripes = 2;
    std::uint64_t initial_buckets = 2;

    /** Fresh keys each thread inserts (thread t inserts t*K..t*K+K-1). */
    std::uint32_t puts_per_thread = 12;

    std::uint64_t seed = 1;
};

inline int
threads_of(const StructsCheckSetup& setup)
{
    return setup.nodes * setup.cpus_per_node;
}

/** Verdict of one controlled structs run. */
struct StructsRunReport
{
    bool failed = false;
    std::string what;

    sim::StopReason stop = sim::StopReason::Completed;
    std::uint64_t steps = 0;

    std::uint64_t inserts = 0;
    std::uint64_t resize_epochs = 0;
    std::uint64_t migrated_keys = 0;
    /** Sum of the stripes' simulated count words after the run. */
    std::uint64_t meta_total = 0;
    /** Items actually present host-side after the run. */
    std::uint64_t host_total = 0;
    /** Inserted keys that could not be read back (migration loss). */
    std::uint64_t missing_keys = 0;
};

/**
 * Build the machine + striped map described by @p setup and run the
 * insert workload under @p scheduler, then audit: every inserted key
 * readable, host size == inserts, and every stripe's simulated count word
 * == its host-side item count (lost-update detector).
 */
StructsRunReport run_structs_one(const StructsCheckSetup& setup,
                                 sim::Scheduler& scheduler);

/** Aggregate verdict of a randomized-walk sweep. */
struct StructsCheckResult
{
    std::uint64_t executions = 0;
    std::uint64_t failures = 0;
    std::uint64_t truncated = 0;
    std::uint64_t max_steps_seen = 0;
    std::uint64_t total_resize_epochs = 0;
    std::uint64_t total_migrated_keys = 0;
    /** Valid when failures != 0 (the sweep stops at the first failure). */
    StructsRunReport first_failure;
};

struct StructsCheckConfig
{
    std::uint64_t executions = 50;
    /** Per-execution decision budget (truncation, not failure). */
    std::uint64_t max_steps = 200000;
    std::uint64_t seed = 1;
    /** Host workers (exec::Executor); verdict identical at every level. */
    int jobs = 1;
};

/**
 * Run @p cfg.executions random-walk schedules of @p setup, stopping at the
 * first failure. Execution i's schedule is a pure function of
 * (setup.seed, cfg.seed, i): deterministic at every jobs level.
 */
StructsCheckResult structs_check(const StructsCheckSetup& setup,
                                 const StructsCheckConfig& cfg);

} // namespace nucalock::check

#endif // NUCALOCK_CHECK_STRUCTS_CHECK_HPP
