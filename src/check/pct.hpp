/**
 * @file
 * PCT: probabilistic concurrency testing (Burckhardt et al., ASPLOS'10)
 * for configurations too large to explore exhaustively.
 *
 * Each execution draws random distinct priorities for the threads and d-1
 * random priority-change points over the run length; scheduling always
 * runs the highest-priority runnable thread. For a bug of depth d (one
 * needing d ordering constraints), a single execution finds it with
 * probability >= 1/(n * k^(d-1)) — n threads, k steps — so failure
 * probability decays exponentially in the number of executions.
 *
 * One adaptation for lock workloads: a thread that executes a backoff
 * delay (a voluntary yield) drops below the lowest live priority. Without
 * this, a high-priority thread in a backoff loop monopolizes the schedule
 * and the run livelocks — the same reason the preemption bound in
 * explore.hpp does not count yields.
 */
#ifndef NUCALOCK_CHECK_PCT_HPP
#define NUCALOCK_CHECK_PCT_HPP

#include <cstdint>

#include "check/harness.hpp"

namespace nucalock::check {

struct PctConfig
{
    /** Independent randomized executions. */
    std::uint64_t executions = 50;

    /** Target bug depth d (d-1 priority-change points per execution). */
    int depth = 3;

    /** Per-execution decision budget (truncation, not failure). */
    std::uint64_t max_steps = 20000;

    std::uint64_t seed = 1;

    /**
     * Host worker threads for the randomized executions (exec::Executor).
     * 1 = sequential; 0 = the executor default (NUCALOCK_JOBS, else
     * hardware concurrency). The verdict, statistics, and first recorded
     * failure are identical at every level: execution i's schedule depends
     * only on (setup, cfg, i), and results fold in execution order.
     */
    int jobs = 1;
};

struct PctResult
{
    std::uint64_t executions = 0;
    std::uint64_t truncated = 0;
    std::uint64_t failures = 0;

    std::uint64_t max_steps_seen = 0;
    std::uint64_t max_bypasses = 0;
    std::uint64_t max_node_streak = 0;

    /** Valid when failures != 0. */
    RunReport first_failure;
};

/**
 * Run @p cfg.executions PCT runs of @p setup (stopping at the first
 * failure). Fully deterministic in (setup.seed, cfg.seed): execution i
 * derives its priorities and change points from them and the execution-0
 * calibration length alone, so a failing PCT run is reproducible — and its
 * recorded schedule replays exactly — regardless of cfg.jobs.
 */
PctResult pct_check(const CheckSetup& setup, const PctConfig& cfg);

} // namespace nucalock::check

#endif // NUCALOCK_CHECK_PCT_HPP
