/**
 * @file
 * The checker's workload harness: one controlled run of a canonical
 * lock-protected counter workload, reported as a verdict.
 *
 * Every checking strategy (exhaustive DFS, PCT, replay) drives the same
 * workload through run_one with a different Scheduler, so a schedule
 * recorded by one strategy replays under another. The workload is the
 * smallest one that can witness every checked property: each thread loops
 * `iterations` times around acquire -> read-modify-write a shared counter
 * -> release, with cs markers feeding the InvariantChecker. A mutual
 * exclusion bug additionally shows up as a lost counter update, deadlock
 * and livelock show up as StopReason verdicts, and the checker's bypass /
 * node-streak accounting bounds starvation.
 */
#ifndef NUCALOCK_CHECK_HARNESS_HPP
#define NUCALOCK_CHECK_HARNESS_HPP

#include <cstdint>
#include <optional>
#include <string>

#include "check/schedule.hpp"
#include "locks/any_lock.hpp"
#include "obs/probe.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace nucalock::check {

/** The machine + workload a checking run is built from. */
struct CheckSetup
{
    locks::LockKind kind = locks::LockKind::Tatas;

    /** Substitute BrokenTatasLock (check/broken.hpp) for the lock. */
    bool use_broken_tatas = false;
    /** Substitute BrokenAdaptiveLock (seeded gear-switch bug) instead. */
    bool use_broken_adaptive = false;

    int nodes = 2;
    int cpus_per_node = 2;

    /** Lock acquisitions per thread. */
    std::uint32_t iterations = 2;

    std::uint64_t seed = 1;

    /** Use acquire_for(timeout_ns) instead of acquire: exercises the
     *  timeout/abort paths; a timed-out iteration is skipped, not retried. */
    bool bounded = false;
    sim::SimTime timeout_ns = kDefaultCheckTimeoutNs;

    /**
     * Starvation bound: fail the run when any single wait is bypassed more
     * than this many times (HBO_GT_SD's get-angry guarantee). 0 disables.
     */
    std::uint64_t bypass_bound = 0;

    /**
     * Fault-injection spec (sim::FaultPlan::parse, e.g. "death" or
     * "holder+spike"), applied against this setup's seed and thread count.
     * Empty = no injection. Serialized in traces (the `faults=` key) so a
     * failing faulty run replays bit-identically.
     */
    std::string faults;

    /**
     * Optional probe sink installed on the machine for the run (abandon /
     * reclaim events feed the campaign's recovery audit). Not part of the
     * serialized trace — replay does not need it to reproduce a verdict.
     */
    obs::ProbeSink* probe = nullptr;
};

inline int
threads_of(const CheckSetup& setup)
{
    return setup.nodes * setup.cpus_per_node;
}

/** Verdict of one controlled run. */
struct RunReport
{
    bool failed = false;
    std::string what; // human-readable failure description

    sim::StopReason stop = sim::StopReason::Completed;
    std::uint64_t steps = 0;
    Schedule schedule; // choices actually taken (recorded)

    std::uint64_t acquisitions = 0;
    std::uint64_t mutex_violations = 0;
    std::uint64_t max_bypasses = 0;
    std::uint64_t max_node_streak = 0;
    std::uint64_t counter = 0;  // final shared-counter value
    std::uint64_t timeouts = 0; // bounded-mode acquire_for expiries

    // ----- fault-injection observability (zeroes when faults == "") ------
    /** Faults the injector actually applied during the run. */
    std::uint64_t faults_injected = 0;
    /** The injector's deterministic applied-fault log (one line each). */
    std::string fault_log;
    /** Lock-side abandonment accounting; linked_abandoned() == 0 means no
     *  queue node was left linked behind a departed waiter (leak audit). */
    locks::AbandonStats abandon;
    /** Bounded mode: worst observed (wait latency - timeout) over failed
     *  acquire_for calls, in sim ns — the abandonment-overshoot bound. */
    std::uint64_t max_overshoot_ns = 0;

    /** Truncated by the scheduler's step budget: no verdict either way. */
    bool
    truncated() const
    {
        return stop == sim::StopReason::SchedulerStop;
    }
};

/**
 * Build the machine and workload described by @p setup and run it under
 * @p scheduler (wrapped in a RecordingScheduler, so the report carries the
 * schedule as actually taken).
 */
RunReport run_one(const CheckSetup& setup, sim::Scheduler& scheduler);

/** Package a recorded failing schedule as a replayable trace. */
Trace make_trace(const CheckSetup& setup, const Schedule& schedule);

/** Rebuild the setup a trace describes; nullopt for an unknown lock name
 *  or a fault spec FaultPlan::parse rejects. (bypass_bound takes its
 *  default: it is a checker parameter, not machine shape, and default
 *  replay re-judges everything the trace could have failed on. timeout_ns
 *  IS machine shape under bounded — it changes when waiters give up — so
 *  it round-trips through the trace.) */
std::optional<CheckSetup> setup_from_trace(const Trace& trace);

} // namespace nucalock::check

#endif // NUCALOCK_CHECK_HARNESS_HPP
