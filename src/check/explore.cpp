#include "check/explore.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace nucalock::check {

namespace {

/** One schedulable thread at a DFS node, with its exploration flags. */
struct Candidate
{
    int tid = -1;
    sim::PendingOp op;
    bool explored = false; // subtree fully explored
    bool sleep = false;    // covered by a sibling: skip unless woken
};

/** One decision point along the current DFS path. */
struct Node
{
    std::vector<Candidate> cands; // sorted by tid (engine offer order)
    int chosen = -1;              // index into cands
    int prev_tid = -1;            // tid executed at the parent node
    int preemptions = 0;          // involuntary switches before this node
};

int
find_cand(const Node& n, int tid)
{
    for (std::size_t i = 0; i < n.cands.size(); ++i)
        if (n.cands[i].tid == tid)
            return static_cast<int>(i);
    return -1;
}

/** Does picking @p idx at @p n preempt the previously running thread? */
bool
choice_is_preemption(const Node& n, int idx)
{
    const int tid = n.cands[static_cast<std::size_t>(idx)].tid;
    if (n.prev_tid < 0 || tid == n.prev_tid)
        return false;
    const int prev = find_cand(n, n.prev_tid);
    if (prev < 0)
        return false; // previous thread blocked or finished: free switch
    return !sim::sched_op_is_yield(
        n.cands[static_cast<std::size_t>(prev)].op.op);
}

bool
eligible(const Node& n, int idx, int bound)
{
    const Candidate& c = n.cands[static_cast<std::size_t>(idx)];
    if (c.explored || c.sleep)
        return false;
    return bound < 0 ||
           n.preemptions + (choice_is_preemption(n, idx) ? 1 : 0) <= bound;
}

/**
 * First eligible choice in default-policy order: continue the previous
 * thread while it has not yielded, else rotate through tids cyclically
 * starting after it (the previous thread itself comes last). This makes
 * the first execution of every subtree the default-policy run, so failures
 * surface at the lowest preemption counts first.
 */
int
pick_choice(const Node& n, int bound)
{
    const int prev = find_cand(n, n.prev_tid);
    if (prev >= 0 &&
        !sim::sched_op_is_yield(
            n.cands[static_cast<std::size_t>(prev)].op.op) &&
        eligible(n, prev, bound))
        return prev;
    for (std::size_t i = 0; i < n.cands.size(); ++i)
        if (n.cands[i].tid > n.prev_tid && eligible(n, static_cast<int>(i), bound))
            return static_cast<int>(i);
    for (std::size_t i = 0; i < n.cands.size(); ++i)
        if (n.cands[i].tid <= n.prev_tid && eligible(n, static_cast<int>(i), bound))
            return static_cast<int>(i);
    return -1;
}

/**
 * Replays the DFS stack's chosen prefix, then extends the stack with fresh
 * nodes (first choice per pick_choice) until the run ends or the step
 * budget is gone. Stateless-search style: a fresh instance drives each
 * execution; the shared stack carries the search state between them.
 */
class DfsScheduler final : public sim::Scheduler
{
  public:
    DfsScheduler(std::vector<Node>& stack, const ExploreConfig& cfg)
        : stack_(stack), cfg_(cfg)
    {
    }

    int
    pick(sim::SimTime, const std::vector<sim::SchedChoice>& runnable) override
    {
        if (step_ >= cfg_.max_steps) {
            out_of_steps_ = true;
            return sim::kStopRun;
        }
        if (step_ < stack_.size()) {
            // Replay: the engine is deterministic, so the offered candidates
            // must match what this node saw when it was created.
            const Node& n = stack_[step_];
            NUCA_ASSERT(n.cands.size() == runnable.size(),
                        "DFS prefix replay diverged at step ", step_);
            ++step_;
            return n.cands[static_cast<std::size_t>(n.chosen)].tid;
        }

        Node n;
        if (!stack_.empty()) {
            const Node& p = stack_.back();
            n.prev_tid = p.cands[static_cast<std::size_t>(p.chosen)].tid;
            n.preemptions =
                p.preemptions + (choice_is_preemption(p, p.chosen) ? 1 : 0);
        }
        n.cands.reserve(runnable.size());
        for (const sim::SchedChoice& c : runnable)
            n.cands.push_back(Candidate{c.tid, c.op, false, false});
        if (!stack_.empty()) {
            // Sleep-set inheritance: a thread sleeping (or already fully
            // explored) at the parent stays asleep unless the operation just
            // executed is dependent on its pending one.
            const Node& p = stack_.back();
            const sim::PendingOp executed =
                p.cands[static_cast<std::size_t>(p.chosen)].op;
            for (Candidate& c : n.cands) {
                const int pi = find_cand(p, c.tid);
                if (pi < 0 || pi == p.chosen)
                    continue;
                const Candidate& pc = p.cands[static_cast<std::size_t>(pi)];
                if ((pc.sleep || pc.explored) &&
                    !sim::sched_ops_dependent(pc.op, executed))
                    c.sleep = true;
            }
        }
        const int idx = pick_choice(n, cfg_.preemption_bound);
        if (idx < 0) {
            // Everything is asleep or over the preemption budget: this
            // continuation is covered elsewhere (or out of bounds) — prune.
            pruned_ = true;
            return sim::kStopRun;
        }
        n.chosen = idx;
        stack_.push_back(std::move(n));
        ++step_;
        const Node& back = stack_.back();
        return back.cands[static_cast<std::size_t>(back.chosen)].tid;
    }

    bool out_of_steps() const { return out_of_steps_; }
    bool pruned() const { return pruned_; }

  private:
    std::vector<Node>& stack_;
    const ExploreConfig& cfg_;
    std::size_t step_ = 0;
    bool out_of_steps_ = false;
    bool pruned_ = false;
};

} // namespace

ExploreResult
explore(const CheckSetup& setup, const ExploreConfig& cfg)
{
    ExploreResult res;
    std::vector<Node> stack;
    while (res.executions < cfg.max_schedules) {
        DfsScheduler sched(stack, cfg);
        const RunReport rep = run_one(setup, sched);
        if (sched.pruned()) {
            // The run added nothing beyond an already-explored prefix;
            // do not count it as a distinct interleaving.
            ++res.pruned;
        } else {
            ++res.executions;
            if (sched.out_of_steps())
                ++res.truncated;
            res.max_steps_seen = std::max(res.max_steps_seen, rep.steps);
            res.max_bypasses = std::max(res.max_bypasses, rep.max_bypasses);
            res.max_node_streak =
                std::max(res.max_node_streak, rep.max_node_streak);
            if (rep.failed) {
                ++res.failures;
                if (res.failures == 1)
                    res.first_failure = rep;
                if (cfg.stop_on_failure)
                    return res;
            }
        }

        // Deepest-first backtrack: mark the executed choice explored and
        // advance the deepest node that still has an eligible alternative.
        bool advanced = false;
        while (!stack.empty()) {
            Node& n = stack.back();
            n.cands[static_cast<std::size_t>(n.chosen)].explored = true;
            const int next = pick_choice(n, cfg.preemption_bound);
            if (next >= 0) {
                n.chosen = next;
                advanced = true;
                break;
            }
            stack.pop_back();
        }
        if (!advanced) {
            res.exhausted = true;
            break;
        }
    }
    return res;
}

std::optional<RunReport>
find_short_failure(const CheckSetup& setup, ExploreConfig cfg,
                   std::uint64_t start_cap)
{
    const std::uint64_t cap_limit = cfg.max_steps;
    cfg.stop_on_failure = true;
    // Short trees are cheap to exhaust; give each round a generous
    // schedule budget so the deepening is not starved by the caller's
    // full-search setting.
    cfg.max_schedules = std::max<std::uint64_t>(cfg.max_schedules, 20000);
    for (std::uint64_t cap = std::max<std::uint64_t>(start_cap, 2);
         cap <= cap_limit; cap += std::max<std::uint64_t>(cap / 2, 2)) {
        cfg.max_steps = cap;
        const ExploreResult r = explore(setup, cfg);
        if (r.failures != 0)
            return r.first_failure;
        if (r.exhausted && r.truncated == 0)
            return std::nullopt; // whole space fits under the cap: no bug
    }
    return std::nullopt;
}

} // namespace nucalock::check
