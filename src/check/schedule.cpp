#include "check/schedule.hpp"

#include <charconv>

#include "common/logging.hpp"

namespace nucalock::check {

namespace {

/** Sane upper bounds so a corrupt trace cannot allocate unbounded memory. */
constexpr std::size_t kMaxSegmentCount = 1u << 20;
constexpr std::size_t kMaxDecodedChoices = 1u << 24;

struct Seg
{
    int tid = -1;
    std::size_t count = 0;
};

std::vector<Seg>
to_segments(const std::vector<int>& choices)
{
    std::vector<Seg> segs;
    for (int tid : choices) {
        if (!segs.empty() && segs.back().tid == tid)
            ++segs.back().count;
        else
            segs.push_back(Seg{tid, 1});
    }
    return segs;
}

std::vector<int>
flatten(const std::vector<Seg>& segs)
{
    std::vector<int> choices;
    for (const Seg& seg : segs)
        choices.insert(choices.end(), seg.count, seg.tid);
    return choices;
}

template <typename T>
bool
parse_number(std::string_view text, T& out)
{
    const char* first = text.data();
    const char* last = text.data() + text.size();
    const auto [ptr, ec] = std::from_chars(first, last, out);
    return ec == std::errc{} && ptr == last && !text.empty();
}

/** Split @p text on @p sep (keeps empty pieces). */
std::vector<std::string_view>
split(std::string_view text, char sep)
{
    std::vector<std::string_view> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(sep, start);
        if (pos == std::string_view::npos) {
            out.push_back(text.substr(start));
            return out;
        }
        out.push_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

} // namespace

std::string
encode_choices(const std::vector<int>& choices)
{
    std::string out;
    for (const Seg& seg : to_segments(choices)) {
        if (!out.empty())
            out += ',';
        out += std::to_string(seg.tid);
        out += 'x';
        out += std::to_string(seg.count);
    }
    return out;
}

std::optional<std::vector<int>>
decode_choices(std::string_view text)
{
    std::vector<int> choices;
    if (text.empty())
        return choices;
    for (std::string_view piece : split(text, ',')) {
        const std::size_t x = piece.find('x');
        if (x == std::string_view::npos)
            return std::nullopt;
        int tid = -1;
        std::size_t count = 0;
        if (!parse_number(piece.substr(0, x), tid) ||
            !parse_number(piece.substr(x + 1), count))
            return std::nullopt;
        if (tid < 0 || count == 0 || count > kMaxSegmentCount ||
            choices.size() + count > kMaxDecodedChoices)
            return std::nullopt;
        choices.insert(choices.end(), count, tid);
    }
    return choices;
}

std::string
encode_trace(const Trace& trace)
{
    std::string out = "nc1";
    out += ";lock=" + trace.lock;
    out += ";nodes=" + std::to_string(trace.nodes);
    out += ";cpus=" + std::to_string(trace.cpus_per_node);
    out += ";iters=" + std::to_string(trace.iterations);
    out += ";seed=" + std::to_string(trace.seed);
    out += ";bounded=" + std::to_string(trace.bounded ? 1 : 0);
    if (trace.bounded && trace.timeout_ns != kDefaultCheckTimeoutNs)
        out += ";timeout=" + std::to_string(trace.timeout_ns);
    if (!trace.faults.empty())
        out += ";faults=" + trace.faults;
    out += ";sched=" + encode_choices(trace.schedule.choices);
    return out;
}

std::optional<Trace>
decode_trace(std::string_view text)
{
    const std::vector<std::string_view> pieces = split(text, ';');
    if (pieces.empty() || pieces.front() != "nc1")
        return std::nullopt;
    Trace trace;
    bool have_lock = false;
    bool have_sched = false;
    for (std::size_t i = 1; i < pieces.size(); ++i) {
        const std::string_view piece = pieces[i];
        const std::size_t eq = piece.find('=');
        if (eq == std::string_view::npos)
            return std::nullopt;
        const std::string_view key = piece.substr(0, eq);
        const std::string_view value = piece.substr(eq + 1);
        if (key == "lock") {
            trace.lock = std::string(value);
            have_lock = !trace.lock.empty();
        } else if (key == "nodes") {
            if (!parse_number(value, trace.nodes) || trace.nodes <= 0)
                return std::nullopt;
        } else if (key == "cpus") {
            if (!parse_number(value, trace.cpus_per_node) ||
                trace.cpus_per_node <= 0)
                return std::nullopt;
        } else if (key == "iters") {
            if (!parse_number(value, trace.iterations) ||
                trace.iterations == 0)
                return std::nullopt;
        } else if (key == "seed") {
            if (!parse_number(value, trace.seed))
                return std::nullopt;
        } else if (key == "bounded") {
            int flag = 0;
            if (!parse_number(value, flag) || (flag != 0 && flag != 1))
                return std::nullopt;
            trace.bounded = flag == 1;
        } else if (key == "timeout") {
            if (!parse_number(value, trace.timeout_ns) ||
                trace.timeout_ns == 0)
                return std::nullopt;
        } else if (key == "faults") {
            // Spec strings never contain ';' or '='; validity against the
            // preset list is checked at replay time (FaultPlan::parse).
            if (value.empty())
                return std::nullopt;
            trace.faults = std::string(value);
        } else if (key == "sched") {
            auto choices = decode_choices(value);
            if (!choices)
                return std::nullopt;
            trace.schedule.choices = std::move(*choices);
            have_sched = true;
        } else {
            return std::nullopt; // unknown key: refuse, don't guess
        }
    }
    if (!have_lock || !have_sched)
        return std::nullopt;
    return trace;
}

int
DefaultPolicy::pick(const std::vector<sim::SchedChoice>& runnable)
{
    NUCA_ASSERT(!runnable.empty(), "pick from empty candidate set");
    // Keep running the current thread until it voluntarily yields.
    for (const sim::SchedChoice& c : runnable)
        if (c.tid == last_ && !sim::sched_op_is_yield(c.op.op))
            return last_;
    // Rotate: smallest tid greater than the last one, wrapping around.
    // runnable is sorted by tid, so the first greater entry is the target.
    for (const sim::SchedChoice& c : runnable) {
        if (c.tid > last_) {
            last_ = c.tid;
            return last_;
        }
    }
    last_ = runnable.front().tid;
    return last_;
}

ReplayScheduler::ReplayScheduler(Schedule schedule, std::uint64_t max_steps)
    : schedule_(std::move(schedule)), max_steps_(max_steps)
{
}

int
ReplayScheduler::pick(sim::SimTime,
                      const std::vector<sim::SchedChoice>& runnable)
{
    if (max_steps_ != 0 && steps_ >= max_steps_)
        return sim::kStopRun;
    ++steps_;
    if (next_ < schedule_.choices.size()) {
        const int want = schedule_.choices[next_];
        ++next_;
        for (const sim::SchedChoice& c : runnable) {
            if (c.tid == want) {
                fallback_.note(want);
                return want;
            }
        }
        diverged_ = true; // edited trace: recorded thread is not runnable
    }
    return fallback_.pick(runnable);
}

Schedule
minimize_schedule(const Schedule& failing, const ScheduleOracle& oracle)
{
    const auto fails = [&oracle](const std::vector<int>& choices) {
        return oracle(Schedule{choices});
    };

    // Phase 1: shortest failing prefix. Replays continue past the prefix
    // under DefaultPolicy, so "prefix of length L fails" is (in practice)
    // monotone in L; the bisection result is re-validated regardless.
    std::vector<int> best = failing.choices;
    {
        std::size_t lo = 0;
        std::size_t hi = best.size();
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (fails(std::vector<int>(best.begin(),
                                       best.begin() +
                                           static_cast<std::ptrdiff_t>(mid))))
                hi = mid;
            else
                lo = mid + 1;
        }
        std::vector<int> prefix(best.begin(),
                                best.begin() + static_cast<std::ptrdiff_t>(hi));
        if (fails(prefix))
            best = std::move(prefix);
    }

    // Phase 2: ddmin-style passes over the run-length segments — drop whole
    // segments, then shrink segment counts — restarting after every
    // successful reduction until a fixpoint.
    bool changed = true;
    while (changed) {
        changed = false;
        const std::vector<Seg> segs = to_segments(best);
        for (std::size_t i = segs.size(); i-- > 0 && !changed;) {
            std::vector<Seg> trial = segs;
            trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(i));
            std::vector<int> flat = flatten(trial);
            if (fails(flat)) {
                best = std::move(flat);
                changed = true;
            }
        }
        if (changed)
            continue;
        for (std::size_t i = segs.size(); i-- > 0 && !changed;) {
            if (segs[i].count <= 1)
                continue;
            for (const std::size_t count : {std::size_t{1}, segs[i].count - 1}) {
                std::vector<Seg> trial = segs;
                trial[i].count = count;
                std::vector<int> flat = flatten(trial);
                if (fails(flat)) {
                    best = std::move(flat);
                    changed = true;
                    break;
                }
            }
        }
    }

    NUCA_ASSERT(fails(best), "minimized schedule no longer reproduces");
    return Schedule{best};
}

} // namespace nucalock::check
