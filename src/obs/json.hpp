/**
 * @file
 * Minimal JSON support for the observability subsystem: a streaming writer
 * (reports, Chrome traces) and a small recursive-descent parser used for
 * schema validation and round-trip tests. No external dependencies.
 */
#ifndef NUCALOCK_OBS_JSON_HPP
#define NUCALOCK_OBS_JSON_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace nucalock::obs {

/** Escape @p text for inclusion in a JSON string literal (no quotes). */
std::string json_escape(std::string_view text);

/**
 * Streaming JSON writer. Keys and structure are the caller's
 * responsibility order-wise; the writer tracks nesting to place commas and
 * (when pretty) indentation. Doubles are emitted with enough precision to
 * round-trip; NaN/Inf degrade to null (JSON has no spelling for them).
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream& os, bool pretty = true);

    JsonWriter& begin_object();
    JsonWriter& end_object();
    JsonWriter& begin_array();
    JsonWriter& end_array();

    /** Key inside an object; must be followed by a value or begin_*. */
    JsonWriter& key(std::string_view name);

    JsonWriter& value(std::string_view text);
    JsonWriter& value(const char* text);
    JsonWriter& value(double number);
    JsonWriter& value(std::uint64_t number);
    JsonWriter& value(std::int64_t number);
    JsonWriter& value(int number);
    JsonWriter& value(bool flag);
    JsonWriter& null();

    /** Convenience: key + value. */
    template <typename T>
    JsonWriter&
    kv(std::string_view name, T&& v)
    {
        key(name);
        return value(std::forward<T>(v));
    }

  private:
    void before_value();
    void newline_indent();

    std::ostream& os_;
    bool pretty_;
    /** One entry per open container: true = object, false = array. */
    std::vector<bool> stack_;
    bool first_in_container_ = true;
    bool key_pending_ = false;
};

/**
 * Parsed JSON value. Numbers are kept as doubles (adequate for report
 * validation; the reports themselves never exceed 2^53 meaningfully).
 */
struct JsonValue
{
    enum class Type
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    bool is_object() const { return type == Type::Object; }
    bool is_array() const { return type == Type::Array; }
    bool is_string() const { return type == Type::String; }
    bool is_number() const { return type == Type::Number; }

    /** Member lookup; nullptr when absent or not an object. */
    const JsonValue* find(std::string_view name) const;
};

/** Parse @p text; nullopt (with *error set when given) on malformed input. */
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

} // namespace nucalock::obs

#endif // NUCALOCK_OBS_JSON_HPP
