#include "obs/metrics.hpp"

#include <iterator>

namespace nucalock::obs {

LockMetrics&
MetricsRegistry::lock_mut(std::uint64_t lock_id)
{
    LockMetrics& lm = locks_[lock_id];
    lm.lock_id = lock_id;
    return lm;
}

const LockMetrics&
MetricsRegistry::lock(std::uint64_t lock_id) const
{
    static const LockMetrics empty{};
    const auto it = locks_.find(lock_id);
    return it == locks_.end() ? empty : it->second;
}

const LockMetrics*
MetricsRegistry::primary() const
{
    const auto it = locks_.find(primary_lock_id_);
    return it == locks_.end() ? nullptr : &it->second;
}

NodeMetrics&
MetricsRegistry::node_of(LockMetrics& lm, int node)
{
    const auto index = node < 0 ? 0U : static_cast<std::size_t>(node);
    if (lm.per_node.size() <= index)
        lm.per_node.resize(index + 1);
    return lm.per_node[index];
}

CpuMetrics&
MetricsRegistry::cpu_of(int cpu)
{
    const auto index = cpu < 0 ? 0U : static_cast<std::size_t>(cpu);
    if (cpus_.size() <= index)
        cpus_.resize(index + 1);
    return cpus_[index];
}

MetricsRegistry::ThreadState&
MetricsRegistry::thread_of(int tid)
{
    return threads_[tid];
}

void
MetricsRegistry::close_batch(LockMetrics& lm, HolderState& hs)
{
    if (hs.batch_length == 0)
        return;
    const auto len = static_cast<double>(hs.batch_length);
    lm.node_batch_lengths.add(len);
    node_of(lm, hs.batch_node).batch_lengths.add(len);
    hs.batch_length = 0;
}

void
MetricsRegistry::on_event(const ProbeRecord& r)
{
    ++events_seen_;
    if (primary_lock_id_ == 0 && r.lock_id != 0)
        primary_lock_id_ = r.lock_id;
    finalized_ = false;

    ThreadState& ts = thread_of(r.thread);

    // Gear residency is event-time bounded: every event of a lock extends
    // its observation window (non-adaptive locks simply accrue everything
    // in gear 0 and never set adapt_seen, so nothing is emitted for them).
    if (r.lock_id != 0) {
        GearState& gs = gears_[r.lock_id];
        if (!gs.started) {
            gs.started = true;
            gs.since_ns = r.time_ns;
        }
        gs.last_ns = r.time_ns;
    }

    switch (r.event) {
      case LockEvent::AcquireAttempt: {
          LockMetrics& lm = lock_mut(r.lock_id);
          ++lm.attempts;
          if (r.a0 != 0)
              ++lm.try_attempts;
          // A failed try_acquire leaves its attempt open (there is no
          // failure event); a repeated attempt on the same lock replaces it
          // so retry loops don't grow the stack.
          bool replaced = false;
          for (auto& [lock_id, since] : ts.attempt_stack) {
              if (lock_id == r.lock_id) {
                  since = r.time_ns;
                  replaced = true;
                  break;
              }
          }
          if (!replaced)
              ts.attempt_stack.emplace_back(r.lock_id, r.time_ns);
          break;
      }
      case LockEvent::Acquired: {
          LockMetrics& lm = lock_mut(r.lock_id);
          ++lm.acquisitions;
          node_of(lm, r.node).acquisitions += 1;
          CpuMetrics& cm = cpu_of(r.cpu);
          ++cm.acquisitions;

          // Wait latency: from the matching open attempt of this thread.
          for (auto it = ts.attempt_stack.rbegin();
               it != ts.attempt_stack.rend(); ++it) {
              if (it->first == r.lock_id) {
                  const std::uint64_t wait =
                      r.time_ns >= it->second ? r.time_ns - it->second : 0;
                  lm.wait_ns.add(wait);
                  cm.wait_ns.add(wait);
                  ts.attempt_stack.erase(std::next(it).base());
                  break;
              }
          }
          ts.held_since[r.lock_id] = r.time_ns;

          // Handover classification + node-batch bookkeeping.
          HolderState& hs = holders_[r.lock_id];
          if (hs.last_holder_thread >= 0) {
              if (hs.last_holder_thread == r.thread)
                  ++lm.repeats;
              else if (hs.last_holder_node == r.node)
                  ++lm.handovers_local;
              else {
                  ++lm.handovers_remote;
                  node_of(lm, r.node).handovers_in += 1;
              }
          }
          if (hs.batch_node != r.node) {
              close_batch(lm, hs);
              hs.batch_node = r.node;
          }
          ++hs.batch_length;
          hs.last_holder_thread = r.thread;
          hs.last_holder_node = r.node;
          break;
      }
      case LockEvent::Released: {
          LockMetrics& lm = lock_mut(r.lock_id);
          ++lm.releases;
          const auto held = ts.held_since.find(r.lock_id);
          if (held != ts.held_since.end()) {
              const std::uint64_t hold =
                  r.time_ns >= held->second ? r.time_ns - held->second : 0;
              lm.hold_ns.add(hold);
              cpu_of(r.cpu).cs_ns += hold;
              ts.held_since.erase(held);
          }
          break;
      }
      case LockEvent::BackoffBegin: {
          ts.backoff_start_ns = r.time_ns;
          ts.backoff_class = r.a1 <= 2 ? static_cast<BackoffClass>(r.a1)
                                       : BackoffClass::Generic;
          ts.backoff_open = true;
          break;
      }
      case LockEvent::BackoffEnd: {
          if (!ts.backoff_open)
              break;
          ts.backoff_open = false;
          const std::uint64_t ns = r.time_ns >= ts.backoff_start_ns
                                       ? r.time_ns - ts.backoff_start_ns
                                       : 0;
          // Backoff sites don't know their lock; attribute to the thread's
          // innermost open acquire attempt (fall back to the primary lock).
          const std::uint64_t owner = !ts.attempt_stack.empty()
                                          ? ts.attempt_stack.back().first
                                          : primary_lock_id_;
          BackoffMetrics& bm =
              lock_mut(owner).backoff[static_cast<int>(ts.backoff_class)];
          ++bm.episodes;
          bm.total_ns += ns;
          CpuMetrics& cm = cpu_of(r.cpu);
          ++cm.backoff_episodes;
          cm.backoff_ns += ns;
          break;
      }
      case LockEvent::GateBlocked: {
          LockMetrics& lm = lock_mut(r.lock_id);
          ++lm.gate_blocked;
          node_of(lm, r.node).gate_blocked += 1;
          break;
      }
      case LockEvent::GatePassed: {
          LockMetrics& lm = lock_mut(r.lock_id);
          ++lm.gate_passed;
          node_of(lm, r.node).gate_passed += 1;
          break;
      }
      case LockEvent::GatePublish: {
          LockMetrics& lm = lock_mut(r.lock_id);
          ++lm.gate_publishes;
          if (r.a1 != 0)
              ++lm.gates_closed_in_anger;
          break;
      }
      case LockEvent::GateOpen:
          lock_mut(r.lock_id).gate_opens += r.a0 == 0 ? 1 : r.a0;
          break;
      case LockEvent::AngryEnter:
          ++lock_mut(r.lock_id).angry_transitions;
          break;
      case LockEvent::AngryExit:
          break;
      case LockEvent::AbandonStart: {
          ts.abandon_start_ns = r.time_ns;
          ts.abandon_open = true;
          break;
      }
      case LockEvent::AbandonDone: {
          LockMetrics& lm = lock_mut(r.lock_id);
          const auto outcome = static_cast<AbandonOutcome>(r.a0);
          if (outcome == AbandonOutcome::GrantRaced) {
              // The lock was accepted past the deadline; the Acquired
              // event that follows closes the open attempt normally.
              ++lm.abandon_grant_races;
          } else {
              ++lm.abandons;
              if (outcome == AbandonOutcome::Parked)
                  ++lm.abandons_parked;
              // The acquire failed: close this thread's open attempt on
              // the lock so no later acquisition inherits its wait time.
              for (auto it = ts.attempt_stack.rbegin();
                   it != ts.attempt_stack.rend(); ++it) {
                  if (it->first == r.lock_id) {
                      ts.attempt_stack.erase(std::next(it).base());
                      break;
                  }
              }
          }
          if (ts.abandon_open) {
              ts.abandon_open = false;
              lm.abandon_latency_ns.add(r.time_ns >= ts.abandon_start_ns
                                            ? r.time_ns - ts.abandon_start_ns
                                            : 0);
          }
          if (outcome != AbandonOutcome::GrantRaced) {
              // Demotion latency anchor: the first abandonment since the
              // last gear switch opens the storm window.
              GearState& gs = gears_[r.lock_id];
              if (!gs.abandon_pending) {
                  gs.abandon_pending = true;
                  gs.first_abandon_ns = r.time_ns;
              }
          }
          break;
      }
      case LockEvent::QueueReclaim: {
          LockMetrics& lm = lock_mut(r.lock_id);
          switch (static_cast<ReclaimKind>(r.a0)) {
            case ReclaimKind::Unlinked: ++lm.reclaims; break;
            case ReclaimKind::Rejoined: ++lm.rejoins; break;
            case ReclaimKind::Unparked: ++lm.unparks; break;
          }
          break;
      }
      case LockEvent::AdaptSwitch: {
          // a0 = from | (to << 8) (AdaptGear), a1 = AdaptReason — the
          // payload encoding documented at the LockEvent declaration.
          constexpr std::uint64_t kReasonTimeoutStorm = 3;
          LockMetrics& lm = lock_mut(r.lock_id);
          lm.adapt_seen = true;
          ++lm.adapt_switches;
          if (r.a1 < 5)
              ++lm.adapt_reasons[r.a1];
          GearState& gs = gears_[r.lock_id];
          lm.gear_residency_ns[gs.gear] +=
              r.time_ns >= gs.since_ns ? r.time_ns - gs.since_ns : 0;
          const int to = static_cast<int>((r.a0 >> 8) & 0xff);
          gs.gear = to < 3 ? to : 2;
          gs.since_ns = r.time_ns;
          if (r.a1 == kReasonTimeoutStorm && gs.abandon_pending)
              lm.demote_latency_ns.add(r.time_ns >= gs.first_abandon_ns
                                           ? r.time_ns - gs.first_abandon_ns
                                           : 0);
          gs.abandon_pending = false;
          break;
      }
    }
}

void
MetricsRegistry::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;
    for (auto& [lock_id, hs] : holders_)
        close_batch(lock_mut(lock_id), hs);
    for (auto& [lock_id, gs] : gears_) {
        if (!gs.started)
            continue;
        lock_mut(lock_id).gear_residency_ns[gs.gear] +=
            gs.last_ns >= gs.since_ns ? gs.last_ns - gs.since_ns : 0;
        gs.since_ns = gs.last_ns; // keeps repeated finalize() idempotent
    }
}

TrafficMetrics
fold_traffic(const sim::TrafficStats& totals,
             const sim::TrafficAttribution& attribution,
             const sim::ContentionStats& contention,
             std::uint64_t acquisitions, const MetricsRegistry* registry)
{
    TrafficMetrics tm;
    tm.totals = totals;
    tm.acquisitions = acquisitions;

    tm.locks.reserve(attribution.per_lock.size());
    for (const sim::LockTrafficStats& row : attribution.per_lock) {
        LockTrafficView view;
        view.lock_id = row.lock_id;
        view.tx = row;
        if (registry != nullptr) {
            const auto it = registry->locks().find(row.lock_id);
            if (it != registry->locks().end())
                view.acquisitions = it->second.acquisitions;
        }
        // Single-tier benches: the only attributed lock owns every harness
        // acquisition even without a registry.
        if (view.acquisitions == 0 && attribution.per_lock.size() == 1)
            view.acquisitions = acquisitions;
        tm.locks.push_back(std::move(view));
    }

    tm.attributed = attribution.attributed_totals();
    tm.unattributed.local_tx = totals.local_tx - tm.attributed.local_tx;
    tm.unattributed.global_tx = totals.global_tx - tm.attributed.global_tx;

    if (const sim::ResourceUsage* link = contention.global_link()) {
        tm.has_link = true;
        tm.link_utilization =
            contention.sim_time_ns == 0
                ? 0.0
                : static_cast<double>(link->busy_ns) /
                      static_cast<double>(contention.sim_time_ns);
        tm.link_queue_delay_ns = link->queue_delay_ns;
    }
    return tm;
}

} // namespace nucalock::obs
