/**
 * @file
 * The hardware-counter observatory: grouped per-thread perf_event counters
 * (cycles, instructions, LLC load misses, node/remote accesses) read at the
 * probe layer's phase-transition sites on the native backend, so counter
 * deltas are attributed per lock and per sim::TxPhase — the real-hardware
 * counterpart of the simulator's coherence-traffic attribution.
 *
 * Layering: CounterSource abstracts where samples come from (the
 * perf_event_open backend, or a deterministic FakeCounterSource for tests);
 * NativeCounterSession implements native::PhaseHooks on top of any source
 * and folds the per-thread recordings into a NativeTrafficStats, which maps
 * onto the existing sim::TrafficAttribution shape via to_attribution() so
 * fold_traffic, `nucaprof --traffic`, and the fig7-style per-phase tables
 * work unmodified on real hardware.
 *
 * Counters are a *proxy*, not a ground truth: LLC load misses stand in for
 * coherence transactions and node/remote-access events (where the PMU
 * exposes them) for global ones. The subsystem degrades gracefully —
 * perf_event_paranoid, missing PMUs, and containers produce a
 * machine-readable "unavailable" marker, never a failed run.
 */
#ifndef NUCALOCK_OBS_PERF_COUNTERS_HPP
#define NUCALOCK_OBS_PERF_COUNTERS_HPP

#include <array>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "native/phase_hooks.hpp"
#include "sim/traffic.hpp"

namespace nucalock::obs {

/** The events every counter group requests, in slot order. */
enum class CounterEvent : std::uint8_t
{
    Cycles = 0,     ///< PERF_COUNT_HW_CPU_CYCLES
    Instructions,   ///< PERF_COUNT_HW_INSTRUCTIONS
    LlcLoadMisses,  ///< HW_CACHE LL | READ | MISS — the traffic proxy
    RemoteAccesses, ///< HW_CACHE NODE | READ | MISS — the *global* proxy
};

inline constexpr int kNumCounterEvents = 4;

/** Stable event mnemonic (used in reports, --counters output, tests). */
inline const char*
counter_event_name(CounterEvent event)
{
    switch (event) {
      case CounterEvent::Cycles: return "cycles";
      case CounterEvent::Instructions: return "instructions";
      case CounterEvent::LlcLoadMisses: return "llc_load_misses";
      case CounterEvent::RemoteAccesses: return "remote_accesses";
    }
    return "?";
}

/** Per-event availability verdict from a capability probe or session. */
enum class CounterState : std::uint8_t
{
    Available = 0, ///< opened and counting full-time
    Multiplexed,   ///< opened, but the PMU rotated it (scaled values)
    Denied,        ///< EACCES/EPERM — perf_event_paranoid or LSM policy
    Unsupported,   ///< the PMU (or kernel) does not expose the event
};

inline const char*
counter_state_name(CounterState state)
{
    switch (state) {
      case CounterState::Available: return "available";
      case CounterState::Multiplexed: return "multiplexed";
      case CounterState::Denied: return "denied";
      case CounterState::Unsupported: return "unsupported";
    }
    return "?";
}

/** One event's verdict, with an errno/paranoid explanation when negative. */
struct CounterEventStatus
{
    CounterEvent event = CounterEvent::Cycles;
    CounterState state = CounterState::Unsupported;
    /** Empty when available; otherwise e.g. "EACCES (perf_event_paranoid=4)". */
    std::string detail;

    bool
    counting() const
    {
        return state == CounterState::Available ||
               state == CounterState::Multiplexed;
    }
};

/** paranoid_level sentinel: /proc/sys/kernel/perf_event_paranoid unreadable. */
inline constexpr int kParanoidUnknown = -1000;

/** What a source can deliver on this host, probed before any run. */
struct CounterCapabilities
{
    /** True when at least one event of a trial group opened and counted. */
    bool available = false;
    /** Required (non-empty) when !available; machine-readable-ish prose. */
    std::string unavailable_reason;
    /** /proc/sys/kernel/perf_event_paranoid, or kParanoidUnknown. */
    int paranoid_level = kParanoidUnknown;
    /** Source identity: "perf_event" or "fake". */
    std::string source;
    /** One entry per CounterEvent, in slot order. */
    std::vector<CounterEventStatus> events;
};

/** One cumulative reading of a thread's counter group. */
struct CounterSample
{
    std::array<std::uint64_t, kNumCounterEvents> value{};
    std::uint64_t time_enabled_ns = 0;
    std::uint64_t time_running_ns = 0;

    std::uint64_t
    at(CounterEvent event) const
    {
        return value[static_cast<std::size_t>(event)];
    }
};

/**
 * A per-thread counter group. read() fills cumulative event values (slots
 * that failed to open stay 0) plus the group's enabled/running times —
 * running < enabled means the kernel multiplexed the group and values are
 * undercounted by roughly running/enabled.
 */
class ThreadCounters
{
  public:
    virtual ~ThreadCounters() = default;
    virtual bool read(CounterSample& out) = 0;
};

/**
 * Where counter samples come from. open_current_thread() must be called on
 * the thread to be counted (perf groups bind to the calling thread) and
 * returns nullptr when no counters can be opened there.
 */
class CounterSource
{
  public:
    virtual ~CounterSource() = default;
    virtual CounterCapabilities capabilities() = 0;
    virtual std::unique_ptr<ThreadCounters> open_current_thread() = 0;
};

/**
 * The perf_event_open(2) backend. Opens one group per thread (leader =
 * first event that opens; siblings join it) with PERF_FORMAT_GROUP +
 * TOTAL_TIME_ENABLED/RUNNING, exclude_kernel, no inherit. On non-Linux
 * builds, and wherever perf_event_open is denied or unsupported, it
 * reports unavailable instead of failing.
 */
class PerfCounterSource final : public CounterSource
{
  public:
    CounterCapabilities capabilities() override;
    std::unique_ptr<ThreadCounters> open_current_thread() override;
};

/**
 * Deterministic source for tests: every read() advances each event by a
 * fixed per-read step (time_enabled == time_running, never multiplexed),
 * so phase attribution is exactly predictable from the number of
 * transitions a thread performed.
 */
class FakeCounterSource final : public CounterSource
{
  public:
    struct Steps
    {
        /** Added to {cycles, instructions, llc, remote} on every read. */
        std::array<std::uint64_t, kNumCounterEvents> per_read = {1000, 500,
                                                                 10, 3};
        /** time_enabled_ns == time_running_ns advance per read. */
        std::uint64_t time_per_read_ns = 100;
        /** Report the remote-access slot as unsupported (proxy-math test). */
        bool remote_unsupported = false;
    };

    FakeCounterSource() = default;
    explicit FakeCounterSource(Steps steps) : steps_(steps) {}

    CounterCapabilities capabilities() override;
    std::unique_ptr<ThreadCounters> open_current_thread() override;

  private:
    Steps steps_;
};

/** Counter deltas accumulated into one (lock, phase) attribution cell. */
struct PhaseCounters
{
    std::array<std::uint64_t, kNumCounterEvents> value{};

    std::uint64_t
    at(CounterEvent event) const
    {
        return value[static_cast<std::size_t>(event)];
    }

    PhaseCounters&
    operator+=(const PhaseCounters& rhs)
    {
        for (int i = 0; i < kNumCounterEvents; ++i)
            value[static_cast<std::size_t>(i)] +=
                rhs.value[static_cast<std::size_t>(i)];
        return *this;
    }

    bool
    empty() const
    {
        for (std::uint64_t v : value)
            if (v != 0)
                return false;
        return true;
    }
};

/** Hardware-counter deltas attributed to one lock, split by phase. */
struct NativeLockTraffic
{
    /** The lock's probe identity (NativeRef::token()); 0 = unattributed. */
    std::uint64_t lock_id = 0;
    /** Indexed by sim::TxPhase. */
    std::array<PhaseCounters, sim::kNumTxPhases> by_phase{};

    const PhaseCounters&
    phase(sim::TxPhase p) const
    {
        return by_phase[static_cast<std::size_t>(p)];
    }

    PhaseCounters
    totals() const
    {
        PhaseCounters t;
        for (const PhaseCounters& c : by_phase)
            t += c;
        return t;
    }
};

/**
 * The hardware-counter traffic picture of one native run — schema v6's
 * per-run `native_traffic` object. Always well-formed: when counters are
 * unavailable the marker fields say why and per_lock is empty, and the run
 * that produced it exits identically either way.
 */
struct NativeTrafficStats
{
    /** False ⇒ unavailable_reason says why and no counts were taken. */
    bool available = false;
    std::string unavailable_reason;
    /** /proc/sys/kernel/perf_event_paranoid, or kParanoidUnknown. */
    int paranoid_level = kParanoidUnknown;
    /** "perf_event" or "fake". */
    std::string source;
    /** Per-event verdicts (upgraded to Multiplexed when the group rotated). */
    std::vector<CounterEventStatus> events;

    /** Phase transitions recorded (counter reads − per-thread priming). */
    std::uint64_t samples = 0;
    /** Threads that successfully opened a counter group. */
    std::uint64_t threads = 0;
    /** Group scheduling times summed over threads (multiplex detection). */
    std::uint64_t time_enabled_ns = 0;
    std::uint64_t time_running_ns = 0;

    /**
     * Sorted by lock_id. A lock_id-0 row carries deltas outside any lock
     * operation (workload compute, harness bookkeeping) — the native
     * analogue of fold_traffic's unattributed remainder.
     */
    std::vector<NativeLockTraffic> per_lock;

    bool
    multiplexed() const
    {
        return time_running_ns < time_enabled_ns;
    }

    /** True when the node/remote-access slot actually counted. */
    bool
    remote_counted() const
    {
        for (const CounterEventStatus& e : events)
            if (e.event == CounterEvent::RemoteAccesses)
                return e.counting();
        return false;
    }

    /**
     * Map one cell's counters onto the local/global transaction proxy:
     * with a node-access event, global = remote misses and local = the
     * remaining LLC misses; without one, every LLC miss is conservatively
     * counted global (remote-vs-local is exactly what the missing event
     * would distinguish).
     */
    sim::TxCount
    proxy_tx(const PhaseCounters& cell) const
    {
        const std::uint64_t llc = cell.at(CounterEvent::LlcLoadMisses);
        const std::uint64_t remote = cell.at(CounterEvent::RemoteAccesses);
        sim::TxCount tx;
        if (remote_counted()) {
            tx.global_tx = remote;
            tx.local_tx = llc > remote ? llc - remote : 0;
        } else {
            tx.global_tx = llc;
            tx.local_tx = 0;
        }
        return tx;
    }

    /**
     * Fold into the simulator's attribution shape (per-lock rows only; the
     * lock_id-0 row is excluded so fold_traffic reports it as unattributed,
     * and per_node stays empty — perf counts threads, not home nodes).
     */
    sim::TrafficAttribution to_attribution() const;

    /** Proxy totals over every row including lock 0 (TrafficStats shape). */
    sim::TrafficStats totals() const;
};

/**
 * A recording session: install on a NativeMachine via install_phase_hooks,
 * run threads, then finish() once all threads have joined. bind_thread
 * opens this thread's counter group through the source and hands the
 * machine a recorder that snapshots the group at every phase transition,
 * accumulating the delta into the cell the thread was in *until* the
 * transition. finish() flushes each thread's tail, merges all threads,
 * and renders the verdicts (multiplexing, availability) into the stats.
 */
class NativeCounterSession final : public native::PhaseHooks
{
  public:
    explicit NativeCounterSession(CounterSource& source);
    ~NativeCounterSession() override;

    NativeCounterSession(const NativeCounterSession&) = delete;
    NativeCounterSession& operator=(const NativeCounterSession&) = delete;

    /** Called by NativeMachine::make_context on the context's own thread. */
    native::PhaseRecorder* bind_thread(int tid, int cpu) override;

    /**
     * Collect the merged stats. Call only after every recording thread has
     * joined; idempotent (subsequent calls return the same snapshot).
     */
    NativeTrafficStats finish();

  private:
    class ThreadTrafficRecorder;

    CounterSource& source_;
    CounterCapabilities caps_;
    std::mutex mutex_;
    std::vector<std::unique_ptr<ThreadTrafficRecorder>> recorders_;
    NativeTrafficStats finished_;
    bool done_ = false;
};

/**
 * Capability triage for `nucaprof --counters`: one line per event
 * (available / multiplexed / denied / unsupported with detail), prefixed
 * by the paranoid level. Returns 0 when any event counts, 1 otherwise —
 * informational, callers must not fail runs on it.
 */
int print_counter_capabilities(CounterSource& source, std::FILE* out);

} // namespace nucalock::obs

#endif // NUCALOCK_OBS_PERF_COUNTERS_HPP
