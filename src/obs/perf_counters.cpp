#include "obs/perf_counters.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <cerrno>
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace nucalock::obs {

// ---------------------------------------------------------------------------
// perf_event_open backend
// ---------------------------------------------------------------------------

#if defined(__linux__)

namespace {

struct EventSpec
{
    CounterEvent event;
    std::uint32_t type;
    std::uint64_t config;
};

constexpr EventSpec kEventSpecs[kNumCounterEvents] = {
    {CounterEvent::Cycles, PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {CounterEvent::Instructions, PERF_TYPE_HARDWARE,
     PERF_COUNT_HW_INSTRUCTIONS},
    {CounterEvent::LlcLoadMisses, PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_LL | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
    {CounterEvent::RemoteAccesses, PERF_TYPE_HW_CACHE,
     PERF_COUNT_HW_CACHE_NODE | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
         (PERF_COUNT_HW_CACHE_RESULT_MISS << 16)},
};

int
read_paranoid_level()
{
    std::FILE* f = std::fopen("/proc/sys/kernel/perf_event_paranoid", "re");
    if (f == nullptr)
        return kParanoidUnknown;
    int level = kParanoidUnknown;
    if (std::fscanf(f, "%d", &level) != 1)
        level = kParanoidUnknown;
    std::fclose(f);
    return level;
}

long
perf_event_open_syscall(struct perf_event_attr* attr, pid_t pid, int cpu,
                        int group_fd, unsigned long flags)
{
    return ::syscall(__NR_perf_event_open, attr, pid, cpu, group_fd, flags);
}

std::string
errno_detail(int err, int paranoid)
{
    std::string detail = std::strerror(err);
    if (err == EACCES || err == EPERM) {
        detail += " (perf_event_paranoid=";
        detail += paranoid == kParanoidUnknown ? std::string("?")
                                               : std::to_string(paranoid);
        detail += ")";
    }
    return detail;
}

/**
 * One group on the calling thread: the leader is the first event that
 * opens; later events join it so the kernel schedules (and, under PMU
 * pressure, multiplexes) them as a unit. Events that fail to open are
 * recorded and skipped — their sample slots stay 0.
 */
struct OpenGroup
{
    int leader = -1;
    std::array<int, kNumCounterEvents> fd = {-1, -1, -1, -1};
    /** value_order[k] = event slot of the k-th value in a GROUP read. */
    std::vector<int> value_order;
    std::vector<CounterEventStatus> events;

    void
    close_all()
    {
        for (int& f : fd) {
            if (f >= 0)
                ::close(f);
            f = -1;
        }
        leader = -1;
    }
};

OpenGroup
open_group(int paranoid)
{
    OpenGroup group;
    for (int slot = 0; slot < kNumCounterEvents; ++slot) {
        const EventSpec& spec = kEventSpecs[slot];
        struct perf_event_attr attr;
        std::memset(&attr, 0, sizeof(attr));
        attr.size = sizeof(attr);
        attr.type = spec.type;
        attr.config = spec.config;
        if (group.leader < 0)
            attr.disabled = 1; // siblings stay enabled; the group ioctl arms all
        attr.exclude_kernel = 1;
        attr.exclude_hv = 1;
        attr.inherit = 0;
        attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                           PERF_FORMAT_TOTAL_TIME_RUNNING;
        errno = 0;
        const long fd = perf_event_open_syscall(&attr, 0, -1, group.leader,
                                                PERF_FLAG_FD_CLOEXEC);
        CounterEventStatus status;
        status.event = spec.event;
        if (fd >= 0) {
            status.state = CounterState::Available;
            group.fd[static_cast<std::size_t>(slot)] = static_cast<int>(fd);
            group.value_order.push_back(slot);
            if (group.leader < 0)
                group.leader = static_cast<int>(fd);
        } else if (errno == EACCES || errno == EPERM) {
            status.state = CounterState::Denied;
            status.detail = errno_detail(errno, paranoid);
        } else {
            status.state = CounterState::Unsupported;
            status.detail = errno_detail(errno, paranoid);
        }
        group.events.push_back(status);
    }
    if (group.leader >= 0) {
        ::ioctl(group.leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
        ::ioctl(group.leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    }
    return group;
}

class PerfThreadCounters final : public ThreadCounters
{
  public:
    explicit PerfThreadCounters(OpenGroup group) : group_(std::move(group)) {}

    ~PerfThreadCounters() override { group_.close_all(); }

    PerfThreadCounters(const PerfThreadCounters&) = delete;
    PerfThreadCounters& operator=(const PerfThreadCounters&) = delete;

    bool
    read(CounterSample& out) override
    {
        // GROUP layout: nr, time_enabled, time_running, value[nr].
        std::uint64_t buf[3 + kNumCounterEvents] = {};
        const ssize_t n = ::read(group_.leader, buf, sizeof(buf));
        if (n < static_cast<ssize_t>(3 * sizeof(std::uint64_t)))
            return false;
        out = CounterSample{};
        out.time_enabled_ns = buf[1];
        out.time_running_ns = buf[2];
        const std::uint64_t nr = buf[0];
        for (std::uint64_t k = 0; k < nr && k < group_.value_order.size(); ++k)
            out.value[static_cast<std::size_t>(group_.value_order[k])] =
                buf[3 + k];
        return true;
    }

  private:
    OpenGroup group_;
};

std::string
group_unavailable_reason(const OpenGroup& group, int paranoid)
{
    // Prefer the denial story — that is the actionable one.
    for (const CounterEventStatus& e : group.events)
        if (e.state == CounterState::Denied)
            return "perf_event_open denied: " + e.detail;
    (void)paranoid;
    return "no requested hardware event is supported on this host";
}

} // namespace

CounterCapabilities
PerfCounterSource::capabilities()
{
    CounterCapabilities caps;
    caps.source = "perf_event";
    caps.paranoid_level = read_paranoid_level();
    OpenGroup group = open_group(caps.paranoid_level);
    caps.events = group.events;
    if (group.leader < 0) {
        caps.available = false;
        caps.unavailable_reason =
            group_unavailable_reason(group, caps.paranoid_level);
        return caps;
    }
    // Burn a little user time so a read can tell scheduled from rotated.
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 50'000; ++i)
        sink = sink + 1;
    PerfThreadCounters counters(std::move(group));
    CounterSample sample;
    if (counters.read(sample) &&
        sample.time_running_ns < sample.time_enabled_ns) {
        for (CounterEventStatus& e : caps.events)
            if (e.state == CounterState::Available)
                e.state = CounterState::Multiplexed;
    }
    caps.available = true;
    return caps;
}

std::unique_ptr<ThreadCounters>
PerfCounterSource::open_current_thread()
{
    OpenGroup group = open_group(read_paranoid_level());
    if (group.leader < 0)
        return nullptr;
    return std::make_unique<PerfThreadCounters>(std::move(group));
}

#else // !__linux__

CounterCapabilities
PerfCounterSource::capabilities()
{
    CounterCapabilities caps;
    caps.source = "perf_event";
    caps.available = false;
    caps.unavailable_reason = "perf_event_open is Linux-only";
    for (int slot = 0; slot < kNumCounterEvents; ++slot)
        caps.events.push_back(CounterEventStatus{
            static_cast<CounterEvent>(slot), CounterState::Unsupported,
            "not a Linux host"});
    return caps;
}

std::unique_ptr<ThreadCounters>
PerfCounterSource::open_current_thread()
{
    return nullptr;
}

#endif // __linux__

// ---------------------------------------------------------------------------
// FakeCounterSource
// ---------------------------------------------------------------------------

namespace {

class FakeThreadCounters final : public ThreadCounters
{
  public:
    explicit FakeThreadCounters(FakeCounterSource::Steps steps)
        : steps_(steps)
    {
    }

    bool
    read(CounterSample& out) override
    {
        for (int slot = 0; slot < kNumCounterEvents; ++slot) {
            if (steps_.remote_unsupported &&
                slot == static_cast<int>(CounterEvent::RemoteAccesses))
                continue;
            cumulative_.value[static_cast<std::size_t>(slot)] +=
                steps_.per_read[static_cast<std::size_t>(slot)];
        }
        cumulative_.time_enabled_ns += steps_.time_per_read_ns;
        cumulative_.time_running_ns += steps_.time_per_read_ns;
        out = cumulative_;
        return true;
    }

  private:
    FakeCounterSource::Steps steps_;
    CounterSample cumulative_;
};

} // namespace

CounterCapabilities
FakeCounterSource::capabilities()
{
    CounterCapabilities caps;
    caps.source = "fake";
    caps.available = true;
    caps.paranoid_level = kParanoidUnknown;
    for (int slot = 0; slot < kNumCounterEvents; ++slot) {
        CounterEventStatus status;
        status.event = static_cast<CounterEvent>(slot);
        status.state = CounterState::Available;
        if (steps_.remote_unsupported &&
            status.event == CounterEvent::RemoteAccesses) {
            status.state = CounterState::Unsupported;
            status.detail = "disabled by FakeCounterSource::Steps";
        }
        caps.events.push_back(status);
    }
    return caps;
}

std::unique_ptr<ThreadCounters>
FakeCounterSource::open_current_thread()
{
    return std::make_unique<FakeThreadCounters>(steps_);
}

// ---------------------------------------------------------------------------
// NativeTrafficStats folding
// ---------------------------------------------------------------------------

sim::TrafficAttribution
NativeTrafficStats::to_attribution() const
{
    sim::TrafficAttribution attr;
    for (const NativeLockTraffic& lock : per_lock) {
        if (lock.lock_id == 0)
            continue; // fold_traffic reports lock 0 as the unattributed rest
        sim::LockTrafficStats row;
        row.lock_id = lock.lock_id;
        for (int p = 0; p < sim::kNumTxPhases; ++p)
            row.by_phase[static_cast<std::size_t>(p)] =
                proxy_tx(lock.by_phase[static_cast<std::size_t>(p)]);
        attr.per_lock.push_back(row);
    }
    return attr; // per_lock is already sorted by lock_id
}

sim::TrafficStats
NativeTrafficStats::totals() const
{
    sim::TrafficStats t;
    for (const NativeLockTraffic& lock : per_lock) {
        for (const PhaseCounters& cell : lock.by_phase) {
            const sim::TxCount tx = proxy_tx(cell);
            t.local_tx += tx.local_tx;
            t.global_tx += tx.global_tx;
        }
    }
    // Proxy kinding: every counted miss is a fetch; the PMU cannot see
    // invalidations or RMW upgrades separately.
    t.data_fetch_tx = t.local_tx + t.global_tx;
    return t;
}

// ---------------------------------------------------------------------------
// NativeCounterSession
// ---------------------------------------------------------------------------

/**
 * Per-thread recorder: a priming read in the constructor anchors the first
 * window; every transition reads the group, attributes the delta since the
 * previous read to the cell the thread was in, then switches cells.
 * Single-threaded by construction (the owning thread is the only caller),
 * so no locking on the hot path.
 */
class NativeCounterSession::ThreadTrafficRecorder final
    : public native::PhaseRecorder
{
  public:
    explicit ThreadTrafficRecorder(std::unique_ptr<ThreadCounters> counters)
        : counters_(std::move(counters))
    {
        counters_->read(last_);
    }

    void
    on_phase(std::uint64_t lock_id, sim::TxPhase phase) override
    {
        advance(lock_id, phase);
    }

    void
    on_transient_phase(sim::TxPhase phase) override
    {
        advance(cur_lock_, phase); // window ends at the next transition
    }

    /** Attribute the tail window; called once after the thread joined. */
    void
    flush()
    {
        advance(cur_lock_, cur_phase_);
    }

    const std::vector<NativeLockTraffic>& rows() const { return rows_; }
    std::uint64_t samples() const { return samples_; }
    std::uint64_t time_enabled_ns() const { return last_.time_enabled_ns; }
    std::uint64_t time_running_ns() const { return last_.time_running_ns; }

  private:
    void
    advance(std::uint64_t new_lock, sim::TxPhase new_phase)
    {
        CounterSample sample;
        if (!counters_->read(sample))
            return;
        PhaseCounters& cell =
            row_for(cur_lock_)
                .by_phase[static_cast<std::size_t>(cur_phase_)];
        for (int i = 0; i < kNumCounterEvents; ++i) {
            const auto slot = static_cast<std::size_t>(i);
            cell.value[slot] += sample.value[slot] - last_.value[slot];
        }
        last_ = sample;
        cur_lock_ = new_lock;
        cur_phase_ = new_phase;
        ++samples_;
    }

    NativeLockTraffic&
    row_for(std::uint64_t lock_id)
    {
        for (NativeLockTraffic& row : rows_)
            if (row.lock_id == lock_id)
                return row;
        rows_.push_back(NativeLockTraffic{lock_id, {}});
        return rows_.back();
    }

    std::unique_ptr<ThreadCounters> counters_;
    CounterSample last_;
    std::uint64_t cur_lock_ = 0;
    sim::TxPhase cur_phase_ = sim::TxPhase::None;
    std::uint64_t samples_ = 0;
    std::vector<NativeLockTraffic> rows_;
};

NativeCounterSession::NativeCounterSession(CounterSource& source)
    : source_(source), caps_(source.capabilities())
{
}

NativeCounterSession::~NativeCounterSession() = default;

native::PhaseRecorder*
NativeCounterSession::bind_thread(int /*tid*/, int /*cpu*/)
{
    std::unique_ptr<ThreadCounters> counters = source_.open_current_thread();
    if (counters == nullptr)
        return nullptr;
    auto recorder =
        std::make_unique<ThreadTrafficRecorder>(std::move(counters));
    native::PhaseRecorder* raw = recorder.get();
    std::lock_guard<std::mutex> guard(mutex_);
    recorders_.push_back(std::move(recorder));
    return raw;
}

NativeTrafficStats
NativeCounterSession::finish()
{
    std::lock_guard<std::mutex> guard(mutex_);
    if (done_)
        return finished_;
    done_ = true;

    NativeTrafficStats stats;
    stats.paranoid_level = caps_.paranoid_level;
    stats.source = caps_.source;
    stats.events = caps_.events;
    stats.threads = recorders_.size();

    for (auto& recorder : recorders_) {
        recorder->flush();
        stats.samples += recorder->samples();
        stats.time_enabled_ns += recorder->time_enabled_ns();
        stats.time_running_ns += recorder->time_running_ns();
        for (const NativeLockTraffic& row : recorder->rows()) {
            auto it = std::find_if(
                stats.per_lock.begin(), stats.per_lock.end(),
                [&](const NativeLockTraffic& r) {
                    return r.lock_id == row.lock_id;
                });
            if (it == stats.per_lock.end()) {
                stats.per_lock.push_back(row);
            } else {
                for (int p = 0; p < sim::kNumTxPhases; ++p)
                    it->by_phase[static_cast<std::size_t>(p)] +=
                        row.by_phase[static_cast<std::size_t>(p)];
            }
        }
    }
    std::sort(stats.per_lock.begin(), stats.per_lock.end(),
              [](const NativeLockTraffic& a, const NativeLockTraffic& b) {
                  return a.lock_id < b.lock_id;
              });

    if (stats.multiplexed())
        for (CounterEventStatus& e : stats.events)
            if (e.state == CounterState::Available)
                e.state = CounterState::Multiplexed;

    if (!caps_.available) {
        stats.available = false;
        stats.unavailable_reason = caps_.unavailable_reason;
    } else if (stats.threads == 0) {
        stats.available = false;
        stats.unavailable_reason = "no thread opened a counter group";
    } else {
        stats.available = true;
    }

    finished_ = stats;
    return finished_;
}

// ---------------------------------------------------------------------------
// Capability triage (`nucaprof --counters`)
// ---------------------------------------------------------------------------

int
print_counter_capabilities(CounterSource& source, std::FILE* out)
{
    const CounterCapabilities caps = source.capabilities();
    std::fprintf(out, "source: %s\n", caps.source.c_str());
    if (caps.paranoid_level == kParanoidUnknown)
        std::fprintf(out, "perf_event_paranoid: unknown\n");
    else
        std::fprintf(out, "perf_event_paranoid: %d\n", caps.paranoid_level);
    bool any_counting = false;
    for (const CounterEventStatus& e : caps.events) {
        if (e.detail.empty())
            std::fprintf(out, "%s: %s\n", counter_event_name(e.event),
                         counter_state_name(e.state));
        else
            std::fprintf(out, "%s: %s (%s)\n", counter_event_name(e.event),
                         counter_state_name(e.state), e.detail.c_str());
        any_counting = any_counting || e.counting();
    }
    if (!caps.available)
        std::fprintf(out, "unavailable: %s\n",
                     caps.unavailable_reason.c_str());
    return any_counting ? 0 : 1;
}

} // namespace nucalock::obs
