/**
 * @file
 * Machine-readable benchmark report: schema "nucalock-bench-report" v6.
 *
 * v2 added, per run, a "traffic" object (per-lock/per-phase local/global
 * transaction attribution and per-acquisition rates) and a "contention"
 * object (per-resource occupancy, queue-delay percentiles, optional
 * time-binned utilisation series), plus memtrace_events/memtrace_dropped
 * in "result".
 *
 * v3 adds an optional top-level "robustness" object — the fault-campaign
 * soak runner's audited verdict (nucacheck --campaign): per-cell recovery
 * results (preset x lock x shape x seed, with abandonment/reclaim counters,
 * overshoot bounds and replay traces for failures) plus per-lock summary
 * rows. Reports without the object remain valid documents; nucaprof
 * renders it with --robustness.
 *
 * v4 adds an optional per-run "adaptive" object — ADAPTIVE's gear
 * telemetry folded from LockEvent::AdaptSwitch (obs/metrics.hpp): switch
 * totals by reason, per-gear residency, and the demotion-latency
 * histogram. Emitted only when the run's primary lock saw a gear switch;
 * reports without it remain valid documents.
 *
 * v5 adds an optional per-run "structs" object — the KV-service workload's
 * data-structure telemetry (structs/stats.hpp): op mix and hit rates,
 * cooperative-resize accounting (epochs, migrated keys, per-op stall
 * histogram), service op-latency histograms, and a per-stripe table
 * (acquisitions, local/remote custody handovers, lock_id linking each
 * stripe to its per-lock traffic-attribution row). Emitted only for KV
 * runs; reports without it remain valid v5 documents.
 *
 * v6 adds an optional per-run "native_traffic" object — the hardware-
 * counter observatory (obs/perf_counters.hpp): per-lock, per-phase counter
 * deltas (cycles, instructions, LLC load misses, node/remote accesses)
 * read at probe phase transitions on the native backend, with per-event
 * availability verdicts, multiplex detection, the proxy-mapped local/
 * global per-acquisition rates, and — when perf is denied or absent — a
 * machine-readable unavailable marker instead of counts. Like "host" it is
 * inherently nondeterministic, so `nucaprof --diff` strips it.
 *
 * Shared by tools/nucaprof (full metrics) and tools/nucabench --json
 * (results only). The schema is documented in docs/observability.md; bump
 * kReportSchemaVersion on any breaking change to the emitted shape.
 * validate_report() checks a parsed document against the schema and is
 * what `nucaprof --check-schema` (and the CI perf-smoke job) run.
 */
#ifndef NUCALOCK_OBS_REPORT_HPP
#define NUCALOCK_OBS_REPORT_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "harness/results.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "structs/stats.hpp"

namespace nucalock::obs {

inline constexpr const char* kReportSchemaName = "nucalock-bench-report";
inline constexpr int kReportSchemaVersion = 6;

/** Benchmark configuration echoed into the report. */
struct ReportConfig
{
    std::string tool;  ///< "nucaprof" or "nucabench"
    std::string bench; ///< "new", "traditional", "uncontested"
    int nodes = 0;
    int cpus_per_node = 0;
    int threads = 0;
    std::uint32_t critical_work = 0;
    std::uint32_t private_work = 0;
    std::uint32_t iterations = 0;
    double nuca_ratio = 0.0;
    std::uint64_t seed = 0;
};

/**
 * Host-side (wall-clock) measurements of a run. Everything else in a report
 * is a deterministic function of the simulated run; these fields are the
 * one exception — they measure the *host machine executing the simulator*
 * (bench/bench_sim_throughput.cpp), so they differ between hosts and
 * repetitions. Consumers comparing reports for determinism must ignore the
 * "host" object (it is emitted only when @ref valid is set).
 */
struct HostStats
{
    bool valid = false;
    /** Host wall-clock time of the run(s), nanoseconds. */
    double wall_ns = 0.0;
    /** Simulated memory operations executed per host second. */
    double events_per_sec = 0.0;
    /** Fiber context switches executed per host second. */
    double switches_per_sec = 0.0;
    /** Worker count the run used (1 = sequential). */
    int jobs = 1;
};

/** One benchmark run (one lock) inside a report. */
struct ReportRun
{
    ReportRun() = default;
    ReportRun(std::string name, harness::BenchResult res,
              const MetricsRegistry* reg)
        : lock_name(std::move(name)), result(res), metrics(reg)
    {
    }

    std::string lock_name;
    harness::BenchResult result;
    /** Finalized registry for this run, or nullptr (nucabench --json). */
    const MetricsRegistry* metrics = nullptr;
    /** Host wall-clock measurements; omitted from the JSON unless valid. */
    HostStats host;
    /** KV-service structs telemetry, or nullptr (v5 optional per-run
     *  "structs" object; the pointee must outlive write_report). */
    const structs::KvStructsStats* structs = nullptr;
    /** Hardware-counter traffic, or nullptr (v6 optional per-run
     *  "native_traffic" object; the pointee must outlive write_report). */
    const NativeTrafficStats* native_traffic = nullptr;
};

// ---------------------------------------------------------------------------
// v3 "robustness" object: the fault campaign's audited verdict, as plain
// data so the checker layer can fill it without depending on this library.
// ---------------------------------------------------------------------------

/** One campaign cell (preset x lock x shape x seed). */
struct RobustnessCell
{
    std::string lock;
    std::string preset;
    int nodes = 0;
    int cpus_per_node = 0;
    std::uint64_t seed = 0;
    bool failed = false;
    std::string what; ///< empty unless failed
    std::string stop; ///< sim::stop_reason_name
    std::uint64_t steps = 0;
    std::uint64_t acquisitions = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t mutex_violations = 0;
    std::uint64_t faults_injected = 0;
    std::uint64_t max_overshoot_ns = 0;
    std::uint64_t overshoot_bound_ns = 0;
    std::uint64_t abandons = 0;
    std::uint64_t parked = 0;
    std::uint64_t grant_races = 0;
    std::uint64_t reclaims = 0;
    std::uint64_t rejoins = 0;
    std::uint64_t unparks = 0;
    std::uint64_t leaked_nodes = 0;
    std::string trace;         ///< nc1 replay trace (failed cells only)
    std::string minimal_trace; ///< shrunk trace, when available
};

/** Per-lock aggregation row. */
struct RobustnessLockRow
{
    std::string lock;
    std::uint64_t cells = 0;
    std::uint64_t failures = 0;
    std::uint64_t acquisitions = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t abandons = 0;
    std::uint64_t parked = 0;
    std::uint64_t grant_races = 0;
    std::uint64_t reclaims = 0;
    std::uint64_t rejoins = 0;
    std::uint64_t unparks = 0;
    std::uint64_t leaked_nodes = 0;
    std::uint64_t max_overshoot_ns = 0;
};

/** The whole robustness object (campaign parameters echoed for replay). */
struct RobustnessReport
{
    std::vector<std::string> presets;
    std::uint64_t timeout_ns = 0;
    std::uint32_t iterations = 0;
    std::uint64_t first_seed = 0;
    int num_seeds = 0;
    std::vector<RobustnessCell> cells;
    std::vector<RobustnessLockRow> per_lock;
    std::uint64_t failures = 0;
};

/** Write the whole report document to @p os (pretty-printed JSON).
 *  @p robustness, when non-null, is emitted as the optional top-level
 *  "robustness" object (the fault campaign's verdict). */
void write_report(std::ostream& os, const ReportConfig& config,
                  const std::vector<ReportRun>& runs,
                  const RobustnessReport* robustness = nullptr);

/**
 * Validate a parsed report against the v6 schema. Returns true when the
 * document conforms; otherwise false with a description in *error. A
 * version mismatch fails with "report is vN, tool understands vM" so a
 * reader paired with the wrong tool build is diagnosed immediately.
 */
bool validate_report(const JsonValue& document, std::string* error);

/** Parse + validate a report file. */
bool validate_report_text(std::string_view text, std::string* error);

} // namespace nucalock::obs

#endif // NUCALOCK_OBS_REPORT_HPP
