/**
 * @file
 * Metrics registry: a ProbeSink that folds the lock-event stream into the
 * quantities the paper argues about — local vs remote handover ratios,
 * node-ownership batch lengths, backoff time breakdown, GT gate traffic
 * avoidance, SD anger episodes — aggregated per lock, per node, and per
 * CPU. Reuses stats::LogHistogram for latency spreads and stats::Summary
 * for batch lengths.
 *
 * Single-threaded (fine under the simulator, which serializes all probes
 * on the host thread); wrap in obs::ThreadSafeSink on the native backend.
 */
#ifndef NUCALOCK_OBS_METRICS_HPP
#define NUCALOCK_OBS_METRICS_HPP

#include <cstdint>
#include <map>
#include <vector>

#include "obs/probe.hpp"
#include "sim/resource.hpp"
#include "sim/traffic.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace nucalock::obs {

/** Counters for one BackoffClass within one lock. */
struct BackoffMetrics
{
    std::uint64_t episodes = 0;
    std::uint64_t total_ns = 0;
};

/** Per-node aggregation within one lock. */
struct NodeMetrics
{
    std::uint64_t acquisitions = 0;
    /** Acquisitions whose previous holder lived in another node. */
    std::uint64_t handovers_in = 0;
    /** Lengths of consecutive-acquisition batches this node enjoyed. */
    stats::Summary batch_lengths;
    std::uint64_t gate_blocked = 0;
    std::uint64_t gate_passed = 0;
};

/** Per-CPU aggregation (across all locks — CPUs are machine-global). */
struct CpuMetrics
{
    std::uint64_t acquisitions = 0;
    std::uint64_t backoff_episodes = 0;
    std::uint64_t backoff_ns = 0;
    stats::LogHistogram wait_ns;
    std::uint64_t cs_ns = 0;
};

/** Everything known about one lock (keyed by its probe lock_id). */
struct LockMetrics
{
    std::uint64_t lock_id = 0;
    std::uint64_t attempts = 0;
    std::uint64_t try_attempts = 0;
    std::uint64_t acquisitions = 0;
    std::uint64_t releases = 0;

    /** Handover: the previous holder was a different thread. */
    std::uint64_t handovers_local = 0;  ///< same node, different thread
    std::uint64_t handovers_remote = 0; ///< different node
    std::uint64_t repeats = 0;          ///< same thread re-acquired

    stats::LogHistogram wait_ns;
    stats::LogHistogram hold_ns;
    /** Same-node acquisition streak lengths (the paper's "node batches"). */
    stats::Summary node_batch_lengths;

    /** Indexed by BackoffClass (generic, local, remote). */
    BackoffMetrics backoff[3];

    std::uint64_t gate_blocked = 0;
    std::uint64_t gate_passed = 0;
    std::uint64_t gate_publishes = 0;
    std::uint64_t gate_opens = 0;
    std::uint64_t angry_transitions = 0;
    std::uint64_t gates_closed_in_anger = 0;

    // ----- timed abandonment (locks with native try_acquire_for) ---------
    /** Timed acquisitions that returned false at their deadline. */
    std::uint64_t abandons = 0;
    /** Of those, abandonments that parked a node in the queue. */
    std::uint64_t abandons_parked = 0;
    /** Deadline hit but the handover won the race; lock accepted. */
    std::uint64_t abandon_grant_races = 0;
    /** Abandoned queue nodes unlinked by a releaser. */
    std::uint64_t reclaims = 0;
    /** Abandoned queue nodes resumed in place by their owner. */
    std::uint64_t rejoins = 0;
    /** Reclaimed nodes found and reused by their returning owner. */
    std::uint64_t unparks = 0;
    /** AbandonStart -> AbandonDone: the cost of leaving (recovery latency
     *  of the abandonment path itself, gate re-opens included). */
    stats::LogHistogram abandon_latency_ns;

    // ----- adaptive gear tracking (LockEvent::AdaptSwitch) ----------------
    /** At least one AdaptSwitch was seen (gates report emission). */
    bool adapt_seen = false;
    /** Gear switches, total and by AdaptReason (adaptive_policy.hpp). */
    std::uint64_t adapt_switches = 0;
    std::uint64_t adapt_reasons[5] = {0, 0, 0, 0, 0};
    /** Event-time residency per gear (tatas, hbo, queue), measured from
     *  the lock's first event to its last. */
    std::uint64_t gear_residency_ns[3] = {0, 0, 0};
    /** First storm abandonment -> the TimeoutStorm demotion that answered
     *  it: how long degradation took to engage. */
    stats::LogHistogram demote_latency_ns;

    std::vector<NodeMetrics> per_node;

    /** Remote handovers / all handovers (0 when no handover happened). */
    double
    remote_handover_fraction() const
    {
        const std::uint64_t h = handovers_local + handovers_remote;
        return h == 0 ? 0.0
                      : static_cast<double>(handovers_remote) /
                            static_cast<double>(h);
    }

    /** Local handovers / all handovers — the paper's locality headline. */
    double
    local_handover_fraction() const
    {
        const std::uint64_t h = handovers_local + handovers_remote;
        return h == 0 ? 0.0
                      : static_cast<double>(handovers_local) /
                            static_cast<double>(h);
    }

    std::uint64_t
    backoff_ns_total() const
    {
        return backoff[0].total_ns + backoff[1].total_ns + backoff[2].total_ns;
    }

    /** Gate checks that found the gate closed, as a fraction. */
    double
    gate_block_fraction() const
    {
        const std::uint64_t checks = gate_blocked + gate_passed;
        return checks == 0 ? 0.0
                           : static_cast<double>(gate_blocked) /
                                 static_cast<double>(checks);
    }
};

/**
 * The registry itself. Feed it a probe stream; call finalize() (idempotent)
 * before reading so trailing node batches and open episodes are flushed.
 */
class MetricsRegistry final : public ProbeSink
{
  public:
    void on_event(const ProbeRecord& record) override;

    /** Flush trailing state (open node batches). Safe to call repeatedly. */
    void finalize();

    /**
     * The benchmark's top-level lock: the lock_id of the first event ever
     * emitted (outer acquires always probe before any nested tier), or 0
     * when nothing was recorded.
     */
    std::uint64_t primary_lock_id() const { return primary_lock_id_; }

    /** Metrics for @p lock_id; creates an empty record if absent. */
    const LockMetrics& lock(std::uint64_t lock_id) const;
    const LockMetrics* primary() const;

    const std::map<std::uint64_t, LockMetrics>& locks() const { return locks_; }
    const std::vector<CpuMetrics>& cpus() const { return cpus_; }

    std::uint64_t events_seen() const { return events_seen_; }

  private:
    struct ThreadState
    {
        /** Open acquire attempts, innermost last: (lock_id, start_ns). */
        std::vector<std::pair<std::uint64_t, std::uint64_t>> attempt_stack;
        /** Currently held locks: lock_id -> acquired time. */
        std::map<std::uint64_t, std::uint64_t> held_since;
        /** Open backoff episode start (BackoffBegin seen, End pending). */
        std::uint64_t backoff_start_ns = 0;
        BackoffClass backoff_class = BackoffClass::Generic;
        bool backoff_open = false;
        /** Open abandonment (AbandonStart seen, Done pending). */
        std::uint64_t abandon_start_ns = 0;
        bool abandon_open = false;
    };

    struct HolderState
    {
        int last_holder_thread = -1;
        int last_holder_node = -1;
        int batch_node = -1;
        std::uint64_t batch_length = 0;
    };

    /** Per-lock gear tracking for the adaptive metrics. */
    struct GearState
    {
        int gear = 0; ///< AdaptGear value; locks start in Tatas (0)
        std::uint64_t since_ns = 0;
        std::uint64_t last_ns = 0;
        bool started = false;
        /** First abandonment since the last switch (demotion latency). */
        std::uint64_t first_abandon_ns = 0;
        bool abandon_pending = false;
    };

    LockMetrics& lock_mut(std::uint64_t lock_id);
    NodeMetrics& node_of(LockMetrics& lm, int node);
    CpuMetrics& cpu_of(int cpu);
    ThreadState& thread_of(int tid);

    void close_batch(LockMetrics& lm, HolderState& hs);

    std::map<std::uint64_t, LockMetrics> locks_;
    std::map<std::uint64_t, HolderState> holders_;
    std::map<std::uint64_t, GearState> gears_;
    std::vector<CpuMetrics> cpus_;
    std::map<int, ThreadState> threads_;
    std::uint64_t primary_lock_id_ = 0;
    std::uint64_t events_seen_ = 0;
    bool finalized_ = false;
};

// ---------------------------------------------------------------------------
// Traffic metrics: attribution + contention folded to per-acquisition rates
// ---------------------------------------------------------------------------

/** One lock's traffic, normalised by its acquisition count. */
struct LockTrafficView
{
    std::uint64_t lock_id = 0;
    /** From the MetricsRegistry; 0 when no registry was supplied. */
    std::uint64_t acquisitions = 0;
    sim::LockTrafficStats tx;

    double
    local_per_acquisition() const
    {
        return acquisitions == 0 ? 0.0
                                 : static_cast<double>(tx.totals().local_tx) /
                                       static_cast<double>(acquisitions);
    }

    double
    global_per_acquisition() const
    {
        return acquisitions == 0 ? 0.0
                                 : static_cast<double>(tx.totals().global_tx) /
                                       static_cast<double>(acquisitions);
    }
};

/**
 * The traffic story of one run, in the shape the paper's Tables 2/6 and
 * Figure 7 report it: totals per acquisition, a per-lock/per-phase split,
 * the unattributed remainder (critical-section data, harness bookkeeping,
 * or everything when probes are compiled out), and the global-link
 * contention headline numbers.
 */
struct TrafficMetrics
{
    sim::TrafficStats totals;
    /** The harness's critical-section entry count (BenchResult). */
    std::uint64_t acquisitions = 0;
    /** Locks in attribution order (sorted by lock_id). */
    std::vector<LockTrafficView> locks;
    /** Sum over every attributed (lock, phase) cell. */
    sim::TxCount attributed;
    /** totals minus attributed (never negative by construction). */
    sim::TxCount unattributed;

    /** Global-link contention (zeroed when the run had no link entry). */
    bool has_link = false;
    double link_utilization = 0.0; ///< busy_ns / sim_time_ns
    stats::LogHistogram link_queue_delay_ns;

    double
    local_tx_per_acquisition() const
    {
        return acquisitions == 0 ? 0.0
                                 : static_cast<double>(totals.local_tx) /
                                       static_cast<double>(acquisitions);
    }

    double
    global_tx_per_acquisition() const
    {
        return acquisitions == 0 ? 0.0
                                 : static_cast<double>(totals.global_tx) /
                                       static_cast<double>(acquisitions);
    }
};

/**
 * Fold a run's traffic totals, attribution tables and contention snapshot
 * into per-acquisition rates. @p registry (optional) supplies per-lock
 * acquisition counts so nested tiers normalise by their own acquisitions
 * rather than the harness total.
 */
TrafficMetrics fold_traffic(const sim::TrafficStats& totals,
                            const sim::TrafficAttribution& attribution,
                            const sim::ContentionStats& contention,
                            std::uint64_t acquisitions,
                            const MetricsRegistry* registry = nullptr);

} // namespace nucalock::obs

#endif // NUCALOCK_OBS_METRICS_HPP
