#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "common/logging.hpp"

namespace nucalock::obs {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

std::string
json_escape(std::string_view text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

JsonWriter::JsonWriter(std::ostream& os, bool pretty) : os_(os), pretty_(pretty)
{
}

void
JsonWriter::newline_indent()
{
    if (!pretty_)
        return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::before_value()
{
    if (key_pending_) {
        key_pending_ = false;
        return; // the key already positioned us
    }
    if (stack_.empty())
        return; // top-level value
    NUCA_ASSERT(!stack_.back(), "value inside an object requires a key");
    if (!first_in_container_)
        os_ << ',';
    first_in_container_ = false;
    newline_indent();
}

JsonWriter&
JsonWriter::begin_object()
{
    before_value();
    os_ << '{';
    stack_.push_back(true);
    first_in_container_ = true;
    return *this;
}

JsonWriter&
JsonWriter::end_object()
{
    NUCA_ASSERT(!stack_.empty() && stack_.back(), "unbalanced end_object");
    const bool was_empty = first_in_container_;
    stack_.pop_back();
    if (!was_empty)
        newline_indent();
    os_ << '}';
    first_in_container_ = false;
    return *this;
}

JsonWriter&
JsonWriter::begin_array()
{
    before_value();
    os_ << '[';
    stack_.push_back(false);
    first_in_container_ = true;
    return *this;
}

JsonWriter&
JsonWriter::end_array()
{
    NUCA_ASSERT(!stack_.empty() && !stack_.back(), "unbalanced end_array");
    const bool was_empty = first_in_container_;
    stack_.pop_back();
    if (!was_empty)
        newline_indent();
    os_ << ']';
    first_in_container_ = false;
    return *this;
}

JsonWriter&
JsonWriter::key(std::string_view name)
{
    NUCA_ASSERT(!stack_.empty() && stack_.back(), "key outside an object");
    NUCA_ASSERT(!key_pending_, "two keys in a row");
    if (!first_in_container_)
        os_ << ',';
    first_in_container_ = false;
    newline_indent();
    os_ << '"' << json_escape(name) << "\":";
    if (pretty_)
        os_ << ' ';
    key_pending_ = true;
    return *this;
}

JsonWriter&
JsonWriter::value(std::string_view text)
{
    before_value();
    os_ << '"' << json_escape(text) << '"';
    return *this;
}

JsonWriter&
JsonWriter::value(const char* text)
{
    return value(std::string_view(text));
}

JsonWriter&
JsonWriter::value(double number)
{
    before_value();
    if (!std::isfinite(number)) {
        os_ << "null";
        return *this;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", number);
    // Trim to the shortest representation that round-trips.
    for (int precision = 1; precision < 17; ++precision) {
        char shorter[32];
        std::snprintf(shorter, sizeof shorter, "%.*g", precision, number);
        double back = 0.0;
        std::sscanf(shorter, "%lf", &back);
        if (back == number) {
            os_ << shorter;
            return *this;
        }
    }
    os_ << buf;
    return *this;
}

JsonWriter&
JsonWriter::value(std::uint64_t number)
{
    before_value();
    os_ << number;
    return *this;
}

JsonWriter&
JsonWriter::value(std::int64_t number)
{
    before_value();
    os_ << number;
    return *this;
}

JsonWriter&
JsonWriter::value(int number)
{
    return value(static_cast<std::int64_t>(number));
}

JsonWriter&
JsonWriter::value(bool flag)
{
    before_value();
    os_ << (flag ? "true" : "false");
    return *this;
}

JsonWriter&
JsonWriter::null()
{
    before_value();
    os_ << "null";
    return *this;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser
{
  public:
    Parser(std::string_view text, std::string* error)
        : text_(text), error_(error)
    {
    }

    std::optional<JsonValue>
    run()
    {
        skip_ws();
        JsonValue v;
        if (!parse_value(&v))
            return std::nullopt;
        skip_ws();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON value");
        return v;
    }

  private:
    std::optional<JsonValue>
    fail(const std::string& message)
    {
        if (error_ != nullptr && error_->empty())
            *error_ = message + " (at offset " + std::to_string(pos_) + ")";
        ok_ = false;
        return std::nullopt;
    }

    void
    skip_ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    parse_value(JsonValue* out)
    {
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return false;
        }
        const char c = text_[pos_];
        switch (c) {
          case '{': return parse_object(out);
          case '[': return parse_array(out);
          case '"': out->type = JsonValue::Type::String;
                    return parse_string(&out->string);
          case 't':
          case 'f': return parse_literal(out);
          case 'n': return parse_null(out);
          default: return parse_number(out);
        }
    }

    bool
    parse_object(JsonValue* out)
    {
        consume('{');
        out->type = JsonValue::Type::Object;
        skip_ws();
        if (consume('}'))
            return true;
        while (true) {
            skip_ws();
            std::string name;
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected object key");
                return false;
            }
            if (!parse_string(&name))
                return false;
            skip_ws();
            if (!consume(':')) {
                fail("expected ':' after key");
                return false;
            }
            skip_ws();
            JsonValue member;
            if (!parse_value(&member))
                return false;
            out->object.emplace(std::move(name), std::move(member));
            skip_ws();
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            fail("expected ',' or '}' in object");
            return false;
        }
    }

    bool
    parse_array(JsonValue* out)
    {
        consume('[');
        out->type = JsonValue::Type::Array;
        skip_ws();
        if (consume(']'))
            return true;
        while (true) {
            skip_ws();
            JsonValue element;
            if (!parse_value(&element))
                return false;
            out->array.push_back(std::move(element));
            skip_ws();
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            fail("expected ',' or ']' in array");
            return false;
        }
    }

    bool
    parse_string(std::string* out)
    {
        consume('"');
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': *out += '"'; break;
              case '\\': *out += '\\'; break;
              case '/': *out += '/'; break;
              case 'b': *out += '\b'; break;
              case 'f': *out += '\f'; break;
              case 'n': *out += '\n'; break;
              case 'r': *out += '\r'; break;
              case 't': *out += '\t'; break;
              case 'u': {
                  if (pos_ + 4 > text_.size()) {
                      fail("truncated \\u escape");
                      return false;
                  }
                  unsigned code = 0;
                  for (int i = 0; i < 4; ++i) {
                      const char h = text_[pos_++];
                      code <<= 4;
                      if (h >= '0' && h <= '9')
                          code |= static_cast<unsigned>(h - '0');
                      else if (h >= 'a' && h <= 'f')
                          code |= static_cast<unsigned>(h - 'a' + 10);
                      else if (h >= 'A' && h <= 'F')
                          code |= static_cast<unsigned>(h - 'A' + 10);
                      else {
                          fail("bad \\u escape");
                          return false;
                      }
                  }
                  // UTF-8 encode the BMP code point (surrogate pairs are
                  // not needed by our own writer, which never emits them).
                  if (code < 0x80) {
                      *out += static_cast<char>(code);
                  } else if (code < 0x800) {
                      *out += static_cast<char>(0xc0 | (code >> 6));
                      *out += static_cast<char>(0x80 | (code & 0x3f));
                  } else {
                      *out += static_cast<char>(0xe0 | (code >> 12));
                      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                      *out += static_cast<char>(0x80 | (code & 0x3f));
                  }
                  break;
              }
              default:
                fail("unknown escape");
                return false;
            }
        }
        fail("unterminated string");
        return false;
    }

    bool
    parse_literal(JsonValue* out)
    {
        if (text_.substr(pos_, 4) == "true") {
            pos_ += 4;
            out->type = JsonValue::Type::Bool;
            out->boolean = true;
            return true;
        }
        if (text_.substr(pos_, 5) == "false") {
            pos_ += 5;
            out->type = JsonValue::Type::Bool;
            out->boolean = false;
            return true;
        }
        fail("bad literal");
        return false;
    }

    bool
    parse_null(JsonValue* out)
    {
        if (text_.substr(pos_, 4) == "null") {
            pos_ += 4;
            out->type = JsonValue::Type::Null;
            return true;
        }
        fail("bad literal");
        return false;
    }

    bool
    parse_number(JsonValue* out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-'))
            ++pos_;
        const std::string token(text_.substr(start, pos_ - start));
        if (token.empty()) {
            fail("expected a value");
            return false;
        }
        char* end = nullptr;
        const double v = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size()) {
            fail("bad number '" + token + "'");
            return false;
        }
        out->type = JsonValue::Type::Number;
        out->number = v;
        return true;
    }

    std::string_view text_;
    std::string* error_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace

const JsonValue*
JsonValue::find(std::string_view name) const
{
    if (type != Type::Object)
        return nullptr;
    const auto it = object.find(std::string(name));
    return it == object.end() ? nullptr : &it->second;
}

std::optional<JsonValue>
json_parse(std::string_view text, std::string* error)
{
    return Parser(text, error).run();
}

} // namespace nucalock::obs
