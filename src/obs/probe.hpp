/**
 * @file
 * Lock-event probe API: the zero-cost-when-disabled hook through which the
 * templated lock algorithms emit observability events on both backends.
 *
 * Design constraints (see docs/observability.md):
 *  - No sink installed (the default): one pointer null-check per probe
 *    site, no allocation, no time read. Compiling with
 *    -DNUCALOCK_NO_PROBES removes even that.
 *  - A sink must never perturb the run it observes: probes read the
 *    context's clock and identity only — no simulated memory operations,
 *    no RNG draws — so per-seed lock behaviour is bit-identical with
 *    probes on or off (pinned by tests/obs_test.cpp).
 *  - Both backends emit the same events: time is simulated ns under sim
 *    and steady-clock ns natively (same convention as InstrumentedLock).
 *
 * Contexts advertise a sink via `probe_sink()`; contexts without that
 * method (e.g. test doubles) simply never emit.
 */
#ifndef NUCALOCK_OBS_PROBE_HPP
#define NUCALOCK_OBS_PROBE_HPP

#include <chrono>
#include <concepts>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/traffic.hpp"

namespace nucalock::obs {

/** Everything a lock can tell the observability layer. */
enum class LockEvent : std::uint8_t
{
    AcquireAttempt, ///< entering acquire()/try_acquire(); a0=1 for a try
    Acquired,       ///< the lock is now held; a0=1 when via try_acquire
    Released,       ///< about to release (still holding)
    BackoffBegin,   ///< a0 = delay iterations, a1 = BackoffClass
    BackoffEnd,     ///< matches the preceding BackoffBegin of this thread
    GateBlocked,    ///< GT throttle: our node's gate names this lock
    GatePassed,     ///< GT throttle: the gate was open
    GatePublish,    ///< a gate was closed; a0 = node, a1 = 1 when in anger
    GateOpen,       ///< gates re-opened; a0 = number of gates opened
    AngryEnter,     ///< SD starvation detection tripped; a0 = holder node
    AngryExit,      ///< the angry episode ended (acquired or migrated home)
    AbandonStart,   ///< deadline hit inside a timed acquire; cleanup begins
    AbandonDone,    ///< abandonment finished; a0 = AbandonOutcome
    QueueReclaim,   ///< an abandoned queue node was recovered; a0 =
                    ///< ReclaimKind, a1 = node owner's thread id
    AdaptSwitch,    ///< ADAPTIVE changed gear; a0 = from | (to << 8)
                    ///< (locks/adaptive_policy.hpp AdaptGear values),
                    ///< a1 = AdaptReason
};

/** AbandonDone payload (a0): what the timed-out thread left behind. */
enum class AbandonOutcome : std::uint8_t
{
    Parked = 0,    ///< node stays in the queue marked abandoned (MCS)
    Clean = 1,     ///< nothing left behind (cohort local tier, HBO gates)
    GrantRaced = 2 ///< the grant won the abandon race; lock was accepted
};

/** QueueReclaim payload (a0): who recovered the abandoned node. */
enum class ReclaimKind : std::uint8_t
{
    Unlinked = 0, ///< a releaser unlinked the node from the queue
    Rejoined = 1, ///< the owner came back and resumed its old position
    Unparked = 2  ///< the owner found its node already reclaimed and reused it
};

/** Printable event mnemonic (stable — used in traces and tests). */
inline const char*
lock_event_name(LockEvent event)
{
    switch (event) {
      case LockEvent::AcquireAttempt: return "acquire_attempt";
      case LockEvent::Acquired: return "acquired";
      case LockEvent::Released: return "released";
      case LockEvent::BackoffBegin: return "backoff_begin";
      case LockEvent::BackoffEnd: return "backoff_end";
      case LockEvent::GateBlocked: return "gate_blocked";
      case LockEvent::GatePassed: return "gate_passed";
      case LockEvent::GatePublish: return "gate_publish";
      case LockEvent::GateOpen: return "gate_open";
      case LockEvent::AngryEnter: return "angry_enter";
      case LockEvent::AngryExit: return "angry_exit";
      case LockEvent::AbandonStart: return "abandon_start";
      case LockEvent::AbandonDone: return "abandon_done";
      case LockEvent::QueueReclaim: return "queue_reclaim";
      case LockEvent::AdaptSwitch: return "adapt_switch";
    }
    return "?";
}

/** Which backoff constants a BackoffBegin/End episode used. */
enum class BackoffClass : std::uint8_t
{
    Generic = 0, ///< no locality information (TATAS_EXP, timed retries)
    Local = 1,   ///< holder in our node (or chip): small constants
    Remote = 2,  ///< holder in a remote node: throttled constants
};

inline const char*
backoff_class_name(BackoffClass cls)
{
    switch (cls) {
      case BackoffClass::Generic: return "generic";
      case BackoffClass::Local: return "local";
      case BackoffClass::Remote: return "remote";
    }
    return "?";
}

/** One emitted lock event. */
struct ProbeRecord
{
    LockEvent event = LockEvent::AcquireAttempt;
    /** Simulated ns (sim backend) or steady-clock ns (native backend). */
    std::uint64_t time_ns = 0;
    /** Identity of the emitting lock (its primary word's Ref token). */
    std::uint64_t lock_id = 0;
    int thread = -1;
    int cpu = -1;
    int node = -1;
    /** Event-specific payload (see LockEvent comments). */
    std::uint64_t a0 = 0;
    std::uint64_t a1 = 0;
};

/**
 * Consumer interface. Implementations must not issue simulated memory
 * operations or otherwise feed back into the run. On the native backend
 * on_event is called concurrently from real threads — wrap any
 * single-threaded sink in ThreadSafeSink there.
 */
class ProbeSink
{
  public:
    virtual ~ProbeSink() = default;
    virtual void on_event(const ProbeRecord& record) = 0;
};

namespace detail {

/** Event timestamp: ctx.now() under sim, steady clock natively. */
template <typename Ctx>
inline std::uint64_t
probe_clock_ns(Ctx& ctx)
{
    if constexpr (requires { ctx.now(); }) {
        return static_cast<std::uint64_t>(ctx.now());
    } else {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }
}

/**
 * Update the context's traffic-attribution op-context from a probe site.
 * On contexts that expose set_op_phase() (the sim backend), the lock-event
 * stream doubles as the source of truth for which lock and operation phase
 * subsequent coherence transactions belong to (sim/traffic.hpp). This runs
 * whether or not a sink is installed, so attribution is identical with
 * probes observed or merely compiled in; it writes two plain fields on the
 * per-thread context — never simulated memory — so it cannot perturb the
 * run. -DNUCALOCK_NO_PROBES removes it along with the probe sites.
 */
template <typename Ctx>
inline void
note_op_phase(Ctx& ctx, LockEvent event, std::uint64_t lock_id)
{
    if constexpr (requires { ctx.set_op_phase(lock_id, sim::TxPhase::None); }) {
        switch (event) {
          case LockEvent::AcquireAttempt:
            ctx.set_op_phase(lock_id, sim::TxPhase::AcquireSpin);
            break;
          case LockEvent::Acquired:
            ctx.set_op_phase(lock_id, sim::TxPhase::Critical);
            break;
          case LockEvent::Released:
            ctx.set_op_phase(lock_id, sim::TxPhase::Release);
            break;
          case LockEvent::GatePublish:
          case LockEvent::GateOpen:
            // Both probes sit immediately before exactly one gate store
            // (locks/hbo_gt.hpp); tag just that access.
            ctx.set_transient_phase(sim::TxPhase::GatePublish);
            break;
          default:
            break;
        }
    } else {
        (void)ctx;
        (void)event;
        (void)lock_id;
    }
}

} // namespace detail

/** The installed sink, or nullptr — contexts without probe_sink() (and all
 *  contexts under -DNUCALOCK_NO_PROBES) report none. */
template <typename Ctx>
inline ProbeSink*
probe_sink_of(Ctx& ctx)
{
#ifndef NUCALOCK_NO_PROBES
    if constexpr (requires {
                      { ctx.probe_sink() } -> std::convertible_to<ProbeSink*>;
                  })
        return ctx.probe_sink();
#endif
    (void)ctx;
    return nullptr;
}

/** Emit one event (no-op without an installed sink). */
template <typename Ctx>
inline void
probe(Ctx& ctx, LockEvent event, std::uint64_t lock_id, std::uint64_t a0 = 0,
      std::uint64_t a1 = 0)
{
#ifndef NUCALOCK_NO_PROBES
    detail::note_op_phase(ctx, event, lock_id);
#endif
    ProbeSink* sink = probe_sink_of(ctx);
    if (sink == nullptr) [[likely]]
        return;
    sink->on_event(ProbeRecord{event, detail::probe_clock_ns(ctx), lock_id,
                               ctx.thread_id(), ctx.cpu(), ctx.node(), a0, a1});
}

/**
 * Emit GateBlocked or GatePassed for an imminent wait on a GT throttle
 * gate. Classification uses ctx.peek() — a coherence-free read under sim,
 * a relaxed atomic load natively — so the observed run is not perturbed.
 * Contexts without peek() skip the event rather than risk a real access.
 */
template <typename Ctx>
inline void
probe_gate(Ctx& ctx, typename Ctx::Ref gate, std::uint64_t closed_token,
           std::uint64_t lock_id)
{
    ProbeSink* sink = probe_sink_of(ctx);
    if (sink == nullptr) [[likely]]
        return;
    if constexpr (requires { ctx.peek(gate); }) {
        const bool blocked = ctx.peek(gate) == closed_token;
        sink->on_event(ProbeRecord{blocked ? LockEvent::GateBlocked
                                           : LockEvent::GatePassed,
                                   detail::probe_clock_ns(ctx), lock_id,
                                   ctx.thread_id(), ctx.cpu(), ctx.node(), 0,
                                   0});
    }
}

/** Record-everything sink (tests and ad-hoc tooling). */
class VectorSink final : public ProbeSink
{
  public:
    void on_event(const ProbeRecord& record) override { records_.push_back(record); }

    const std::vector<ProbeRecord>& records() const { return records_; }
    void clear() { records_.clear(); }

  private:
    std::vector<ProbeRecord> records_;
};

/** Fan one event stream out to several sinks (metrics + timeline). */
class MultiSink final : public ProbeSink
{
  public:
    void add(ProbeSink* sink)
    {
        if (sink != nullptr)
            sinks_.push_back(sink);
    }

    void
    on_event(const ProbeRecord& record) override
    {
        for (ProbeSink* sink : sinks_)
            sink->on_event(record);
    }

  private:
    std::vector<ProbeSink*> sinks_;
};

/** Mutex adapter making any sink safe for the native backend's threads. */
class ThreadSafeSink final : public ProbeSink
{
  public:
    explicit ThreadSafeSink(ProbeSink& inner) : inner_(inner) {}

    void
    on_event(const ProbeRecord& record) override
    {
        const std::lock_guard<std::mutex> guard(mutex_);
        inner_.on_event(record);
    }

  private:
    std::mutex mutex_;
    ProbeSink& inner_;
};

} // namespace nucalock::obs

#endif // NUCALOCK_OBS_PROBE_HPP
