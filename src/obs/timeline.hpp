/**
 * @file
 * Timeline capture: a ProbeSink that reconstructs, per CPU, the intervals a
 * thread spent in each lock-interaction state — spinning on a local holder,
 * spinning on a remote holder, backing off, or inside the critical section
 * — and exports them as Chrome/Perfetto trace_event JSON ("X" complete
 * events; load the file directly in ui.perfetto.dev or chrome://tracing).
 *
 * Alongside the per-CPU state tracks, a trace can carry counter tracks
 * ("C" events) built from the simulator's contention snapshot: global-link
 * utilisation and per-node bus transaction rates over time
 * (contention_counter_tracks).
 */
#ifndef NUCALOCK_OBS_TIMELINE_HPP
#define NUCALOCK_OBS_TIMELINE_HPP

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "obs/probe.hpp"
#include "sim/resource.hpp"

namespace nucalock::obs {

/** One Perfetto counter track: (time, value) samples in time order. */
struct CounterTrack
{
    std::string name;
    std::vector<std::pair<std::uint64_t, double>> points; ///< (ts ns, value)
};

/**
 * Build counter tracks from a contention snapshot recorded with
 * SimMemory::enable_contention_series(): "global-link utilisation %" (busy
 * fraction per bin) and one "node-bus-N tx/µs" rate track per node bus.
 * Returns an empty vector when no series was recorded.
 */
std::vector<CounterTrack>
contention_counter_tracks(const sim::ContentionStats& contention);

/** What a CPU was doing during an interval. */
enum class CpuState : std::uint8_t
{
    SpinningLocal,  ///< waiting; last observed holder was in our node
    SpinningRemote, ///< waiting; last observed holder was remote (or unknown)
    Backoff,        ///< inside a backoff delay
    Critical,       ///< holding the lock
    Angry,          ///< SD starvation mode while waiting
};

const char* cpu_state_name(CpuState state);

/** One reconstructed interval on one CPU. */
struct Interval
{
    CpuState state = CpuState::SpinningRemote;
    std::uint64_t begin_ns = 0;
    std::uint64_t end_ns = 0;
    std::uint64_t lock_id = 0;
    int thread = -1;
    int node = -1;
};

/**
 * Builds per-CPU interval lists from the probe stream. finalize() closes
 * any interval still open at the last seen timestamp.
 */
class TimelineBuilder final : public ProbeSink
{
  public:
    void on_event(const ProbeRecord& record) override;
    void finalize();

    /** cpu -> completed intervals, in emission order. */
    const std::map<int, std::vector<Interval>>& intervals() const
    {
        return intervals_;
    }

    std::uint64_t first_time_ns() const { return first_ns_; }
    std::uint64_t last_time_ns() const { return last_ns_; }

    /**
     * Write the Chrome trace_event JSON (ts/dur in microseconds as the
     * format requires; sub-microsecond intervals keep fractional ts).
     * @p process_name labels the single emitted pid (e.g. the lock name).
     * @p counters (optional) adds Perfetto counter tracks ("C" events) —
     * see contention_counter_tracks().
     */
    void write_chrome_trace(std::ostream& os, const std::string& process_name,
                            const std::vector<CounterTrack>& counters =
                                {}) const;

  private:
    struct CpuTrack
    {
        bool open = false;
        CpuState state = CpuState::SpinningRemote;
        std::uint64_t since_ns = 0;
        std::uint64_t lock_id = 0;
        int thread = -1;
        int node = -1;
        /** State to fall back to when a nested interval (backoff) closes. */
        bool waiting = false;
        CpuState wait_state = CpuState::SpinningRemote;
        bool angry = false;
    };

    void open_interval(CpuTrack& track, const ProbeRecord& r, CpuState state);
    void close_interval(CpuTrack& track, int cpu, std::uint64_t end_ns);

    std::map<int, CpuTrack> tracks_;
    std::map<int, std::vector<Interval>> intervals_;
    /** lock_id -> node of the current holder (for spin classification). */
    std::map<std::uint64_t, int> holder_node_;
    std::uint64_t first_ns_ = 0;
    std::uint64_t last_ns_ = 0;
    bool any_event_ = false;
};

} // namespace nucalock::obs

#endif // NUCALOCK_OBS_TIMELINE_HPP
