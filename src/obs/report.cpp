#include "obs/report.hpp"

#include <cinttypes>
#include <cstdio>

namespace nucalock::obs {

namespace {

std::string
hex64(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "0x%016" PRIx64, v);
    return buf;
}

void
write_histogram(JsonWriter& w, const stats::LogHistogram& h)
{
    w.begin_object();
    w.kv("count", h.count());
    w.kv("mean", h.mean());
    w.kv("p50", h.percentile(50.0));
    w.kv("p90", h.percentile(90.0));
    w.kv("p99", h.percentile(99.0));
    w.kv("max", h.percentile(100.0));
    w.end_object();
}

void
write_summary(JsonWriter& w, const stats::Summary& s)
{
    w.begin_object();
    w.kv("count", s.count());
    w.kv("mean", s.mean());
    w.kv("min", s.min());
    w.kv("max", s.max());
    w.kv("stddev", s.stddev());
    w.end_object();
}

void
write_traffic(JsonWriter& w, const sim::TrafficStats& t)
{
    w.begin_object();
    w.kv("local_tx", t.local_tx);
    w.kv("global_tx", t.global_tx);
    w.kv("data_fetch_tx", t.data_fetch_tx);
    w.kv("invalidation_tx", t.invalidation_tx);
    w.kv("atomic_tx", t.atomic_tx);
    w.end_object();
}

void
write_result(JsonWriter& w, const harness::BenchResult& r)
{
    w.begin_object();
    w.kv("total_time_ns", static_cast<std::uint64_t>(r.total_time));
    w.kv("total_acquires", r.total_acquires);
    w.kv("avg_iteration_ns", r.avg_iteration_ns);
    w.kv("node_handoff_ratio", r.node_handoff_ratio);
    w.kv("fairness_spread_pct", r.fairness_spread_pct);
    w.kv("acquisition_order_hash", hex64(r.acquisition_order_hash));
    w.kv("sim_memory_accesses", r.sim_memory_accesses);
    w.kv("sim_fiber_switches", r.sim_fiber_switches);
    w.key("traffic");
    write_traffic(w, r.traffic);
    w.kv("faults_injected", r.faults_injected);
    w.kv("mutex_violations", r.mutex_violations);
    w.kv("lock_timeouts", r.lock_timeouts);
    w.kv("memtrace_events", r.memtrace_events);
    w.kv("memtrace_dropped", r.memtrace_dropped);
    w.end_object();
}

void
write_tx_count(JsonWriter& w, const sim::TxCount& c)
{
    w.begin_object();
    w.kv("local_tx", c.local_tx);
    w.kv("global_tx", c.global_tx);
    w.end_object();
}

/** The v2 per-run "traffic" object (attribution + per-acquisition rates). */
void
write_run_traffic(JsonWriter& w, const harness::BenchResult& r,
                  const MetricsRegistry* registry)
{
    const TrafficMetrics tm =
        fold_traffic(r.traffic, r.traffic_attribution, r.contention,
                     r.total_acquires, registry);
    w.begin_object();
    w.kv("local_tx_per_acquisition", tm.local_tx_per_acquisition());
    w.kv("global_tx_per_acquisition", tm.global_tx_per_acquisition());
    w.key("per_lock");
    w.begin_array();
    for (const LockTrafficView& lock : tm.locks) {
        w.begin_object();
        w.kv("lock_id", hex64(lock.lock_id));
        w.kv("acquisitions", lock.acquisitions);
        w.kv("local_tx", lock.tx.totals().local_tx);
        w.kv("global_tx", lock.tx.totals().global_tx);
        w.kv("local_tx_per_acquisition", lock.local_per_acquisition());
        w.kv("global_tx_per_acquisition", lock.global_per_acquisition());
        w.key("phases");
        w.begin_object();
        for (int p = 0; p < sim::kNumTxPhases; ++p) {
            w.key(sim::tx_phase_name(static_cast<sim::TxPhase>(p)));
            write_tx_count(w, lock.tx.by_phase[static_cast<std::size_t>(p)]);
        }
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.key("per_node");
    w.begin_array();
    for (std::size_t node = 0; node < r.traffic_attribution.per_node.size();
         ++node) {
        w.begin_object();
        w.kv("node", static_cast<std::uint64_t>(node));
        w.kv("local_tx", r.traffic_attribution.per_node[node].local_tx);
        w.kv("global_tx", r.traffic_attribution.per_node[node].global_tx);
        w.end_object();
    }
    w.end_array();
    w.key("attributed");
    write_tx_count(w, tm.attributed);
    w.key("unattributed");
    write_tx_count(w, tm.unattributed);
    w.end_object();
}

/** The v2 per-run "contention" object (per-resource queueing). */
void
write_run_contention(JsonWriter& w, const sim::ContentionStats& c)
{
    w.begin_object();
    w.kv("sim_time_ns", static_cast<std::uint64_t>(c.sim_time_ns));
    w.kv("series_bin_ns", static_cast<std::uint64_t>(c.series_bin_ns));
    w.key("resources");
    w.begin_array();
    for (const sim::ResourceUsage& r : c.resources) {
        w.begin_object();
        w.kv("name", r.name);
        w.kv("node", static_cast<std::int64_t>(r.node));
        w.kv("transactions", r.transactions);
        w.kv("busy_ns", static_cast<std::uint64_t>(r.busy_ns));
        w.kv("queue_ns", static_cast<std::uint64_t>(r.queue_ns));
        w.kv("utilization",
             c.sim_time_ns == 0 ? 0.0
                                : static_cast<double>(r.busy_ns) /
                                      static_cast<double>(c.sim_time_ns));
        w.key("queue_delay_ns");
        write_histogram(w, r.queue_delay_ns);
        if (r.series_bin_ns != 0) {
            w.key("busy_ns_bins");
            w.begin_array();
            for (const std::uint64_t b : r.busy_ns_bins)
                w.value(b);
            w.end_array();
            w.key("tx_bins");
            w.begin_array();
            for (const std::uint64_t b : r.tx_bins)
                w.value(b);
            w.end_array();
        }
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

void
write_lock_metrics(JsonWriter& w, const LockMetrics& lm)
{
    w.begin_object();
    w.kv("lock_id", hex64(lm.lock_id));
    w.kv("attempts", lm.attempts);
    w.kv("try_attempts", lm.try_attempts);
    w.kv("acquisitions", lm.acquisitions);
    w.kv("releases", lm.releases);
    w.kv("handovers_local", lm.handovers_local);
    w.kv("handovers_remote", lm.handovers_remote);
    w.kv("repeats", lm.repeats);
    w.kv("local_handover_fraction", lm.local_handover_fraction());
    w.kv("remote_handover_fraction", lm.remote_handover_fraction());
    w.key("node_batch_lengths");
    write_summary(w, lm.node_batch_lengths);
    w.key("wait_ns");
    write_histogram(w, lm.wait_ns);
    w.key("hold_ns");
    write_histogram(w, lm.hold_ns);
    w.key("backoff");
    w.begin_object();
    for (int cls = 0; cls < 3; ++cls) {
        w.key(backoff_class_name(static_cast<BackoffClass>(cls)));
        w.begin_object();
        w.kv("episodes", lm.backoff[cls].episodes);
        w.kv("total_ns", lm.backoff[cls].total_ns);
        w.end_object();
    }
    w.end_object();
    w.key("gate");
    w.begin_object();
    w.kv("blocked", lm.gate_blocked);
    w.kv("passed", lm.gate_passed);
    w.kv("publishes", lm.gate_publishes);
    w.kv("opens", lm.gate_opens);
    w.kv("block_fraction", lm.gate_block_fraction());
    w.end_object();
    w.kv("angry_transitions", lm.angry_transitions);
    w.kv("gates_closed_in_anger", lm.gates_closed_in_anger);
    w.key("per_node");
    w.begin_array();
    for (std::size_t node = 0; node < lm.per_node.size(); ++node) {
        const NodeMetrics& nm = lm.per_node[node];
        w.begin_object();
        w.kv("node", static_cast<std::uint64_t>(node));
        w.kv("acquisitions", nm.acquisitions);
        w.kv("handovers_in", nm.handovers_in);
        w.key("batch_lengths");
        write_summary(w, nm.batch_lengths);
        w.kv("gate_blocked", nm.gate_blocked);
        w.kv("gate_passed", nm.gate_passed);
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

void
write_metrics(JsonWriter& w, const MetricsRegistry& registry)
{
    w.begin_object();
    w.kv("events_seen", registry.events_seen());
    w.kv("primary_lock_id", hex64(registry.primary_lock_id()));
    w.key("locks");
    w.begin_array();
    // Primary lock first, then any nested tiers in id order.
    if (const LockMetrics* primary = registry.primary())
        write_lock_metrics(w, *primary);
    for (const auto& [lock_id, lm] : registry.locks())
        if (lock_id != registry.primary_lock_id())
            write_lock_metrics(w, lm);
    w.end_array();
    w.key("per_cpu");
    w.begin_array();
    for (std::size_t cpu = 0; cpu < registry.cpus().size(); ++cpu) {
        const CpuMetrics& cm = registry.cpus()[cpu];
        w.begin_object();
        w.kv("cpu", static_cast<std::uint64_t>(cpu));
        w.kv("acquisitions", cm.acquisitions);
        w.kv("backoff_episodes", cm.backoff_episodes);
        w.kv("backoff_ns", cm.backoff_ns);
        w.kv("cs_ns", cm.cs_ns);
        w.key("wait_ns");
        write_histogram(w, cm.wait_ns);
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

/**
 * The v4 optional per-run "adaptive" object: ADAPTIVE's gear telemetry,
 * folded from the primary lock's AdaptSwitch events. Gear and reason names
 * mirror locks::adapt_gear_name / adapt_reason_name (spelled out here —
 * obs cannot depend on the locks library without a cycle).
 */
void
write_adaptive(JsonWriter& w, const LockMetrics& lm)
{
    static constexpr const char* kGears[3] = {"tatas", "hbo", "queue"};
    static constexpr const char* kReasons[5] = {"contention", "nuca_traffic",
                                                "quiet", "timeout_storm",
                                                "recovery"};
    w.begin_object();
    w.kv("switches", lm.adapt_switches);
    w.key("reasons");
    w.begin_object();
    for (std::size_t i = 0; i < 5; ++i)
        w.kv(kReasons[i], lm.adapt_reasons[i]);
    w.end_object();
    w.key("gear_residency_ns");
    w.begin_object();
    for (std::size_t i = 0; i < 3; ++i)
        w.kv(kGears[i], lm.gear_residency_ns[i]);
    w.end_object();
    w.key("demote_latency_ns");
    write_histogram(w, lm.demote_latency_ns);
    w.end_object();
}

/**
 * The v5 optional per-run "structs" object: the KV-service run's
 * data-structure telemetry. Each per_stripe row carries the stripe lock's
 * id so consumers can join it against the per-lock traffic attribution
 * rows in the run's "traffic" object.
 */
void
write_structs(JsonWriter& w, const structs::KvStructsStats& s)
{
    w.begin_object();
    w.kv("stripes", static_cast<std::uint64_t>(s.per_stripe.size()));
    w.kv("reads", s.reads);
    w.kv("writes", s.writes);
    w.kv("scans", s.scans);
    w.kv("inserts", s.inserts);
    w.kv("hits", s.hits);
    w.kv("misses", s.misses);
    w.kv("local_handover_fraction", s.local_handover_fraction());
    w.key("resize");
    w.begin_object();
    w.kv("epochs", s.resize_epochs);
    w.kv("migrated_keys", s.resize_migrated_keys);
    w.kv("stalls", s.resize_stalls);
    w.key("stall_ns");
    write_histogram(w, s.resize_stall_ns);
    w.end_object();
    w.key("op_latency_ns");
    w.begin_object();
    w.key("read");
    write_histogram(w, s.read_ns);
    w.key("write");
    write_histogram(w, s.write_ns);
    w.key("scan");
    write_histogram(w, s.scan_ns);
    w.end_object();
    w.key("per_stripe");
    w.begin_array();
    for (std::size_t i = 0; i < s.per_stripe.size(); ++i) {
        const structs::StripeStats& st = s.per_stripe[i];
        w.begin_object();
        w.kv("stripe", static_cast<std::uint64_t>(i));
        w.kv("lock_id", hex64(st.lock_id));
        w.kv("acquisitions", st.acquisitions);
        w.kv("handovers_local", st.handovers_local);
        w.kv("handovers_remote", st.handovers_remote);
        w.kv("local_handover_fraction", st.local_handover_fraction());
        w.kv("migrations", st.migrations);
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

/**
 * The v6 optional per-run "native_traffic" object: the hardware-counter
 * observatory's per-lock/per-phase deltas, per-event verdicts, and the
 * proxy-mapped per-acquisition rates. Always carries the availability
 * marker; when counters were denied or absent the counts are empty and
 * unavailable_reason says why — the run itself still succeeded.
 */
void
write_native_traffic(JsonWriter& w, const NativeTrafficStats& nt,
                     std::uint64_t total_acquires)
{
    w.begin_object();
    w.kv("available", nt.available);
    w.kv("source", nt.source);
    w.key("perf_event_paranoid");
    if (nt.paranoid_level == kParanoidUnknown)
        w.null();
    else
        w.value(nt.paranoid_level);
    if (!nt.available)
        w.kv("unavailable_reason", nt.unavailable_reason);
    w.kv("samples", nt.samples);
    w.kv("threads", nt.threads);
    w.kv("time_enabled_ns", nt.time_enabled_ns);
    w.kv("time_running_ns", nt.time_running_ns);
    w.kv("multiplexed", nt.multiplexed());
    const sim::TrafficStats totals = nt.totals();
    const double acquires =
        total_acquires == 0 ? 0.0 : static_cast<double>(total_acquires);
    w.kv("local_tx_per_acquisition",
         acquires == 0.0 ? 0.0
                         : static_cast<double>(totals.local_tx) / acquires);
    w.kv("global_tx_per_acquisition",
         acquires == 0.0 ? 0.0
                         : static_cast<double>(totals.global_tx) / acquires);
    w.key("events");
    w.begin_array();
    for (const CounterEventStatus& e : nt.events) {
        w.begin_object();
        w.kv("event", counter_event_name(e.event));
        w.kv("status", counter_state_name(e.state));
        if (!e.detail.empty())
            w.kv("detail", e.detail);
        w.end_object();
    }
    w.end_array();
    w.key("per_lock");
    w.begin_array();
    for (const NativeLockTraffic& lock : nt.per_lock) {
        w.begin_object();
        w.kv("lock_id", hex64(lock.lock_id));
        w.key("phases");
        w.begin_object();
        for (int p = 0; p < sim::kNumTxPhases; ++p) {
            const PhaseCounters& cell =
                lock.by_phase[static_cast<std::size_t>(p)];
            w.key(sim::tx_phase_name(static_cast<sim::TxPhase>(p)));
            w.begin_object();
            for (int e = 0; e < kNumCounterEvents; ++e)
                w.kv(counter_event_name(static_cast<CounterEvent>(e)),
                     cell.value[static_cast<std::size_t>(e)]);
            w.end_object();
        }
        w.end_object();
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

/** The v3 optional top-level "robustness" object. */
void
write_robustness(JsonWriter& w, const RobustnessReport& r)
{
    w.begin_object();
    w.key("campaign");
    w.begin_object();
    w.key("presets");
    w.begin_array();
    for (const std::string& preset : r.presets)
        w.value(preset);
    w.end_array();
    w.kv("timeout_ns", r.timeout_ns);
    w.kv("iterations", static_cast<std::uint64_t>(r.iterations));
    w.kv("first_seed", r.first_seed);
    w.kv("num_seeds", r.num_seeds);
    w.end_object();
    w.key("cells");
    w.begin_array();
    for (const RobustnessCell& c : r.cells) {
        w.begin_object();
        w.kv("lock", c.lock);
        w.kv("preset", c.preset);
        w.kv("nodes", c.nodes);
        w.kv("cpus_per_node", c.cpus_per_node);
        w.kv("seed", c.seed);
        w.kv("verdict", c.failed ? "FAIL" : "ok");
        if (c.failed)
            w.kv("what", c.what);
        w.kv("stop", c.stop);
        w.kv("steps", c.steps);
        w.kv("acquisitions", c.acquisitions);
        w.kv("timeouts", c.timeouts);
        w.kv("mutex_violations", c.mutex_violations);
        w.kv("faults_injected", c.faults_injected);
        w.kv("max_overshoot_ns", c.max_overshoot_ns);
        w.kv("overshoot_bound_ns", c.overshoot_bound_ns);
        w.kv("abandons", c.abandons);
        w.kv("parked", c.parked);
        w.kv("grant_races", c.grant_races);
        w.kv("reclaims", c.reclaims);
        w.kv("rejoins", c.rejoins);
        w.kv("unparks", c.unparks);
        w.kv("leaked_nodes", c.leaked_nodes);
        if (!c.trace.empty())
            w.kv("trace", c.trace);
        if (!c.minimal_trace.empty())
            w.kv("minimal_trace", c.minimal_trace);
        w.end_object();
    }
    w.end_array();
    w.key("per_lock");
    w.begin_array();
    for (const RobustnessLockRow& row : r.per_lock) {
        w.begin_object();
        w.kv("lock", row.lock);
        w.kv("cells", row.cells);
        w.kv("failures", row.failures);
        w.kv("acquisitions", row.acquisitions);
        w.kv("timeouts", row.timeouts);
        w.kv("abandons", row.abandons);
        w.kv("parked", row.parked);
        w.kv("grant_races", row.grant_races);
        w.kv("reclaims", row.reclaims);
        w.kv("rejoins", row.rejoins);
        w.kv("unparks", row.unparks);
        w.kv("leaked_nodes", row.leaked_nodes);
        w.kv("max_overshoot_ns", row.max_overshoot_ns);
        w.end_object();
    }
    w.end_array();
    w.kv("failures", r.failures);
    w.kv("verdict", r.failures == 0 ? "ok" : "FAIL");
    w.end_object();
}

} // namespace

void
write_report(std::ostream& os, const ReportConfig& config,
             const std::vector<ReportRun>& runs,
             const RobustnessReport* robustness)
{
    JsonWriter w(os, /*pretty=*/true);
    w.begin_object();
    w.kv("schema", kReportSchemaName);
    w.kv("schema_version", kReportSchemaVersion);
    w.kv("tool", config.tool);
    w.key("config");
    w.begin_object();
    w.kv("bench", config.bench);
    w.kv("nodes", config.nodes);
    w.kv("cpus_per_node", config.cpus_per_node);
    w.kv("threads", config.threads);
    w.kv("critical_work", static_cast<std::uint64_t>(config.critical_work));
    w.kv("private_work", static_cast<std::uint64_t>(config.private_work));
    w.kv("iterations", static_cast<std::uint64_t>(config.iterations));
    w.kv("nuca_ratio", config.nuca_ratio);
    w.kv("seed", config.seed);
    w.end_object();
    w.key("runs");
    w.begin_array();
    for (const ReportRun& run : runs) {
        w.begin_object();
        w.kv("lock", run.lock_name);
        w.key("result");
        write_result(w, run.result);
        w.key("traffic");
        write_run_traffic(w, run.result, run.metrics);
        w.key("contention");
        write_run_contention(w, run.result.contention);
        w.key("metrics");
        if (run.metrics != nullptr)
            write_metrics(w, *run.metrics);
        else
            w.null();
        if (run.host.valid) {
            // Host wall-clock fields: the only nondeterministic part of a
            // report. Determinism comparisons must strip this object.
            w.key("host");
            w.begin_object();
            w.kv("wall_ns", run.host.wall_ns);
            w.kv("events_per_sec", run.host.events_per_sec);
            w.kv("switches_per_sec", run.host.switches_per_sec);
            w.kv("jobs", run.host.jobs);
            w.end_object();
        }
        if (const LockMetrics* primary =
                run.metrics != nullptr ? run.metrics->primary() : nullptr;
            primary != nullptr && primary->adapt_seen) {
            w.key("adaptive");
            write_adaptive(w, *primary);
        }
        if (run.structs != nullptr) {
            w.key("structs");
            write_structs(w, *run.structs);
        }
        if (run.native_traffic != nullptr) {
            // Hardware counters are nondeterministic like "host":
            // determinism comparisons must strip this object too.
            w.key("native_traffic");
            write_native_traffic(w, *run.native_traffic,
                                 run.result.total_acquires);
        }
        w.end_object();
    }
    w.end_array();
    if (robustness != nullptr) {
        w.key("robustness");
        write_robustness(w, *robustness);
    }
    w.end_object();
    os << '\n';
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

namespace {

bool
fail(std::string* error, const std::string& message)
{
    if (error != nullptr && error->empty())
        *error = message;
    return false;
}

bool
require_number(const JsonValue& parent, const char* name, std::string* error,
               const std::string& where)
{
    const JsonValue* v = parent.find(name);
    if (v == nullptr)
        return fail(error, where + ": missing field '" + name + "'");
    if (!v->is_number())
        return fail(error, where + ": field '" + name + "' must be a number");
    return true;
}

bool
require_string(const JsonValue& parent, const char* name, std::string* error,
               const std::string& where)
{
    const JsonValue* v = parent.find(name);
    if (v == nullptr)
        return fail(error, where + ": missing field '" + name + "'");
    if (!v->is_string())
        return fail(error, where + ": field '" + name + "' must be a string");
    return true;
}

bool
validate_histogram(const JsonValue& h, std::string* error,
                   const std::string& where)
{
    if (!h.is_object())
        return fail(error, where + " must be an object");
    for (const char* field : {"count", "mean", "p50", "p90", "p99", "max"})
        if (!require_number(h, field, error, where))
            return false;
    return true;
}

bool
validate_summary(const JsonValue& s, std::string* error,
                 const std::string& where)
{
    if (!s.is_object())
        return fail(error, where + " must be an object");
    for (const char* field : {"count", "mean", "min", "max", "stddev"})
        if (!require_number(s, field, error, where))
            return false;
    return true;
}

bool
validate_result(const JsonValue& r, std::string* error,
                const std::string& where)
{
    if (!r.is_object())
        return fail(error, where + " must be an object");
    for (const char* field :
         {"total_time_ns", "total_acquires", "avg_iteration_ns",
          "node_handoff_ratio", "fairness_spread_pct", "sim_memory_accesses",
          "sim_fiber_switches", "memtrace_events", "memtrace_dropped"})
        if (!require_number(r, field, error, where))
            return false;
    if (!require_string(r, "acquisition_order_hash", error, where))
        return false;
    const JsonValue* traffic = r.find("traffic");
    if (traffic == nullptr || !traffic->is_object())
        return fail(error, where + ": 'traffic' must be an object");
    for (const char* field : {"local_tx", "global_tx", "data_fetch_tx",
                              "invalidation_tx", "atomic_tx"})
        if (!require_number(*traffic, field, error, where + ".traffic"))
            return false;
    return true;
}

bool
validate_tx_count(const JsonValue& c, std::string* error,
                  const std::string& where)
{
    if (!c.is_object())
        return fail(error, where + " must be an object");
    for (const char* field : {"local_tx", "global_tx"})
        if (!require_number(c, field, error, where))
            return false;
    return true;
}

bool
validate_run_traffic(const JsonValue& t, std::string* error,
                     const std::string& where)
{
    if (!t.is_object())
        return fail(error, where + " must be an object");
    for (const char* field :
         {"local_tx_per_acquisition", "global_tx_per_acquisition"})
        if (!require_number(t, field, error, where))
            return false;
    const JsonValue* per_lock = t.find("per_lock");
    if (per_lock == nullptr || !per_lock->is_array())
        return fail(error, where + ": 'per_lock' must be an array");
    for (std::size_t i = 0; i < per_lock->array.size(); ++i) {
        const std::string lw = where + ".per_lock[" + std::to_string(i) + "]";
        const JsonValue& lock = per_lock->array[i];
        if (!lock.is_object())
            return fail(error, lw + " must be an object");
        if (!require_string(lock, "lock_id", error, lw))
            return false;
        for (const char* field :
             {"acquisitions", "local_tx", "global_tx",
              "local_tx_per_acquisition", "global_tx_per_acquisition"})
            if (!require_number(lock, field, error, lw))
                return false;
        const JsonValue* phases = lock.find("phases");
        if (phases == nullptr || !phases->is_object())
            return fail(error, lw + ": 'phases' must be an object");
        for (const char* phase : {"none", "acquire_spin", "handover",
                                  "critical", "release", "gate_publish"}) {
            const JsonValue* p = phases->find(phase);
            if (p == nullptr ||
                !validate_tx_count(*p, error,
                                   lw + ".phases." + phase))
                return false;
        }
    }
    const JsonValue* per_node = t.find("per_node");
    if (per_node == nullptr || !per_node->is_array())
        return fail(error, where + ": 'per_node' must be an array");
    for (std::size_t i = 0; i < per_node->array.size(); ++i) {
        const std::string nw = where + ".per_node[" + std::to_string(i) + "]";
        const JsonValue& nm = per_node->array[i];
        if (!nm.is_object())
            return fail(error, nw + " must be an object");
        for (const char* field : {"node", "local_tx", "global_tx"})
            if (!require_number(nm, field, error, nw))
                return false;
    }
    for (const char* object : {"attributed", "unattributed"}) {
        const JsonValue* c = t.find(object);
        if (c == nullptr ||
            !validate_tx_count(*c, error, where + "." + object))
            return false;
    }
    return true;
}

bool
validate_run_contention(const JsonValue& c, std::string* error,
                        const std::string& where)
{
    if (!c.is_object())
        return fail(error, where + " must be an object");
    for (const char* field : {"sim_time_ns", "series_bin_ns"})
        if (!require_number(c, field, error, where))
            return false;
    const JsonValue* resources = c.find("resources");
    if (resources == nullptr || !resources->is_array())
        return fail(error, where + ": 'resources' must be an array");
    for (std::size_t i = 0; i < resources->array.size(); ++i) {
        const std::string rw =
            where + ".resources[" + std::to_string(i) + "]";
        const JsonValue& r = resources->array[i];
        if (!r.is_object())
            return fail(error, rw + " must be an object");
        if (!require_string(r, "name", error, rw))
            return false;
        for (const char* field : {"node", "transactions", "busy_ns",
                                  "queue_ns", "utilization"})
            if (!require_number(r, field, error, rw))
                return false;
        const JsonValue* h = r.find("queue_delay_ns");
        if (h == nullptr ||
            !validate_histogram(*h, error, rw + ".queue_delay_ns"))
            return false;
        // The series arrays are optional (present only when a bin width
        // was configured); when present they must be arrays.
        for (const char* bins : {"busy_ns_bins", "tx_bins"})
            if (const JsonValue* b = r.find(bins);
                b != nullptr && !b->is_array())
                return fail(error, rw + ": '" + bins + "' must be an array");
    }
    return true;
}

bool
validate_lock_metrics(const JsonValue& lm, std::string* error,
                      const std::string& where)
{
    if (!lm.is_object())
        return fail(error, where + " must be an object");
    if (!require_string(lm, "lock_id", error, where))
        return false;
    for (const char* field :
         {"attempts", "acquisitions", "releases", "handovers_local",
          "handovers_remote", "repeats", "local_handover_fraction",
          "remote_handover_fraction", "angry_transitions"})
        if (!require_number(lm, field, error, where))
            return false;
    const JsonValue* batches = lm.find("node_batch_lengths");
    if (batches == nullptr ||
        !validate_summary(*batches, error, where + ".node_batch_lengths"))
        return false;
    for (const char* histogram : {"wait_ns", "hold_ns"}) {
        const JsonValue* h = lm.find(histogram);
        if (h == nullptr ||
            !validate_histogram(*h, error, where + "." + histogram))
            return false;
    }
    const JsonValue* backoff = lm.find("backoff");
    if (backoff == nullptr || !backoff->is_object())
        return fail(error, where + ": 'backoff' must be an object");
    for (const char* cls : {"generic", "local", "remote"}) {
        const JsonValue* b = backoff->find(cls);
        if (b == nullptr || !b->is_object())
            return fail(error,
                        where + ".backoff: missing class '" + cls + "'");
        for (const char* field : {"episodes", "total_ns"})
            if (!require_number(*b, field, error,
                                where + ".backoff." + cls))
                return false;
    }
    const JsonValue* gate = lm.find("gate");
    if (gate == nullptr || !gate->is_object())
        return fail(error, where + ": 'gate' must be an object");
    for (const char* field :
         {"blocked", "passed", "publishes", "opens", "block_fraction"})
        if (!require_number(*gate, field, error, where + ".gate"))
            return false;
    const JsonValue* per_node = lm.find("per_node");
    if (per_node == nullptr || !per_node->is_array())
        return fail(error, where + ": 'per_node' must be an array");
    for (std::size_t i = 0; i < per_node->array.size(); ++i) {
        const std::string nw = where + ".per_node[" + std::to_string(i) + "]";
        const JsonValue& nm = per_node->array[i];
        if (!nm.is_object())
            return fail(error, nw + " must be an object");
        for (const char* field : {"node", "acquisitions", "handovers_in",
                                  "gate_blocked", "gate_passed"})
            if (!require_number(nm, field, error, nw))
                return false;
    }
    return true;
}

bool
validate_metrics(const JsonValue& m, std::string* error,
                 const std::string& where)
{
    if (!m.is_object())
        return fail(error, where + " must be an object or null");
    if (!require_number(m, "events_seen", error, where))
        return false;
    if (!require_string(m, "primary_lock_id", error, where))
        return false;
    const JsonValue* locks = m.find("locks");
    if (locks == nullptr || !locks->is_array())
        return fail(error, where + ": 'locks' must be an array");
    for (std::size_t i = 0; i < locks->array.size(); ++i)
        if (!validate_lock_metrics(locks->array[i], error,
                                   where + ".locks[" + std::to_string(i) +
                                       "]"))
            return false;
    const JsonValue* per_cpu = m.find("per_cpu");
    if (per_cpu == nullptr || !per_cpu->is_array())
        return fail(error, where + ": 'per_cpu' must be an array");
    for (std::size_t i = 0; i < per_cpu->array.size(); ++i) {
        const std::string cw = where + ".per_cpu[" + std::to_string(i) + "]";
        const JsonValue& cm = per_cpu->array[i];
        if (!cm.is_object())
            return fail(error, cw + " must be an object");
        for (const char* field : {"cpu", "acquisitions", "backoff_episodes",
                                  "backoff_ns", "cs_ns"})
            if (!require_number(cm, field, error, cw))
                return false;
    }
    return true;
}

bool
validate_native_traffic(const JsonValue& nt, std::string* error,
                        const std::string& where)
{
    if (!nt.is_object())
        return fail(error, where + " must be an object");
    const JsonValue* available = nt.find("available");
    if (available == nullptr || available->type != JsonValue::Type::Bool)
        return fail(error, where + ": 'available' must be a boolean");
    if (!require_string(nt, "source", error, where))
        return false;
    const JsonValue* paranoid = nt.find("perf_event_paranoid");
    if (paranoid == nullptr ||
        (paranoid->type != JsonValue::Type::Null && !paranoid->is_number()))
        return fail(error,
                    where + ": 'perf_event_paranoid' must be number or null");
    if (!available->boolean &&
        !require_string(nt, "unavailable_reason", error, where))
        return false;
    for (const char* field :
         {"samples", "threads", "time_enabled_ns", "time_running_ns",
          "local_tx_per_acquisition", "global_tx_per_acquisition"})
        if (!require_number(nt, field, error, where))
            return false;
    const JsonValue* multiplexed = nt.find("multiplexed");
    if (multiplexed == nullptr ||
        multiplexed->type != JsonValue::Type::Bool)
        return fail(error, where + ": 'multiplexed' must be a boolean");
    const JsonValue* events = nt.find("events");
    if (events == nullptr || !events->is_array())
        return fail(error, where + ": 'events' must be an array");
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const std::string ew = where + ".events[" + std::to_string(i) + "]";
        const JsonValue& e = events->array[i];
        if (!e.is_object())
            return fail(error, ew + " must be an object");
        for (const char* field : {"event", "status"})
            if (!require_string(e, field, error, ew))
                return false;
        if (const JsonValue* detail = e.find("detail");
            detail != nullptr && !detail->is_string())
            return fail(error, ew + ": 'detail' must be a string");
    }
    const JsonValue* per_lock = nt.find("per_lock");
    if (per_lock == nullptr || !per_lock->is_array())
        return fail(error, where + ": 'per_lock' must be an array");
    for (std::size_t i = 0; i < per_lock->array.size(); ++i) {
        const std::string lw = where + ".per_lock[" + std::to_string(i) + "]";
        const JsonValue& lock = per_lock->array[i];
        if (!lock.is_object())
            return fail(error, lw + " must be an object");
        if (!require_string(lock, "lock_id", error, lw))
            return false;
        const JsonValue* phases = lock.find("phases");
        if (phases == nullptr || !phases->is_object())
            return fail(error, lw + ": 'phases' must be an object");
        for (const char* phase : {"none", "acquire_spin", "handover",
                                  "critical", "release", "gate_publish"}) {
            const JsonValue* p = phases->find(phase);
            const std::string pw = lw + ".phases." + phase;
            if (p == nullptr || !p->is_object())
                return fail(error, pw + " must be an object");
            for (const char* field : {"cycles", "instructions",
                                      "llc_load_misses", "remote_accesses"})
                if (!require_number(*p, field, error, pw))
                    return false;
        }
    }
    return true;
}

bool
validate_robustness(const JsonValue& r, std::string* error,
                    const std::string& where)
{
    if (!r.is_object())
        return fail(error, where + " must be an object");
    const JsonValue* campaign = r.find("campaign");
    if (campaign == nullptr || !campaign->is_object())
        return fail(error, where + ": 'campaign' must be an object");
    const JsonValue* presets = campaign->find("presets");
    if (presets == nullptr || !presets->is_array())
        return fail(error, where + ".campaign: 'presets' must be an array");
    for (const JsonValue& p : presets->array)
        if (!p.is_string())
            return fail(error,
                        where + ".campaign.presets entries must be strings");
    for (const char* field :
         {"timeout_ns", "iterations", "first_seed", "num_seeds"})
        if (!require_number(*campaign, field, error, where + ".campaign"))
            return false;
    const JsonValue* cells = r.find("cells");
    if (cells == nullptr || !cells->is_array())
        return fail(error, where + ": 'cells' must be an array");
    for (std::size_t i = 0; i < cells->array.size(); ++i) {
        const std::string cw = where + ".cells[" + std::to_string(i) + "]";
        const JsonValue& c = cells->array[i];
        if (!c.is_object())
            return fail(error, cw + " must be an object");
        for (const char* field : {"lock", "preset", "verdict", "stop"})
            if (!require_string(c, field, error, cw))
                return false;
        for (const char* field :
             {"nodes", "cpus_per_node", "seed", "steps", "acquisitions",
              "timeouts", "mutex_violations", "faults_injected",
              "max_overshoot_ns", "overshoot_bound_ns", "abandons", "parked",
              "grant_races", "reclaims", "rejoins", "unparks",
              "leaked_nodes"})
            if (!require_number(c, field, error, cw))
                return false;
        // "what"/"trace"/"minimal_trace" are optional (failed cells only).
        for (const char* field : {"what", "trace", "minimal_trace"})
            if (const JsonValue* v = c.find(field);
                v != nullptr && !v->is_string())
                return fail(error,
                            cw + ": '" + field + "' must be a string");
    }
    const JsonValue* per_lock = r.find("per_lock");
    if (per_lock == nullptr || !per_lock->is_array())
        return fail(error, where + ": 'per_lock' must be an array");
    for (std::size_t i = 0; i < per_lock->array.size(); ++i) {
        const std::string lw = where + ".per_lock[" + std::to_string(i) + "]";
        const JsonValue& row = per_lock->array[i];
        if (!row.is_object())
            return fail(error, lw + " must be an object");
        if (!require_string(row, "lock", error, lw))
            return false;
        for (const char* field :
             {"cells", "failures", "acquisitions", "timeouts", "abandons",
              "parked", "grant_races", "reclaims", "rejoins", "unparks",
              "leaked_nodes", "max_overshoot_ns"})
            if (!require_number(row, field, error, lw))
                return false;
    }
    if (!require_number(r, "failures", error, where))
        return false;
    if (!require_string(r, "verdict", error, where))
        return false;
    return true;
}

} // namespace

bool
validate_report(const JsonValue& document, std::string* error)
{
    if (!document.is_object())
        return fail(error, "report root must be an object");
    const JsonValue* schema = document.find("schema");
    if (schema == nullptr || !schema->is_string() ||
        schema->string != kReportSchemaName)
        return fail(error, std::string("'schema' must be \"") +
                               kReportSchemaName + "\"");
    const JsonValue* version = document.find("schema_version");
    if (version == nullptr || !version->is_number())
        return fail(error, "'schema_version' must be a number");
    if (static_cast<int>(version->number) != kReportSchemaVersion)
        return fail(error,
                    "report is v" +
                        std::to_string(static_cast<int>(version->number)) +
                        ", tool understands v" +
                        std::to_string(kReportSchemaVersion));
    if (!require_string(document, "tool", error, "report"))
        return false;

    const JsonValue* config = document.find("config");
    if (config == nullptr || !config->is_object())
        return fail(error, "'config' must be an object");
    if (!require_string(*config, "bench", error, "config"))
        return false;
    for (const char* field :
         {"nodes", "cpus_per_node", "threads", "critical_work",
          "private_work", "iterations", "nuca_ratio", "seed"})
        if (!require_number(*config, field, error, "config"))
            return false;

    const JsonValue* runs = document.find("runs");
    if (runs == nullptr || !runs->is_array())
        return fail(error, "'runs' must be an array");
    for (std::size_t i = 0; i < runs->array.size(); ++i) {
        const std::string where = "runs[" + std::to_string(i) + "]";
        const JsonValue& run = runs->array[i];
        if (!run.is_object())
            return fail(error, where + " must be an object");
        if (!require_string(run, "lock", error, where))
            return false;
        const JsonValue* result = run.find("result");
        if (result == nullptr ||
            !validate_result(*result, error, where + ".result"))
            return false;
        const JsonValue* traffic = run.find("traffic");
        if (traffic == nullptr ||
            !validate_run_traffic(*traffic, error, where + ".traffic"))
            return false;
        const JsonValue* contention = run.find("contention");
        if (contention == nullptr ||
            !validate_run_contention(*contention, error,
                                     where + ".contention"))
            return false;
        const JsonValue* metrics = run.find("metrics");
        if (metrics == nullptr)
            return fail(error, where + ": missing field 'metrics'");
        if (metrics->type != JsonValue::Type::Null &&
            !validate_metrics(*metrics, error, where + ".metrics"))
            return false;
        // "host" is optional (bench_sim_throughput emits it); when present
        // it must carry the wall-clock fields.
        if (const JsonValue* host = run.find("host"); host != nullptr) {
            if (!host->is_object())
                return fail(error, where + ": 'host' must be an object");
            for (const char* field : {"wall_ns", "events_per_sec",
                                      "switches_per_sec", "jobs"})
                if (!require_number(*host, field, error, where + ".host"))
                    return false;
        }
        // "adaptive" is optional (v4; runs whose primary lock switched
        // gears); when present it must carry the full telemetry shape.
        if (const JsonValue* adaptive = run.find("adaptive");
            adaptive != nullptr) {
            const std::string aw = where + ".adaptive";
            if (!adaptive->is_object())
                return fail(error, aw + " must be an object");
            if (!require_number(*adaptive, "switches", error, aw))
                return false;
            const JsonValue* reasons = adaptive->find("reasons");
            if (reasons == nullptr || !reasons->is_object())
                return fail(error, aw + ": 'reasons' must be an object");
            for (const char* field : {"contention", "nuca_traffic", "quiet",
                                      "timeout_storm", "recovery"})
                if (!require_number(*reasons, field, error, aw + ".reasons"))
                    return false;
            const JsonValue* residency = adaptive->find("gear_residency_ns");
            if (residency == nullptr || !residency->is_object())
                return fail(error,
                            aw + ": 'gear_residency_ns' must be an object");
            for (const char* field : {"tatas", "hbo", "queue"})
                if (!require_number(*residency, field, error,
                                    aw + ".gear_residency_ns"))
                    return false;
            const JsonValue* h = adaptive->find("demote_latency_ns");
            if (h == nullptr ||
                !validate_histogram(*h, error, aw + ".demote_latency_ns"))
                return false;
        }
        // "structs" is optional (v5; KV-service runs); when present it
        // must carry the full data-structure telemetry shape.
        if (const JsonValue* structs = run.find("structs");
            structs != nullptr) {
            const std::string sw = where + ".structs";
            if (!structs->is_object())
                return fail(error, sw + " must be an object");
            for (const char* field :
                 {"stripes", "reads", "writes", "scans", "inserts", "hits",
                  "misses", "local_handover_fraction"})
                if (!require_number(*structs, field, error, sw))
                    return false;
            const JsonValue* resize = structs->find("resize");
            if (resize == nullptr || !resize->is_object())
                return fail(error, sw + ": 'resize' must be an object");
            for (const char* field : {"epochs", "migrated_keys", "stalls"})
                if (!require_number(*resize, field, error, sw + ".resize"))
                    return false;
            const JsonValue* stall = resize->find("stall_ns");
            if (stall == nullptr ||
                !validate_histogram(*stall, error, sw + ".resize.stall_ns"))
                return false;
            const JsonValue* latency = structs->find("op_latency_ns");
            if (latency == nullptr || !latency->is_object())
                return fail(error,
                            sw + ": 'op_latency_ns' must be an object");
            for (const char* op : {"read", "write", "scan"}) {
                const JsonValue* h = latency->find(op);
                if (h == nullptr ||
                    !validate_histogram(*h, error,
                                        sw + ".op_latency_ns." + op))
                    return false;
            }
            const JsonValue* per_stripe = structs->find("per_stripe");
            if (per_stripe == nullptr || !per_stripe->is_array())
                return fail(error, sw + ": 'per_stripe' must be an array");
            for (std::size_t s = 0; s < per_stripe->array.size(); ++s) {
                const std::string pw =
                    sw + ".per_stripe[" + std::to_string(s) + "]";
                const JsonValue& row = per_stripe->array[s];
                if (!row.is_object())
                    return fail(error, pw + " must be an object");
                if (!require_string(row, "lock_id", error, pw))
                    return false;
                for (const char* field :
                     {"stripe", "acquisitions", "handovers_local",
                      "handovers_remote", "local_handover_fraction",
                      "migrations"})
                    if (!require_number(row, field, error, pw))
                        return false;
            }
        }
        // "native_traffic" is optional (v6; native-backend runs); when
        // present it must carry the availability marker and the counter
        // tables — empty tables with a reason when perf was denied.
        if (const JsonValue* nt = run.find("native_traffic");
            nt != nullptr &&
            !validate_native_traffic(*nt, error, where + ".native_traffic"))
            return false;
    }
    // v3: "robustness" is optional (fault-campaign reports only); when
    // present it must carry the full campaign/cells/per_lock shape.
    if (const JsonValue* robustness = document.find("robustness");
        robustness != nullptr &&
        !validate_robustness(*robustness, error, "robustness"))
        return false;
    return true;
}

bool
validate_report_text(std::string_view text, std::string* error)
{
    std::string parse_error;
    const auto document = json_parse(text, &parse_error);
    if (!document)
        return fail(error, "JSON parse error: " + parse_error);
    return validate_report(*document, error);
}

} // namespace nucalock::obs
