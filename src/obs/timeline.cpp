#include "obs/timeline.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace nucalock::obs {

const char*
cpu_state_name(CpuState state)
{
    switch (state) {
      case CpuState::SpinningLocal: return "spinning_local";
      case CpuState::SpinningRemote: return "spinning_remote";
      case CpuState::Backoff: return "backoff";
      case CpuState::Critical: return "critical_section";
      case CpuState::Angry: return "angry";
    }
    return "?";
}

void
TimelineBuilder::open_interval(CpuTrack& track, const ProbeRecord& r,
                               CpuState state)
{
    track.open = true;
    track.state = state;
    track.since_ns = r.time_ns;
    track.lock_id = r.lock_id != 0 ? r.lock_id : track.lock_id;
    track.thread = r.thread;
    track.node = r.node;
}

void
TimelineBuilder::close_interval(CpuTrack& track, int cpu, std::uint64_t end_ns)
{
    if (!track.open)
        return;
    track.open = false;
    if (end_ns <= track.since_ns)
        return; // zero-width; nothing to draw
    intervals_[cpu].push_back(Interval{track.state, track.since_ns, end_ns,
                                       track.lock_id, track.thread,
                                       track.node});
}

void
TimelineBuilder::on_event(const ProbeRecord& r)
{
    if (!any_event_) {
        any_event_ = true;
        first_ns_ = r.time_ns;
    }
    last_ns_ = std::max(last_ns_, r.time_ns);

    CpuTrack& track = tracks_[r.cpu];

    // Who holds the lock right now (for local/remote spin classification).
    const auto classify_wait = [&]() -> CpuState {
        if (track.angry)
            return CpuState::Angry;
        const auto holder = holder_node_.find(
            r.lock_id != 0 ? r.lock_id : track.lock_id);
        if (holder != holder_node_.end() && holder->second == r.node)
            return CpuState::SpinningLocal;
        return CpuState::SpinningRemote;
    };

    switch (r.event) {
      case LockEvent::AcquireAttempt: {
          close_interval(track, r.cpu, r.time_ns);
          track.waiting = true;
          track.wait_state = classify_wait();
          open_interval(track, r, track.wait_state);
          break;
      }
      case LockEvent::Acquired: {
          close_interval(track, r.cpu, r.time_ns);
          track.waiting = false;
          track.angry = false;
          holder_node_[r.lock_id] = r.node;
          open_interval(track, r, CpuState::Critical);
          break;
      }
      case LockEvent::Released: {
          close_interval(track, r.cpu, r.time_ns);
          holder_node_.erase(r.lock_id);
          break;
      }
      case LockEvent::BackoffBegin: {
          close_interval(track, r.cpu, r.time_ns);
          open_interval(track, r, CpuState::Backoff);
          break;
      }
      case LockEvent::BackoffEnd: {
          close_interval(track, r.cpu, r.time_ns);
          if (track.waiting) {
              track.wait_state = classify_wait();
              open_interval(track, r, track.wait_state);
          }
          break;
      }
      case LockEvent::AngryEnter: {
          track.angry = true;
          if (track.waiting) {
              close_interval(track, r.cpu, r.time_ns);
              open_interval(track, r, CpuState::Angry);
          }
          break;
      }
      case LockEvent::AngryExit: {
          track.angry = false;
          if (track.waiting) {
              close_interval(track, r.cpu, r.time_ns);
              track.wait_state = classify_wait();
              open_interval(track, r, track.wait_state);
          }
          break;
      }
      case LockEvent::AbandonDone: {
          // A timed wait that ends without the lock leaves the CPU idle
          // until its next attempt. The grant-race accept keeps waiting:
          // the Acquired event that follows closes its interval.
          if (static_cast<AbandonOutcome>(r.a0) != AbandonOutcome::GrantRaced) {
              close_interval(track, r.cpu, r.time_ns);
              track.waiting = false;
              track.angry = false;
          }
          break;
      }
      case LockEvent::GateBlocked:
      case LockEvent::GatePassed:
      case LockEvent::GatePublish:
      case LockEvent::GateOpen:
      case LockEvent::AbandonStart:
      case LockEvent::QueueReclaim:
      case LockEvent::AdaptSwitch:
          break; // instantaneous; they don't change the CPU's state
    }
}

void
TimelineBuilder::finalize()
{
    for (auto& [cpu, track] : tracks_)
        close_interval(track, cpu, last_ns_);
}

std::vector<CounterTrack>
contention_counter_tracks(const sim::ContentionStats& contention)
{
    std::vector<CounterTrack> tracks;
    if (contention.series_bin_ns == 0)
        return tracks;
    const double bin = static_cast<double>(contention.series_bin_ns);
    for (const sim::ResourceUsage& r : contention.resources) {
        if (r.series_bin_ns == 0)
            continue;
        CounterTrack track;
        const bool link = r.node < 0;
        track.name = link ? "global-link utilisation %" : r.name + " tx/µs";
        const std::size_t bins =
            link ? r.busy_ns_bins.size() : r.tx_bins.size();
        track.points.reserve(bins + 1);
        for (std::size_t i = 0; i < bins; ++i) {
            const auto ts =
                static_cast<std::uint64_t>(i) * contention.series_bin_ns;
            const double value =
                link ? 100.0 * static_cast<double>(r.busy_ns_bins[i]) / bin
                     : 1000.0 * static_cast<double>(r.tx_bins[i]) / bin;
            track.points.emplace_back(ts, value);
        }
        // Close the track at the end of the run so the last bin's level
        // does not visually extend forever.
        track.points.emplace_back(
            static_cast<std::uint64_t>(bins) * contention.series_bin_ns, 0.0);
        tracks.push_back(std::move(track));
    }
    return tracks;
}

void
TimelineBuilder::write_chrome_trace(std::ostream& os,
                                    const std::string& process_name,
                                    const std::vector<CounterTrack>& counters)
    const
{
    JsonWriter w(os, /*pretty=*/false);
    w.begin_object();
    w.kv("displayTimeUnit", "ns");
    w.key("traceEvents");
    w.begin_array();

    // Metadata: one process named after the run, one thread track per CPU.
    w.begin_object();
    w.kv("name", "process_name").kv("ph", "M").kv("pid", 1).kv("tid", 0);
    w.key("args").begin_object().kv("name", process_name).end_object();
    w.end_object();
    for (const auto& [cpu, ivals] : intervals_) {
        const int node = ivals.empty() ? -1 : ivals.front().node;
        w.begin_object();
        w.kv("name", "thread_name").kv("ph", "M").kv("pid", 1).kv("tid", cpu);
        w.key("args").begin_object();
        w.kv("name",
             "cpu " + std::to_string(cpu) + " (node " + std::to_string(node) +
                 ")");
        w.end_object();
        w.end_object();
    }

    // Complete ("X") events; trace_event ts/dur are in microseconds.
    for (const auto& [cpu, ivals] : intervals_) {
        for (const Interval& iv : ivals) {
            w.begin_object();
            w.kv("name", cpu_state_name(iv.state));
            w.kv("cat", "lock");
            w.kv("ph", "X");
            w.kv("pid", 1);
            w.kv("tid", cpu);
            w.kv("ts", static_cast<double>(iv.begin_ns) / 1000.0);
            w.kv("dur",
                 static_cast<double>(iv.end_ns - iv.begin_ns) / 1000.0);
            w.key("args").begin_object();
            w.kv("lock_id", iv.lock_id);
            w.kv("thread", static_cast<std::int64_t>(iv.thread));
            w.kv("node", static_cast<std::int64_t>(iv.node));
            w.end_object();
            w.end_object();
        }
    }

    // Counter ("C") events: utilisation / rate tracks from the contention
    // snapshot, rendered by Perfetto as per-name area charts.
    for (const CounterTrack& track : counters) {
        for (const auto& [ts_ns, value] : track.points) {
            w.begin_object();
            w.kv("name", track.name);
            w.kv("cat", "contention");
            w.kv("ph", "C");
            w.kv("pid", 1);
            w.kv("ts", static_cast<double>(ts_ns) / 1000.0);
            w.key("args").begin_object();
            w.kv("value", value);
            w.end_object();
            w.end_object();
        }
    }

    w.end_array();
    w.end_object();
    os << '\n';
}

} // namespace nucalock::obs
