#include "common/logging.hpp"

#include <cstdio>
#include <cstdlib>

namespace nucalock {

void
fatal_impl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
panic_impl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
warn_impl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
inform_impl(const std::string& msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

} // namespace nucalock
