/**
 * @file
 * Environment-variable knobs, used by the benchmark harness to scale run
 * lengths (e.g. NUCALOCK_BENCH_SCALE=0.1 for a quick smoke run).
 */
#ifndef NUCALOCK_COMMON_ENV_HPP
#define NUCALOCK_COMMON_ENV_HPP

#include <cstdint>
#include <string>

namespace nucalock {

/** Read an unsigned integer from the environment, or return @p fallback. */
std::uint64_t env_u64(const std::string& name, std::uint64_t fallback);

/** Read a double from the environment, or return @p fallback. */
double env_double(const std::string& name, double fallback);

/**
 * Global benchmark scale factor (NUCALOCK_BENCH_SCALE, default 1.0).
 * Benchmarks multiply their iteration counts by this.
 */
double bench_scale();

/** Scale @p n by bench_scale(), never returning less than @p floor. */
std::uint64_t scaled_iters(std::uint64_t n, std::uint64_t floor = 1);

} // namespace nucalock

#endif // NUCALOCK_COMMON_ENV_HPP
