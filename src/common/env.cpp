#include "common/env.hpp"

#include <cstdlib>

#include "common/logging.hpp"

namespace nucalock {

std::uint64_t
env_u64(const std::string& name, std::uint64_t fallback)
{
    const char* raw = std::getenv(name.c_str());
    if (raw == nullptr || *raw == '\0')
        return fallback;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(raw, &end, 10);
    if (end == raw || *end != '\0')
        NUCA_FATAL("environment variable ", name, " is not an integer: '", raw, "'");
    return static_cast<std::uint64_t>(value);
}

double
env_double(const std::string& name, double fallback)
{
    const char* raw = std::getenv(name.c_str());
    if (raw == nullptr || *raw == '\0')
        return fallback;
    char* end = nullptr;
    const double value = std::strtod(raw, &end);
    if (end == raw || *end != '\0')
        NUCA_FATAL("environment variable ", name, " is not a number: '", raw, "'");
    return value;
}

double
bench_scale()
{
    static const double scale = [] {
        const double s = env_double("NUCALOCK_BENCH_SCALE", 1.0);
        if (s <= 0.0)
            NUCA_FATAL("NUCALOCK_BENCH_SCALE must be positive, got ", s);
        return s;
    }();
    return scale;
}

std::uint64_t
scaled_iters(std::uint64_t n, std::uint64_t floor)
{
    const double scaled = static_cast<double>(n) * bench_scale();
    auto result = static_cast<std::uint64_t>(scaled);
    return result < floor ? floor : result;
}

} // namespace nucalock
