/**
 * @file
 * Small portability helpers: cache-line size, cpu-relax hint, no-opt sinks.
 */
#ifndef NUCALOCK_COMMON_COMPILER_HPP
#define NUCALOCK_COMMON_COMPILER_HPP

#include <cstddef>
#include <cstdint>

namespace nucalock {

/**
 * Cache-line size assumed for padding shared variables. 64 bytes covers all
 * mainstream x86/ARM parts; over-aligning is harmless for correctness.
 */
inline constexpr std::size_t kCacheLineBytes = 64;

/** Hint to the CPU that we are in a spin-wait loop. */
inline void
cpu_relax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    asm volatile("" ::: "memory");
#endif
}

/**
 * Keep a value alive so a calibration/delay loop is not optimised away.
 */
template <typename T>
inline void
do_not_optimize(T& value)
{
    asm volatile("" : "+r,m"(value) : : "memory");
}

/** Burn roughly @p iterations trivial loop iterations of CPU time. */
inline void
spin_cycles(std::uint64_t iterations)
{
    for (std::uint64_t i = 0; i < iterations; ++i) {
        std::uint64_t sink = i;
        do_not_optimize(sink);
    }
}

} // namespace nucalock

#endif // NUCALOCK_COMMON_COMPILER_HPP
