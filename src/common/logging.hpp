/**
 * @file
 * Error-reporting helpers, in the spirit of gem5's logging.hh.
 *
 * `fatal()` is for user errors (bad configuration, invalid arguments): it
 * prints a message and exits with status 1. `panic()` is for internal
 * invariant violations (library bugs): it prints and aborts. `warn()` and
 * `inform()` report conditions without stopping execution.
 */
#ifndef NUCALOCK_COMMON_LOGGING_HPP
#define NUCALOCK_COMMON_LOGGING_HPP

#include <sstream>
#include <string>

namespace nucalock {

/** Terminate with exit(1); use for conditions that are the caller's fault. */
[[noreturn]] void fatal_impl(const char* file, int line, const std::string& msg);

/** Terminate with abort(); use for conditions that are a library bug. */
[[noreturn]] void panic_impl(const char* file, int line, const std::string& msg);

/** Print a warning to stderr and continue. */
void warn_impl(const char* file, int line, const std::string& msg);

/** Print an informational message to stderr and continue. */
void inform_impl(const std::string& msg);

namespace detail {

template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail
} // namespace nucalock

#define NUCA_FATAL(...) \
    ::nucalock::fatal_impl(__FILE__, __LINE__, ::nucalock::detail::concat(__VA_ARGS__))

#define NUCA_PANIC(...) \
    ::nucalock::panic_impl(__FILE__, __LINE__, ::nucalock::detail::concat(__VA_ARGS__))

#define NUCA_WARN(...) \
    ::nucalock::warn_impl(__FILE__, __LINE__, ::nucalock::detail::concat(__VA_ARGS__))

#define NUCA_INFORM(...) \
    ::nucalock::inform_impl(::nucalock::detail::concat(__VA_ARGS__))

/** Assertion that stays enabled in release builds; panics on failure. */
#define NUCA_ASSERT(cond, ...)                                            \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::nucalock::panic_impl(__FILE__, __LINE__,                    \
                ::nucalock::detail::concat("assertion failed: " #cond " " \
                                           __VA_ARGS__));                 \
        }                                                                 \
    } while (0)

#endif // NUCALOCK_COMMON_LOGGING_HPP
