/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Everything in the simulator and the benchmark harness draws randomness from
 * these generators so that runs are exactly reproducible from a seed. We do
 * not use std::mt19937 because its state is bulky and its seeding rules are
 * easy to get subtly wrong; SplitMix64 + xoshiro256** are small, fast, and
 * well studied.
 */
#ifndef NUCALOCK_COMMON_RNG_HPP
#define NUCALOCK_COMMON_RNG_HPP

#include <array>
#include <cstdint>

#include "common/logging.hpp"

namespace nucalock {

/** SplitMix64: used for seeding and as a cheap standalone generator. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/** xoshiro256**: the workhorse generator for workloads and backoff jitter. */
class Xoshiro256
{
  public:
    explicit Xoshiro256(std::uint64_t seed)
    {
        SplitMix64 sm(seed);
        for (auto& s : state_)
            s = sm.next();
    }

    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound); bound must be nonzero. */
    std::uint64_t
    next_below(std::uint64_t bound)
    {
        NUCA_ASSERT(bound != 0);
        // Lemire's multiply-shift rejection-free approximation is fine here:
        // bias is < 2^-64 * bound, irrelevant for workload generation.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    next_double()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

} // namespace nucalock

#endif // NUCALOCK_COMMON_RNG_HPP
