#include "native/machine.hpp"

#include <chrono>
#include <thread>

#include "common/logging.hpp"
#include "topology/affinity.hpp"

namespace nucalock::native {

int
NativeContext::num_nodes() const
{
    return machine_->topology().num_nodes();
}

std::uint64_t
NativeContext::spin_while_equal(Ref ref, std::uint64_t value)
{
    std::uint32_t polls = 0;
    while (true) {
        const std::uint64_t observed = ref.word->load(std::memory_order_acquire);
        if (observed != value)
            return observed;
        cpu_relax();
        if (++polls >= yield_every_) {
            polls = 0;
            std::this_thread::yield();
        }
    }
}

void
NativeContext::delay_ns(std::uint64_t ns)
{
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
    while (std::chrono::steady_clock::now() < deadline)
        cpu_relax();
}

void
NativeContext::touch_array(Ref first, std::uint32_t count, bool write)
{
    for (std::uint32_t i = 0; i < count; ++i) {
        const Ref ref = first.at(i);
        const std::uint64_t v = ref.word->load(std::memory_order_acquire);
        if (write)
            ref.word->store(v + 1, std::memory_order_release);
    }
}

NativeMachine::NativeMachine(Topology topo, NativeConfig cfg)
    : topo_(std::move(topo)), cfg_(std::move(cfg)),
      node_gates_(static_cast<std::size_t>(topo_.num_nodes()))
{
    if (cfg_.pin)
        NUCA_ASSERT(static_cast<int>(cfg_.os_cpu_of.size()) >= topo_.num_cpus(),
                    "pinning requested but os_cpu_of has ",
                    cfg_.os_cpu_of.size(), " entries for ", topo_.num_cpus(),
                    " cpus");
    NUCA_ASSERT(cfg_.yield_every > 0);
}

NativeRef
NativeMachine::alloc(std::uint64_t init, int home_node)
{
    return alloc_array(1, init, home_node);
}

NativeRef
NativeMachine::alloc_array(std::uint32_t count, std::uint64_t init, int home_node)
{
    NUCA_ASSERT(count > 0);
    NUCA_ASSERT(home_node >= 0 && home_node < topo_.num_nodes());
    // Over-allocate so the first word can be rounded up to a line boundary.
    const std::uint32_t total = count * kWordsPerLine + kWordsPerLine;
    Chunk chunk(new std::atomic<std::uint64_t>[total]);
    auto addr = reinterpret_cast<std::uintptr_t>(chunk.get());
    const std::uintptr_t aligned =
        (addr + kCacheLineBytes - 1) & ~static_cast<std::uintptr_t>(kCacheLineBytes - 1);
    auto* first = reinterpret_cast<std::atomic<std::uint64_t>*>(aligned);
    for (std::uint32_t i = 0; i < count; ++i)
        first[i * kWordsPerLine].store(init, std::memory_order_relaxed);

    std::lock_guard<std::mutex> guard(alloc_mutex_);
    chunks_.push_back(std::move(chunk));
    return NativeRef{first};
}

NativeRef
NativeMachine::node_gate(int node)
{
    NUCA_ASSERT(node >= 0 && node < topo_.num_nodes());
    std::lock_guard<std::mutex> guard(alloc_mutex_);
    auto& gate = node_gates_[static_cast<std::size_t>(node)];
    if (!gate.valid()) {
        // Cannot call alloc() under the lock; inline a single-word chunk.
        const std::uint32_t total = 2 * kWordsPerLine;
        Chunk chunk(new std::atomic<std::uint64_t>[total]);
        auto addr = reinterpret_cast<std::uintptr_t>(chunk.get());
        const std::uintptr_t aligned =
            (addr + kCacheLineBytes - 1) &
            ~static_cast<std::uintptr_t>(kCacheLineBytes - 1);
        auto* first = reinterpret_cast<std::atomic<std::uint64_t>*>(aligned);
        first->store(0, std::memory_order_relaxed);
        chunks_.push_back(std::move(chunk));
        gate = NativeRef{first};
    }
    return gate;
}

NativeContext
NativeMachine::make_context(int tid, int cpu)
{
    NUCA_ASSERT(tid >= 0 && tid < max_threads(), "tid=", tid);
    NUCA_ASSERT(cpu >= 0 && cpu < topo_.num_cpus(), "cpu=", cpu);
    NativeContext ctx;
    ctx.machine_ = this;
    ctx.tid_ = tid;
    ctx.cpu_ = cpu;
    ctx.node_ = topo_.node_of_cpu(cpu);
    ctx.chip_ = topo_.chip_of_cpu(cpu);
    ctx.yield_every_ = cfg_.yield_every;
    ctx.probe_ = probe_;
    ctx.phase_ = phase_hooks_ != nullptr ? phase_hooks_->bind_thread(tid, cpu)
                                         : nullptr;
    ctx.rng_ = Xoshiro256(cfg_.seed * std::uint64_t{0x9e3779b97f4a7c15} +
                          static_cast<std::uint64_t>(tid));
    return ctx;
}

void
NativeMachine::run_threads(int count, Placement policy,
                           const std::function<void(NativeContext&, int)>& body)
{
    const std::vector<int> cpus = map_threads(topo_, count, policy);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        const int cpu = cpus[static_cast<std::size_t>(i)];
        threads.emplace_back([this, body, i, cpu] {
            if (cfg_.pin)
                pin_current_thread(cfg_.os_cpu_of[static_cast<std::size_t>(cpu)]);
            NativeContext ctx = make_context(i, cpu);
            body(ctx, i);
        });
    }
    for (auto& t : threads)
        t.join();
}

} // namespace nucalock::native
