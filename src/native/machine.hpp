/**
 * @file
 * Native (real-thread) backend: the same context interface the simulator
 * provides, implemented over std::atomic and OS threads, so every lock
 * algorithm in src/locks/ runs unmodified on real hardware.
 */
#ifndef NUCALOCK_NATIVE_MACHINE_HPP
#define NUCALOCK_NATIVE_MACHINE_HPP

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/compiler.hpp"
#include "common/rng.hpp"
#include "native/phase_hooks.hpp"
#include "topology/mapping.hpp"
#include "topology/topology.hpp"

namespace nucalock::obs {
class ProbeSink;
}

namespace nucalock::native {

class NativeMachine;

/** Words per cache line; shared words are spaced one line apart. */
inline constexpr std::uint32_t kWordsPerLine =
    kCacheLineBytes / sizeof(std::uint64_t);

/** Handle to one shared word (cache-line spaced std::atomic). */
struct NativeRef
{
    std::atomic<std::uint64_t>* word = nullptr;

    bool valid() const { return word != nullptr; }

    /** Nonzero identity (the address), used as an is_spinning gate value. */
    std::uint64_t token() const { return reinterpret_cast<std::uintptr_t>(word); }

    /** The @p i-th word of an array allocated with alloc_array(). */
    NativeRef at(std::uint32_t i) const { return NativeRef{word + kWordsPerLine * i}; }

    friend bool operator==(const NativeRef&, const NativeRef&) = default;
};

/** Native machine configuration. */
struct NativeConfig
{
    std::uint64_t seed = 1;
    /** Pin threads to OS cpus (needs os_cpu_of from topology/host.hpp). */
    bool pin = false;
    /** os_cpu_of[dense_cpu] = OS cpu id; required when pin is true. */
    std::vector<int> os_cpu_of;
    /**
     * In spin loops, call std::this_thread::yield() every this many polls —
     * required for forward progress on oversubscribed hosts.
     */
    std::uint32_t yield_every = 64;
};

/** Per-thread execution context over real hardware. */
class NativeContext
{
  public:
    using Machine = NativeMachine;
    using Ref = NativeRef;

    int thread_id() const { return tid_; }
    int cpu() const { return cpu_; }
    int node() const { return node_; }
    int chip() const { return chip_; }
    int num_nodes() const;

    Machine& machine() { return *machine_; }
    Xoshiro256& rng() { return rng_; }

    std::uint64_t
    load(Ref ref)
    {
        return ref.word->load(std::memory_order_acquire);
    }

    void
    store(Ref ref, std::uint64_t value)
    {
        ref.word->store(value, std::memory_order_release);
    }

    std::uint64_t
    cas(Ref ref, std::uint64_t expected, std::uint64_t desired)
    {
        std::uint64_t old = expected;
        ref.word->compare_exchange_strong(old, desired,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
        return old; // previous value on failure, `expected` on success
    }

    std::uint64_t
    swap(Ref ref, std::uint64_t value)
    {
        return ref.word->exchange(value, std::memory_order_acq_rel);
    }

    std::uint64_t
    tas(Ref ref)
    {
        return swap(ref, 1);
    }

    /**
     * Observability-only read (see sim::SimContext::peek): a relaxed load
     * with no ordering obligations. Only for probes, never for locks.
     */
    std::uint64_t
    peek(Ref ref) const
    {
        return ref.word->load(std::memory_order_relaxed);
    }

    /**
     * The machine's installed probe sink (nullptr = observability off).
     * Native probes fire concurrently — install a ThreadSafeSink.
     */
    obs::ProbeSink* probe_sink() const { return probe_; }

    /**
     * Phase-transition hooks (see obs/probe.hpp: note_op_phase routes
     * lock events here). No-ops unless the machine has PhaseHooks
     * installed and bind_thread returned a recorder for this thread —
     * then every transition lands a (lock, phase) boundary on it, which
     * the hardware-counter observatory turns into per-phase deltas.
     */
    void
    set_op_phase(std::uint64_t lock_id, sim::TxPhase phase)
    {
        if (phase_ != nullptr) [[unlikely]]
            phase_->on_phase(lock_id, phase);
    }

    /** One-off phase marker (GT gate publish); see PhaseRecorder. */
    void
    set_transient_phase(sim::TxPhase phase)
    {
        if (phase_ != nullptr) [[unlikely]]
            phase_->on_transient_phase(phase);
    }

    /** Poll until the word differs from @p value; returns what it saw. */
    std::uint64_t spin_while_equal(Ref ref, std::uint64_t value);

    /** Busy-wait @p iterations empty loop iterations (backoff delay). */
    void
    delay(std::uint64_t iterations)
    {
        spin_cycles(iterations);
    }

    /** Busy-wait approximately @p ns nanoseconds. */
    void delay_ns(std::uint64_t ns);

    /** Read (and when @p write, increment) @p count array words. */
    void touch_array(Ref first, std::uint32_t count, bool write);

    /**
     * Critical-section markers (see sim::SimContext): no-ops here — the
     * fault-injection/invariant subsystem is simulator-only, the markers
     * exist so workload code compiles against either backend.
     */
    void cs_wait_begin() {}
    void cs_wait_abort() {}
    void cs_enter() {}
    void cs_exit() {}

  private:
    friend class NativeMachine;

    NativeMachine* machine_ = nullptr;
    int tid_ = -1;
    int cpu_ = -1;
    int node_ = -1;
    int chip_ = -1;
    std::uint32_t yield_every_ = 64;
    obs::ProbeSink* probe_ = nullptr;    // non-owning, copied from the machine
    PhaseRecorder* phase_ = nullptr;     // non-owning, bound in make_context
    Xoshiro256 rng_{0};
};

/**
 * The native machine: a logical NUCA topology laid over the host, shared
 * word allocation, per-node gates, and a thread runner that binds threads
 * to (logical) cpus.
 */
class NativeMachine
{
  public:
    explicit NativeMachine(Topology topo, NativeConfig cfg = NativeConfig{});

    NativeMachine(const NativeMachine&) = delete;
    NativeMachine& operator=(const NativeMachine&) = delete;

    const Topology& topology() const { return topo_; }
    const NativeConfig& config() const { return cfg_; }
    int max_threads() const { return topo_.num_cpus(); }

    /**
     * Allocate one shared word. @p home_node is advisory only: first-touch
     * NUMA placement is left to the OS (documented substitution — the
     * paper's CMR placement needs platform support we cannot assume).
     */
    NativeRef alloc(std::uint64_t init, int home_node = 0);

    /** Allocate @p count words on consecutive cache lines. */
    NativeRef alloc_array(std::uint32_t count, std::uint64_t init,
                          int home_node = 0);

    /** The per-node is_spinning gate word (see HBO_GT). */
    NativeRef node_gate(int node);

    /** Rebuild a Ref from a token produced by NativeRef::token(). */
    static NativeRef
    ref_from_token(std::uint64_t token)
    {
        return NativeRef{reinterpret_cast<std::atomic<std::uint64_t>*>(
            static_cast<std::uintptr_t>(token))};
    }

    /**
     * Run @p count OS threads placed per @p policy; each executes
     * @p body(ctx, index) once all threads have been created. Joins all.
     */
    void run_threads(int count, Placement policy,
                     const std::function<void(NativeContext&, int)>& body);

    /**
     * Make a context for an externally managed thread occupying dense cpu
     * @p cpu (used by examples and the google-benchmark integration).
     */
    NativeContext make_context(int tid, int cpu);

    /**
     * Install a lock-event probe sink (non-owning; nullptr uninstalls).
     * Must be thread-safe (obs::ThreadSafeSink) — contexts created after
     * this call emit to it from their own OS threads.
     */
    void install_probe(obs::ProbeSink* sink) { probe_ = sink; }
    obs::ProbeSink* probe() const { return probe_; }

    /**
     * Install phase-transition hooks (non-owning; nullptr uninstalls).
     * Contexts created after this call — make_context runs on the
     * context's own OS thread under run_threads — bind a per-thread
     * PhaseRecorder via hooks->bind_thread(tid, cpu), so a perf-counter
     * session opens its counter group on the thread it will count.
     */
    void install_phase_hooks(PhaseHooks* hooks) { phase_hooks_ = hooks; }
    PhaseHooks* phase_hooks() const { return phase_hooks_; }

  private:
    using Chunk = std::unique_ptr<std::atomic<std::uint64_t>[]>;

    Topology topo_;
    NativeConfig cfg_;
    std::mutex alloc_mutex_;
    std::vector<Chunk> chunks_;
    std::vector<NativeRef> node_gates_;
    obs::ProbeSink* probe_ = nullptr;      // non-owning
    PhaseHooks* phase_hooks_ = nullptr;    // non-owning
};

} // namespace nucalock::native

#endif // NUCALOCK_NATIVE_MACHINE_HPP
