/**
 * @file
 * The native backend's phase-transition hook: a tiny abstract interface
 * through which NativeContext reports lock-operation phase changes
 * (obs/probe.hpp maps lock events to sim::TxPhase transitions on any
 * context exposing set_op_phase) without the native library depending on
 * the observability library. obs/perf_counters.hpp implements it to read
 * hardware counters at every transition and attribute the deltas per lock
 * and per phase — the real-hardware analogue of the simulator's traffic
 * attribution.
 */
#ifndef NUCALOCK_NATIVE_PHASE_HOOKS_HPP
#define NUCALOCK_NATIVE_PHASE_HOOKS_HPP

#include <cstdint>

#include "sim/traffic.hpp"

namespace nucalock::native {

/**
 * Per-thread listener. on_phase is called from the owning thread only, at
 * every probe-driven phase transition (acquire attempt, acquisition,
 * release, gate maintenance); implementations may block briefly (a counter
 * read) but must never touch the lock words they observe.
 */
class PhaseRecorder
{
  public:
    virtual ~PhaseRecorder() = default;

    /** Subsequent work belongs to (lock_id, phase) until the next call. */
    virtual void on_phase(std::uint64_t lock_id, sim::TxPhase phase) = 0;

    /**
     * A one-off phase marker (GT gate publish/reopen). The simulator tags
     * exactly the next memory access; natively the marker lasts until the
     * next on_phase transition — a documented over-attribution, since the
     * window holds only the gate store and the loop edge back to the spin.
     */
    virtual void on_transient_phase(sim::TxPhase phase) = 0;
};

/**
 * Session factory installed on a NativeMachine. bind_thread is called once
 * per created context, on the context's own OS thread (perf counter groups
 * count the opening thread), and may return nullptr to leave that thread
 * unobserved. The returned recorder must stay valid until the session owner
 * collects it — the machine never deletes recorders.
 */
class PhaseHooks
{
  public:
    virtual ~PhaseHooks() = default;
    virtual PhaseRecorder* bind_thread(int tid, int cpu) = 0;
};

} // namespace nucalock::native

#endif // NUCALOCK_NATIVE_PHASE_HOOKS_HPP
