#include "stats/csv.hpp"

#include <cstdio>

#include "common/logging.hpp"

namespace nucalock::stats {
namespace {

bool
needs_quoting(const std::string& s)
{
    return s.find_first_of(",\"\n") != std::string::npos;
}

std::string
quote(const std::string& s)
{
    if (!needs_quoting(s))
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

CsvWriter::CsvWriter(std::ostream& os, const std::vector<std::string>& headers)
    : os_(os), columns_(headers.size())
{
    NUCA_ASSERT(columns_ > 0);
    write_row(headers);
}

CsvWriter&
CsvWriter::cell(const std::string& text)
{
    pending_.push_back(text);
    return *this;
}

CsvWriter&
CsvWriter::cell(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return cell(std::string(buf));
}

CsvWriter&
CsvWriter::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

CsvWriter&
CsvWriter::cell(int value)
{
    return cell(std::to_string(value));
}

void
CsvWriter::end_row()
{
    NUCA_ASSERT(pending_.size() == columns_, "row has ", pending_.size(),
                " cells, expected ", columns_);
    write_row(pending_);
    pending_.clear();
}

void
CsvWriter::write_row(const std::vector<std::string>& cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i != 0)
            os_ << ',';
        os_ << quote(cells[i]);
    }
    os_ << '\n';
}

} // namespace nucalock::stats
