/**
 * @file
 * Streaming summary statistics (Welford's online algorithm).
 */
#ifndef NUCALOCK_STATS_SUMMARY_HPP
#define NUCALOCK_STATS_SUMMARY_HPP

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/logging.hpp"

namespace nucalock::stats {

/**
 * Accumulates count / mean / variance / min / max of a stream of doubles
 * without storing the samples. Numerically stable (Welford).
 */
class Summary
{
  public:
    void
    add(double x)
    {
        ++count_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(count_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ == 0 ? 0.0 : mean_; }

    double
    min() const
    {
        return count_ == 0 ? 0.0 : min_;
    }

    double
    max() const
    {
        return count_ == 0 ? 0.0 : max_;
    }

    /** Population variance; 0 for fewer than two samples. */
    double
    variance() const
    {
        return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_);
    }

    /** Sample (Bessel-corrected) variance; 0 for fewer than two samples. */
    double
    sample_variance() const
    {
        return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
    }

    double stddev() const { return std::sqrt(variance()); }

    double sum() const { return mean_ * static_cast<double>(count_); }

    /** Merge another summary into this one (parallel Welford merge). */
    void
    merge(const Summary& other)
    {
        if (other.count_ == 0)
            return;
        if (count_ == 0) {
            *this = other;
            return;
        }
        const auto na = static_cast<double>(count_);
        const auto nb = static_cast<double>(other.count_);
        const double delta = other.mean_ - mean_;
        const double n = na + nb;
        mean_ += delta * nb / n;
        m2_ += other.m2_ + delta * delta * na * nb / n;
        count_ += other.count_;
        min_ = std::min(min_, other.min_);
        max_ = std::max(max_, other.max_);
    }

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace nucalock::stats

#endif // NUCALOCK_STATS_SUMMARY_HPP
