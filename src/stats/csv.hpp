/**
 * @file
 * Minimal CSV writer so benchmark output can be re-plotted outside C++.
 */
#ifndef NUCALOCK_STATS_CSV_HPP
#define NUCALOCK_STATS_CSV_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace nucalock::stats {

/**
 * Streams rows of cells in RFC-4180-ish CSV (quotes cells containing commas,
 * quotes, or newlines). The header row is written on construction.
 */
class CsvWriter
{
  public:
    CsvWriter(std::ostream& os, const std::vector<std::string>& headers);

    CsvWriter& cell(const std::string& text);
    CsvWriter& cell(double value);
    CsvWriter& cell(std::uint64_t value);
    CsvWriter& cell(int value);

    /** Terminate the current row. Panics if the column count is wrong. */
    void end_row();

  private:
    void write_row(const std::vector<std::string>& cells);

    std::ostream& os_;
    std::size_t columns_;
    std::vector<std::string> pending_;
};

} // namespace nucalock::stats

#endif // NUCALOCK_STATS_CSV_HPP
