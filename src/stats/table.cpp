#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/logging.hpp"

namespace nucalock::stats {

std::string
format_double(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    NUCA_ASSERT(!headers_.empty());
}

Table&
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table&
Table::cell(const std::string& text)
{
    NUCA_ASSERT(!rows_.empty(), "cell() before row()");
    NUCA_ASSERT(rows_.back().size() < headers_.size(), "too many cells in row");
    rows_.back().push_back(text);
    return *this;
}

Table&
Table::cell(const char* text)
{
    return cell(std::string(text));
}

Table&
Table::cell(double value, int decimals)
{
    return cell(format_double(value, decimals));
}

Table&
Table::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

Table&
Table::cell(int value)
{
    return cell(std::to_string(value));
}

void
Table::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto print_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string& text = c < cells.size() ? cells[c] : std::string();
            os << (c == 0 ? "" : "  ");
            os << text;
            for (std::size_t pad = text.size(); pad < widths[c]; ++pad)
                os << ' ';
        }
        os << '\n';
    };

    print_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_)
        print_row(row);
}

} // namespace nucalock::stats
