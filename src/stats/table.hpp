/**
 * @file
 * Plain-text table formatting for paper-style result output.
 */
#ifndef NUCALOCK_STATS_TABLE_HPP
#define NUCALOCK_STATS_TABLE_HPP

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace nucalock::stats {

/**
 * Accumulates rows of string cells and renders them with aligned columns.
 * Numeric cell helpers format with a fixed number of decimals.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Start a new row; subsequent cell() calls append to it. */
    Table& row();

    Table& cell(const std::string& text);
    Table& cell(const char* text);
    Table& cell(double value, int decimals = 2);
    Table& cell(std::uint64_t value);
    Table& cell(int value);

    /** Render the table (header, rule, rows) to @p os. */
    void print(std::ostream& os) const;

    std::size_t num_rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format @p value with @p decimals decimal places. */
std::string format_double(double value, int decimals);

} // namespace nucalock::stats

#endif // NUCALOCK_STATS_TABLE_HPP
