/**
 * @file
 * Logarithmic-bucket histogram for latency distributions.
 */
#ifndef NUCALOCK_STATS_HISTOGRAM_HPP
#define NUCALOCK_STATS_HISTOGRAM_HPP

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>

#include "common/logging.hpp"

namespace nucalock::stats {

/**
 * Power-of-two bucketed histogram over [0, 2^63). Bucket b holds values in
 * [2^(b-1), 2^b) for b >= 1; bucket 0 holds the value 0. Percentile queries
 * interpolate linearly inside a bucket, which is plenty for reporting
 * latency spreads.
 */
class LogHistogram
{
  public:
    static constexpr int kBuckets = 64;

    void
    add(std::uint64_t value)
    {
        ++buckets_[static_cast<std::size_t>(bucket_of(value))];
        ++count_;
        sum_ += value;
    }

    std::uint64_t count() const { return count_; }

    double
    mean() const
    {
        return count_ == 0 ? 0.0
                           : static_cast<double>(sum_) / static_cast<double>(count_);
    }

    std::uint64_t bucket_count(int b) const { return buckets_.at(static_cast<std::size_t>(b)); }

    /**
     * Value at percentile @p p in [0, 100]. Returns 0 for an empty histogram.
     */
    double
    percentile(double p) const
    {
        NUCA_ASSERT(p >= 0.0 && p <= 100.0, "p=", p);
        if (count_ == 0)
            return 0.0;
        const double target = p / 100.0 * static_cast<double>(count_);
        double seen = 0.0;
        for (int b = 0; b < kBuckets; ++b) {
            const auto in_bucket = static_cast<double>(buckets_[static_cast<std::size_t>(b)]);
            if (in_bucket == 0.0)
                continue;
            if (seen + in_bucket >= target) {
                const double frac = in_bucket == 0.0 ? 0.0 : (target - seen) / in_bucket;
                const double lo = bucket_low(b);
                const double hi = bucket_high(b);
                return lo + frac * (hi - lo);
            }
            seen += in_bucket;
        }
        return bucket_high(kBuckets - 1);
    }

    void
    merge(const LogHistogram& other)
    {
        for (int b = 0; b < kBuckets; ++b)
            buckets_[static_cast<std::size_t>(b)] +=
                other.buckets_[static_cast<std::size_t>(b)];
        count_ += other.count_;
        sum_ += other.sum_;
    }

    static int
    bucket_of(std::uint64_t value)
    {
        return value == 0 ? 0 : 64 - std::countl_zero(value);
    }

    static double
    bucket_low(int b)
    {
        return b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
    }

    static double
    bucket_high(int b)
    {
        return b == 0 ? 1.0 : std::ldexp(1.0, b);
    }

  private:
    std::array<std::uint64_t, kBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
};

} // namespace nucalock::stats

#endif // NUCALOCK_STATS_HISTOGRAM_HPP
