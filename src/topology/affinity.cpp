#include "topology/affinity.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>

#include <cstddef>
#endif

namespace nucalock {

bool
pin_current_thread(int os_cpu)
{
#if defined(__linux__)
    if (os_cpu < 0 || os_cpu >= CPU_SETSIZE)
        return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(static_cast<std::size_t>(os_cpu), &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
    (void)os_cpu;
    return false;
#endif
}

int
current_os_cpu()
{
#if defined(__linux__)
    return sched_getcpu();
#else
    return -1;
#endif
}

} // namespace nucalock
