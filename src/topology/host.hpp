/**
 * @file
 * Host topology discovery (Linux sysfs) for the native backend.
 */
#ifndef NUCALOCK_TOPOLOGY_HOST_HPP
#define NUCALOCK_TOPOLOGY_HOST_HPP

#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace nucalock {

/**
 * Parse a Linux cpulist string ("0-3,8,10-11") into ascending cpu ids.
 * Fatal on malformed input.
 */
std::vector<int> parse_cpulist(const std::string& text);

/**
 * Per-NUMA-node cpu lists of the host plus the mapping from our dense cpu
 * ids back to OS cpu ids (needed for affinity pinning).
 */
struct HostLayout
{
    Topology topology;
    /** os_cpu_of[dense_cpu] = OS cpu number to pin to. */
    std::vector<int> os_cpu_of;
};

/**
 * Discover the host NUMA layout from /sys/devices/system/node. Falls back
 * to a single node with std::thread::hardware_concurrency() cpus when sysfs
 * is unavailable. @p root overrides the sysfs path for testing.
 */
HostLayout discover_host(const std::string& root = "/sys/devices/system/node");

/**
 * Split the host's cpus into @p logical_nodes equal groups, for running
 * NUCA-aware locks on a flat host (the node ids are then logical, typically
 * matching shared-L3 groups). Remainder cpus go to the last node.
 */
HostLayout logical_host(int logical_nodes,
                        const std::string& root = "/sys/devices/system/node");

} // namespace nucalock

#endif // NUCALOCK_TOPOLOGY_HOST_HPP
