/**
 * @file
 * Thread-to-cpu affinity pinning (Linux pthread_setaffinity_np).
 */
#ifndef NUCALOCK_TOPOLOGY_AFFINITY_HPP
#define NUCALOCK_TOPOLOGY_AFFINITY_HPP

namespace nucalock {

/**
 * Pin the calling thread to OS cpu @p os_cpu.
 * @return true on success; false when unsupported or the cpu is offline.
 */
bool pin_current_thread(int os_cpu);

/** OS cpu the calling thread last ran on, or -1 if unknown. */
int current_os_cpu();

} // namespace nucalock

#endif // NUCALOCK_TOPOLOGY_AFFINITY_HPP
